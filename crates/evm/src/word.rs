//! Fixed-width 256-bit words with the wrapping semantics of the EVM.

use std::fmt;

/// A 256-bit unsigned word, little-endian limbs, with the wrapping
/// arithmetic the EVM defines.
///
/// Only the operations needed for static jump resolution and constant
/// folding are implemented; full bignum division is intentionally out of
/// scope (a `DIV` over unknown operands simply stops constant propagation).
///
/// # Examples
///
/// ```
/// use scamdetect_evm::word::U256;
///
/// let a = U256::from_u64(10);
/// let b = U256::from_u64(32);
/// assert_eq!(a.wrapping_add(&b), U256::from_u64(42));
/// assert_eq!(b.shl(2), U256::from_u64(128));
/// assert_eq!(U256::from_u64(42).to_usize(), Some(42));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct U256 {
    // limbs[0] is least significant.
    limbs: [u64; 4],
}

impl Ord for U256 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Numeric order: compare from the most significant limb down.
        for i in (0..4).rev() {
            match self.limbs[i].cmp(&other.limbs[i]) {
                std::cmp::Ordering::Equal => continue,
                non_eq => return non_eq,
            }
        }
        std::cmp::Ordering::Equal
    }
}

impl PartialOrd for U256 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Debug for U256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "U256(0x{:016x}{:016x}{:016x}{:016x})",
            self.limbs[3], self.limbs[2], self.limbs[1], self.limbs[0]
        )
    }
}

impl fmt::Display for U256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.to_usize() {
            Some(v) => write!(f, "{v}"),
            None => write!(f, "{self:?}"),
        }
    }
}

impl U256 {
    /// The zero word.
    pub const ZERO: U256 = U256 { limbs: [0; 4] };
    /// The one word.
    pub const ONE: U256 = U256 {
        limbs: [1, 0, 0, 0],
    };
    /// All bits set.
    pub const MAX: U256 = U256 {
        limbs: [u64::MAX; 4],
    };

    /// Word from a `u64`.
    pub fn from_u64(v: u64) -> Self {
        U256 {
            limbs: [v, 0, 0, 0],
        }
    }

    /// Word from big-endian bytes (at most 32; shorter slices are
    /// left-padded with zeros, matching EVM `PUSHn` semantics).
    ///
    /// # Panics
    ///
    /// Panics if `bytes.len() > 32`.
    pub fn from_be_bytes(bytes: &[u8]) -> Self {
        assert!(bytes.len() <= 32, "U256::from_be_bytes: more than 32 bytes");
        let mut buf = [0u8; 32];
        buf[32 - bytes.len()..].copy_from_slice(bytes);
        let mut limbs = [0u64; 4];
        for (i, limb) in limbs.iter_mut().enumerate() {
            let start = 32 - (i + 1) * 8;
            let mut v = 0u64;
            for b in &buf[start..start + 8] {
                v = (v << 8) | *b as u64;
            }
            *limb = v;
        }
        U256 { limbs }
    }

    /// Big-endian 32-byte encoding.
    pub fn to_be_bytes(&self) -> [u8; 32] {
        let mut out = [0u8; 32];
        for (i, &limb) in self.limbs.iter().enumerate() {
            let start = 32 - (i + 1) * 8;
            out[start..start + 8].copy_from_slice(&limb.to_be_bytes());
        }
        out
    }

    /// Minimal big-endian encoding (no leading zero bytes; `ZERO` encodes
    /// to an empty vector, which assembles as `PUSH0`).
    pub fn to_be_bytes_minimal(&self) -> Vec<u8> {
        let full = self.to_be_bytes();
        let first = full.iter().position(|&b| b != 0).unwrap_or(32);
        full[first..].to_vec()
    }

    /// Converts to `usize` if the value fits.
    pub fn to_usize(&self) -> Option<usize> {
        if self.limbs[1] == 0 && self.limbs[2] == 0 && self.limbs[3] == 0 {
            usize::try_from(self.limbs[0]).ok()
        } else {
            None
        }
    }

    /// `true` if the word is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs == [0; 4]
    }

    /// Wrapping addition.
    #[allow(clippy::needless_range_loop)] // carry chain over parallel limb arrays
    pub fn wrapping_add(&self, rhs: &U256) -> U256 {
        let mut out = [0u64; 4];
        let mut carry = 0u64;
        for i in 0..4 {
            let (s1, c1) = self.limbs[i].overflowing_add(rhs.limbs[i]);
            let (s2, c2) = s1.overflowing_add(carry);
            out[i] = s2;
            carry = (c1 as u64) + (c2 as u64);
        }
        U256 { limbs: out }
    }

    /// Wrapping subtraction.
    #[allow(clippy::needless_range_loop)] // carry chain over parallel limb arrays
    pub fn wrapping_sub(&self, rhs: &U256) -> U256 {
        let mut out = [0u64; 4];
        let mut borrow = 0u64;
        for i in 0..4 {
            let (d1, b1) = self.limbs[i].overflowing_sub(rhs.limbs[i]);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out[i] = d2;
            borrow = (b1 as u64) + (b2 as u64);
        }
        U256 { limbs: out }
    }

    /// Wrapping multiplication (schoolbook over 64-bit limbs).
    pub fn wrapping_mul(&self, rhs: &U256) -> U256 {
        let mut out = [0u64; 4];
        for i in 0..4 {
            if self.limbs[i] == 0 {
                continue;
            }
            let mut carry = 0u128;
            for j in 0..4 - i {
                let idx = i + j;
                let prod = self.limbs[i] as u128 * rhs.limbs[j] as u128 + out[idx] as u128 + carry;
                out[idx] = prod as u64;
                carry = prod >> 64;
            }
        }
        U256 { limbs: out }
    }

    /// Bitwise AND.
    pub fn and(&self, rhs: &U256) -> U256 {
        U256 {
            limbs: std::array::from_fn(|i| self.limbs[i] & rhs.limbs[i]),
        }
    }

    /// Bitwise OR.
    pub fn or(&self, rhs: &U256) -> U256 {
        U256 {
            limbs: std::array::from_fn(|i| self.limbs[i] | rhs.limbs[i]),
        }
    }

    /// Bitwise XOR.
    pub fn xor(&self, rhs: &U256) -> U256 {
        U256 {
            limbs: std::array::from_fn(|i| self.limbs[i] ^ rhs.limbs[i]),
        }
    }

    /// Bitwise NOT.
    pub fn not(&self) -> U256 {
        U256 {
            limbs: std::array::from_fn(|i| !self.limbs[i]),
        }
    }

    /// Left shift by `n` bits (result is zero for `n >= 256`, as in the EVM).
    pub fn shl(&self, n: u32) -> U256 {
        if n >= 256 {
            return U256::ZERO;
        }
        let limb_shift = (n / 64) as usize;
        let bit_shift = n % 64;
        let mut out = [0u64; 4];
        for i in (limb_shift..4).rev() {
            let src = i - limb_shift;
            out[i] = self.limbs[src] << bit_shift;
            if bit_shift > 0 && src > 0 {
                out[i] |= self.limbs[src - 1] >> (64 - bit_shift);
            }
        }
        U256 { limbs: out }
    }

    /// Logical right shift by `n` bits (zero for `n >= 256`).
    #[allow(clippy::needless_range_loop)] // carry chain over parallel limb arrays
    pub fn shr(&self, n: u32) -> U256 {
        if n >= 256 {
            return U256::ZERO;
        }
        let limb_shift = (n / 64) as usize;
        let bit_shift = n % 64;
        let mut out = [0u64; 4];
        for i in 0..4 - limb_shift {
            let src = i + limb_shift;
            out[i] = self.limbs[src] >> bit_shift;
            if bit_shift > 0 && src + 1 < 4 {
                out[i] |= self.limbs[src + 1] << (64 - bit_shift);
            }
        }
        U256 { limbs: out }
    }

    /// EVM `LT` as a word (1 or 0).
    pub fn lt_word(&self, rhs: &U256) -> U256 {
        if self < rhs {
            U256::ONE
        } else {
            U256::ZERO
        }
    }

    /// EVM `GT` as a word (1 or 0).
    pub fn gt_word(&self, rhs: &U256) -> U256 {
        if self > rhs {
            U256::ONE
        } else {
            U256::ZERO
        }
    }

    /// EVM `EQ` as a word (1 or 0).
    pub fn eq_word(&self, rhs: &U256) -> U256 {
        if self == rhs {
            U256::ONE
        } else {
            U256::ZERO
        }
    }

    /// EVM `ISZERO` as a word (1 or 0).
    pub fn iszero_word(&self) -> U256 {
        if self.is_zero() {
            U256::ONE
        } else {
            U256::ZERO
        }
    }
}

impl From<u64> for U256 {
    fn from(v: u64) -> Self {
        U256::from_u64(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_roundtrip() {
        let w = U256::from_be_bytes(&[0xde, 0xad, 0xbe, 0xef]);
        assert_eq!(w.to_usize(), Some(0xdeadbeef));
        let full = w.to_be_bytes();
        assert_eq!(U256::from_be_bytes(&full), w);
        assert_eq!(w.to_be_bytes_minimal(), vec![0xde, 0xad, 0xbe, 0xef]);
        assert_eq!(U256::ZERO.to_be_bytes_minimal(), Vec::<u8>::new());
    }

    #[test]
    fn add_with_carry_across_limbs() {
        let a = U256::from_u64(u64::MAX);
        let b = U256::ONE;
        let c = a.wrapping_add(&b);
        assert_eq!(c.to_be_bytes()[23], 1); // bit 64 set
        assert_eq!(c.to_usize(), None);
        assert_eq!(c.wrapping_sub(&b), a);
    }

    #[test]
    fn wrapping_at_256_bits() {
        let max = U256::MAX;
        assert_eq!(max.wrapping_add(&U256::ONE), U256::ZERO);
        assert_eq!(U256::ZERO.wrapping_sub(&U256::ONE), U256::MAX);
    }

    #[test]
    fn mul_matches_u128() {
        let a = U256::from_u64(0xffff_ffff);
        let b = U256::from_u64(0x1_0000_0001);
        let c = a.wrapping_mul(&b);
        let expected = 0xffff_ffffu128 * 0x1_0000_0001u128;
        assert_eq!(c.to_usize().unwrap() as u128, expected);
    }

    #[test]
    fn mul_wraps() {
        let big = U256::MAX;
        let two = U256::from_u64(2);
        assert_eq!(big.wrapping_mul(&two), U256::MAX.wrapping_sub(&U256::ONE));
    }

    #[test]
    fn bitwise_ops() {
        let a = U256::from_u64(0b1100);
        let b = U256::from_u64(0b1010);
        assert_eq!(a.and(&b), U256::from_u64(0b1000));
        assert_eq!(a.or(&b), U256::from_u64(0b1110));
        assert_eq!(a.xor(&b), U256::from_u64(0b0110));
        assert_eq!(a.not().not(), a);
    }

    #[test]
    fn shifts() {
        let one = U256::ONE;
        assert_eq!(one.shl(8), U256::from_u64(256));
        assert_eq!(one.shl(64).shr(64), one);
        assert_eq!(one.shl(255).shl(1), U256::ZERO);
        assert_eq!(one.shl(256), U256::ZERO);
        assert_eq!(U256::from_u64(0xff00).shr(8), U256::from_u64(0xff));
        // Cross-limb shift.
        let w = U256::from_u64(u64::MAX);
        let s = w.shl(32);
        assert_eq!(s.shr(32), w);
    }

    #[test]
    fn comparisons_as_words() {
        let a = U256::from_u64(1);
        let b = U256::from_u64(2);
        assert_eq!(a.lt_word(&b), U256::ONE);
        assert_eq!(a.gt_word(&b), U256::ZERO);
        assert_eq!(a.eq_word(&a), U256::ONE);
        assert_eq!(U256::ZERO.iszero_word(), U256::ONE);
        assert_eq!(b.iszero_word(), U256::ZERO);
    }

    #[test]
    fn ordering_is_numeric() {
        // limbs are little-endian, so Ord must compare from the top limb.
        let small = U256::from_u64(u64::MAX);
        let big = U256::ONE.shl(64);
        assert!(small < big);
    }

    #[test]
    #[should_panic(expected = "more than 32 bytes")]
    fn from_be_bytes_too_long_panics() {
        let _ = U256::from_be_bytes(&[0u8; 33]);
    }
}
