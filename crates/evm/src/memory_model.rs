//! Abstract memory tracking for static jump resolution.
//!
//! Memory-routed jump indirection (`MSTORE` a target early, `MLOAD; JUMP`
//! later) defeats stack-only constant propagation. This module adds a
//! word-granular abstract memory: writes at statically known offsets with
//! statically known values are remembered; anything imprecise havocs
//! soundly. Combined with the abstract stack, the CFG builder statically
//! resolves exactly the indirection pattern the obfuscator ships —
//! the analyzer side of the arms race the paper's §IV describes.

use crate::disasm::Instruction;
use crate::opcode::Opcode;
use crate::stack::{AbstractStack, AbstractValue};
use std::collections::BTreeMap;

/// Maximum tracked memory words; beyond this the map havocs (analysis
/// stays sound, just less precise).
pub const MAX_TRACKED_WORDS: usize = 128;

/// Abstract machine state: stack plus word-tracked memory.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AbstractState {
    /// The operand stack.
    pub stack: AbstractStack,
    /// Known 32-byte words at exact byte offsets.
    memory: BTreeMap<u64, AbstractValue>,
}

impl AbstractState {
    /// Creates an empty state.
    pub fn new() -> Self {
        AbstractState::default()
    }

    /// Number of tracked memory words (diagnostics).
    pub fn tracked_words(&self) -> usize {
        self.memory.len()
    }

    /// Forgets every memory fact.
    pub fn havoc_memory(&mut self) {
        self.memory.clear();
    }

    /// Forgets words overlapping `[offset, offset + len)`.
    fn havoc_range(&mut self, offset: u64, len: u64) {
        if len == 0 {
            return;
        }
        let lo = offset.saturating_sub(31);
        let hi = offset.saturating_add(len);
        let stale: Vec<u64> = self.memory.range(lo..hi).map(|(k, _)| *k).collect();
        for k in stale {
            self.memory.remove(&k);
        }
    }

    /// Joins with another state (used at CFG merge points); returns `true`
    /// if `self` changed. Memory join is the intersection of agreeing
    /// facts, so precision only decreases and the fixpoint terminates.
    pub fn join_from(&mut self, other: &AbstractState) -> bool {
        let mut changed = self.stack.join_from(&other.stack);
        let stale: Vec<u64> = self
            .memory
            .iter()
            .filter(|(k, v)| other.memory.get(k) != Some(v))
            .map(|(k, _)| *k)
            .collect();
        if !stale.is_empty() {
            changed = true;
            for k in stale {
                self.memory.remove(&k);
            }
        }
        changed
    }

    /// Executes one instruction over stack and memory.
    pub fn execute(&mut self, ins: &Instruction) {
        let Some(op) = ins.opcode else {
            return;
        };
        match op {
            Opcode::MSTORE => {
                let off = self.stack.pop();
                let val = self.stack.pop();
                match off.as_known().and_then(|w| w.to_usize()) {
                    Some(off) => {
                        let off = off as u64;
                        self.havoc_range(off, 32);
                        if let AbstractValue::Known(_) = val {
                            if self.memory.len() < MAX_TRACKED_WORDS {
                                self.memory.insert(off, val);
                            }
                        }
                    }
                    None => self.havoc_memory(),
                }
            }
            Opcode::MLOAD => {
                let off = self.stack.pop();
                let loaded = off
                    .as_known()
                    .and_then(|w| w.to_usize())
                    .and_then(|o| self.memory.get(&(o as u64)).copied())
                    .unwrap_or(AbstractValue::Unknown);
                self.stack.push(loaded);
            }
            Opcode::MSTORE8 => {
                let off = self.stack.pop();
                let _val = self.stack.pop();
                match off.as_known().and_then(|w| w.to_usize()) {
                    Some(off) => self.havoc_range(off as u64, 1),
                    None => self.havoc_memory(),
                }
            }
            // Bulk memory writers: havoc the destination range when known,
            // everything otherwise.
            Opcode::CALLDATACOPY | Opcode::CODECOPY | Opcode::RETURNDATACOPY => {
                let dst = self.stack.pop();
                let _src = self.stack.pop();
                let len = self.stack.pop();
                self.havoc_write(dst, len);
            }
            Opcode::EXTCODECOPY => {
                let _addr = self.stack.pop();
                let dst = self.stack.pop();
                let _src = self.stack.pop();
                let len = self.stack.pop();
                self.havoc_write(dst, len);
            }
            Opcode::MCOPY => {
                let dst = self.stack.pop();
                let _src = self.stack.pop();
                let len = self.stack.pop();
                self.havoc_write(dst, len);
            }
            // Calls write their return area.
            Opcode::CALL | Opcode::CALLCODE => {
                // gas, to, value, argOff, argLen, retOff, retLen
                for _ in 0..5 {
                    self.stack.pop();
                }
                let ret_off = self.stack.pop();
                let ret_len = self.stack.pop();
                self.havoc_write(ret_off, ret_len);
                self.stack.push(AbstractValue::Unknown);
            }
            Opcode::DELEGATECALL | Opcode::STATICCALL => {
                for _ in 0..4 {
                    self.stack.pop();
                }
                let ret_off = self.stack.pop();
                let ret_len = self.stack.pop();
                self.havoc_write(ret_off, ret_len);
                self.stack.push(AbstractValue::Unknown);
            }
            // Everything else: pure stack effect.
            _ => self.stack.execute(ins),
        }
    }

    fn havoc_write(&mut self, offset: AbstractValue, len: AbstractValue) {
        match (
            offset.as_known().and_then(|w| w.to_usize()),
            len.as_known().and_then(|w| w.to_usize()),
        ) {
            (Some(o), Some(l)) => self.havoc_range(o as u64, l as u64),
            _ => self.havoc_memory(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disasm::disassemble;
    use crate::word::U256;

    fn run(code: &[u8]) -> AbstractState {
        let mut s = AbstractState::new();
        for ins in disassemble(code) {
            s.execute(&ins);
        }
        s
    }

    #[test]
    fn mstore_then_mload_recovers_constant() {
        // PUSH2 0x1234 PUSH2 0x8000 MSTORE; PUSH2 0x8000 MLOAD
        let s = run(&[
            0x61, 0x12, 0x34, 0x61, 0x80, 0x00, 0x52, 0x61, 0x80, 0x00, 0x51,
        ]);
        assert_eq!(
            s.stack.peek(0),
            AbstractValue::Known(U256::from_u64(0x1234))
        );
    }

    #[test]
    fn unknown_offset_store_havocs_everything() {
        // Store a constant, then MSTORE at CALLVALUE (unknown) offset.
        let s = run(&[
            0x61, 0x12, 0x34, 0x61, 0x80, 0x00, 0x52, // mem[0x8000] = 0x1234
            0x60, 0x01, 0x34, 0x52, // mem[callvalue] = 1: havoc
            0x61, 0x80, 0x00, 0x51, // MLOAD 0x8000
        ]);
        assert_eq!(s.stack.peek(0), AbstractValue::Unknown);
    }

    #[test]
    fn overlapping_store_invalidates() {
        // mem[0x8000] = k; then mem[0x8010] = unknown-value write via
        // CALLVALUE (known offset, unknown value) → 0x8000 entry must die.
        let s = run(&[
            0x61, 0xaa, 0xbb, 0x61, 0x80, 0x00, 0x52, // known store
            0x34, 0x61, 0x80, 0x10, 0x52, // overlapping store (val unknown)
            0x61, 0x80, 0x00, 0x51, // reload original slot
        ]);
        assert_eq!(s.stack.peek(0), AbstractValue::Unknown);
    }

    #[test]
    fn call_havocs_only_return_area() {
        // mem[0x8000] = T; CALL with ret area (0, 0); MLOAD 0x8000 -> T.
        let s = run(&[
            0x61, 0xfa, 0xce, 0x61, 0x80, 0x00, 0x52, // store
            0x5f, 0x5f, 0x5f, 0x5f, 0x5f, 0x60, 0xaa, 0x61, 0xff, 0xff,
            0xf1, // CALL(gas=0xffff, to=0xaa, v=0, 0,0,0,0)
            0x50, // POP success
            0x61, 0x80, 0x00, 0x51,
        ]);
        assert_eq!(
            s.stack.peek(0),
            AbstractValue::Known(U256::from_u64(0xface))
        );
    }

    #[test]
    fn join_intersects_memory_facts() {
        let mut a = AbstractState::new();
        let mut b = AbstractState::new();
        for ins in disassemble(&[0x61, 0x11, 0x11, 0x61, 0x80, 0x00, 0x52]) {
            a.execute(&ins);
        }
        for ins in disassemble(&[0x61, 0x22, 0x22, 0x61, 0x80, 0x00, 0x52]) {
            b.execute(&ins);
        }
        assert!(a.join_from(&b)); // disagreeing fact dropped
        assert_eq!(a.tracked_words(), 0);
        // Idempotent afterwards.
        assert!(!a.join_from(&b));
    }

    #[test]
    fn join_keeps_agreeing_facts() {
        let code = [0x61, 0x33, 0x33, 0x61, 0x80, 0x00, 0x52];
        let mut a = AbstractState::new();
        let mut b = AbstractState::new();
        for ins in disassemble(&code) {
            a.execute(&ins);
            // b executes the same instruction stream.
        }
        for ins in disassemble(&code) {
            b.execute(&ins);
        }
        assert!(!a.join_from(&b));
        assert_eq!(a.tracked_words(), 1);
    }
}
