//! A concrete EVM interpreter for differential testing.
//!
//! This is not a consensus-grade EVM; it executes the instruction subset
//! emitted by the ScamDetect contract generators faithfully enough to
//! compare *observable effects* (storage writes, logs, value transfers,
//! return data, halt reason) between an original contract and its
//! obfuscated counterpart. The obfuscation property tests rely on it.

use crate::disasm::disassemble;
use crate::opcode::Opcode;
use crate::word::U256;
use std::collections::BTreeMap;

/// Why execution stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Halt {
    /// `STOP` or running off the end of code.
    Stop,
    /// `RETURN` with the returned bytes.
    Return(Vec<u8>),
    /// `REVERT` with the revert data.
    Revert(Vec<u8>),
    /// `INVALID`, an unassigned byte, or a malformed jump.
    Invalid,
    /// `SELFDESTRUCT` naming the beneficiary.
    SelfDestruct(U256),
    /// The step budget was exhausted (used to bound fuzzing).
    OutOfGas,
    /// Stack overflow/underflow beyond EVM limits.
    StackError,
}

/// A single emitted log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogRecord {
    /// Topic words.
    pub topics: Vec<U256>,
    /// Data bytes.
    pub data: Vec<u8>,
}

/// An external call made during execution (recorded, not executed).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallRecord {
    /// The call opcode used.
    pub kind: Opcode,
    /// Callee address word.
    pub target: U256,
    /// Value attached (zero for static/delegate calls).
    pub value: U256,
}

/// Transaction context supplied to an execution.
#[derive(Debug, Clone)]
pub struct TxContext {
    /// `CALLER`.
    pub caller: U256,
    /// `CALLVALUE`.
    pub callvalue: U256,
    /// Full calldata.
    pub calldata: Vec<u8>,
    /// `TIMESTAMP`.
    pub timestamp: u64,
    /// `NUMBER`.
    pub block_number: u64,
    /// `ADDRESS` (the executing contract).
    pub address: U256,
    /// `SELFBALANCE`.
    pub balance: U256,
}

impl Default for TxContext {
    fn default() -> Self {
        TxContext {
            caller: U256::from_u64(0xCA11E5),
            callvalue: U256::ZERO,
            calldata: Vec::new(),
            timestamp: 1_700_000_000,
            block_number: 19_000_000,
            address: U256::from_u64(0xC0DE),
            balance: U256::from_u64(1_000_000),
        }
    }
}

impl TxContext {
    /// Context with the given 4-byte selector plus ABI words as calldata.
    pub fn with_selector(selector: [u8; 4], args: &[U256]) -> Self {
        let mut calldata = selector.to_vec();
        for a in args {
            calldata.extend_from_slice(&a.to_be_bytes());
        }
        TxContext {
            calldata,
            ..TxContext::default()
        }
    }
}

/// The observable outcome of one execution: everything a chain explorer
/// could see. Two bytecodes are behaviourally equivalent on a context when
/// their outcomes are equal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Outcome {
    /// Why execution halted.
    pub halt: Halt,
    /// Final persistent storage (zero slots omitted).
    pub storage: BTreeMap<U256, U256>,
    /// Emitted logs, in order.
    pub logs: Vec<LogRecord>,
    /// External calls, in order.
    pub calls: Vec<CallRecord>,
}

/// Interpreter configuration.
#[derive(Debug, Clone)]
pub struct InterpConfig {
    /// Maximum executed instructions before [`Halt::OutOfGas`].
    pub step_limit: usize,
    /// Maximum memory size in bytes.
    pub memory_limit: usize,
}

impl Default for InterpConfig {
    fn default() -> Self {
        InterpConfig {
            step_limit: 200_000,
            memory_limit: 1 << 20,
        }
    }
}

/// Executes `code` in `ctx`, returning the observable [`Outcome`].
///
/// Storage starts from `initial_storage`. External calls are recorded and
/// report success (pushing 1) with empty return data — sufficient for the
/// generated corpus, which never depends on callee return payloads.
pub fn execute(
    code: &[u8],
    ctx: &TxContext,
    initial_storage: &BTreeMap<U256, U256>,
    config: &InterpConfig,
) -> Outcome {
    let instrs = disassemble(code);
    // Offset -> instruction index, and the JUMPDEST set.
    let mut at_offset: BTreeMap<usize, usize> = BTreeMap::new();
    for (i, ins) in instrs.iter().enumerate() {
        at_offset.insert(ins.offset, i);
    }

    let mut stack: Vec<U256> = Vec::new();
    let mut memory: Vec<u8> = Vec::new();
    let mut storage = initial_storage.clone();
    let mut tstorage: BTreeMap<U256, U256> = BTreeMap::new();
    let mut logs = Vec::new();
    let mut calls = Vec::new();
    let mut pc_idx = 0usize;
    let mut steps = 0usize;

    macro_rules! outcome {
        ($halt:expr) => {
            Outcome {
                halt: $halt,
                storage: storage
                    .iter()
                    .filter(|(_, v)| !v.is_zero())
                    .map(|(k, v)| (*k, *v))
                    .collect(),
                logs,
                calls,
            }
        };
    }

    macro_rules! pop {
        () => {
            match stack.pop() {
                Some(v) => v,
                None => return outcome!(Halt::StackError),
            }
        };
    }

    macro_rules! push {
        ($v:expr) => {{
            if stack.len() >= 1024 {
                return outcome!(Halt::StackError);
            }
            stack.push($v);
        }};
    }

    fn mem_read(memory: &mut Vec<u8>, limit: usize, off: usize, len: usize) -> Option<Vec<u8>> {
        let end = off.checked_add(len)?;
        if end > limit {
            return None;
        }
        if memory.len() < end {
            memory.resize(end, 0);
        }
        Some(memory[off..end].to_vec())
    }

    fn mem_write(memory: &mut Vec<u8>, limit: usize, off: usize, data: &[u8]) -> Option<()> {
        let end = off.checked_add(data.len())?;
        if end > limit {
            return None;
        }
        if memory.len() < end {
            memory.resize(end, 0);
        }
        memory[off..end].copy_from_slice(data);
        Some(())
    }

    while pc_idx < instrs.len() {
        steps += 1;
        if steps > config.step_limit {
            return outcome!(Halt::OutOfGas);
        }
        let ins = &instrs[pc_idx];
        let Some(op) = ins.opcode else {
            return outcome!(Halt::Invalid);
        };

        use Opcode::*;
        match op {
            STOP => return outcome!(Halt::Stop),
            ADD => {
                let (a, b) = (pop!(), pop!());
                push!(a.wrapping_add(&b));
            }
            MUL => {
                let (a, b) = (pop!(), pop!());
                push!(a.wrapping_mul(&b));
            }
            SUB => {
                let (a, b) = (pop!(), pop!());
                push!(a.wrapping_sub(&b));
            }
            DIV => {
                let (a, b) = (pop!(), pop!());
                // Supported for small operands; full 256-bit division is out
                // of scope for the generated corpus.
                let r = match (a.to_usize(), b.to_usize()) {
                    (Some(x), Some(y)) if y != 0 => U256::from_u64((x / y) as u64),
                    (_, Some(0)) => U256::ZERO,
                    _ => U256::ZERO,
                };
                push!(r);
            }
            MOD => {
                let (a, b) = (pop!(), pop!());
                let r = match (a.to_usize(), b.to_usize()) {
                    (Some(x), Some(y)) if y != 0 => U256::from_u64((x % y) as u64),
                    _ => U256::ZERO,
                };
                push!(r);
            }
            LT => {
                let (a, b) = (pop!(), pop!());
                push!(a.lt_word(&b));
            }
            GT => {
                let (a, b) = (pop!(), pop!());
                push!(a.gt_word(&b));
            }
            EQ => {
                let (a, b) = (pop!(), pop!());
                push!(a.eq_word(&b));
            }
            ISZERO => {
                let a = pop!();
                push!(a.iszero_word());
            }
            AND => {
                let (a, b) = (pop!(), pop!());
                push!(a.and(&b));
            }
            OR => {
                let (a, b) = (pop!(), pop!());
                push!(a.or(&b));
            }
            XOR => {
                let (a, b) = (pop!(), pop!());
                push!(a.xor(&b));
            }
            NOT => {
                let a = pop!();
                push!(a.not());
            }
            SHL => {
                let (s, v) = (pop!(), pop!());
                push!(match s.to_usize() {
                    Some(n) if n < 256 => v.shl(n as u32),
                    _ => U256::ZERO,
                });
            }
            SHR => {
                let (s, v) = (pop!(), pop!());
                push!(match s.to_usize() {
                    Some(n) if n < 256 => v.shr(n as u32),
                    _ => U256::ZERO,
                });
            }
            BYTE => {
                let (i, x) = (pop!(), pop!());
                let r = match i.to_usize() {
                    Some(n) if n < 32 => U256::from_u64(x.to_be_bytes()[n] as u64),
                    _ => U256::ZERO,
                };
                push!(r);
            }
            KECCAK256 => {
                // A stand-in mixing function: not the real keccak, but a
                // deterministic digest of the hashed memory range, which is
                // all differential testing needs.
                let (off, len) = (pop!(), pop!());
                let (off, len) = match (off.to_usize(), len.to_usize()) {
                    (Some(o), Some(l)) => (o, l),
                    _ => return outcome!(Halt::Invalid),
                };
                match mem_read(&mut memory, config.memory_limit, off, len) {
                    Some(bytes) => {
                        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
                        for b in bytes {
                            h ^= b as u64;
                            h = h.wrapping_mul(0x0000_0100_0000_01b3);
                        }
                        push!(U256::from_u64(h));
                    }
                    None => return outcome!(Halt::Invalid),
                }
            }
            ADDRESS => push!(ctx.address),
            BALANCE | SELFBALANCE => {
                if op == BALANCE {
                    let _who = pop!();
                }
                push!(ctx.balance);
            }
            ORIGIN | CALLER => push!(ctx.caller),
            CALLVALUE => push!(ctx.callvalue),
            CALLDATALOAD => {
                let off = pop!();
                let mut word = [0u8; 32];
                if let Some(o) = off.to_usize() {
                    for (i, byte) in word.iter_mut().enumerate() {
                        *byte = ctx.calldata.get(o + i).copied().unwrap_or(0);
                    }
                }
                push!(U256::from_be_bytes(&word));
            }
            CALLDATASIZE => push!(U256::from_u64(ctx.calldata.len() as u64)),
            CALLDATACOPY => {
                let (dst, src, len) = (pop!(), pop!(), pop!());
                match (dst.to_usize(), src.to_usize(), len.to_usize()) {
                    (Some(d), Some(s), Some(l)) => {
                        let mut data = vec![0u8; l];
                        for (i, byte) in data.iter_mut().enumerate() {
                            *byte = ctx.calldata.get(s + i).copied().unwrap_or(0);
                        }
                        if mem_write(&mut memory, config.memory_limit, d, &data).is_none() {
                            return outcome!(Halt::Invalid);
                        }
                    }
                    _ => return outcome!(Halt::Invalid),
                }
            }
            CODESIZE => push!(U256::from_u64(code.len() as u64)),
            GASPRICE | BASEFEE | BLOBBASEFEE => push!(U256::from_u64(1)),
            TIMESTAMP => push!(U256::from_u64(ctx.timestamp)),
            NUMBER => push!(U256::from_u64(ctx.block_number)),
            CHAINID => push!(U256::from_u64(1)),
            COINBASE | PREVRANDAO | BLOCKHASH | GASLIMIT => {
                if op == BLOCKHASH {
                    let _n = pop!();
                }
                push!(U256::from_u64(0xbeef));
            }
            POP => {
                let _ = pop!();
            }
            MLOAD => {
                let off = pop!();
                match off
                    .to_usize()
                    .and_then(|o| mem_read(&mut memory, config.memory_limit, o, 32))
                {
                    Some(bytes) => push!(U256::from_be_bytes(&bytes)),
                    None => return outcome!(Halt::Invalid),
                }
            }
            MSTORE => {
                let (off, val) = (pop!(), pop!());
                match off.to_usize() {
                    Some(o) => {
                        if mem_write(&mut memory, config.memory_limit, o, &val.to_be_bytes())
                            .is_none()
                        {
                            return outcome!(Halt::Invalid);
                        }
                    }
                    None => return outcome!(Halt::Invalid),
                }
            }
            MSTORE8 => {
                let (off, val) = (pop!(), pop!());
                match off.to_usize() {
                    Some(o) => {
                        let b = [val.to_be_bytes()[31]];
                        if mem_write(&mut memory, config.memory_limit, o, &b).is_none() {
                            return outcome!(Halt::Invalid);
                        }
                    }
                    None => return outcome!(Halt::Invalid),
                }
            }
            MSIZE => push!(U256::from_u64(memory.len() as u64)),
            SLOAD => {
                let k = pop!();
                push!(storage.get(&k).copied().unwrap_or(U256::ZERO));
            }
            SSTORE => {
                let (k, v) = (pop!(), pop!());
                storage.insert(k, v);
            }
            TLOAD => {
                let k = pop!();
                push!(tstorage.get(&k).copied().unwrap_or(U256::ZERO));
            }
            TSTORE => {
                let (k, v) = (pop!(), pop!());
                tstorage.insert(k, v);
            }
            JUMP => {
                let target = pop!();
                match jump_to(&instrs, &at_offset, target) {
                    Some(idx) => {
                        pc_idx = idx;
                        continue;
                    }
                    None => return outcome!(Halt::Invalid),
                }
            }
            JUMPI => {
                let (target, cond) = (pop!(), pop!());
                if !cond.is_zero() {
                    match jump_to(&instrs, &at_offset, target) {
                        Some(idx) => {
                            pc_idx = idx;
                            continue;
                        }
                        None => return outcome!(Halt::Invalid),
                    }
                }
            }
            PC => push!(U256::from_u64(ins.offset as u64)),
            GAS => push!(U256::from_u64((config.step_limit - steps) as u64)),
            JUMPDEST => {}
            _ if op.is_push() => {
                let v = ins.push_value().expect("push has value");
                push!(v);
            }
            _ if (0x80..=0x8f).contains(&op.byte()) => {
                let n = (op.byte() - 0x80) as usize;
                if stack.len() <= n {
                    return outcome!(Halt::StackError);
                }
                let v = stack[stack.len() - 1 - n];
                push!(v);
            }
            _ if (0x90..=0x9f).contains(&op.byte()) => {
                let n = (op.byte() - 0x90 + 1) as usize;
                let len = stack.len();
                if len <= n {
                    return outcome!(Halt::StackError);
                }
                stack.swap(len - 1, len - 1 - n);
            }
            LOG0 | LOG1 | LOG2 | LOG3 | LOG4 => {
                let ntopics = (op.byte() - 0xa0) as usize;
                let (off, len) = (pop!(), pop!());
                let mut topics = Vec::with_capacity(ntopics);
                for _ in 0..ntopics {
                    topics.push(pop!());
                }
                let data = match (off.to_usize(), len.to_usize()) {
                    (Some(o), Some(l)) => match mem_read(&mut memory, config.memory_limit, o, l) {
                        Some(d) => d,
                        None => return outcome!(Halt::Invalid),
                    },
                    _ => return outcome!(Halt::Invalid),
                };
                logs.push(LogRecord { topics, data });
            }
            CALL | CALLCODE => {
                let (_gas, target, value) = (pop!(), pop!(), pop!());
                let (_ao, _al, _ro, _rl) = (pop!(), pop!(), pop!(), pop!());
                calls.push(CallRecord {
                    kind: op,
                    target,
                    value,
                });
                push!(U256::ONE); // success
            }
            DELEGATECALL | STATICCALL => {
                let (_gas, target) = (pop!(), pop!());
                let (_ao, _al, _ro, _rl) = (pop!(), pop!(), pop!(), pop!());
                calls.push(CallRecord {
                    kind: op,
                    target,
                    value: U256::ZERO,
                });
                push!(U256::ONE);
            }
            CREATE | CREATE2 => {
                let _v = pop!();
                let _o = pop!();
                let _l = pop!();
                if op == CREATE2 {
                    let _salt = pop!();
                }
                calls.push(CallRecord {
                    kind: op,
                    target: U256::ZERO,
                    value: U256::ZERO,
                });
                push!(U256::from_u64(0xFACADE)); // deterministic fake address
            }
            RETURN | REVERT => {
                let (off, len) = (pop!(), pop!());
                let data = match (off.to_usize(), len.to_usize()) {
                    (Some(o), Some(l)) => match mem_read(&mut memory, config.memory_limit, o, l) {
                        Some(d) => d,
                        None => return outcome!(Halt::Invalid),
                    },
                    _ => return outcome!(Halt::Invalid),
                };
                return outcome!(if op == RETURN {
                    Halt::Return(data)
                } else {
                    Halt::Revert(data)
                });
            }
            INVALID => return outcome!(Halt::Invalid),
            SELFDESTRUCT => {
                let beneficiary = pop!();
                return outcome!(Halt::SelfDestruct(beneficiary));
            }
            // Remaining environment opcodes the corpus does not use.
            _ => {
                for _ in 0..op.stack_pops() {
                    let _ = pop!();
                }
                for _ in 0..op.stack_pushes() {
                    push!(U256::ZERO);
                }
            }
        }
        pc_idx += 1;
    }
    outcome!(Halt::Stop)
}

fn jump_to(
    instrs: &[crate::disasm::Instruction],
    at_offset: &BTreeMap<usize, usize>,
    target: U256,
) -> Option<usize> {
    let off = target.to_usize()?;
    let idx = *at_offset.get(&off)?;
    (instrs[idx].opcode == Some(Opcode::JUMPDEST)).then_some(idx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::AsmProgram;

    fn run(p: &AsmProgram, ctx: &TxContext) -> Outcome {
        execute(
            &p.assemble().unwrap(),
            ctx,
            &BTreeMap::new(),
            &InterpConfig::default(),
        )
    }

    #[test]
    fn arithmetic_and_storage() {
        let mut p = AsmProgram::new();
        // storage[7] = 40 + 2
        p.push_value(2).push_value(40).op(Opcode::ADD);
        p.push_value(7).op(Opcode::SSTORE);
        p.op(Opcode::STOP);
        let out = run(&p, &TxContext::default());
        assert_eq!(out.halt, Halt::Stop);
        assert_eq!(
            out.storage.get(&U256::from_u64(7)),
            Some(&U256::from_u64(42))
        );
    }

    #[test]
    fn conditional_branching_on_callvalue() {
        let mut p = AsmProgram::new();
        let rich = p.new_label();
        p.op(Opcode::CALLVALUE);
        p.jumpi_to(rich);
        p.push_value(0).push_value(1).op(Opcode::SSTORE); // storage[1] = 0
        p.op(Opcode::STOP);
        p.place_label(rich);
        p.push_value(99).push_value(1).op(Opcode::SSTORE); // storage[1] = 99
        p.op(Opcode::STOP);

        let poor = run(&p, &TxContext::default());
        assert!(poor.storage.is_empty()); // zero write filtered

        let ctx = TxContext {
            callvalue: U256::from_u64(5),
            ..TxContext::default()
        };
        let rich_out = run(&p, &ctx);
        assert_eq!(
            rich_out.storage.get(&U256::from_u64(1)),
            Some(&U256::from_u64(99))
        );
    }

    #[test]
    fn loop_sums_to_storage() {
        // for (i = 5; i != 0; i--) acc += i;  storage[0] = acc (15)
        let mut p = AsmProgram::new();
        let top = p.new_label();
        let done = p.new_label();
        p.push_value(0); // acc
        p.push_value(5); // i   stack: [acc, i]
        p.place_label(top);
        p.op(Opcode::DUP1); // [acc, i, i]
        p.op(Opcode::ISZERO);
        p.jumpi_to(done); // [acc, i]
        p.op(Opcode::DUP1); // [acc, i, i]
        p.op(Opcode::SWAP2); // [i, i, acc]
        p.op(Opcode::ADD); // [i, acc']
        p.op(Opcode::SWAP1); // [acc', i]
        p.push_value(1);
        p.op(Opcode::SWAP1); // [acc', 1, i]
        p.op(Opcode::SUB); // [acc', i-1]
        p.jump_to(top);
        p.place_label(done);
        p.op(Opcode::POP); // [acc]
        p.push_value(0); // [acc, 0]
        p.op(Opcode::SSTORE);
        p.op(Opcode::STOP);
        let out = run(&p, &TxContext::default());
        assert_eq!(out.halt, Halt::Stop);
        assert_eq!(
            out.storage.get(&U256::ZERO),
            Some(&U256::from_u64(15)),
            "{out:?}"
        );
    }

    #[test]
    fn memory_and_return() {
        let mut p = AsmProgram::new();
        p.push_value(0xabcd).push_value(0).op(Opcode::MSTORE);
        p.push_value(32).push_value(0).op(Opcode::RETURN);
        let out = run(&p, &TxContext::default());
        match out.halt {
            Halt::Return(data) => {
                assert_eq!(data.len(), 32);
                assert_eq!(data[30], 0xab);
                assert_eq!(data[31], 0xcd);
            }
            other => panic!("expected return, got {other:?}"),
        }
    }

    #[test]
    fn calldataload_selector() {
        let mut p = AsmProgram::new();
        // load word 0, shr 224 -> selector
        p.push_value(0).op(Opcode::CALLDATALOAD);
        p.push_value(224).op(Opcode::SHR);
        p.push_value(0).op(Opcode::SSTORE);
        p.op(Opcode::STOP);
        let ctx = TxContext::with_selector([0xde, 0xad, 0xbe, 0xef], &[]);
        let out = run(&p, &ctx);
        assert_eq!(
            out.storage.get(&U256::ZERO),
            Some(&U256::from_u64(0xdeadbeef))
        );
    }

    #[test]
    fn logs_and_calls_recorded() {
        let mut p = AsmProgram::new();
        // LOG1 topic=7 data=mem[0..4]
        p.push_value(7); // topic
        p.push_value(4); // len
        p.push_value(0); // off
        p.op(Opcode::LOG1);
        // CALL gas=100 target=0xAA value=5 argOff/Len retOff/Len = 0
        p.push_value(0).push_value(0).push_value(0).push_value(0);
        p.push_value(5).push_value(0xAA).push_value(100);
        p.op(Opcode::CALL);
        p.op(Opcode::POP);
        p.op(Opcode::STOP);
        let out = run(&p, &TxContext::default());
        assert_eq!(out.logs.len(), 1);
        assert_eq!(out.logs[0].topics, vec![U256::from_u64(7)]);
        assert_eq!(out.calls.len(), 1);
        assert_eq!(out.calls[0].value, U256::from_u64(5));
        assert_eq!(out.calls[0].target, U256::from_u64(0xAA));
    }

    #[test]
    fn invalid_jump_halts_invalid() {
        let mut p = AsmProgram::new();
        p.push_value(1).op(Opcode::JUMP);
        p.op(Opcode::STOP);
        assert_eq!(run(&p, &TxContext::default()).halt, Halt::Invalid);
    }

    #[test]
    fn selfdestruct_reports_beneficiary() {
        let mut p = AsmProgram::new();
        p.op(Opcode::CALLER);
        p.op(Opcode::SELFDESTRUCT);
        let out = run(&p, &TxContext::default());
        assert_eq!(out.halt, Halt::SelfDestruct(TxContext::default().caller));
    }

    #[test]
    fn infinite_loop_hits_step_limit() {
        let mut p = AsmProgram::new();
        let top = p.new_label();
        p.place_label(top);
        p.jump_to(top);
        let out = execute(
            &p.assemble().unwrap(),
            &TxContext::default(),
            &BTreeMap::new(),
            &InterpConfig {
                step_limit: 1000,
                ..InterpConfig::default()
            },
        );
        assert_eq!(out.halt, Halt::OutOfGas);
    }

    #[test]
    fn stack_underflow_detected() {
        let mut p = AsmProgram::new();
        p.op(Opcode::ADD);
        assert_eq!(run(&p, &TxContext::default()).halt, Halt::StackError);
    }

    #[test]
    fn revert_carries_data() {
        let mut p = AsmProgram::new();
        p.push_value(0).push_value(0).op(Opcode::REVERT);
        assert_eq!(
            run(&p, &TxContext::default()).halt,
            Halt::Revert(Vec::new())
        );
    }
}
