//! The complete EVM opcode table (Shanghai/Cancun instruction set).

/// Coarse semantic category of an opcode.
///
/// Categories are the vocabulary shared with the platform-agnostic IR: the
/// WASM frontend maps its instructions into the same set, which is what
/// makes one detector transferable across runtimes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OpCategory {
    /// ADD, MUL, EXP, …
    Arithmetic,
    /// LT, GT, EQ, ISZERO, …
    Comparison,
    /// AND, OR, XOR, SHL, …
    Bitwise,
    /// KECCAK256.
    Crypto,
    /// CALLER, CALLVALUE, CALLDATALOAD, …
    Environment,
    /// TIMESTAMP, NUMBER, CHAINID, …
    Block,
    /// POP, DUP*, SWAP*.
    Stack,
    /// PUSH0‥PUSH32.
    Push,
    /// MLOAD, MSTORE, MCOPY, …
    Memory,
    /// SLOAD, SSTORE, TLOAD, TSTORE.
    Storage,
    /// JUMP, JUMPI, JUMPDEST, PC, GAS.
    Flow,
    /// LOG0‥LOG4.
    Log,
    /// CALL, CALLCODE, DELEGATECALL, STATICCALL.
    Call,
    /// CREATE, CREATE2.
    Create,
    /// STOP, RETURN, REVERT, INVALID, SELFDESTRUCT.
    Terminate,
}

macro_rules! opcodes {
    ($( $name:ident = $byte:literal, $mnem:literal, $pops:literal, $pushes:literal, $imm:literal, $cat:ident; )*) => {
        /// An EVM opcode.
        ///
        /// Every opcode assigned in the Shanghai/Cancun instruction set is a
        /// variant; unassigned bytes decode to `None` via
        /// [`Opcode::from_byte`] and are treated as `INVALID` by the
        /// disassembler.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        #[repr(u8)]
        #[allow(missing_docs)] // variant names mirror the EVM mnemonics
        pub enum Opcode {
            $( $name = $byte, )*
        }

        impl Opcode {
            /// Decodes a byte into an opcode, `None` for unassigned bytes.
            pub fn from_byte(b: u8) -> Option<Opcode> {
                match b {
                    $( $byte => Some(Opcode::$name), )*
                    _ => None,
                }
            }

            /// Canonical mnemonic, e.g. `"CALLDATALOAD"`.
            pub fn mnemonic(self) -> &'static str {
                match self { $( Opcode::$name => $mnem, )* }
            }

            /// Number of stack items consumed.
            pub fn stack_pops(self) -> usize {
                match self { $( Opcode::$name => $pops, )* }
            }

            /// Number of stack items produced.
            pub fn stack_pushes(self) -> usize {
                match self { $( Opcode::$name => $pushes, )* }
            }

            /// Length in bytes of the inline immediate (nonzero only for
            /// `PUSH1`‥`PUSH32`).
            pub fn immediate_len(self) -> usize {
                match self { $( Opcode::$name => $imm, )* }
            }

            /// Semantic category.
            pub fn category(self) -> OpCategory {
                match self { $( Opcode::$name => OpCategory::$cat, )* }
            }

            /// All assigned opcodes, in byte order.
            pub fn all() -> &'static [Opcode] {
                &[ $( Opcode::$name, )* ]
            }
        }
    };
}

opcodes! {
    STOP = 0x00, "STOP", 0, 0, 0, Terminate;
    ADD = 0x01, "ADD", 2, 1, 0, Arithmetic;
    MUL = 0x02, "MUL", 2, 1, 0, Arithmetic;
    SUB = 0x03, "SUB", 2, 1, 0, Arithmetic;
    DIV = 0x04, "DIV", 2, 1, 0, Arithmetic;
    SDIV = 0x05, "SDIV", 2, 1, 0, Arithmetic;
    MOD = 0x06, "MOD", 2, 1, 0, Arithmetic;
    SMOD = 0x07, "SMOD", 2, 1, 0, Arithmetic;
    ADDMOD = 0x08, "ADDMOD", 3, 1, 0, Arithmetic;
    MULMOD = 0x09, "MULMOD", 3, 1, 0, Arithmetic;
    EXP = 0x0a, "EXP", 2, 1, 0, Arithmetic;
    SIGNEXTEND = 0x0b, "SIGNEXTEND", 2, 1, 0, Arithmetic;
    LT = 0x10, "LT", 2, 1, 0, Comparison;
    GT = 0x11, "GT", 2, 1, 0, Comparison;
    SLT = 0x12, "SLT", 2, 1, 0, Comparison;
    SGT = 0x13, "SGT", 2, 1, 0, Comparison;
    EQ = 0x14, "EQ", 2, 1, 0, Comparison;
    ISZERO = 0x15, "ISZERO", 1, 1, 0, Comparison;
    AND = 0x16, "AND", 2, 1, 0, Bitwise;
    OR = 0x17, "OR", 2, 1, 0, Bitwise;
    XOR = 0x18, "XOR", 2, 1, 0, Bitwise;
    NOT = 0x19, "NOT", 1, 1, 0, Bitwise;
    BYTE = 0x1a, "BYTE", 2, 1, 0, Bitwise;
    SHL = 0x1b, "SHL", 2, 1, 0, Bitwise;
    SHR = 0x1c, "SHR", 2, 1, 0, Bitwise;
    SAR = 0x1d, "SAR", 2, 1, 0, Bitwise;
    KECCAK256 = 0x20, "KECCAK256", 2, 1, 0, Crypto;
    ADDRESS = 0x30, "ADDRESS", 0, 1, 0, Environment;
    BALANCE = 0x31, "BALANCE", 1, 1, 0, Environment;
    ORIGIN = 0x32, "ORIGIN", 0, 1, 0, Environment;
    CALLER = 0x33, "CALLER", 0, 1, 0, Environment;
    CALLVALUE = 0x34, "CALLVALUE", 0, 1, 0, Environment;
    CALLDATALOAD = 0x35, "CALLDATALOAD", 1, 1, 0, Environment;
    CALLDATASIZE = 0x36, "CALLDATASIZE", 0, 1, 0, Environment;
    CALLDATACOPY = 0x37, "CALLDATACOPY", 3, 0, 0, Environment;
    CODESIZE = 0x38, "CODESIZE", 0, 1, 0, Environment;
    CODECOPY = 0x39, "CODECOPY", 3, 0, 0, Environment;
    GASPRICE = 0x3a, "GASPRICE", 0, 1, 0, Environment;
    EXTCODESIZE = 0x3b, "EXTCODESIZE", 1, 1, 0, Environment;
    EXTCODECOPY = 0x3c, "EXTCODECOPY", 4, 0, 0, Environment;
    RETURNDATASIZE = 0x3d, "RETURNDATASIZE", 0, 1, 0, Environment;
    RETURNDATACOPY = 0x3e, "RETURNDATACOPY", 3, 0, 0, Environment;
    EXTCODEHASH = 0x3f, "EXTCODEHASH", 1, 1, 0, Environment;
    BLOCKHASH = 0x40, "BLOCKHASH", 1, 1, 0, Block;
    COINBASE = 0x41, "COINBASE", 0, 1, 0, Block;
    TIMESTAMP = 0x42, "TIMESTAMP", 0, 1, 0, Block;
    NUMBER = 0x43, "NUMBER", 0, 1, 0, Block;
    PREVRANDAO = 0x44, "PREVRANDAO", 0, 1, 0, Block;
    GASLIMIT = 0x45, "GASLIMIT", 0, 1, 0, Block;
    CHAINID = 0x46, "CHAINID", 0, 1, 0, Block;
    SELFBALANCE = 0x47, "SELFBALANCE", 0, 1, 0, Environment;
    BASEFEE = 0x48, "BASEFEE", 0, 1, 0, Block;
    BLOBHASH = 0x49, "BLOBHASH", 1, 1, 0, Block;
    BLOBBASEFEE = 0x4a, "BLOBBASEFEE", 0, 1, 0, Block;
    POP = 0x50, "POP", 1, 0, 0, Stack;
    MLOAD = 0x51, "MLOAD", 1, 1, 0, Memory;
    MSTORE = 0x52, "MSTORE", 2, 0, 0, Memory;
    MSTORE8 = 0x53, "MSTORE8", 2, 0, 0, Memory;
    SLOAD = 0x54, "SLOAD", 1, 1, 0, Storage;
    SSTORE = 0x55, "SSTORE", 2, 0, 0, Storage;
    JUMP = 0x56, "JUMP", 1, 0, 0, Flow;
    JUMPI = 0x57, "JUMPI", 2, 0, 0, Flow;
    PC = 0x58, "PC", 0, 1, 0, Flow;
    MSIZE = 0x59, "MSIZE", 0, 1, 0, Memory;
    GAS = 0x5a, "GAS", 0, 1, 0, Flow;
    JUMPDEST = 0x5b, "JUMPDEST", 0, 0, 0, Flow;
    TLOAD = 0x5c, "TLOAD", 1, 1, 0, Storage;
    TSTORE = 0x5d, "TSTORE", 2, 0, 0, Storage;
    MCOPY = 0x5e, "MCOPY", 3, 0, 0, Memory;
    PUSH0 = 0x5f, "PUSH0", 0, 1, 0, Push;
    PUSH1 = 0x60, "PUSH1", 0, 1, 1, Push;
    PUSH2 = 0x61, "PUSH2", 0, 1, 2, Push;
    PUSH3 = 0x62, "PUSH3", 0, 1, 3, Push;
    PUSH4 = 0x63, "PUSH4", 0, 1, 4, Push;
    PUSH5 = 0x64, "PUSH5", 0, 1, 5, Push;
    PUSH6 = 0x65, "PUSH6", 0, 1, 6, Push;
    PUSH7 = 0x66, "PUSH7", 0, 1, 7, Push;
    PUSH8 = 0x67, "PUSH8", 0, 1, 8, Push;
    PUSH9 = 0x68, "PUSH9", 0, 1, 9, Push;
    PUSH10 = 0x69, "PUSH10", 0, 1, 10, Push;
    PUSH11 = 0x6a, "PUSH11", 0, 1, 11, Push;
    PUSH12 = 0x6b, "PUSH12", 0, 1, 12, Push;
    PUSH13 = 0x6c, "PUSH13", 0, 1, 13, Push;
    PUSH14 = 0x6d, "PUSH14", 0, 1, 14, Push;
    PUSH15 = 0x6e, "PUSH15", 0, 1, 15, Push;
    PUSH16 = 0x6f, "PUSH16", 0, 1, 16, Push;
    PUSH17 = 0x70, "PUSH17", 0, 1, 17, Push;
    PUSH18 = 0x71, "PUSH18", 0, 1, 18, Push;
    PUSH19 = 0x72, "PUSH19", 0, 1, 19, Push;
    PUSH20 = 0x73, "PUSH20", 0, 1, 20, Push;
    PUSH21 = 0x74, "PUSH21", 0, 1, 21, Push;
    PUSH22 = 0x75, "PUSH22", 0, 1, 22, Push;
    PUSH23 = 0x76, "PUSH23", 0, 1, 23, Push;
    PUSH24 = 0x77, "PUSH24", 0, 1, 24, Push;
    PUSH25 = 0x78, "PUSH25", 0, 1, 25, Push;
    PUSH26 = 0x79, "PUSH26", 0, 1, 26, Push;
    PUSH27 = 0x7a, "PUSH27", 0, 1, 27, Push;
    PUSH28 = 0x7b, "PUSH28", 0, 1, 28, Push;
    PUSH29 = 0x7c, "PUSH29", 0, 1, 29, Push;
    PUSH30 = 0x7d, "PUSH30", 0, 1, 30, Push;
    PUSH31 = 0x7e, "PUSH31", 0, 1, 31, Push;
    PUSH32 = 0x7f, "PUSH32", 0, 1, 32, Push;
    DUP1 = 0x80, "DUP1", 1, 2, 0, Stack;
    DUP2 = 0x81, "DUP2", 2, 3, 0, Stack;
    DUP3 = 0x82, "DUP3", 3, 4, 0, Stack;
    DUP4 = 0x83, "DUP4", 4, 5, 0, Stack;
    DUP5 = 0x84, "DUP5", 5, 6, 0, Stack;
    DUP6 = 0x85, "DUP6", 6, 7, 0, Stack;
    DUP7 = 0x86, "DUP7", 7, 8, 0, Stack;
    DUP8 = 0x87, "DUP8", 8, 9, 0, Stack;
    DUP9 = 0x88, "DUP9", 9, 10, 0, Stack;
    DUP10 = 0x89, "DUP10", 10, 11, 0, Stack;
    DUP11 = 0x8a, "DUP11", 11, 12, 0, Stack;
    DUP12 = 0x8b, "DUP12", 12, 13, 0, Stack;
    DUP13 = 0x8c, "DUP13", 13, 14, 0, Stack;
    DUP14 = 0x8d, "DUP14", 14, 15, 0, Stack;
    DUP15 = 0x8e, "DUP15", 15, 16, 0, Stack;
    DUP16 = 0x8f, "DUP16", 16, 17, 0, Stack;
    SWAP1 = 0x90, "SWAP1", 2, 2, 0, Stack;
    SWAP2 = 0x91, "SWAP2", 3, 3, 0, Stack;
    SWAP3 = 0x92, "SWAP3", 4, 4, 0, Stack;
    SWAP4 = 0x93, "SWAP4", 5, 5, 0, Stack;
    SWAP5 = 0x94, "SWAP5", 6, 6, 0, Stack;
    SWAP6 = 0x95, "SWAP6", 7, 7, 0, Stack;
    SWAP7 = 0x96, "SWAP7", 8, 8, 0, Stack;
    SWAP8 = 0x97, "SWAP8", 9, 9, 0, Stack;
    SWAP9 = 0x98, "SWAP9", 10, 10, 0, Stack;
    SWAP10 = 0x99, "SWAP10", 11, 11, 0, Stack;
    SWAP11 = 0x9a, "SWAP11", 12, 12, 0, Stack;
    SWAP12 = 0x9b, "SWAP12", 13, 13, 0, Stack;
    SWAP13 = 0x9c, "SWAP13", 14, 14, 0, Stack;
    SWAP14 = 0x9d, "SWAP14", 15, 15, 0, Stack;
    SWAP15 = 0x9e, "SWAP15", 16, 16, 0, Stack;
    SWAP16 = 0x9f, "SWAP16", 17, 17, 0, Stack;
    LOG0 = 0xa0, "LOG0", 2, 0, 0, Log;
    LOG1 = 0xa1, "LOG1", 3, 0, 0, Log;
    LOG2 = 0xa2, "LOG2", 4, 0, 0, Log;
    LOG3 = 0xa3, "LOG3", 5, 0, 0, Log;
    LOG4 = 0xa4, "LOG4", 6, 0, 0, Log;
    CREATE = 0xf0, "CREATE", 3, 1, 0, Create;
    CALL = 0xf1, "CALL", 7, 1, 0, Call;
    CALLCODE = 0xf2, "CALLCODE", 7, 1, 0, Call;
    RETURN = 0xf3, "RETURN", 2, 0, 0, Terminate;
    DELEGATECALL = 0xf4, "DELEGATECALL", 6, 1, 0, Call;
    CREATE2 = 0xf5, "CREATE2", 4, 1, 0, Create;
    STATICCALL = 0xfa, "STATICCALL", 6, 1, 0, Call;
    REVERT = 0xfd, "REVERT", 2, 0, 0, Terminate;
    INVALID = 0xfe, "INVALID", 0, 0, 0, Terminate;
    SELFDESTRUCT = 0xff, "SELFDESTRUCT", 1, 0, 0, Terminate;
}

impl Opcode {
    /// Byte value of this opcode.
    #[inline]
    pub fn byte(self) -> u8 {
        self as u8
    }

    /// `true` for PUSH0‥PUSH32.
    pub fn is_push(self) -> bool {
        matches!(self.category(), OpCategory::Push)
    }

    /// `true` for opcodes that end a basic block (unconditional control
    /// transfer or halt): JUMP, STOP, RETURN, REVERT, INVALID, SELFDESTRUCT.
    pub fn is_block_terminator(self) -> bool {
        matches!(
            self,
            Opcode::JUMP
                | Opcode::STOP
                | Opcode::RETURN
                | Opcode::REVERT
                | Opcode::INVALID
                | Opcode::SELFDESTRUCT
        )
    }

    /// `true` for opcodes that halt execution (no successor at all).
    pub fn is_halt(self) -> bool {
        matches!(
            self,
            Opcode::STOP | Opcode::RETURN | Opcode::REVERT | Opcode::INVALID | Opcode::SELFDESTRUCT
        )
    }

    /// `true` for JUMP and JUMPI.
    pub fn is_jump(self) -> bool {
        matches!(self, Opcode::JUMP | Opcode::JUMPI)
    }

    /// The `PUSHn` opcode carrying an `n`-byte immediate.
    ///
    /// # Panics
    ///
    /// Panics if `n > 32`.
    pub fn push_n(n: usize) -> Opcode {
        assert!(n <= 32, "push_n: EVM supports PUSH0..PUSH32, got {n}");
        Opcode::from_byte(0x5f + n as u8).expect("push opcodes are contiguous")
    }

    /// The `DUPn` opcode (`1 ..= 16`).
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= n <= 16`.
    pub fn dup_n(n: usize) -> Opcode {
        assert!((1..=16).contains(&n), "dup_n: n must be 1..=16, got {n}");
        Opcode::from_byte(0x80 + (n as u8 - 1)).expect("dup opcodes are contiguous")
    }

    /// The `SWAPn` opcode (`1 ..= 16`).
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= n <= 16`.
    pub fn swap_n(n: usize) -> Opcode {
        assert!((1..=16).contains(&n), "swap_n: n must be 1..=16, got {n}");
        Opcode::from_byte(0x90 + (n as u8 - 1)).expect("swap opcodes are contiguous")
    }
}

impl std::fmt::Display for Opcode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_assigned_bytes() {
        for &op in Opcode::all() {
            assert_eq!(Opcode::from_byte(op.byte()), Some(op));
        }
        assert_eq!(Opcode::all().len(), 149);
    }

    #[test]
    fn unassigned_bytes_decode_to_none() {
        for b in [0x0cu8, 0x0f, 0x1e, 0x21, 0x4b, 0xa5, 0xef, 0xfb] {
            assert_eq!(Opcode::from_byte(b), None, "byte {b:#x}");
        }
    }

    #[test]
    fn push_immediate_lengths() {
        assert_eq!(Opcode::PUSH0.immediate_len(), 0);
        assert_eq!(Opcode::PUSH1.immediate_len(), 1);
        assert_eq!(Opcode::PUSH32.immediate_len(), 32);
        assert_eq!(Opcode::ADD.immediate_len(), 0);
        assert!(Opcode::PUSH7.is_push());
        assert!(!Opcode::POP.is_push());
    }

    #[test]
    fn constructors() {
        assert_eq!(Opcode::push_n(0), Opcode::PUSH0);
        assert_eq!(Opcode::push_n(4), Opcode::PUSH4);
        assert_eq!(Opcode::push_n(32), Opcode::PUSH32);
        assert_eq!(Opcode::dup_n(1), Opcode::DUP1);
        assert_eq!(Opcode::dup_n(16), Opcode::DUP16);
        assert_eq!(Opcode::swap_n(3), Opcode::SWAP3);
    }

    #[test]
    #[should_panic(expected = "push_n")]
    fn push_n_out_of_range() {
        let _ = Opcode::push_n(33);
    }

    #[test]
    fn terminators_and_jumps() {
        assert!(Opcode::JUMP.is_block_terminator());
        assert!(Opcode::RETURN.is_block_terminator());
        assert!(!Opcode::JUMPI.is_block_terminator()); // has fall-through
        assert!(Opcode::JUMPI.is_jump());
        assert!(Opcode::SELFDESTRUCT.is_halt());
        assert!(!Opcode::JUMP.is_halt());
    }

    #[test]
    fn stack_effects_match_spec_samples() {
        assert_eq!(Opcode::ADD.stack_pops(), 2);
        assert_eq!(Opcode::ADD.stack_pushes(), 1);
        assert_eq!(Opcode::CALL.stack_pops(), 7);
        assert_eq!(Opcode::DUP3.stack_pops(), 3);
        assert_eq!(Opcode::DUP3.stack_pushes(), 4);
        assert_eq!(Opcode::SWAP2.stack_pops(), 3);
        assert_eq!(Opcode::SWAP2.stack_pushes(), 3);
        assert_eq!(Opcode::LOG4.stack_pops(), 6);
    }

    #[test]
    fn categories_sampled() {
        assert_eq!(Opcode::SSTORE.category(), OpCategory::Storage);
        assert_eq!(Opcode::DELEGATECALL.category(), OpCategory::Call);
        assert_eq!(Opcode::TIMESTAMP.category(), OpCategory::Block);
        assert_eq!(Opcode::KECCAK256.category(), OpCategory::Crypto);
        assert_eq!(Opcode::PUSH20.category(), OpCategory::Push);
    }

    #[test]
    fn display_uses_mnemonic() {
        assert_eq!(Opcode::CALLDATALOAD.to_string(), "CALLDATALOAD");
    }
}
