//! Function-selector extraction from dispatcher bytecode.
//!
//! Solidity-style dispatchers compare the first four calldata bytes against
//! each function selector (`DUP1 PUSH4 <sel> EQ PUSH2 <dst> JUMPI …`).
//! Extracted selectors feed dataset statistics and give baseline detectors
//! an interface-shape feature.

use crate::disasm::{disassemble, Instruction};
use crate::opcode::Opcode;

/// A 4-byte function selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Selector(pub [u8; 4]);

impl Selector {
    /// The selector as a big-endian `u32`.
    pub fn as_u32(self) -> u32 {
        u32::from_be_bytes(self.0)
    }
}

impl std::fmt::Display for Selector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "0x{:02x}{:02x}{:02x}{:02x}",
            self.0[0], self.0[1], self.0[2], self.0[3]
        )
    }
}

/// Extracts the function selectors compared in `code`'s dispatcher.
///
/// The heuristic collects every `PUSH4 <imm>` that is followed within three
/// instructions by an `EQ` (or preceded by one within the window, covering
/// `PUSH4; DUP2; EQ` reorderings). This matches how Solidity, Vyper and
/// hand-written dispatchers compare selectors, while ignoring `PUSH4`s used
/// as masks or constants elsewhere.
///
/// # Examples
///
/// ```
/// use scamdetect_evm::{asm::AsmProgram, opcode::Opcode, selector::extract_selectors};
///
/// # fn main() -> Result<(), scamdetect_evm::EvmError> {
/// let mut p = AsmProgram::new();
/// let f = p.new_label();
/// p.op(Opcode::DUP1);
/// p.push_bytes(&[0xa9, 0x05, 0x9c, 0xbb]); // transfer(address,uint256)
/// p.op(Opcode::EQ);
/// p.jumpi_to(f);
/// p.place_label(f);
/// p.op(Opcode::STOP);
/// let sels = extract_selectors(&p.assemble()?);
/// assert_eq!(sels.len(), 1);
/// assert_eq!(sels[0].to_string(), "0xa9059cbb");
/// # Ok(())
/// # }
/// ```
pub fn extract_selectors(code: &[u8]) -> Vec<Selector> {
    let instrs = disassemble(code);
    let mut out: Vec<Selector> = Vec::new();
    for (i, ins) in instrs.iter().enumerate() {
        if ins.opcode != Some(Opcode::PUSH4) || ins.immediate.len() != 4 {
            continue;
        }
        if has_eq_nearby(&instrs, i) {
            let sel = Selector([
                ins.immediate[0],
                ins.immediate[1],
                ins.immediate[2],
                ins.immediate[3],
            ]);
            if !out.contains(&sel) {
                out.push(sel);
            }
        }
    }
    out
}

fn has_eq_nearby(instrs: &[Instruction], i: usize) -> bool {
    let lo = i.saturating_sub(3);
    let hi = (i + 4).min(instrs.len());
    instrs[lo..hi].iter().any(|x| x.opcode == Some(Opcode::EQ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::AsmProgram;

    #[test]
    fn extracts_multiple_selectors_once_each() {
        let mut p = AsmProgram::new();
        let a = p.new_label();
        let b = p.new_label();
        for (sel, lbl) in [([1u8, 2, 3, 4], a), ([5, 6, 7, 8], b)] {
            p.op(Opcode::DUP1);
            p.push_bytes(&sel);
            p.op(Opcode::EQ);
            p.jumpi_to(lbl);
        }
        // Repeat the first comparison: must not duplicate.
        p.op(Opcode::DUP1);
        p.push_bytes(&[1, 2, 3, 4]);
        p.op(Opcode::EQ);
        p.jumpi_to(a);
        p.place_label(a);
        p.op(Opcode::STOP);
        p.place_label(b);
        p.op(Opcode::STOP);
        let sels = extract_selectors(&p.assemble().unwrap());
        assert_eq!(sels, vec![Selector([1, 2, 3, 4]), Selector([5, 6, 7, 8])]);
    }

    #[test]
    fn push4_without_eq_is_ignored() {
        let mut p = AsmProgram::new();
        p.push_bytes(&[0xff, 0xff, 0xff, 0xff]); // a mask, not a selector
        p.op(Opcode::AND);
        p.op(Opcode::STOP);
        assert!(extract_selectors(&p.assemble().unwrap()).is_empty());
    }

    #[test]
    fn selector_display_and_u32() {
        let s = Selector([0xde, 0xad, 0xbe, 0xef]);
        assert_eq!(s.to_string(), "0xdeadbeef");
        assert_eq!(s.as_u32(), 0xdeadbeef);
    }

    #[test]
    fn empty_code_has_no_selectors() {
        assert!(extract_selectors(&[]).is_empty());
    }
}
