//! Linear-sweep disassembler for EVM bytecode.

use crate::opcode::Opcode;
use crate::word::U256;
use std::fmt;

/// One decoded instruction.
///
/// Unassigned bytes decode with `opcode == None` and behave like `INVALID`
/// (they terminate execution if reached). A push whose immediate runs past
/// the end of the code keeps the bytes that exist; the EVM semantics of
/// zero-padding are applied by [`Instruction::push_value`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Instruction {
    /// Byte offset of the opcode within the bytecode.
    pub offset: usize,
    /// Decoded opcode, `None` for unassigned bytes.
    pub opcode: Option<Opcode>,
    /// The raw opcode byte (meaningful when `opcode` is `None`).
    pub byte: u8,
    /// Immediate bytes actually present in the code (may be shorter than
    /// declared for a truncated trailing push).
    pub immediate: Vec<u8>,
}

impl Instruction {
    /// Encoded size in bytes: opcode plus the immediate bytes present.
    pub fn size(&self) -> usize {
        1 + self.immediate.len()
    }

    /// Offset of the next instruction.
    pub fn next_offset(&self) -> usize {
        self.offset + self.size()
    }

    /// For a push instruction, its immediate as a word (zero-padded on the
    /// right if truncated, per EVM semantics). `None` for non-push opcodes.
    pub fn push_value(&self) -> Option<U256> {
        let op = self.opcode?;
        if !op.is_push() {
            return None;
        }
        let declared = op.immediate_len();
        let mut padded = self.immediate.clone();
        padded.resize(declared, 0);
        Some(U256::from_be_bytes(&padded))
    }

    /// `true` if this instruction halts or unconditionally transfers
    /// control (ends a basic block with no fall-through).
    pub fn is_block_terminator(&self) -> bool {
        match self.opcode {
            Some(op) => op.is_block_terminator(),
            None => true, // unassigned byte = INVALID
        }
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.opcode {
            Some(op) if !self.immediate.is_empty() => {
                write!(f, "{:#06x}: {} 0x", self.offset, op.mnemonic())?;
                for b in &self.immediate {
                    write!(f, "{b:02x}")?;
                }
                Ok(())
            }
            Some(op) => write!(f, "{:#06x}: {}", self.offset, op.mnemonic()),
            None => write!(f, "{:#06x}: UNKNOWN(0x{:02x})", self.offset, self.byte),
        }
    }
}

/// Disassembles `code` with a linear sweep from offset 0.
///
/// Every byte is decoded exactly once; push immediates are consumed by
/// their opcode. This matches how the EVM itself delimits instructions
/// (`JUMPDEST` analysis), so data embedded after code shows up as garbage
/// instructions — exactly what a static analyzer sees.
///
/// # Examples
///
/// ```
/// use scamdetect_evm::{disasm::disassemble, opcode::Opcode};
///
/// // PUSH1 0x2a PUSH1 0x00 MSTORE
/// let code = [0x60, 0x2a, 0x60, 0x00, 0x52];
/// let instrs = disassemble(&code);
/// assert_eq!(instrs.len(), 3);
/// assert_eq!(instrs[0].opcode, Some(Opcode::PUSH1));
/// assert_eq!(instrs[0].push_value().unwrap().to_usize(), Some(0x2a));
/// assert_eq!(instrs[2].opcode, Some(Opcode::MSTORE));
/// ```
pub fn disassemble(code: &[u8]) -> Vec<Instruction> {
    let mut out = Vec::new();
    let mut pc = 0usize;
    while pc < code.len() {
        let byte = code[pc];
        let opcode = Opcode::from_byte(byte);
        let imm_len = opcode.map_or(0, Opcode::immediate_len);
        let end = (pc + 1 + imm_len).min(code.len());
        out.push(Instruction {
            offset: pc,
            opcode,
            byte,
            immediate: code[pc + 1..end].to_vec(),
        });
        pc = end;
    }
    out
}

/// Re-encodes instructions back to bytecode (inverse of [`disassemble`]).
pub fn assemble_instructions(instrs: &[Instruction]) -> Vec<u8> {
    let mut out = Vec::new();
    for ins in instrs {
        out.push(ins.byte);
        out.extend_from_slice(&ins.immediate);
    }
    out
}

/// Offsets of every `JUMPDEST` reachable by the linear sweep — the set of
/// valid jump targets per the EVM's jumpdest analysis.
pub fn jumpdest_offsets(instrs: &[Instruction]) -> Vec<usize> {
    instrs
        .iter()
        .filter(|i| i.opcode == Some(Opcode::JUMPDEST))
        .map(|i| i.offset)
        .collect()
}

/// A normalized histogram over opcode bytes (256 bins, frequencies summing
/// to 1 for nonempty input). The classic PhishingHook-style feature vector.
pub fn opcode_histogram(instrs: &[Instruction]) -> Vec<f64> {
    let mut h = vec![0.0f64; 256];
    for ins in instrs {
        h[ins.byte as usize] += 1.0;
    }
    let total: f64 = h.iter().sum();
    if total > 0.0 {
        for v in &mut h {
            *v /= total;
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_program_decodes() {
        // PUSH2 0x0102 DUP1 JUMP
        let code = [0x61, 0x01, 0x02, 0x80, 0x56];
        let instrs = disassemble(&code);
        assert_eq!(instrs.len(), 3);
        assert_eq!(instrs[0].opcode, Some(Opcode::PUSH2));
        assert_eq!(instrs[0].push_value().unwrap().to_usize(), Some(0x0102));
        assert_eq!(instrs[1].opcode, Some(Opcode::DUP1));
        assert_eq!(instrs[2].opcode, Some(Opcode::JUMP));
        assert_eq!(instrs[2].offset, 4);
    }

    #[test]
    fn roundtrip_reencode() {
        let code = vec![0x60, 0xff, 0x5b, 0x34, 0x57, 0x00, 0xfe, 0x7f];
        let instrs = disassemble(&code);
        assert_eq!(assemble_instructions(&instrs), code);
    }

    #[test]
    fn truncated_push_keeps_partial_immediate() {
        // PUSH4 with only 2 immediate bytes present.
        let code = [0x63, 0xaa, 0xbb];
        let instrs = disassemble(&code);
        assert_eq!(instrs.len(), 1);
        assert_eq!(instrs[0].immediate, vec![0xaa, 0xbb]);
        // EVM pads with zeros on the right: 0xaabb0000.
        assert_eq!(instrs[0].push_value().unwrap().to_usize(), Some(0xaabb0000));
    }

    #[test]
    fn unknown_bytes_are_invalid_terminators() {
        let code = [0x0c];
        let instrs = disassemble(&code);
        assert_eq!(instrs[0].opcode, None);
        assert!(instrs[0].is_block_terminator());
        assert!(instrs[0].to_string().contains("UNKNOWN"));
    }

    #[test]
    fn jumpdests_found() {
        let code = [0x5b, 0x60, 0x5b, 0x5b]; // JUMPDEST, PUSH1 0x5b, JUMPDEST
        let instrs = disassemble(&code);
        // The 0x5b at offset 2 is a push immediate, not a JUMPDEST.
        assert_eq!(jumpdest_offsets(&instrs), vec![0, 3]);
    }

    #[test]
    fn histogram_normalizes() {
        let code = [0x01, 0x01, 0x02, 0x00];
        let h = opcode_histogram(&disassemble(&code));
        assert!((h[0x01] - 0.5).abs() < 1e-12);
        assert!((h[0x02] - 0.25).abs() < 1e-12);
        assert!((h.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_code() {
        assert!(disassemble(&[]).is_empty());
        let h = opcode_histogram(&[]);
        assert_eq!(h.iter().sum::<f64>(), 0.0);
    }

    #[test]
    fn display_formats() {
        let instrs = disassemble(&[0x60, 0x2a]);
        assert_eq!(instrs[0].to_string(), "0x0000: PUSH1 0x2a");
        let instrs = disassemble(&[0x01]);
        assert_eq!(instrs[0].to_string(), "0x0000: ADD");
    }
}
