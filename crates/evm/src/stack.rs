//! Abstract stack simulation for static jump resolution.
//!
//! The CFG builder tracks, per basic block, which stack slots hold *known
//! constants*. Arithmetic and bitwise operations over known operands are
//! partially evaluated, so jump targets computed as `PUSH a; PUSH b; ADD;
//! JUMP` (a constant-splitting obfuscation) still resolve statically when
//! the computation is locally complete.

use crate::disasm::Instruction;
use crate::opcode::Opcode;
use crate::word::U256;

/// An abstract stack slot: a statically known word, or unknown.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbstractValue {
    /// The slot holds exactly this word on every execution reaching here.
    Known(U256),
    /// The slot's value is not statically determined.
    Unknown,
}

impl AbstractValue {
    /// Applies a binary fold if both operands are known.
    fn fold2(a: AbstractValue, b: AbstractValue, f: impl Fn(&U256, &U256) -> U256) -> Self {
        match (a, b) {
            (AbstractValue::Known(x), AbstractValue::Known(y)) => AbstractValue::Known(f(&x, &y)),
            _ => AbstractValue::Unknown,
        }
    }

    /// Returns the constant if known.
    pub fn as_known(self) -> Option<U256> {
        match self {
            AbstractValue::Known(w) => Some(w),
            AbstractValue::Unknown => None,
        }
    }
}

/// Maximum number of tracked stack slots. Entries deeper than this window
/// are treated as unknown (the EVM stack itself caps at 1024, but constant
/// flows relevant to jump targets live near the top).
pub const MAX_TRACKED_DEPTH: usize = 64;

/// A bounded abstract stack. Popping past the tracked entries yields
/// [`AbstractValue::Unknown`] — values supplied by calling blocks are
/// simply not tracked rather than being an error.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AbstractStack {
    // Bottom at index 0, top at the end.
    items: Vec<AbstractValue>,
}

impl AbstractStack {
    /// Creates an empty abstract stack.
    pub fn new() -> Self {
        AbstractStack::default()
    }

    /// Number of tracked slots.
    pub fn depth(&self) -> usize {
        self.items.len()
    }

    /// Pushes a value, evicting the bottom slot if the window is full.
    pub fn push(&mut self, v: AbstractValue) {
        if self.items.len() == MAX_TRACKED_DEPTH {
            self.items.remove(0);
        }
        self.items.push(v);
    }

    /// Pops a value (unknown when the window is empty).
    pub fn pop(&mut self) -> AbstractValue {
        self.items.pop().unwrap_or(AbstractValue::Unknown)
    }

    /// Peeks `n` slots below the top (0 = top) without popping.
    pub fn peek(&self, n: usize) -> AbstractValue {
        if n < self.items.len() {
            self.items[self.items.len() - 1 - n]
        } else {
            AbstractValue::Unknown
        }
    }

    fn dup(&mut self, n: usize) {
        let v = self.peek(n - 1);
        self.push(v);
    }

    fn swap(&mut self, n: usize) {
        let len = self.items.len();
        if n < len {
            self.items.swap(len - 1, len - 1 - n);
        } else {
            // The counterpart slot is untracked: the top becomes unknown and
            // the (virtual) deep slot would take the old top — which we do
            // not track, so only the visible effect remains.
            if len > 0 {
                self.items[len - 1] = AbstractValue::Unknown;
            }
        }
    }

    /// Joins with another stack (per-slot, aligned at the top): slots that
    /// disagree or are missing become unknown. Returns `true` if `self`
    /// changed. The join only ever discards information, guaranteeing
    /// termination of the fixpoint.
    pub fn join_from(&mut self, other: &AbstractStack) -> bool {
        let keep = self.items.len().min(other.items.len());
        let mut changed = self.items.len() != keep;
        // Align at the top: drop excess bottom slots.
        let self_excess = self.items.len() - keep;
        let other_excess = other.items.len() - keep;
        let mut joined = Vec::with_capacity(keep);
        for i in 0..keep {
            let a = self.items[self_excess + i];
            let b = other.items[other_excess + i];
            let j = if a == b { a } else { AbstractValue::Unknown };
            if j != a {
                changed = true;
            }
            joined.push(j);
        }
        self.items = joined;
        changed
    }

    /// Executes one instruction over the abstract stack.
    ///
    /// `JUMP`/`JUMPI` consume their target operand like any other pop; the
    /// caller must inspect the target (via [`AbstractStack::peek`]) *before*
    /// calling this.
    pub fn execute(&mut self, ins: &Instruction) {
        let Some(op) = ins.opcode else {
            return; // INVALID: terminates, stack irrelevant
        };
        use Opcode::*;
        match op {
            // Pushes.
            _ if op.is_push() => {
                let v = ins.push_value().expect("push opcode has a value");
                self.push(AbstractValue::Known(v));
            }
            // Pure stack manipulation.
            POP => {
                self.pop();
            }
            DUP1 | DUP2 | DUP3 | DUP4 | DUP5 | DUP6 | DUP7 | DUP8 | DUP9 | DUP10 | DUP11
            | DUP12 | DUP13 | DUP14 | DUP15 | DUP16 => {
                self.dup((op.byte() - 0x80 + 1) as usize);
            }
            SWAP1 | SWAP2 | SWAP3 | SWAP4 | SWAP5 | SWAP6 | SWAP7 | SWAP8 | SWAP9 | SWAP10
            | SWAP11 | SWAP12 | SWAP13 | SWAP14 | SWAP15 | SWAP16 => {
                self.swap((op.byte() - 0x90 + 1) as usize);
            }
            // Foldable binary ops.
            ADD => self.binop(|a, b| a.wrapping_add(b)),
            SUB => self.binop(|a, b| a.wrapping_sub(b)),
            MUL => self.binop(|a, b| a.wrapping_mul(b)),
            AND => self.binop(|a, b| a.and(b)),
            OR => self.binop(|a, b| a.or(b)),
            XOR => self.binop(|a, b| a.xor(b)),
            LT => self.binop(|a, b| a.lt_word(b)),
            GT => self.binop(|a, b| a.gt_word(b)),
            EQ => self.binop(|a, b| a.eq_word(b)),
            SHL => self.binop_swapped(|shift, v| match shift.to_usize() {
                Some(s) if s < 256 => v.shl(s as u32),
                _ => U256::ZERO,
            }),
            SHR => self.binop_swapped(|shift, v| match shift.to_usize() {
                Some(s) if s < 256 => v.shr(s as u32),
                _ => U256::ZERO,
            }),
            // Foldable unary ops.
            ISZERO => {
                let a = self.pop();
                self.push(match a.as_known() {
                    Some(w) => AbstractValue::Known(w.iszero_word()),
                    None => AbstractValue::Unknown,
                });
            }
            NOT => {
                let a = self.pop();
                self.push(match a.as_known() {
                    Some(w) => AbstractValue::Known(w.not()),
                    None => AbstractValue::Unknown,
                });
            }
            // Everything else: apply the documented stack arity with
            // unknown results.
            _ => {
                for _ in 0..op.stack_pops() {
                    self.pop();
                }
                for _ in 0..op.stack_pushes() {
                    self.push(AbstractValue::Unknown);
                }
            }
        }
    }

    fn binop(&mut self, f: impl Fn(&U256, &U256) -> U256) {
        let a = self.pop();
        let b = self.pop();
        self.push(AbstractValue::fold2(a, b, f));
    }

    /// For SHL/SHR the EVM pops `shift` first, then `value`.
    fn binop_swapped(&mut self, f: impl Fn(&U256, &U256) -> U256) {
        let shift = self.pop();
        let value = self.pop();
        self.push(AbstractValue::fold2(shift, value, f));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disasm::disassemble;

    fn run(code: &[u8]) -> AbstractStack {
        let mut s = AbstractStack::new();
        for ins in disassemble(code) {
            s.execute(&ins);
        }
        s
    }

    #[test]
    fn push_and_fold_add() {
        // PUSH1 5 PUSH1 10 ADD
        let s = run(&[0x60, 0x05, 0x60, 0x0a, 0x01]);
        assert_eq!(s.peek(0), AbstractValue::Known(U256::from_u64(15)));
    }

    #[test]
    fn xor_split_constant_recovers() {
        // PUSH2 0x1234 PUSH2 0xffff XOR XOR-again with 0xffff restores.
        let s = run(&[
            0x61, 0x12, 0x34, 0x61, 0xff, 0xff, 0x18, 0x61, 0xff, 0xff, 0x18,
        ]);
        assert_eq!(s.peek(0), AbstractValue::Known(U256::from_u64(0x1234)));
    }

    #[test]
    fn unknown_taints_result() {
        // CALLVALUE PUSH1 1 ADD
        let s = run(&[0x34, 0x60, 0x01, 0x01]);
        assert_eq!(s.peek(0), AbstractValue::Unknown);
    }

    #[test]
    fn dup_and_swap() {
        // PUSH1 1 PUSH1 2 DUP2 -> [1, 2, 1]
        let s = run(&[0x60, 0x01, 0x60, 0x02, 0x81]);
        assert_eq!(s.peek(0), AbstractValue::Known(U256::from_u64(1)));
        assert_eq!(s.peek(1), AbstractValue::Known(U256::from_u64(2)));
        // PUSH1 1 PUSH1 2 SWAP1 -> [2, 1]
        let s = run(&[0x60, 0x01, 0x60, 0x02, 0x90]);
        assert_eq!(s.peek(0), AbstractValue::Known(U256::from_u64(1)));
        assert_eq!(s.peek(1), AbstractValue::Known(U256::from_u64(2)));
    }

    #[test]
    fn shl_semantics_shift_from_top() {
        // PUSH1 1 (value) PUSH1 4 (shift) SHL -> 16
        let s = run(&[0x60, 0x01, 0x60, 0x04, 0x1b]);
        assert_eq!(s.peek(0), AbstractValue::Known(U256::from_u64(16)));
    }

    #[test]
    fn underflow_yields_unknown() {
        let mut s = AbstractStack::new();
        assert_eq!(s.pop(), AbstractValue::Unknown);
        assert_eq!(s.peek(3), AbstractValue::Unknown);
    }

    #[test]
    fn window_caps_depth() {
        let mut s = AbstractStack::new();
        for i in 0..(MAX_TRACKED_DEPTH + 10) {
            s.push(AbstractValue::Known(U256::from_u64(i as u64)));
        }
        assert_eq!(s.depth(), MAX_TRACKED_DEPTH);
        // Top is still the newest value.
        assert_eq!(
            s.peek(0),
            AbstractValue::Known(U256::from_u64((MAX_TRACKED_DEPTH + 9) as u64))
        );
    }

    #[test]
    fn join_degrades_disagreement() {
        let mut a = AbstractStack::new();
        a.push(AbstractValue::Known(U256::from_u64(1)));
        a.push(AbstractValue::Known(U256::from_u64(2)));
        let mut b = AbstractStack::new();
        b.push(AbstractValue::Known(U256::from_u64(1)));
        b.push(AbstractValue::Known(U256::from_u64(3)));
        assert!(a.join_from(&b));
        assert_eq!(a.peek(0), AbstractValue::Unknown);
        assert_eq!(a.peek(1), AbstractValue::Known(U256::from_u64(1)));
        // Idempotent second join: no change.
        assert!(!a.join_from(&b));
    }

    #[test]
    fn join_aligns_at_top() {
        let mut a = AbstractStack::new();
        a.push(AbstractValue::Known(U256::from_u64(9))); // deep slot
        a.push(AbstractValue::Known(U256::from_u64(5))); // top
        let mut b = AbstractStack::new();
        b.push(AbstractValue::Known(U256::from_u64(5))); // only top
        assert!(a.join_from(&b));
        assert_eq!(a.depth(), 1);
        assert_eq!(a.peek(0), AbstractValue::Known(U256::from_u64(5)));
    }

    #[test]
    fn environment_ops_produce_unknown() {
        let s = run(&[0x33]); // CALLER
        assert_eq!(s.depth(), 1);
        assert_eq!(s.peek(0), AbstractValue::Unknown);
    }
}
