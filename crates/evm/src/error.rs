//! Error types for EVM bytecode processing.

use std::error::Error;
use std::fmt;

/// Errors produced while assembling, disassembling or analysing EVM
/// bytecode.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum EvmError {
    /// A label was referenced but never defined in the program.
    UndefinedLabel {
        /// The numeric id of the offending label.
        label: u32,
    },
    /// A label was defined more than once.
    DuplicateLabel {
        /// The numeric id of the offending label.
        label: u32,
    },
    /// The assembled program exceeds what a `PUSH2` label operand can
    /// address (64 KiB), or the EVM contract size cap.
    CodeTooLarge {
        /// Size the program would have had.
        size: usize,
    },
    /// A push immediate wider than 32 bytes was requested.
    ImmediateTooWide {
        /// Requested width in bytes.
        width: usize,
    },
    /// The bytecode ends in the middle of a push immediate.
    TruncatedPush {
        /// Offset of the push opcode.
        offset: usize,
    },
}

impl fmt::Display for EvmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvmError::UndefinedLabel { label } => {
                write!(f, "label L{label} referenced but never defined")
            }
            EvmError::DuplicateLabel { label } => {
                write!(f, "label L{label} defined more than once")
            }
            EvmError::CodeTooLarge { size } => {
                write!(f, "assembled code of {size} bytes exceeds addressable size")
            }
            EvmError::ImmediateTooWide { width } => {
                write!(
                    f,
                    "push immediate of {width} bytes exceeds the 32-byte maximum"
                )
            }
            EvmError::TruncatedPush { offset } => {
                write!(
                    f,
                    "bytecode truncated inside push immediate at offset {offset}"
                )
            }
        }
    }
}

impl Error for EvmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_lowercase_and_informative() {
        let cases: Vec<EvmError> = vec![
            EvmError::UndefinedLabel { label: 3 },
            EvmError::DuplicateLabel { label: 1 },
            EvmError::CodeTooLarge { size: 70000 },
            EvmError::ImmediateTooWide { width: 40 },
            EvmError::TruncatedPush { offset: 12 },
        ];
        for e in cases {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn implements_std_error() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<EvmError>();
    }
}
