//! Lifting raw bytecode back to label-form assembly.
//!
//! The obfuscation passes operate on [`AsmProgram`]s with symbolic jump
//! targets. Generated contracts carry their label form, but arbitrary
//! on-chain bytecode does not — this module reconstructs it: every
//! `JUMPDEST` becomes a label, and every push whose (zero-padded) value
//! equals a `JUMPDEST` offset becomes a `PushLabel`, so re-assembly after
//! transformation patches all control flow.
//!
//! The heuristic is the standard one real-world EVM rewriters use and has
//! the standard caveat: a push of a *data* constant that happens to equal
//! a jumpdest offset is misclassified as a target reference. On such
//! programs lifting remains sound for control flow but may relocate that
//! constant. [`lift_verified`] guards against this by checking
//! round-trip identity at the original layout.

use crate::asm::{AsmOp, AsmProgram, Label};
use crate::disasm::{disassemble, Instruction};
use crate::error::EvmError;
use crate::opcode::Opcode;
use std::collections::BTreeMap;

/// Lifts `code` into label form.
///
/// Pushes referencing `JUMPDEST` offsets become symbolic; everything else
/// is copied as-is. Unassigned opcode bytes are preserved via raw escapes.
pub fn lift(code: &[u8]) -> AsmProgram {
    let instrs = disassemble(code);
    let jumpdests: Vec<usize> = instrs
        .iter()
        .filter(|i| i.opcode == Some(Opcode::JUMPDEST))
        .map(|i| i.offset)
        .collect();

    let mut prog = AsmProgram::new();
    let labels: BTreeMap<usize, Label> = jumpdests
        .iter()
        .map(|&off| (off, prog.new_label()))
        .collect();

    for ins in &instrs {
        match ins.opcode {
            Some(Opcode::JUMPDEST) => {
                prog.place_label(labels[&ins.offset]);
            }
            Some(op) if op.is_push() => {
                if let Some(target) = push_target(ins, &labels) {
                    prog.push_label(target);
                } else {
                    // Preserve the exact push width (semantically relevant
                    // only through code size, but keeps lifting faithful).
                    let mut padded = ins.immediate.clone();
                    padded.resize(op.immediate_len(), 0);
                    prog.push_op(AsmOp::Push(padded));
                }
            }
            Some(op) => {
                prog.op(op);
            }
            None => {
                prog.raw(&[ins.byte]);
            }
        }
    }
    prog
}

fn push_target(ins: &Instruction, labels: &BTreeMap<usize, Label>) -> Option<Label> {
    let value = ins.push_value()?.to_usize()?;
    labels.get(&value).copied()
}

/// Lifts `code` and verifies the round trip: re-assembling the lifted
/// program must reproduce `code` byte-for-byte.
///
/// # Errors
///
/// [`EvmError::CodeTooLarge`] and friends from assembly, or
/// [`EvmError::TruncatedPush`] when the round trip diverges (the code
/// contains constants that collide with jumpdest offsets at a different
/// push width, or a truncated trailing push).
pub fn lift_verified(code: &[u8]) -> Result<AsmProgram, EvmError> {
    let prog = lift(code);
    let reassembled = prog.assemble()?;
    if reassembled != code {
        // Find the first divergence for the error offset.
        let offset = reassembled
            .iter()
            .zip(code)
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| reassembled.len().min(code.len()));
        return Err(EvmError::TruncatedPush { offset });
    }
    Ok(prog)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        let mut p = AsmProgram::new();
        let a = p.new_label();
        let b = p.new_label();
        p.op(Opcode::CALLVALUE);
        p.jumpi_to(a);
        p.push_value(0xdead);
        p.push_value(0);
        p.op(Opcode::SSTORE);
        p.jump_to(b);
        p.place_label(a);
        p.push_value(0).push_value(0).op(Opcode::REVERT);
        p.place_label(b);
        p.op(Opcode::STOP);
        p.assemble().unwrap()
    }

    #[test]
    fn lift_roundtrips_generated_code() {
        let code = sample();
        let lifted = lift_verified(&code).expect("verified lift");
        assert_eq!(lifted.assemble().unwrap(), code);
    }

    #[test]
    fn lifted_labels_are_symbolic() {
        let code = sample();
        let lifted = lift(&code);
        let label_pushes = lifted
            .ops()
            .iter()
            .filter(|o| matches!(o, AsmOp::PushLabel(_)))
            .count();
        assert_eq!(label_pushes, 2, "both jump targets become symbolic");
        let label_defs = lifted
            .ops()
            .iter()
            .filter(|o| matches!(o, AsmOp::LabelDef(_)))
            .count();
        assert_eq!(label_defs, 2);
    }

    #[test]
    fn lifted_code_survives_obfuscation_style_growth() {
        // Lift, insert a no-op prefix before everything, re-assemble:
        // all jump targets must still be valid (they moved!).
        let code = sample();
        let lifted = lift(&code);
        let mut ops = vec![AsmOp::Push(vec![]), AsmOp::Op(Opcode::POP)];
        ops.extend(lifted.ops().iter().cloned());
        let grown = AsmProgram::from_ops(ops).assemble().unwrap();
        assert_ne!(grown, code);
        let cfg = crate::cfg::build_cfg(&grown);
        assert_eq!(cfg.unresolved_jump_count(), 0, "targets re-resolved");
        // Execution equivalence on the happy path.
        use crate::interp::{execute, InterpConfig, TxContext};
        let ctx = TxContext::default();
        let a = execute(&code, &ctx, &Default::default(), &InterpConfig::default());
        let b = execute(&grown, &ctx, &Default::default(), &InterpConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn data_constant_collision_is_detected() {
        // PUSH1 1 (collides with the JUMPDEST at offset 1) — lifting turns
        // it into a PUSH2 label reference, changing the layout, which the
        // verified lift must reject.
        let code = [0x60, 0x01, 0x5b, 0x00]; // PUSH1 1; JUMPDEST; STOP
        match lift_verified(&code) {
            // Either outcome is acceptable: an error, or a faithful lift.
            Ok(p) => assert_eq!(p.assemble().unwrap(), code),
            Err(e) => assert!(matches!(e, EvmError::TruncatedPush { .. })),
        }
    }

    #[test]
    fn invalid_bytes_preserved_raw() {
        let code = [0x0c, 0x0d, 0x00]; // two unassigned bytes, STOP
        let lifted = lift_verified(&code).expect("raw bytes roundtrip");
        assert_eq!(lifted.assemble().unwrap(), code.to_vec());
    }

    #[test]
    fn lift_then_obfuscate_preserves_behaviour() {
        use crate::interp::{execute, InterpConfig, TxContext};
        // Full circle: bytecode -> lift -> (simulated pass: jump through
        // fresh label indirection) -> assemble -> same behaviour.
        let code = sample();
        let mut lifted = lift(&code);
        // Append dead code after the final STOP: harmless.
        lifted.push_op(AsmOp::Op(Opcode::CALLER));
        lifted.push_op(AsmOp::Op(Opcode::POP));
        let out = lifted.assemble().unwrap();
        let ctx = TxContext {
            callvalue: crate::word::U256::from_u64(5),
            ..TxContext::default()
        };
        let a = execute(&code, &ctx, &Default::default(), &InterpConfig::default());
        let b = execute(&out, &ctx, &Default::default(), &InterpConfig::default());
        assert_eq!(a, b);
    }
}
