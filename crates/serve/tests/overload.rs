//! Overload and slow-client behavior of the serve daemon, driven over
//! raw `std::net::TcpStream` so the wire bytes themselves are pinned:
//!
//! * a **slowloris** client dribbling one byte per 100ms past
//!   `request_deadline` gets `408 + Retry-After` and does **not**
//!   consume the pool — a concurrent healthy request completes
//!   sub-second;
//! * a **truncated body** (Content-Length promised, connection closed
//!   early) gets a well-formed `400`, not a hang;
//! * past the **shed watermark** new connections get `429 +
//!   Retry-After` immediately, the daemon recovers once the queue
//!   drains, and `/metrics` reports `requests_shed_total`.

use scamdetect_serve::daemon::{spawn, RunningDaemon, ServeConfig};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

const GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../tests/fixtures/golden-logreg-unified-v1.scam"
);

/// Stages the committed golden artifact into a fresh models dir and
/// spawns a daemon over it with the given HTTP knobs applied.
fn daemon_with(
    tag: &str,
    tune: impl FnOnce(&mut ServeConfig),
) -> (RunningDaemon, std::path::PathBuf) {
    let dir =
        std::env::temp_dir().join(format!("scamdetect-overload-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("models dir");
    let golden = std::fs::read(GOLDEN_PATH).expect("golden fixture is committed");
    std::fs::write(dir.join("golden-v1.scam"), &golden).expect("stage artifact");
    let mut config = ServeConfig::default();
    config.http.addr = "127.0.0.1:0".to_string();
    config.registry.models_dir = dir.clone();
    tune(&mut config);
    (spawn(config).expect("daemon spawns"), dir)
}

/// Reads everything the server sends until it closes the connection.
fn read_to_close(stream: TcpStream) -> String {
    let mut reply = String::new();
    let mut reader = BufReader::new(stream);
    loop {
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => reply.push_str(&line),
        }
    }
    reply
}

fn timed_healthz(addr: std::net::SocketAddr) -> (String, Duration) {
    let started = Instant::now();
    let mut stream = TcpStream::connect(addr).expect("connects");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    stream
        .write_all(b"GET /healthz HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n")
        .expect("writes");
    let reply = read_to_close(stream);
    (reply, started.elapsed())
}

#[test]
fn slowloris_gets_408_and_does_not_consume_the_pool() {
    let (daemon, dir) = daemon_with("slowloris", |config| {
        config.http.workers = 2;
        config.http.request_deadline = Duration::from_millis(500);
        config.http.retry_after_s = 2;
    });
    let addr = daemon.addr;

    // The slowloris: a request that never finishes arriving, one byte
    // per 100ms — each byte resets the per-read idle timeout, so only
    // the request deadline can stop it.
    let dribbler = std::thread::spawn(move || {
        let mut stream = TcpStream::connect(addr).expect("connects");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .expect("timeout");
        stream
            .write_all(b"GET /healthz HTTP/1.1\r\nX-Drip: ")
            .expect("opening bytes");
        // 12 dribbled bytes x 100ms = 1.2s of dripping, past the 500ms
        // deadline; the server must cut in with a 408 mid-drip.
        for _ in 0..12 {
            std::thread::sleep(Duration::from_millis(100));
            if stream.write_all(b"y").is_err() {
                break; // server already closed on us — expected
            }
        }
        read_to_close(stream)
    });

    // While the dribble is in flight, a healthy request on the other
    // worker must complete sub-second.
    std::thread::sleep(Duration::from_millis(150)); // dribble underway
    let (reply, elapsed) = timed_healthz(addr);
    assert!(reply.starts_with("HTTP/1.1 200"), "{reply}");
    assert!(
        elapsed < Duration::from_secs(1),
        "healthy request stalled behind the slowloris: {elapsed:?}"
    );

    let reply = dribbler.join().expect("dribbler joins");
    assert!(
        reply.starts_with("HTTP/1.1 408"),
        "a slow-drip request must time out with 408: {reply}"
    );
    assert!(reply.contains("Retry-After: 2"), "{reply}");

    daemon.stop().expect("clean shutdown");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn truncated_body_gets_a_well_formed_400() {
    let (daemon, dir) = daemon_with("truncated", |config| {
        config.http.workers = 2;
        config.http.read_timeout = Duration::from_millis(500);
    });
    let addr = daemon.addr;

    // Promise 50 body bytes, deliver 5, then close our write half: the
    // server sees EOF mid-body and must answer a clean 400.
    let mut stream = TcpStream::connect(addr).expect("connects");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    stream
        .write_all(b"POST /scan HTTP/1.1\r\nHost: x\r\nContent-Length: 50\r\n\r\nshort")
        .expect("writes");
    stream
        .shutdown(std::net::Shutdown::Write)
        .expect("half-close");
    let reply = read_to_close(stream);
    assert!(
        reply.starts_with("HTTP/1.1 400"),
        "a truncated body must be a clean 400: {reply}"
    );

    // The worker survived: the daemon still answers.
    let (reply, _) = timed_healthz(addr);
    assert!(reply.starts_with("HTTP/1.1 200"), "{reply}");

    daemon.stop().expect("clean shutdown");
    std::fs::remove_dir_all(&dir).ok();
}

/// Threaded-transport specific: saturation here works by parking a
/// keep-alive connection, which pins a pool worker only on the threaded
/// backend. Under `SCAMDETECT_TRANSPORT=epoll` a parked connection
/// costs no worker (that is the transport's point) and the watermark is
/// never reached this way — CI skips this case on the epoll run; the
/// transport-conformance suite gates epoll admission shedding with a
/// request that is actually in flight.
#[test]
fn saturated_daemon_sheds_429_then_recovers() {
    let (daemon, dir) = daemon_with("shed", |config| {
        config.http.workers = 1;
        config.http.shed_watermark = 1;
        config.http.retry_after_s = 1;
        config.http.read_timeout = Duration::from_millis(500);
    });
    let addr = daemon.addr;

    // Occupy the single worker for its keep-alive lifetime: one full
    // round trip proves the worker owns this connection, and keeping it
    // open parks the worker in the keep-alive read.
    let mut busy = TcpStream::connect(addr).expect("connects");
    busy.set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    busy.write_all(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
        .expect("writes");
    {
        let mut reader = BufReader::new(busy.try_clone().expect("clone"));
        let mut status = String::new();
        reader.read_line(&mut status).expect("status");
        assert!(status.starts_with("HTTP/1.1 200"), "{status}");
        let mut content_length = 0usize;
        loop {
            let mut line = String::new();
            reader.read_line(&mut line).expect("header");
            if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
                content_length = v.trim().parse().expect("length");
            }
            if line == "\r\n" {
                break;
            }
        }
        let mut body = vec![0u8; content_length];
        reader.read_exact(&mut body).expect("body");
    }

    // The queue fills to the watermark with one parked connection…
    let parked = TcpStream::connect(addr).expect("connects");
    // …and the next arrival is shed immediately with 429 + Retry-After,
    // without us sending a single byte.
    let shed = TcpStream::connect(addr).expect("connects");
    shed.set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    let reply = read_to_close(shed);
    assert!(
        reply.starts_with("HTTP/1.1 429"),
        "past the watermark the daemon must shed with 429: {reply}"
    );
    assert!(reply.contains("Retry-After: 1"), "{reply}");

    // Recovery: close the busy connection, the worker drains the queue,
    // the parked connection gets served, and new traffic flows again.
    drop(busy);
    parked
        .try_clone()
        .expect("clone")
        .write_all(b"GET /healthz HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n")
        .expect("writes");
    parked
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    let reply = read_to_close(parked);
    assert!(
        reply.starts_with("HTTP/1.1 200"),
        "the queued connection must be served once the worker frees: {reply}"
    );

    let (metrics, _) = {
        let started = Instant::now();
        let mut stream = TcpStream::connect(addr).expect("connects");
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .expect("timeout");
        stream
            .write_all(b"GET /metrics HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n")
            .expect("writes");
        (read_to_close(stream), started.elapsed())
    };
    assert!(
        metrics.contains("scamdetect_requests_shed_total 1"),
        "the shed must be counted: {metrics}"
    );

    daemon.stop().expect("clean shutdown");
    std::fs::remove_dir_all(&dir).ok();
}
