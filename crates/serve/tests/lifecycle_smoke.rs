//! The CI lifecycle-smoke gate: the full served-verdict → retrained-
//! model loop against a real daemon on an ephemeral port.
//!
//! What it pins, end to end over the wire:
//!
//! * `POST /feedback` records corrections into the append-only log,
//!   computes disagreement against the champion's own re-score, and
//!   advances the feedback counters on `/metrics`.
//! * Replaying the log and folding it into the training corpus
//!   produces a candidate whose labels differ from the champion's.
//! * `POST /shadow/start` mirrors every subsequent scan to the
//!   candidate off the response path; `GET /shadow`, `/healthz` and
//!   `GET /models` all report the session.
//! * `POST /shadow/promote` refuses below its thresholds and performs
//!   an epoch-bumped hot swap once they clear.
//! * Shadow scoring never perturbs the champion: under concurrent
//!   traffic, every served score is bit-identical with the shadow on,
//!   off, and stopped.
//!
//! Both tests build on `ServeConfig::default()`, so the whole suite
//! re-runs against the epoll transport via `SCAMDETECT_TRANSPORT=epoll`
//! without touching call sites.

use scamdetect::lifecycle::{fold_feedback, ContractLabel, FeedbackLog};
use scamdetect::{ClassicModel, FeatureKind, ModelKind, ScannerBuilder};
use scamdetect_dataset::{Corpus, CorpusConfig};
use scamdetect_serve::client::{http_call, HttpClient};
use scamdetect_serve::daemon::{spawn, ServeConfig};
use scamdetect_serve::json::Json;
use scamdetect_serve::wire::encode_hex;
use std::net::SocketAddr;
use std::path::Path;
use std::time::{Duration, Instant};

fn hex_body(bytes: &[u8]) -> String {
    format!(r#"{{"bytecode": "{}"}}"#, encode_hex(bytes))
}

/// Trains a small logistic-regression artifact on a seeded corpus and
/// saves it as `<dir>/<stem>.scam`.
fn train_artifact(dir: &Path, stem: &str, seed: u64, threshold: Option<f64>) {
    let corpus = Corpus::generate(&CorpusConfig {
        size: 30,
        seed,
        ..CorpusConfig::default()
    });
    let mut builder = ScannerBuilder::new().model(ModelKind::Classic(
        ClassicModel::LogisticRegression,
        FeatureKind::Unified,
    ));
    if let Some(t) = threshold {
        builder = builder.threshold(t);
    }
    builder
        .train(&corpus)
        .expect("trains")
        .save(dir.join(format!("{stem}.scam")))
        .expect("saves artifact");
}

/// Scrapes one bare-name sample out of `/metrics`.
fn metric(addr: SocketAddr, name: &str) -> f64 {
    let text = http_call(addr, "GET", "/metrics", None)
        .expect("metrics scrape")
        .body;
    text.lines()
        .filter(|l| !l.starts_with('#'))
        .find_map(|l| {
            let (metric, value) = l.split_once(' ')?;
            (metric == name).then(|| value.trim().parse().ok())?
        })
        .unwrap_or_else(|| panic!("no metric named '{name}'"))
}

/// Polls `GET /shadow` until the session has scored at least
/// `min_samples` mirrored scans (shadow scoring is asynchronous).
fn wait_for_shadow_samples(addr: SocketAddr, min_samples: u64) -> Json {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let reply = http_call(addr, "GET", "/shadow", None).expect("shadow status");
        assert_eq!(reply.status, 200, "{}", reply.body);
        let status = Json::parse(&reply.body).expect("shadow status is JSON");
        assert_eq!(status.get("active").unwrap().as_bool(), Some(true));
        let samples = status.get("samples").unwrap().as_f64().unwrap() as u64;
        if samples >= min_samples {
            return status;
        }
        assert!(
            Instant::now() < deadline,
            "shadow scored only {samples}/{min_samples} samples before the deadline"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn feedback_retrain_shadow_promote_closes_the_lifecycle_loop() {
    let dir = std::env::temp_dir().join(format!("scamdetect-lifecycle-e2e-{}", std::process::id()));
    let models_dir = dir.join("models");
    std::fs::create_dir_all(&models_dir).expect("models dir");
    let log_path = dir.join("feedback.log");
    train_artifact(&models_dir, "m-v1", 1, None);

    let mut config = ServeConfig::default();
    config.http.addr = "127.0.0.1:0".to_string();
    config.http.workers = 2;
    config.registry.models_dir = models_dir.clone();
    config.lifecycle.feedback_log = Some(log_path.clone());
    let daemon = spawn(config).expect("daemon spawns");
    let addr = daemon.addr;

    // ── serve traffic: the champion's training corpus over the wire ──
    let corpus = Corpus::generate(&CorpusConfig {
        size: 30,
        seed: 1,
        ..CorpusConfig::default()
    });
    let mut client = HttpClient::connect(addr).expect("client connects");
    let mut served: Vec<(String, String)> = Vec::new(); // (verdict, skeleton)
    for contract in corpus.contracts() {
        let reply = client
            .request("POST", "/scan", Some(&hex_body(&contract.bytes)))
            .expect("scan");
        assert_eq!(reply.status, 200, "{}", reply.body);
        let verdict = Json::parse(&reply.body).expect("scan response is JSON");
        served.push((
            verdict
                .get("verdict")
                .unwrap()
                .as_str()
                .unwrap()
                .to_string(),
            verdict
                .get("skeleton")
                .unwrap()
                .as_str()
                .unwrap()
                .to_string(),
        ));
    }

    // ── corrections over the wire: oppose the dataset's ground truth ─
    // Disagreement is judged against the champion's re-score, which we
    // know from the scan responses — assert it record by record.
    let mut expected_disagreements = 0u64;
    for (i, contract) in corpus.contracts().iter().take(6).enumerate() {
        let corrected = match contract.label {
            ContractLabel::Malicious => "benign",
            ContractLabel::Benign => "malicious",
        };
        let expected = served[i].0 != corrected;
        expected_disagreements += u64::from(expected);
        let body = format!(
            r#"{{"bytecode": "{}", "label": "{corrected}"}}"#,
            encode_hex(&contract.bytes)
        );
        let reply = client
            .request("POST", "/feedback", Some(&body))
            .expect("feedback");
        assert_eq!(reply.status, 200, "{}", reply.body);
        let ack = Json::parse(&reply.body).expect("feedback ack is JSON");
        assert_eq!(ack.get("recorded").unwrap().as_bool(), Some(true));
        assert_eq!(ack.get("disagreement").unwrap().as_bool(), Some(expected));
        assert_eq!(
            ack.get("skeleton").unwrap().as_str(),
            Some(served[i].1.as_str()),
            "feedback must key on the skeleton the scan reported"
        );
        assert_eq!(
            ack.get("log_records").unwrap().as_f64(),
            Some((i + 1) as f64)
        );
    }
    // Skeleton-keyed submissions: one agreeing with its served verdict
    // (no disagreement), one with no served verdict (null).
    let body = format!(
        r#"{{"skeleton": "{}", "platform": "evm", "label": "{}", "served_verdict": "{}"}}"#,
        served[6].1, served[6].0, served[6].0
    );
    let reply = client
        .request("POST", "/feedback", Some(&body))
        .expect("skeleton feedback");
    assert_eq!(reply.status, 200, "{}", reply.body);
    let ack = Json::parse(&reply.body).expect("JSON");
    assert_eq!(ack.get("disagreement").unwrap().as_bool(), Some(false));
    let body = format!(
        r#"{{"skeleton": "{}", "platform": "evm", "label": "malicious"}}"#,
        served[7].1
    );
    let reply = client
        .request("POST", "/feedback", Some(&body))
        .expect("verdict-less feedback");
    assert_eq!(reply.status, 200, "{}", reply.body);
    let ack = Json::parse(&reply.body).expect("JSON");
    assert!(
        matches!(ack.get("disagreement"), Some(Json::Null)),
        "no served verdict → disagreement must be null, got {}",
        reply.body
    );

    assert_eq!(metric(addr, "scamdetect_feedback_total") as u64, 8);
    assert_eq!(
        metric(addr, "scamdetect_feedback_disagreements_total") as u64,
        expected_disagreements
    );
    assert_eq!(metric(addr, "scamdetect_feedback_log_records") as u64, 8);

    // ── retrain: fold the log into the corpus, train the candidate ───
    let records = FeedbackLog::replay(&log_path).expect("log replays");
    assert_eq!(records.len(), 8);
    let mut contracts = corpus.contracts().to_vec();
    let overridden = fold_feedback(&mut contracts, &records);
    assert!(
        overridden >= 1,
        "ground-truth-opposing corrections must override corpus labels"
    );
    let folded = Corpus::from_contracts(contracts);
    ScannerBuilder::new()
        .model(ModelKind::Classic(
            ClassicModel::LogisticRegression,
            FeatureKind::Unified,
        ))
        .train(&folded)
        .expect("candidate trains")
        .save(models_dir.join("cand-v1.scam"))
        .expect("candidate saves");

    // ── shadow: candidate scores mirrored traffic off-path ───────────
    let reply = http_call(
        addr,
        "POST",
        "/shadow/start",
        Some(r#"{"model": "cand-v1"}"#),
    )
    .expect("shadow start");
    assert_eq!(reply.status, 200, "{}", reply.body);
    let ack = Json::parse(&reply.body).expect("JSON");
    assert_eq!(ack.get("shadowing").unwrap().as_str(), Some("cand-v1"));
    let health = http_call(addr, "GET", "/healthz", None).expect("healthz");
    let health = Json::parse(&health.body).expect("JSON");
    assert_eq!(health.get("shadow").unwrap().as_str(), Some("cand-v1"));

    // Premature promotion must refuse without swapping.
    let reply = http_call(
        addr,
        "POST",
        "/shadow/promote",
        Some(r#"{"min_samples": 99999}"#),
    )
    .expect("premature promote");
    assert_eq!(reply.status, 409, "{}", reply.body);

    // Replay the traffic; every scan (cache hits included) mirrors.
    for contract in corpus.contracts() {
        let reply = client
            .request("POST", "/scan", Some(&hex_body(&contract.bytes)))
            .expect("mirrored scan");
        assert_eq!(reply.status, 200, "{}", reply.body);
    }
    let status = wait_for_shadow_samples(addr, 30);
    assert_eq!(status.get("candidate").unwrap().as_str(), Some("cand-v1"));
    assert!(metric(addr, "scamdetect_shadow_samples_total") as u64 >= 30);
    assert_eq!(metric(addr, "scamdetect_shadow_active") as u64, 1);
    let models = http_call(addr, "GET", "/models", None).expect("models");
    let models = Json::parse(&models.body).expect("JSON");
    assert_eq!(
        models
            .get("shadow")
            .and_then(|s| s.get("candidate"))
            .and_then(Json::as_str),
        Some("cand-v1"),
        "GET /models must report the shadow candidate"
    );

    // ── promote: thresholded, epoch-bumped hot swap ──────────────────
    let reply = http_call(
        addr,
        "POST",
        "/shadow/promote",
        Some(r#"{"min_samples": 30, "min_agreement": 0.0}"#),
    )
    .expect("promote");
    assert_eq!(reply.status, 200, "{}", reply.body);
    let outcome = Json::parse(&reply.body).expect("JSON");
    assert_eq!(outcome.get("promoted").unwrap().as_str(), Some("cand-v1"));
    assert_eq!(outcome.get("swapped").unwrap().as_bool(), Some(true));
    assert_eq!(outcome.get("model_epoch").unwrap().as_f64(), Some(1.0));

    let health = http_call(addr, "GET", "/healthz", None).expect("healthz");
    let health = Json::parse(&health.body).expect("JSON");
    assert_eq!(health.get("model").unwrap().as_str(), Some("cand-v1"));
    assert_eq!(health.get("shadow").unwrap().as_str(), Some("off"));
    let reply = http_call(addr, "GET", "/shadow", None).expect("shadow status");
    let status = Json::parse(&reply.body).expect("JSON");
    assert_eq!(status.get("active").unwrap().as_bool(), Some(false));
    let reply = client
        .request(
            "POST",
            "/scan",
            Some(&hex_body(&corpus.contracts()[0].bytes)),
        )
        .expect("post-promotion scan");
    let verdict = Json::parse(&reply.body).expect("JSON");
    assert_eq!(verdict.get("model").unwrap().as_str(), Some("cand-v1"));

    daemon.stop().expect("clean shutdown");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn concurrent_shadow_scoring_leaves_champion_scores_bit_identical() {
    let dir =
        std::env::temp_dir().join(format!("scamdetect-lifecycle-bits-{}", std::process::id()));
    let models_dir = dir.join("models");
    std::fs::create_dir_all(&models_dir).expect("models dir");
    train_artifact(&models_dir, "m-v1", 1, None);
    // Same weights, threshold 0 — the candidate flags everything, so
    // the shadow path does real disagreement bookkeeping while the
    // champion's arithmetic stays comparable bit for bit.
    train_artifact(&models_dir, "flagger", 1, Some(0.0));

    let mut config = ServeConfig::default();
    config.http.addr = "127.0.0.1:0".to_string();
    config.http.workers = 4;
    config.registry.models_dir = models_dir;
    config.registry.pinned = Some("m-v1".to_string());
    let daemon = spawn(config).expect("daemon spawns");
    let addr = daemon.addr;

    let corpus = Corpus::generate(&CorpusConfig {
        size: 12,
        seed: 9,
        proxy_duplicates: 4,
        ..CorpusConfig::default()
    });
    let bodies: Vec<String> = corpus
        .contracts()
        .iter()
        .map(|c| hex_body(&c.bytes))
        .collect();

    // Baseline bits with the shadow off.
    let mut client = HttpClient::connect(addr).expect("client connects");
    let baseline: Vec<u64> = bodies
        .iter()
        .map(|body| {
            let reply = client.request("POST", "/scan", Some(body)).expect("scan");
            assert_eq!(reply.status, 200, "{}", reply.body);
            Json::parse(&reply.body)
                .expect("JSON")
                .get("score")
                .unwrap()
                .as_f64()
                .unwrap()
                .to_bits()
        })
        .collect();

    let reply = http_call(
        addr,
        "POST",
        "/shadow/start",
        Some(r#"{"model": "flagger"}"#),
    )
    .expect("shadow start");
    assert_eq!(reply.status, 200, "{}", reply.body);

    // Concurrent traffic with the candidate mirroring every scan: the
    // wire answer must carry the champion's exact baseline bits.
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let bodies = &bodies;
            let baseline = &baseline;
            scope.spawn(move || {
                let mut client = HttpClient::connect(addr).expect("thread client");
                for round in 0..3 {
                    for (body, &expected) in bodies.iter().zip(baseline) {
                        let reply = client.request("POST", "/scan", Some(body)).expect("scan");
                        assert_eq!(reply.status, 200, "{}", reply.body);
                        let bits = Json::parse(&reply.body)
                            .expect("JSON")
                            .get("score")
                            .unwrap()
                            .as_f64()
                            .unwrap()
                            .to_bits();
                        assert_eq!(
                            bits, expected,
                            "round {round}: shadow scoring perturbed a served score"
                        );
                    }
                }
            });
        }
    });

    // The candidate really scored (rather than the queue dropping
    // everything), and stopping the session restores shadow-off
    // serving with the same bits.
    let status = wait_for_shadow_samples(addr, 1);
    assert!(status.get("samples").unwrap().as_f64().unwrap() >= 1.0);
    let reply = http_call(addr, "POST", "/shadow/stop", None).expect("shadow stop");
    assert_eq!(reply.status, 200, "{}", reply.body);
    let ack = Json::parse(&reply.body).expect("JSON");
    assert_eq!(ack.get("stopped").unwrap().as_bool(), Some(true));
    assert_eq!(metric(addr, "scamdetect_shadow_active") as u64, 0);
    for (body, &expected) in bodies.iter().zip(&baseline) {
        let reply = client.request("POST", "/scan", Some(body)).expect("scan");
        let bits = Json::parse(&reply.body)
            .expect("JSON")
            .get("score")
            .unwrap()
            .as_f64()
            .unwrap()
            .to_bits();
        assert_eq!(bits, expected, "stopping the shadow changed a score");
    }

    daemon.stop().expect("clean shutdown");
    std::fs::remove_dir_all(&dir).ok();
}
