//! Concurrent hot-swap consistency: scanner threads hammer the
//! registry while another thread swaps artifacts in a loop.
//!
//! The contract under test (the serving side of PR 4's "atomic
//! `Arc<Detector>` swap + cache clear" follow-up):
//!
//! 1. **No torn state.** Every score is bit-identical to what exactly
//!    one of the two models produces — never a blend, never garbage.
//! 2. **No stale cache.** The snapshot that scored a request also
//!    names the model id/fingerprint in that snapshot; a verdict cached
//!    under the old model must be unobservable through the new one.
//!    Because expected scores are looked up *by the snapshot's
//!    fingerprint*, a stale cached score would show up as a bit
//!    mismatch immediately.
//! 3. **Preparations survive.** The shared prep cache stays warm
//!    across swaps (that is its reason to exist) without perturbing a
//!    single bit of any verdict.

use scamdetect::{ClassicModel, FeatureKind, ModelKind, ScannerBuilder};
use scamdetect_dataset::{Corpus, CorpusConfig};
use scamdetect_serve::registry::{ModelRegistry, RegistryConfig};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("scamdetect-hotswap-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

fn train_artifact(seed: u64) -> Vec<u8> {
    let corpus = Corpus::generate(&CorpusConfig {
        size: 30,
        seed,
        ..CorpusConfig::default()
    });
    ScannerBuilder::new()
        .model(ModelKind::Classic(
            ClassicModel::LogisticRegression,
            FeatureKind::Unified,
        ))
        .train(&corpus)
        .expect("trains")
        .to_artifact()
        .expect("artifact")
        .to_bytes()
}

#[test]
fn swapping_under_concurrent_scans_never_tears_or_serves_stale() {
    let dir = temp_dir("consistency");
    let artifact_a = train_artifact(0xA);
    let artifact_b = train_artifact(0xB);
    let live = dir.join("live-v1.scam");
    std::fs::write(&live, &artifact_a).expect("seed artifact");

    // Probe set the scanners hammer. Includes both cold-prone and
    // duplicate-prone shapes (the generated corpus has proxy families).
    let probes: Vec<Vec<u8>> = Corpus::generate(&CorpusConfig {
        size: 8,
        seed: 0x5EED,
        ..CorpusConfig::default()
    })
    .contracts()
    .iter()
    .map(|c| c.bytes.clone())
    .collect();

    // Ground truth: what each model scores each probe, bit-exact,
    // keyed by artifact fingerprint. Computed on standalone scanners
    // with no caches shared with the registry.
    let mut expected: HashMap<u64, Vec<u64>> = HashMap::new();
    for bytes in [&artifact_a, &artifact_b] {
        let scanner = ScannerBuilder::new().load_bytes(bytes).expect("loads");
        let scores: Vec<u64> = probes
            .iter()
            .map(|p| {
                scanner
                    .scan(p)
                    .expect("probe scans")
                    .verdict
                    .malicious_probability
                    .to_bits()
            })
            .collect();
        expected.insert(scamdetect_evm::proxy::fnv1a(bytes), scores);
    }
    let expected_a = &expected[&scamdetect_evm::proxy::fnv1a(&artifact_a)];
    let expected_b = &expected[&scamdetect_evm::proxy::fnv1a(&artifact_b)];
    assert_ne!(
        expected_a, expected_b,
        "test premise: the two models must disagree on at least one probe"
    );

    let registry = Arc::new(
        ModelRegistry::open(RegistryConfig {
            models_dir: dir.clone(),
            cache_capacity: 64,
            prep_capacity: 64,
            ..RegistryConfig::default()
        })
        .expect("registry opens"),
    );

    const SWAPS: usize = 24;
    let done = AtomicBool::new(false);
    let scans_checked = AtomicU64::new(0);
    std::thread::scope(|scope| {
        // Scanner threads: hammer whatever snapshot is current and
        // hold every response against the snapshot's own ground truth.
        for worker in 0..3usize {
            let registry = Arc::clone(&registry);
            let (probes, expected, done, scans_checked) =
                (&probes, &expected, &done, &scans_checked);
            scope.spawn(move || {
                let mut i = worker; // stagger the probe order per thread
                while !done.load(Ordering::Relaxed) {
                    let snapshot = registry.model();
                    let truth = &expected[&snapshot.fingerprint];
                    let probe_idx = i % probes.len();
                    let report = snapshot.scanner.scan(&probes[probe_idx]).expect("scan");
                    assert_eq!(
                        report.verdict.malicious_probability.to_bits(),
                        truth[probe_idx],
                        "probe {probe_idx} scored by snapshot '{}' (epoch {}) does not \
                         match that snapshot's model — torn state or stale cache",
                        snapshot.id,
                        snapshot.epoch,
                    );
                    scans_checked.fetch_add(1, Ordering::Relaxed);
                    i += 1;
                }
            });
        }

        // Swap thread: alternate the live artifact's bytes and reload.
        let registry = Arc::clone(&registry);
        let live = &live;
        let (artifact_a, artifact_b) = (&artifact_a, &artifact_b);
        let done = &done;
        scope.spawn(move || {
            for swap in 0..SWAPS {
                let bytes = if swap % 2 == 0 {
                    artifact_b
                } else {
                    artifact_a
                };
                std::fs::write(live, bytes).expect("rewrite live artifact");
                let outcome = registry.reload().expect("reload");
                assert!(outcome.swapped, "bytes changed, swap {swap} must happen");
                // Let the scanners observe this model for a moment.
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
            done.store(true, Ordering::Relaxed);
        });
    });

    assert_eq!(registry.swap_count() as usize, SWAPS);
    let checked = scans_checked.load(Ordering::Relaxed);
    assert!(
        checked > SWAPS as u64,
        "scanner threads must actually have overlapped the swaps (checked {checked})"
    );
    // The shared prep cache survived every swap: warm skeletons are
    // still memoised even though every verdict cache died with its
    // snapshot.
    assert!(!registry.prep_cache().is_empty());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn swap_failure_leaves_the_old_model_serving_and_consistent() {
    let dir = temp_dir("failed-swap");
    let artifact = train_artifact(0xC);
    let live = dir.join("only-v1.scam");
    std::fs::write(&live, &artifact).expect("seed artifact");
    let registry = ModelRegistry::open(RegistryConfig {
        models_dir: dir.clone(),
        ..RegistryConfig::default()
    })
    .expect("opens");

    let probe = Corpus::generate(&CorpusConfig {
        size: 2,
        seed: 3,
        ..CorpusConfig::default()
    })
    .contracts()[0]
        .bytes
        .clone();
    let before = registry
        .model()
        .scanner
        .scan(&probe)
        .expect("scan")
        .verdict
        .malicious_probability;

    // Corrupt the artifact on disk: reload must fail, serving must not.
    std::fs::write(&live, b"not an artifact").expect("corrupt");
    assert!(registry.reload().is_err());
    assert_eq!(registry.swap_count(), 0);
    let after = registry
        .model()
        .scanner
        .scan(&probe)
        .expect("scan still works")
        .verdict
        .malicious_probability;
    assert_eq!(before.to_bits(), after.to_bits());
    std::fs::remove_dir_all(&dir).ok();
}
