//! Backend-parameterized conformance suite: every protocol behavior a
//! client can observe must be identical on [`ThreadedTransport`] and
//! [`EpollTransport`] — keep-alive reuse, pipelining, partial reads
//! split at every byte boundary, slowloris → 408, truncated body →
//! 400, admission shed → 429, size limits, panic isolation, and the
//! per-connection request cap. The cases drive raw `TcpStream`s so the
//! wire bytes themselves are pinned, and each runs against both
//! backends (epoll cases skip on non-Linux, where `bind` reports
//! `Unsupported`).
//!
//! The epoll backend's reason to exist gets its own proof: a soak that
//! parks **5000 idle keep-alive connections** on one server and
//! asserts the process thread count stays at worker-pool size — under
//! the threaded backend those connections would each pin a thread.
//!
//! [`ThreadedTransport`]: scamdetect_serve::ThreadedTransport
//! [`EpollTransport`]: scamdetect_serve::EpollTransport

use scamdetect_serve::http::{
    Handler, HttpConfig, HttpRequest, HttpResponse, HttpServer, LoadGauge, ShutdownHandle,
    TransportKind,
};
use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A conformance server running one transport on an ephemeral port.
struct TestServer {
    addr: SocketAddr,
    shutdown: ShutdownHandle,
    load: Arc<LoadGauge>,
    thread: Option<std::thread::JoinHandle<scamdetect_serve::http::ServerStats>>,
}

impl TestServer {
    /// Binds and serves the conformance handler on `kind`; `None` when
    /// the transport is unsupported on this platform (skip the case).
    fn start(kind: TransportKind, tune: impl FnOnce(&mut HttpConfig)) -> Option<TestServer> {
        let mut config = HttpConfig {
            addr: "127.0.0.1:0".to_string(),
            transport: kind,
            workers: 2,
            ..HttpConfig::default()
        };
        tune(&mut config);
        let server = match HttpServer::bind(config) {
            Ok(server) => server,
            Err(e) if e.kind() == ErrorKind::Unsupported => {
                eprintln!("skipping {kind}: {e}");
                return None;
            }
            Err(e) => panic!("bind failed: {e}"),
        };
        let addr = server.local_addr();
        let shutdown = server.shutdown_handle();
        let load = server.load_gauge();
        let thread = std::thread::spawn(move || server.serve(conformance_handler()));
        Some(TestServer {
            addr,
            shutdown,
            load,
            thread: Some(thread),
        })
    }

    fn stop(mut self) {
        self.shutdown.shutdown();
        self.thread
            .take()
            .expect("not yet joined")
            .join()
            .expect("server thread exits cleanly");
    }
}

fn conformance_handler() -> Handler {
    Arc::new(
        |request: &HttpRequest| match (request.method.as_str(), request.path.as_str()) {
            ("GET", "/ok") => HttpResponse::text(200, "ok"),
            ("POST", "/echo") => {
                HttpResponse::text(200, String::from_utf8_lossy(&request.body).into_owned())
            }
            ("GET", "/sleep") => {
                let ms: u64 = request
                    .query
                    .strip_prefix("ms=")
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(500);
                std::thread::sleep(Duration::from_millis(ms));
                HttpResponse::text(200, "slept")
            }
            ("GET", "/panic") => panic!("conformance-deliberate-panic"),
            _ => HttpResponse::error(404, "no such route"),
        },
    )
}

/// Both backends, in one place: a case runs against each available
/// transport with its name folded into assertion messages.
fn on_both_transports(tune: fn(&mut HttpConfig), case: fn(&TestServer, &str)) {
    for kind in [TransportKind::Threaded, TransportKind::Epoll] {
        let Some(server) = TestServer::start(kind, tune) else {
            continue;
        };
        case(&server, kind.as_str());
        server.stop();
    }
}

fn connect(addr: SocketAddr) -> TcpStream {
    let stream = TcpStream::connect(addr).expect("connects");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    stream
}

/// Reads exactly one HTTP/1.1 response (headers + `Content-Length`
/// body) off the stream, leaving pipelined successors unread.
fn read_one_response(stream: &mut TcpStream) -> String {
    let mut raw = Vec::new();
    let mut byte = [0u8; 1];
    // Byte-at-a-time until the blank line, so we never consume into a
    // following pipelined response.
    while !raw.ends_with(b"\r\n\r\n") {
        match stream.read(&mut byte) {
            Ok(1) => raw.push(byte[0]),
            Ok(_) => panic!("connection closed mid-response-header: {raw:?}"),
            Err(e) => panic!("read failed mid-response-header: {e}"),
        }
    }
    let head = String::from_utf8(raw.clone()).expect("response head is utf-8");
    let content_length: usize = head
        .lines()
        .find_map(|l| l.strip_prefix("Content-Length: "))
        .map(|v| v.trim().parse().expect("content-length parses"))
        .unwrap_or(0);
    let mut body = vec![0u8; content_length];
    stream.read_exact(&mut body).expect("response body arrives");
    raw.extend_from_slice(&body);
    String::from_utf8(raw).expect("response is utf-8")
}

/// Reads everything until the server closes the connection.
fn read_to_close(stream: &mut TcpStream) -> String {
    let mut reply = Vec::new();
    let mut chunk = [0u8; 1024];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) | Err(_) => break,
            Ok(n) => reply.extend_from_slice(&chunk[..n]),
        }
    }
    String::from_utf8_lossy(&reply).into_owned()
}

fn status_of(response: &str) -> u16 {
    response
        .strip_prefix("HTTP/1.1 ")
        .and_then(|r| r.get(..3))
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status line in: {response:?}"))
}

// ───────────────────────── the conformance cases ─────────────────────────

#[test]
fn keep_alive_connection_serves_many_requests() {
    on_both_transports(
        |_| {},
        |server, kind| {
            let mut stream = connect(server.addr);
            for i in 0..5 {
                let body = format!("hello-{i}");
                let request = format!(
                    "POST /echo HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{body}",
                    body.len()
                );
                stream.write_all(request.as_bytes()).expect("writes");
                let response = read_one_response(&mut stream);
                assert_eq!(status_of(&response), 200, "[{kind}] request {i}");
                assert!(
                    response.ends_with(&body),
                    "[{kind}] echo mismatch on request {i}: {response:?}"
                );
                assert!(
                    response.contains("Connection: keep-alive"),
                    "[{kind}] connection must persist: {response:?}"
                );
            }
        },
    );
}

#[test]
fn pipelined_requests_answered_in_order() {
    on_both_transports(
        |_| {},
        |server, kind| {
            let mut stream = connect(server.addr);
            // Two complete requests plus the head of a third in ONE
            // write: responses must come back in order and the parser
            // must hold the partial third until its body arrives.
            let burst = "POST /echo HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nfirst\
                         GET /ok HTTP/1.1\r\nHost: x\r\n\r\n\
                         POST /echo HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nthi";
            stream.write_all(burst.as_bytes()).expect("writes");
            let first = read_one_response(&mut stream);
            assert_eq!(status_of(&first), 200, "[{kind}]");
            assert!(first.ends_with("first"), "[{kind}] got: {first:?}");
            let second = read_one_response(&mut stream);
            assert_eq!(status_of(&second), 200, "[{kind}]");
            assert!(second.ends_with("ok"), "[{kind}] got: {second:?}");
            // Finish the third request only now.
            stream.write_all(b"rd").expect("writes");
            let third = read_one_response(&mut stream);
            assert_eq!(status_of(&third), 200, "[{kind}]");
            assert!(third.ends_with("third"), "[{kind}] got: {third:?}");
        },
    );
}

#[test]
fn request_fragmented_at_every_byte_boundary_still_parses() {
    on_both_transports(
        |config| {
            // Dribbling ~80 bytes with pauses must not trip deadlines.
            config.request_deadline = Duration::from_secs(30);
        },
        |server, kind| {
            let mut stream = connect(server.addr);
            let request = "POST /echo HTTP/1.1\r\nHost: x\r\nContent-Length: 9\r\n\r\nfragments";
            // One byte per write with a real pause every few bytes, so
            // the server observes many partial reads across readiness
            // events (TCP may coalesce the rest — that variety is the
            // point).
            for (i, byte) in request.as_bytes().iter().enumerate() {
                stream
                    .write_all(std::slice::from_ref(byte))
                    .expect("writes");
                if i % 7 == 0 {
                    std::thread::sleep(Duration::from_millis(3));
                }
            }
            let response = read_one_response(&mut stream);
            assert_eq!(status_of(&response), 200, "[{kind}]");
            assert!(
                response.ends_with("fragments"),
                "[{kind}] got: {response:?}"
            );
        },
    );
}

#[test]
fn slowloris_dribble_gets_408_with_retry_after() {
    on_both_transports(
        |config| {
            config.request_deadline = Duration::from_millis(400);
            config.retry_after_s = 3;
        },
        |server, kind| {
            let mut stream = connect(server.addr);
            let started = Instant::now();
            // One header byte per 100ms: each byte defeats the idle
            // timeout, so only the request deadline can end this.
            for byte in b"GET /ok HTTP/1.1\r\nX-Slow: ".iter() {
                if stream.write_all(std::slice::from_ref(byte)).is_err() {
                    break; // server already gave up on us — expected
                }
                std::thread::sleep(Duration::from_millis(100));
                if started.elapsed() > Duration::from_secs(3) {
                    break;
                }
            }
            let response = read_to_close(&mut stream);
            assert_eq!(status_of(&response), 408, "[{kind}] got: {response:?}");
            assert!(
                response.contains("Retry-After: 3"),
                "[{kind}] 408 must carry Retry-After: {response:?}"
            );
        },
    );
}

#[test]
fn truncated_body_gets_400_not_a_hang() {
    on_both_transports(
        |_| {},
        |server, kind| {
            let mut stream = connect(server.addr);
            stream
                .write_all(b"POST /echo HTTP/1.1\r\nHost: x\r\nContent-Length: 50\r\n\r\nonly-this")
                .expect("writes");
            stream.shutdown(Shutdown::Write).expect("half-close");
            let response = read_to_close(&mut stream);
            assert_eq!(status_of(&response), 400, "[{kind}] got: {response:?}");
            assert!(
                response.contains("truncated request body"),
                "[{kind}] got: {response:?}"
            );
        },
    );
}

#[test]
fn truncated_headers_get_400_not_a_hang() {
    on_both_transports(
        |_| {},
        |server, kind| {
            let mut stream = connect(server.addr);
            stream
                .write_all(b"GET /ok HTTP/1.1\r\nHost: incompl")
                .expect("writes");
            stream.shutdown(Shutdown::Write).expect("half-close");
            let response = read_to_close(&mut stream);
            assert_eq!(status_of(&response), 400, "[{kind}] got: {response:?}");
            assert!(
                response.contains("truncated request"),
                "[{kind}] got: {response:?}"
            );
        },
    );
}

#[test]
fn admission_gate_sheds_past_the_watermark_with_429() {
    on_both_transports(
        |config| {
            config.workers = 1;
            config.shed_watermark = 1;
            config.retry_after_s = 2;
        },
        |server, kind| {
            // Occupy the single worker…
            let mut busy = connect(server.addr);
            busy.write_all(b"GET /sleep?ms=1500 HTTP/1.1\r\nHost: x\r\n\r\n")
                .expect("writes");
            std::thread::sleep(Duration::from_millis(300));
            // …queue one complete request behind it (reaches the
            // watermark on both backends: a queued connection under
            // threads, a queued parsed request under epoll)…
            let mut queued = connect(server.addr);
            queued
                .write_all(b"GET /ok HTTP/1.1\r\nHost: x\r\n\r\n")
                .expect("writes");
            std::thread::sleep(Duration::from_millis(300));
            // …so the next arrival must be shed immediately.
            let mut shed = connect(server.addr);
            shed.write_all(b"GET /ok HTTP/1.1\r\nHost: x\r\n\r\n")
                .expect("writes");
            let response = read_to_close(&mut shed);
            assert_eq!(status_of(&response), 429, "[{kind}] got: {response:?}");
            assert!(
                response.contains("Retry-After: 2"),
                "[{kind}] 429 must carry Retry-After: {response:?}"
            );
            assert!(
                server.load.shed_total.load(Ordering::Relaxed) >= 1,
                "[{kind}] shed counter must record the rejection"
            );
            // The accepted requests still complete.
            let busy_response = read_one_response(&mut busy);
            assert_eq!(status_of(&busy_response), 200, "[{kind}]");
            let queued_response = read_one_response(&mut queued);
            assert_eq!(status_of(&queued_response), 200, "[{kind}]");
        },
    );
}

#[test]
fn oversized_headers_and_body_are_rejected() {
    on_both_transports(
        |config| {
            config.max_header_bytes = 256;
            config.max_body_bytes = 64;
        },
        |server, kind| {
            // 431: a header block that can never fit the cap.
            let mut stream = connect(server.addr);
            let request = format!("GET /ok HTTP/1.1\r\nX-Big: {}\r\n\r\n", "a".repeat(512));
            stream.write_all(request.as_bytes()).expect("writes");
            let response = read_to_close(&mut stream);
            assert_eq!(status_of(&response), 431, "[{kind}] got: {response:?}");
            assert!(
                response.contains("header block too large"),
                "[{kind}] got: {response:?}"
            );

            // 413: an honest Content-Length past the body cap, refused
            // before the body is even sent.
            let mut stream = connect(server.addr);
            stream
                .write_all(b"POST /echo HTTP/1.1\r\nHost: x\r\nContent-Length: 4096\r\n\r\n")
                .expect("writes");
            let response = read_to_close(&mut stream);
            assert_eq!(status_of(&response), 413, "[{kind}] got: {response:?}");
            assert!(
                response.contains("request body too large"),
                "[{kind}] got: {response:?}"
            );
        },
    );
}

#[test]
fn handler_panic_stays_on_its_request() {
    on_both_transports(
        |_| {},
        |server, kind| {
            let mut stream = connect(server.addr);
            stream
                .write_all(b"GET /panic HTTP/1.1\r\nHost: x\r\n\r\n")
                .expect("writes");
            let response = read_one_response(&mut stream);
            assert_eq!(status_of(&response), 500, "[{kind}] got: {response:?}");
            assert!(
                response.contains("handler panicked"),
                "[{kind}] got: {response:?}"
            );
            // The worker survived and the connection is still usable.
            stream
                .write_all(b"GET /ok HTTP/1.1\r\nHost: x\r\n\r\n")
                .expect("writes");
            let response = read_one_response(&mut stream);
            assert_eq!(status_of(&response), 200, "[{kind}] got: {response:?}");
        },
    );
}

#[test]
fn request_cap_closes_the_connection_honestly() {
    on_both_transports(
        |config| {
            config.max_requests_per_conn = 2;
        },
        |server, kind| {
            let mut stream = connect(server.addr);
            stream
                .write_all(b"GET /ok HTTP/1.1\r\nHost: x\r\n\r\n")
                .expect("writes");
            let first = read_one_response(&mut stream);
            assert!(
                first.contains("Connection: keep-alive"),
                "[{kind}] first of two: {first:?}"
            );
            stream
                .write_all(b"GET /ok HTTP/1.1\r\nHost: x\r\n\r\n")
                .expect("writes");
            let rest = read_to_close(&mut stream);
            assert_eq!(status_of(&rest), 200, "[{kind}]");
            assert!(
                rest.contains("Connection: close"),
                "[{kind}] cap-exhausting response must announce the close: {rest:?}"
            );
        },
    );
}

#[test]
fn http_1_0_defaults_to_close() {
    on_both_transports(
        |_| {},
        |server, kind| {
            let mut stream = connect(server.addr);
            stream
                .write_all(b"GET /ok HTTP/1.0\r\nHost: x\r\n\r\n")
                .expect("writes");
            let response = read_to_close(&mut stream);
            assert_eq!(status_of(&response), 200, "[{kind}]");
            assert!(
                response.contains("Connection: close"),
                "[{kind}] HTTP/1.0 must not keep-alive by default: {response:?}"
            );
        },
    );
}

// ───────────────────────────── the soak ─────────────────────────────

#[cfg(target_os = "linux")]
fn current_thread_count() -> usize {
    let status = std::fs::read_to_string("/proc/self/status").expect("proc status");
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .map(|v| v.trim().parse().expect("thread count parses"))
        .expect("Threads line present")
}

/// The tentpole's load-bearing claim: 5000 idle keep-alive connections
/// on the epoll backend cost epoll registrations, not threads. The
/// threaded backend would need 5000 pool workers for the same park.
#[test]
#[cfg(target_os = "linux")]
fn epoll_holds_5000_idle_connections_with_a_pool_sized_thread_count() {
    const IDLE_CONNECTIONS: usize = 5000;
    let server = TestServer::start(TransportKind::Epoll, |config| {
        config.workers = 2;
        // Idle keep-alive connections must outlive the whole soak.
        config.read_timeout = Duration::from_secs(120);
        config.request_deadline = Duration::from_secs(120);
    })
    .expect("epoll is supported on linux");

    let before = current_thread_count();
    let mut herd = Vec::with_capacity(IDLE_CONNECTIONS);
    for i in 0..IDLE_CONNECTIONS {
        // Loopback connects can transiently fail while the accept
        // queue churns; retry briefly rather than flake.
        let mut attempt = 0;
        let stream = loop {
            match TcpStream::connect(server.addr) {
                Ok(stream) => break stream,
                Err(e) if attempt < 50 => {
                    attempt += 1;
                    std::thread::sleep(Duration::from_millis(10));
                    if attempt == 50 {
                        panic!("connect {i} kept failing: {e}");
                    }
                }
                Err(e) => panic!("connect {i} failed: {e}"),
            }
        };
        // First request proves the connection is admitted and served;
        // afterwards it parks idle in keep-alive.
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("timeout");
        herd.push(stream);
    }
    // Exercise a sample end-to-end so "held" means "serving", not just
    // "open": every probed connection answers on the first try.
    for i in (0..IDLE_CONNECTIONS).step_by(IDLE_CONNECTIONS / 25) {
        let stream = &mut herd[i];
        stream
            .write_all(b"GET /ok HTTP/1.1\r\nHost: x\r\n\r\n")
            .expect("idle connection writes");
        let response = read_one_response(stream);
        assert_eq!(status_of(&response), 200, "connection {i} must be live");
    }

    let during = current_thread_count();
    let grown = during.saturating_sub(before);
    // The budget: the event loop + shedder + 2 pool workers, plus slack
    // for the test harness. 5000 parked connections must contribute
    // *zero* threads — any per-connection thread blows this bound.
    assert!(
        grown <= 16,
        "thread count grew by {grown} (from {before} to {during}) while \
         {IDLE_CONNECTIONS} connections were parked — the epoll backend must \
         not spend threads on idle connections"
    );

    drop(herd);
    server.stop();
}
