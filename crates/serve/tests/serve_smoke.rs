//! The CI serve-smoke gate: a real daemon on an ephemeral port serving
//! the repo's committed golden artifact fixture, driven over plain
//! `std::net::TcpStream`.
//!
//! What it pins, end to end over the wire:
//!
//! * `/healthz` answers and names the model.
//! * `/scan` reproduces the golden fixture's committed score
//!   **bit-for-bit through JSON** (the wire format's float rendering is
//!   part of the serving contract) with the committed threshold's
//!   verdict, and a re-scan reports a cache hit.
//! * `/batch` deduplicates within the request.
//! * `/metrics` exposes the traffic in Prometheus text format.
//! * `POST /models/reload` hot-swaps to a newly dropped artifact.
//! * Shutdown is clean: the server drains, its thread joins, the port
//!   closes.

use scamdetect_dataset::{Corpus, CorpusConfig};
use scamdetect_serve::client::{http_call, HttpClient};
use scamdetect_serve::daemon::{spawn, ServeConfig};
use scamdetect_serve::json::Json;
use scamdetect_serve::wire::encode_hex;

/// The committed fixture (shared with `tests/model_artifact.rs` at the
/// workspace root, which pins the same constants against the library).
const GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../tests/fixtures/golden-logreg-unified-v1.scam"
);
const GOLDEN_SEED: u64 = 0x601D;
const GOLDEN_THRESHOLD: f64 = 0.625;
/// P(malicious) bit patterns of the golden model on the four probe
/// contracts, identical to the library-level golden test.
const GOLDEN_SCORE_BITS: [u64; 4] = [
    0x3FE5B791C7F65C58, // 0.6786583810343343 → malicious at 0.625
    0x3FEBD01B2729C1DE, // 0.8691535725502566 → malicious
    0x3F7B05F5FE2E742D, // 0.006597481641532216 → benign
    0x3F849BF9437DA553, // 0.010063121196895486 → benign
];

fn golden_probe_corpus() -> Corpus {
    Corpus::generate(&CorpusConfig {
        size: 4,
        seed: GOLDEN_SEED ^ 1,
        ..CorpusConfig::default()
    })
}

fn hex_body(bytes: &[u8]) -> String {
    format!(r#"{{"bytecode": "{}"}}"#, encode_hex(bytes))
}

#[test]
fn daemon_serves_the_golden_artifact_reloads_and_shuts_down_cleanly() {
    // A models dir holding the committed golden fixture.
    let dir = std::env::temp_dir().join(format!("scamdetect-smoke-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("models dir");
    let golden_bytes = std::fs::read(GOLDEN_PATH).expect("golden fixture is committed");
    std::fs::write(dir.join("golden-v1.scam"), &golden_bytes).expect("stage artifact");

    let mut config = ServeConfig::default();
    config.http.addr = "127.0.0.1:0".to_string();
    config.http.workers = 2;
    config.registry.models_dir = dir.clone();
    let daemon = spawn(config).expect("daemon spawns");
    let addr = daemon.addr;

    // ── /healthz ────────────────────────────────────────────────────
    let health = http_call(addr, "GET", "/healthz", None).expect("healthz");
    assert_eq!(health.status, 200);
    let health = Json::parse(&health.body).expect("healthz is JSON");
    assert_eq!(health.get("status").unwrap().as_str(), Some("ok"));
    assert_eq!(health.get("model").unwrap().as_str(), Some("golden-v1"));

    // ── /scan: every golden probe, bit-exact over the wire ──────────
    let probes = golden_probe_corpus();
    let mut client = HttpClient::connect(addr).expect("client connects");
    for (contract, &expected_bits) in probes.contracts().iter().zip(&GOLDEN_SCORE_BITS) {
        let reply = client
            .request("POST", "/scan", Some(&hex_body(&contract.bytes)))
            .expect("scan");
        assert_eq!(reply.status, 200, "{}", reply.body);
        let verdict = Json::parse(&reply.body).expect("scan response is JSON");
        let score = verdict.get("score").unwrap().as_f64().unwrap();
        assert_eq!(
            score.to_bits(),
            expected_bits,
            "wire score {score} drifted from the committed golden bits"
        );
        let expected_verdict = if f64::from_bits(expected_bits) >= GOLDEN_THRESHOLD {
            "malicious"
        } else {
            "benign"
        };
        assert_eq!(
            verdict.get("verdict").unwrap().as_str(),
            Some(expected_verdict)
        );
        assert_eq!(
            verdict.get("threshold").unwrap().as_f64(),
            Some(GOLDEN_THRESHOLD),
            "the artifact's saved threshold must ride into serving"
        );
        assert_eq!(verdict.get("model").unwrap().as_str(), Some("golden-v1"));
        assert_eq!(verdict.get("cache").unwrap().as_str(), Some("miss"));
    }
    // Re-scan: the verdict cache answers.
    let reply = client
        .request(
            "POST",
            "/scan",
            Some(&hex_body(&probes.contracts()[0].bytes)),
        )
        .expect("re-scan");
    let verdict = Json::parse(&reply.body).expect("JSON");
    assert_eq!(verdict.get("cache").unwrap().as_str(), Some("hit"));

    // ── /batch: in-request dedup ────────────────────────────────────
    let duplicate = {
        let hex = encode_hex(&probes.contracts()[1].bytes);
        format!(
            r#"{{"requests": [{{"bytecode": "{hex}"}}, {{"bytecode": "{hex}"}}, {{"bytecode": "zz"}}]}}"#
        )
    };
    let reply = client
        .request("POST", "/batch", Some(&duplicate))
        .expect("batch");
    assert_eq!(reply.status, 200, "{}", reply.body);
    let batch = Json::parse(&reply.body).expect("JSON");
    let results = batch.get("results").unwrap().as_array().unwrap();
    assert_eq!(results.len(), 3);
    assert_eq!(
        results[0].get("score").unwrap().as_f64().unwrap().to_bits(),
        GOLDEN_SCORE_BITS[1]
    );
    assert_eq!(results[1].get("cache").unwrap().as_str(), Some("hit"));
    assert!(
        results[2].get("error").is_some(),
        "a malformed slot degrades alone: {}",
        reply.body
    );

    // ── /metrics ────────────────────────────────────────────────────
    let metrics = http_call(addr, "GET", "/metrics", None).expect("metrics");
    assert_eq!(metrics.status, 200);
    assert!(metrics.body.contains("scamdetect_requests_total 5"));
    assert!(metrics.body.contains("scamdetect_scan_latency_p99_us"));
    assert!(metrics
        .body
        .contains("scamdetect_model_info{model=\"golden-v1\"} 1"));

    // ── hot reload: drop a v2 artifact, swap, verify it serves ──────
    std::fs::write(dir.join("golden-v2.scam"), &golden_bytes).expect("stage v2");
    let reply = http_call(addr, "POST", "/models/reload", None).expect("reload");
    assert_eq!(reply.status, 200, "{}", reply.body);
    let outcome = Json::parse(&reply.body).expect("JSON");
    assert_eq!(outcome.get("swapped").unwrap().as_bool(), Some(true));
    assert_eq!(outcome.get("active").unwrap().as_str(), Some("golden-v2"));
    let reply = client
        .request(
            "POST",
            "/scan",
            Some(&hex_body(&probes.contracts()[0].bytes)),
        )
        .expect("post-swap scan");
    let verdict = Json::parse(&reply.body).expect("JSON");
    assert_eq!(verdict.get("model").unwrap().as_str(), Some("golden-v2"));
    // Same weights in v2, so the same committed bits — via the swapped
    // snapshot and the surviving prep cache.
    assert_eq!(
        verdict.get("score").unwrap().as_f64().unwrap().to_bits(),
        GOLDEN_SCORE_BITS[0]
    );
    let models = http_call(addr, "GET", "/models", None).expect("models");
    let models = Json::parse(&models.body).expect("JSON");
    assert_eq!(models.get("active").unwrap().as_str(), Some("golden-v2"));
    assert_eq!(models.get("models").unwrap().as_array().unwrap().len(), 2);

    // ── clean shutdown ──────────────────────────────────────────────
    let stats = daemon.stop().expect("server thread joins without panic");
    assert!(stats.requests >= 10);
    assert!(
        std::net::TcpStream::connect_timeout(&addr, std::time::Duration::from_millis(300)).is_err(),
        "the port must be closed after shutdown"
    );
    std::fs::remove_dir_all(&dir).ok();
}
