//! The daemon's JSON wire schema: scan requests in, verdicts out.
//!
//! # Scan request (`POST /scan`, and each element of `POST /batch`'s
//! `requests` array)
//!
//! ```json
//! {
//!   "bytecode": "0x363d3d373d3d3d363d73…",
//!   "encoding": "hex",
//!   "platform": "evm"
//! }
//! ```
//!
//! * `bytecode` (required): the contract bytes. Hex by default
//!   (optional `0x` prefix, embedded whitespace ignored); set
//!   `"encoding": "base64"` for standard base64 (URL-safe alphabet and
//!   missing padding tolerated).
//! * `platform` (optional): `"evm"` or `"wasm"` pins the platform;
//!   omitted = magic-byte auto-detection.
//!
//! Unknown fields are ignored (tolerant reader).
//!
//! # Scan response
//!
//! ```json
//! {
//!   "verdict": "malicious",
//!   "score": 0.9731,
//!   "threshold": 0.5,
//!   "platform": "evm",
//!   "cache": "miss",
//!   "model": "rf-v3",
//!   "model_epoch": 2,
//!   "skeleton": "9f86d081884c7d65",
//!   "blocks": 12,
//!   "instructions": 230,
//!   "elapsed_us": 412
//! }
//! ```
//!
//! * `verdict`: `"malicious"` | `"benign"`; `score` is P(malicious),
//!   thresholded by `threshold` (both returned so clients can re-judge).
//!   `score` round-trips bit-exactly through the JSON number (shortest
//!   round-trip float formatting).
//! * `cache`: `"miss"` | `"hit"` (cross-request verdict cache) |
//!   `"batch"` (deduplicated within one batch request).
//! * `model` / `model_epoch`: exactly which registry snapshot scored
//!   this request — during a hot swap, in-flight requests finish on
//!   their old snapshot and say so.
//! * `skeleton`: the dedup fingerprint, 16 lowercase hex digits.
//!
//! A failed scan inside `/batch` yields `{"error": "<message>"}` in
//! that slot; other slots are unaffected. `POST /scan` reports the
//! same envelope with status 422.
//!
//! # Batch request / response (`POST /batch`)
//!
//! ```json
//! {"requests": [{"bytecode": "…"}, {"bytecode": "…"}]}
//! {"results": [{…scan response…}, {"error": "…"}]}
//! ```
//!
//! # Health (`GET /healthz`)
//!
//! Always HTTP 200 while the daemon is up — old probes may keep
//! checking only the status code. The body carries the snapshot a
//! fleet router needs for staleness-aware decisions:
//!
//! ```json
//! {
//!   "status": "ok",
//!   "model": "rf-v3",
//!   "model_epoch": 2,
//!   "kind": "random_forest[unified]",
//!   "threshold": 0.5,
//!   "swaps": 2,
//!   "uptime_s": 86400,
//!   "verdict_cache_entries": 4096,
//!   "prep_cache_entries": 4096,
//!   "shadow": "off"
//! }
//! ```
//!
//! `shadow` names the candidate of the live shadow session, or the
//! string `"off"` — a router can see mid-evaluation replicas at a
//! glance.
//!
//! # Artifact push (`PUT /models/<id>`)
//!
//! The request body is the **raw binary** [`ModelArtifact`] bytes (the
//! same `<id>.scam` file `scamdetect-cli train --save` writes) — no
//! JSON envelope, no base64. The optional `x-artifact-fnv1a` header is
//! an end-to-end checksum handshake: FNV-1a over the whole body, hex
//! (`0x` prefix optional). The daemon re-hashes what it received and
//! answers **409** on mismatch, installing nothing; it also parses the
//! artifact (which verifies the embedded per-section checksums) before
//! the atomic write, answering **422** for structurally broken bytes
//! and **400** for an unusable id (want 1–64 chars of `[A-Za-z0-9._-]`,
//! not starting with `.`). Success:
//!
//! ```json
//! {"installed": "rf-v4", "bytes": 18204,
//!  "fnv1a": "0x1a2b3c4d5e6f7a8b", "replaced": false}
//! ```
//!
//! Installing never swaps: the artifact lands in the models directory
//! and waits for a reload. `DELETE /models/<id>` removes an idle
//! artifact (409 when `<id>` is being served, 404 when absent) — the
//! cleanup half of an aborted rollout.
//!
//! # Reload (`POST /models/reload`)
//!
//! Empty body: re-resolve the models directory (configured pin, else
//! lexicographically last stem) and swap if the artifact changed. With
//! a body `{"model": "<id>"}`: a one-shot pin to exactly that artifact
//! regardless of sort order — how a rollout canaries one replica onto
//! a pushed candidate and how an abort rolls it back. Response either
//! way:
//!
//! ```json
//! {"swapped": true, "active": "rf-v4", "model_epoch": 3}
//! ```
//!
//! # Feedback (`POST /feedback`)
//!
//! Records a ground-truth correction into the append-only feedback
//! log (409 unless the daemon was started with `--feedback-log`).
//! Two shapes, by subject:
//!
//! ```json
//! {"bytecode": "0x6001600155", "label": "malicious"}
//! {"skeleton": "9f86d081884c7d65", "platform": "evm",
//!  "label": "benign", "score": 0.97, "served_verdict": "malicious"}
//! ```
//!
//! * With `bytecode`, the daemon re-scores the contract on the current
//!   champion itself: the record's fingerprint is the scan's skeleton,
//!   its score the champion's, and *disagreement* is judged against
//!   the champion's own verdict (422 when the bytes cannot be
//!   scanned).
//! * With `skeleton` (16 hex digits, `0x` tolerated), `platform`
//!   (`"evm"` | `"wasm"`) is required, `score` and `served_verdict`
//!   are optional — clients that kept the original scan response can
//!   file corrections without resending bytecode. Without
//!   `served_verdict`, disagreement is unknown and reported `null`.
//! * `label` (required): `"malicious"` | `"benign"` — the corrected
//!   ground truth.
//!
//! ```json
//! {"recorded": true, "skeleton": "9f86d081884c7d65",
//!  "platform": "evm", "disagreement": true, "log_records": 42}
//! ```
//!
//! Each record also captures the serving model's id and epoch, so a
//! folded retrain can be traced to the champion it corrects.
//! `scamdetect-cli retrain --feedback-log <path>` replays the log and
//! folds it into the training corpus (last record wins per
//! fingerprint), deterministically given the seed and the log.
//!
//! # Shadow scoring (`/shadow`, `/shadow/start`, `/shadow/stop`,
//! `/shadow/promote`)
//!
//! A shadow session loads a **candidate** artifact beside the serving
//! champion and mirrors every `/scan` and `/batch` subject to it off
//! the response path — the champion alone answers the wire, and its
//! scores stay bit-identical whether a shadow is running or not.
//!
//! * `POST /shadow/start`, body `{"model": "<id>"}`: load `<id>` from
//!   the models directory as the candidate (404 unknown, 409 when it
//!   is the champion, 422 when the artifact is broken). Response:
//!   `{"shadowing": "<id>", "candidate_kind": …, "candidate_epoch": …}`.
//! * `GET /shadow`: `{"active": false}` or the live session summary —
//!   candidate identity, `samples`, `agreements`, `disagreements`,
//!   `dropped` (mirror-queue overflow: mirroring sheds before it ever
//!   blocks serving), `agreement` ratio, and the mean candidate-vs-
//!   champion `latency_delta_us`.
//! * `POST /shadow/promote`, body `{"min_samples": 32,
//!   "min_agreement": 0.95}` (both optional, defaults shown): refuse
//!   with 409 until the candidate has scored at least `min_samples`
//!   mirrored requests at `min_agreement` champion agreement; then
//!   perform the same epoch-bumped hot swap as a reload and end the
//!   session. Response: `{"promoted": "<id>", "swapped": true,
//!   "model_epoch": …}`.
//! * `POST /shadow/stop`: tear the session down, candidate never
//!   served — `{"stopped": true}`.
//!
//! Session counters reset per session and gate promotion; the
//! monotonic `scamdetect_shadow_*` counters on `/metrics` never reset
//! and track the daemon's lifetime mirroring volume.
//!
//! # Request traces (`GET /trace/recent`, `GET /trace/<id>`)
//!
//! With tracing enabled (`--trace-sample` > 0), every response carries
//! an `x-trace-id` header, and the traces that were *kept* — head
//! sampled, slower than the slow threshold, or forced by the client
//! sending its own `x-trace-id` request header — are retrievable while
//! they remain in the bounded recent-trace ring.
//!
//! `GET /trace/recent` lists summaries, newest first (at most
//! [`TRACE_RECENT_LIMIT`]), plus the ring's lifetime keep/drop
//! counters. 409 while tracing is disabled.
//!
//! ```json
//! {"kept": 41, "dropped": 0,
//!  "traces": [{"trace_id": "9f86d081884c7d65",
//!              "unix_start_us": 1723100000000000,
//!              "total_us": 1412, "slow": false, "sampled": true,
//!              "forced": false, "spans": 9}]}
//! ```
//!
//! `GET /trace/<id>` (id: the 16-hex-digit `x-trace-id`, shorter forms
//! tolerated) returns the full span tree, or 404 once the trace has
//! been sampled away or evicted:
//!
//! ```json
//! {"trace_id": "9f86d081884c7d65",
//!  "unix_start_us": 1723100000000000,
//!  "total_us": 1412, "slow": false, "sampled": true, "forced": false,
//!  "spans": [
//!    {"id": 0, "parent": null, "stage": "request",
//!     "start_us": 0, "duration_us": 1412, "note": null},
//!    {"id": 1, "parent": 0, "stage": "queue_wait",
//!     "start_us": 0, "duration_us": 102, "note": null},
//!    {"id": 4, "parent": 0, "stage": "handler",
//!     "start_us": 131, "duration_us": 1201, "note": "status=200"}]}
//! ```
//!
//! * `start_us` is relative to the trace origin (span 0's start), so a
//!   timeline renders without clock math; `unix_start_us` anchors the
//!   origin to wall time.
//! * `parent` links spans into a tree rooted at span 0 (`request`).
//!   Stages on the serve path: `queue_wait`, `parse`, `admission`,
//!   `handler` with `cache_lookup`/`prep`/`score`/`serialize` children,
//!   then `write`. The fleet router uses the same schema with `route`,
//!   `forward` (note `replica=<addr> status=<n> attempt=<k>`), `retry`
//!   and `breaker` stages — `scamdetect-cli trace <id>` stitches the
//!   router's tree with the owning replica's by following the forward
//!   note.
//!
//! [`ModelArtifact`]: scamdetect::ModelArtifact

use crate::json::{obj, Json};
use crate::registry::ServingModel;
use scamdetect::trace::Trace;
use scamdetect::{CacheStatus, ScanReport};
use scamdetect_ir::Platform;
use std::sync::Arc;

/// Hard cap on `/batch` fan-in: enough for real bulk clients, small
/// enough that one request cannot monopolise the daemon for minutes.
pub const MAX_BATCH_REQUESTS: usize = 1024;

/// Most traces `GET /trace/recent` returns in one response.
pub const TRACE_RECENT_LIMIT: usize = 32;

/// One decoded scan request.
#[derive(Debug, Clone)]
pub struct WireScanRequest {
    /// Decoded contract bytes.
    pub bytes: Vec<u8>,
    /// Pinned platform, if the client sent one.
    pub platform: Option<Platform>,
}

/// Parses one scan-request object.
///
/// # Errors
///
/// A human-readable message naming the offending field.
pub fn parse_scan_request(value: &Json) -> Result<WireScanRequest, String> {
    let bytecode = value
        .get("bytecode")
        .ok_or("missing required field 'bytecode'")?
        .as_str()
        .ok_or("'bytecode' must be a string")?;
    let encoding = match value.get("encoding") {
        None => "hex",
        Some(e) => e.as_str().ok_or("'encoding' must be a string")?,
    };
    let bytes = match encoding {
        "hex" => decode_hex(bytecode)?,
        "base64" => decode_base64(bytecode)?,
        other => return Err(format!("unknown encoding '{other}' (hex or base64)")),
    };
    if bytes.is_empty() {
        return Err("'bytecode' decodes to zero bytes".to_string());
    }
    let platform = match value.get("platform") {
        None | Some(Json::Null) => None,
        Some(p) => match p.as_str() {
            Some("evm") => Some(Platform::Evm),
            Some("wasm") => Some(Platform::Wasm),
            _ => return Err("'platform' must be \"evm\" or \"wasm\"".to_string()),
        },
    };
    Ok(WireScanRequest { bytes, platform })
}

/// Renders one successful scan report (see the module docs schema).
pub fn render_report(report: &ScanReport, model: &ServingModel) -> Json {
    obj([
        (
            "verdict",
            Json::from(if report.is_malicious() {
                "malicious"
            } else {
                "benign"
            }),
        ),
        ("score", Json::from(report.verdict.malicious_probability)),
        ("threshold", Json::from(model.threshold)),
        ("platform", Json::from(report.verdict.platform.to_string())),
        ("cache", Json::from(cache_status_str(report.cache))),
        ("model", Json::from(model.id.as_str())),
        ("model_epoch", Json::from(model.epoch)),
        ("skeleton", Json::from(format!("{:016x}", report.skeleton))),
        ("blocks", Json::from(report.cfg.blocks)),
        ("instructions", Json::from(report.cfg.instructions)),
        (
            "elapsed_us",
            Json::from(report.elapsed.as_micros().min(u128::from(u64::MAX)) as u64),
        ),
    ])
}

/// The shared identity/flag fields of both trace renderings.
fn trace_head(trace: &Trace) -> Vec<(&'static str, Json)> {
    vec![
        ("trace_id", Json::from(trace.id.to_hex())),
        ("unix_start_us", Json::from(trace.unix_start_us)),
        ("total_us", Json::from(trace.total_us)),
        ("slow", Json::from(trace.slow)),
        ("sampled", Json::from(trace.sampled)),
        ("forced", Json::from(trace.forced)),
    ]
}

/// Renders one kept trace as a full span tree (`GET /trace/<id>`; see
/// the module docs schema).
pub fn render_trace(trace: &Trace) -> Json {
    let spans: Vec<Json> = trace
        .spans
        .iter()
        .map(|span| {
            obj([
                ("id", Json::from(u64::from(span.id))),
                (
                    "parent",
                    span.parent
                        .map(|p| Json::from(u64::from(p)))
                        .unwrap_or(Json::Null),
                ),
                ("stage", Json::from(span.stage.as_str())),
                ("start_us", Json::from(span.start_us)),
                ("duration_us", Json::from(span.duration_us)),
                (
                    "note",
                    span.note.as_deref().map(Json::from).unwrap_or(Json::Null),
                ),
            ])
        })
        .collect();
    let mut fields = trace_head(trace);
    fields.push(("spans", Json::Arr(spans)));
    obj(fields)
}

/// Renders one kept trace as a summary line — identity, flags and the
/// span count, without the tree itself.
pub fn render_trace_summary(trace: &Trace) -> Json {
    let mut fields = trace_head(trace);
    fields.push(("spans", Json::from(trace.spans.len() as u64)));
    obj(fields)
}

/// Renders the `GET /trace/recent` envelope: newest-first summaries
/// plus the ring's lifetime keep/drop counters.
pub fn render_trace_recent(traces: &[Arc<Trace>], kept: u64, dropped: u64) -> Json {
    obj([
        ("kept", Json::from(kept)),
        ("dropped", Json::from(dropped)),
        (
            "traces",
            Json::Arr(traces.iter().map(|t| render_trace_summary(t)).collect()),
        ),
    ])
}

/// The wire spelling of a [`CacheStatus`].
pub fn cache_status_str(status: CacheStatus) -> &'static str {
    match status {
        CacheStatus::Miss => "miss",
        CacheStatus::CacheHit => "hit",
        CacheStatus::BatchHit => "batch",
    }
}

/// Encodes bytes as lowercase hex — the inverse of [`decode_hex`],
/// shared by clients building wire requests (load generator, smoke
/// tests, tooling).
pub fn encode_hex(bytes: &[u8]) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        let _ = write!(out, "{b:02x}");
    }
    out
}

/// Decodes hex bytecode: optional `0x` prefix, whitespace ignored.
///
/// # Errors
///
/// Describes the first offending character or an odd digit count.
pub fn decode_hex(text: &str) -> Result<Vec<u8>, String> {
    let cleaned: String = text
        .trim()
        .trim_start_matches("0x")
        .chars()
        .filter(|c| !c.is_whitespace())
        .collect();
    if !cleaned.len().is_multiple_of(2) {
        return Err("odd number of hex digits".to_string());
    }
    let mut bytes = Vec::with_capacity(cleaned.len() / 2);
    let digits = cleaned.as_bytes();
    for pair in digits.chunks_exact(2) {
        let hi = hex_digit(pair[0])?;
        let lo = hex_digit(pair[1])?;
        bytes.push((hi << 4) | lo);
    }
    Ok(bytes)
}

fn hex_digit(b: u8) -> Result<u8, String> {
    match b {
        b'0'..=b'9' => Ok(b - b'0'),
        b'a'..=b'f' => Ok(b - b'a' + 10),
        b'A'..=b'F' => Ok(b - b'A' + 10),
        other => Err(format!("invalid hex digit '{}'", other as char)),
    }
}

/// Decodes base64 (standard or URL-safe alphabet, padding optional,
/// whitespace ignored).
///
/// # Errors
///
/// Describes the first offending character or an impossible length.
pub fn decode_base64(text: &str) -> Result<Vec<u8>, String> {
    let mut acc: u32 = 0;
    let mut bits = 0u32;
    let mut out = Vec::with_capacity(text.len() * 3 / 4);
    for c in text.chars() {
        if c.is_whitespace() || c == '=' {
            continue;
        }
        let value = match c {
            'A'..='Z' => c as u32 - 'A' as u32,
            'a'..='z' => c as u32 - 'a' as u32 + 26,
            '0'..='9' => c as u32 - '0' as u32 + 52,
            '+' | '-' => 62,
            '/' | '_' => 63,
            other => return Err(format!("invalid base64 character '{other}'")),
        };
        acc = (acc << 6) | value;
        bits += 6;
        if bits >= 8 {
            bits -= 8;
            out.push((acc >> bits) as u8);
        }
    }
    // 6 leftover bits (one dangling character) cannot encode a byte.
    if bits >= 6 {
        return Err("truncated base64 (dangling character)".to_string());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_encode_decode_round_trips() {
        let bytes = vec![0x00, 0x60, 0xFF, 0x0A];
        assert_eq!(encode_hex(&bytes), "0060ff0a");
        assert_eq!(decode_hex(&encode_hex(&bytes)).unwrap(), bytes);
    }

    #[test]
    fn hex_decodes_with_prefix_and_whitespace() {
        assert_eq!(decode_hex("0x60 01\n60").unwrap(), vec![0x60, 0x01, 0x60]);
        assert_eq!(
            decode_hex("DEADbeef").unwrap(),
            vec![0xDE, 0xAD, 0xBE, 0xEF]
        );
        assert!(decode_hex("abc").is_err());
        assert!(decode_hex("zz").is_err());
    }

    #[test]
    fn base64_standard_urlsafe_and_unpadded() {
        assert_eq!(decode_base64("aGVsbG8=").unwrap(), b"hello");
        assert_eq!(decode_base64("aGVsbG8").unwrap(), b"hello");
        assert_eq!(decode_base64("_w==").unwrap(), vec![0xFF]);
        assert_eq!(decode_base64("/w").unwrap(), vec![0xFF]);
        assert!(decode_base64("a").is_err());
        assert!(decode_base64("a!b").is_err());
    }

    #[test]
    fn request_parsing_defaults_and_rejections() {
        let ok = Json::parse(r#"{"bytecode": "0x6001", "ignored": 1}"#).unwrap();
        let parsed = parse_scan_request(&ok).unwrap();
        assert_eq!(parsed.bytes, vec![0x60, 0x01]);
        assert_eq!(parsed.platform, None);

        let pinned =
            Json::parse(r#"{"bytecode": "YQ==", "encoding": "base64", "platform": "wasm"}"#)
                .unwrap();
        let parsed = parse_scan_request(&pinned).unwrap();
        assert_eq!(parsed.bytes, b"a");
        assert_eq!(parsed.platform, Some(Platform::Wasm));

        for bad in [
            r#"{}"#,
            r#"{"bytecode": 5}"#,
            r#"{"bytecode": ""}"#,
            r#"{"bytecode": "60", "encoding": "rot13"}"#,
            r#"{"bytecode": "60", "platform": "solana"}"#,
        ] {
            let v = Json::parse(bad).unwrap();
            assert!(parse_scan_request(&v).is_err(), "{bad} must be rejected");
        }
    }
}
