//! The blocking worker-pool transport: the portable default.
//!
//! The accept loop runs on the serving thread and hands admitted
//! connections to N pool workers over a channel; a worker owns its
//! connection for the whole keep-alive lifetime, blocking on reads
//! with a short poll timeout so shutdown and deadlines are noticed
//! promptly. Simple and portable — but every parked keep-alive
//! connection pins a worker, so connection counts must stay near the
//! pool size. When they don't (fleet fronts, long-poll clients), use
//! [`EpollTransport`](super::EpollTransport).

use std::io::{ErrorKind, Read};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Instant;

use scamdetect::trace::Stage;

use super::parser::{Parsed, Phase, RequestParser};
use super::{
    attach_trace, finish_rejected, finish_trace, is_timeout, shed_connection, write_response,
    DrainBudget, Handler, HttpConfig, HttpRequest, HttpResponse, LoadGauge, ServerStats,
    ShutdownHandle, TraceHub, Transport, TransportHost, READ_POLL,
};

/// The blocking worker-pool backend; see the module docs.
pub struct ThreadedTransport;

impl Transport for ThreadedTransport {
    fn name(&self) -> &'static str {
        "threads"
    }

    fn serve(&self, host: TransportHost, handler: Handler) -> std::io::Result<ServerStats> {
        let TransportHost {
            listener,
            config,
            shutdown,
            protocol_errors,
            load,
            trace,
        } = host;
        let workers = config.resolved_workers();
        // Each queued connection carries its accept instant so the
        // worker can record the queue-wait span it just ended.
        let (tx, rx) = mpsc::channel::<(TcpStream, Instant)>();
        let rx = Arc::new(Mutex::new(rx));
        let (shed_tx, shed_rx) = mpsc::channel::<TcpStream>();
        let requests = Arc::new(AtomicU64::new(0));
        let mut connections = 0u64;

        std::thread::scope(|scope| {
            // One dedicated shedder: rejected connections cost the
            // accept loop a channel send and nothing more, so a shed
            // storm cannot delay the admission of acceptable traffic.
            let retry_after_s = config.retry_after_s;
            scope.spawn(move || {
                while let Ok(stream) = shed_rx.recv() {
                    shed_connection(stream, retry_after_s);
                }
            });
            for _ in 0..workers {
                let rx = Arc::clone(&rx);
                let handler = Arc::clone(&handler);
                let config = &config;
                let shutdown = shutdown.clone();
                let requests = Arc::clone(&requests);
                let protocol_errors = Arc::clone(&protocol_errors);
                let load = Arc::clone(&load);
                let trace = Arc::clone(&trace);
                scope.spawn(move || loop {
                    // Hold the receiver lock only for the dequeue.
                    let (conn, accepted) = match rx.lock().unwrap_or_else(|e| e.into_inner()).recv()
                    {
                        Ok(conn) => conn,
                        Err(_) => break, // accept loop closed the channel
                    };
                    load.queued.fetch_sub(1, Ordering::Relaxed);
                    let served = serve_connection(
                        conn,
                        accepted,
                        config,
                        &handler,
                        &shutdown,
                        &protocol_errors,
                        &load,
                        &trace,
                    );
                    requests.fetch_add(served, Ordering::Relaxed);
                });
            }

            for conn in listener.incoming() {
                if shutdown.is_shutdown() {
                    break; // the wake connection (or any racer) lands here
                }
                match conn {
                    Ok(stream) => {
                        // Admission gate: past the watermark a queued
                        // connection would wait for a worker with no
                        // bound, so shed it *now* with an honest 429.
                        if config.shed_watermark > 0
                            && load.queued.load(Ordering::Relaxed) >= config.shed_watermark
                        {
                            load.shed_total.fetch_add(1, Ordering::Relaxed);
                            let _ = shed_tx.send(stream);
                            continue;
                        }
                        connections += 1;
                        load.queued.fetch_add(1, Ordering::Relaxed);
                        if tx.send((stream, Instant::now())).is_err() {
                            break;
                        }
                    }
                    Err(e) if e.kind() == ErrorKind::ConnectionAborted => continue,
                    Err(_) => break,
                }
            }
            drop(tx); // workers drain queued connections, then exit
            drop(shed_tx); // the shedder drains its backlog, then exits
        });

        Ok(ServerStats {
            connections,
            requests: requests.load(Ordering::Relaxed),
        })
    }
}

/// Serves one connection for its keep-alive lifetime; returns how many
/// requests were answered.
#[allow(clippy::too_many_arguments)]
fn serve_connection(
    mut stream: TcpStream,
    accepted: Instant,
    config: &HttpConfig,
    handler: &Handler,
    shutdown: &ShutdownHandle,
    protocol_errors: &AtomicU64,
    load: &LoadGauge,
    trace: &TraceHub,
) -> u64 {
    let _ = stream.set_read_timeout(Some(READ_POLL.min(config.read_timeout)));
    let _ = stream.set_nodelay(true);
    let mut served = 0u64;
    let mut parser = RequestParser::new();
    // The accept→worker handoff only the connection's first request
    // waited through; consumed by that request's queue-wait span.
    let mut queue_wait = Some((accepted, Instant::now()));
    while served < config.max_requests_per_conn as u64 && !shutdown.is_shutdown() {
        let (mut request, keep_alive, received) =
            match read_request(&mut stream, &mut parser, config, shutdown) {
                Ok(Some(parsed)) => parsed,
                Ok(None) => break, // orderly close, idle timeout or drain
                Err(failure) => {
                    protocol_errors.fetch_add(1, Ordering::Relaxed);
                    let _ = write_response(&mut stream, &failure, false);
                    // RST-safe close: stop the client and discard what it
                    // already sent — bounded — so the close degrades to
                    // FIN and the status line survives.
                    finish_rejected(&mut stream, DrainBudget::for_rejection(config));
                    served += 1;
                    break;
                }
            };
        let parsed_at = Instant::now();
        // The trace's time axis starts where the request's wait did:
        // at accept for the connection's first request, at first byte
        // for keep-alive successors.
        let origin = match queue_wait {
            Some((enqueued, _)) => enqueued.min(received),
            None => received,
        };
        attach_trace(trace, &mut request, origin);
        let handler_span = if request.trace.is_some() {
            if let Some((enqueued, dequeued)) = queue_wait {
                request.trace_record(Stage::QueueWait, enqueued, dequeued);
            }
            request.trace_record(Stage::Parse, received, parsed_at);
            request.trace_record_note(
                Stage::Admission,
                parsed_at,
                parsed_at,
                format!(
                    "queued={} in_flight={} watermark={}",
                    load.queued.load(Ordering::Relaxed),
                    load.in_flight.load(Ordering::Relaxed),
                    config.shed_watermark,
                ),
            );
            request.trace_begin(Stage::Handler)
        } else {
            None
        };
        queue_wait = None;
        // A handler panic must not take the worker down with it: catch,
        // serve a 500, keep the connection policy honest.
        load.in_flight.fetch_add(1, Ordering::Relaxed);
        let mut response =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| handler(&request)))
                .unwrap_or_else(|_| HttpResponse::error(500, "handler panicked"));
        load.in_flight.fetch_sub(1, Ordering::Relaxed);
        if let Some(id) = request.trace_id() {
            request.trace_end_note(handler_span, format!("status={}", response.status));
            response = response.with_header("x-trace-id", id.to_hex());
        }
        // The advertised connection state must match what happens next:
        // the response that exhausts the per-connection request cap (or
        // lands during a drain) says `Connection: close`.
        let keep_alive = keep_alive
            && !shutdown.is_shutdown()
            && served + 1 < config.max_requests_per_conn as u64;
        served += 1;
        let write_start = Instant::now();
        let wrote = write_response(&mut stream, &response, keep_alive);
        if let Some(cell) = request.trace.take() {
            finish_trace(trace, cell, write_start);
        }
        if wrote.is_err() || !keep_alive {
            break;
        }
    }
    served
}

/// Reads one request off the connection, feeding the shared
/// incremental parser from blocking reads. `Ok(None)` = clean end of
/// the keep-alive conversation (EOF, idle timeout before any byte, or
/// a shutdown drain reaching an idle connection); `Err(response)` = a
/// protocol violation to report before closing.
///
/// The socket's read timeout is the short [`READ_POLL`] interval, so
/// blocked reads are really a poll loop: each wake re-checks the
/// shutdown flag (an idle connection never delays a drain) and the
/// accumulated idle time against [`HttpConfig::read_timeout`].
fn read_request(
    stream: &mut TcpStream,
    parser: &mut RequestParser,
    config: &HttpConfig,
    shutdown: &ShutdownHandle,
) -> Result<Option<(HttpRequest, bool, Instant)>, HttpResponse> {
    let mut last_activity = std::time::Instant::now();
    loop {
        // Consume buffered bytes first: a pipelined request may already
        // be complete, and limit violations (431/413/…) must trip
        // before waiting on the socket.
        if let Parsed::Request {
            request,
            keep_alive,
            received,
        } = parser.advance(config)?
        {
            return Ok(Some((request, keep_alive, received)));
        }
        if parser.overdue(config) {
            return Err(RequestParser::deadline_response(config));
        }
        let mut chunk = [0u8; 4096];
        match stream.read(&mut chunk) {
            Ok(0) => {
                return match parser.eof_error() {
                    None => Ok(None),
                    Some(failure) => Err(failure),
                };
            }
            Ok(n) => {
                parser.feed(&chunk[..n]);
                last_activity = std::time::Instant::now();
            }
            Err(e) if is_timeout(&e) => {
                if parser.is_idle() && shutdown.is_shutdown() {
                    return Ok(None); // drain reached an idle connection
                }
                if last_activity.elapsed() < config.read_timeout {
                    continue; // poll tick, not a real timeout
                }
                return match parser.timeout_error() {
                    None => Ok(None), // idle keep-alive: close quietly
                    Some(failure) => Err(failure),
                };
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => {
                // Mid-body connection errors are reported (the client
                // committed to a body it never delivered); otherwise
                // close quietly like the EOF path.
                return match parser.phase() {
                    Phase::Body => Err(HttpResponse::error(400, "connection error mid-body")),
                    _ => Ok(None),
                };
            }
        }
    }
}
