//! The event-driven `epoll` transport (Linux).
//!
//! One event-loop thread owns every connection: a nonblocking listener
//! and all admitted sockets are registered with a hand-rolled `epoll`
//! (raw `epoll_create1`/`epoll_ctl`/`epoll_wait` through `extern "C"`
//! — the workspace is offline and std-only, the same technique the
//! signal hook uses for `signal()`). Each readiness event feeds the
//! connection's incremental [`parser::RequestParser`](super::parser);
//! only *complete* requests are handed to the worker pool, so an idle
//! keep-alive connection costs an epoll registration and a parser
//! buffer instead of a parked thread — 10k idle connections,
//! worker-pool-sized thread count.
//!
//! Life of a connection:
//!
//! * **Accept.** Listener readiness drains `accept` until
//!   `WouldBlock`. The admission gate runs here exactly as in the
//!   threaded backend: past [`HttpConfig::shed_watermark`] queued
//!   jobs, the connection is shed with `429 + Retry-After` on the
//!   dedicated shedder thread. Admitted sockets go nonblocking and
//!   into a slab slot; the epoll token packs `slot | generation << 32`
//!   so events and worker completions for a recycled slot are
//!   discarded instead of misdelivered.
//! * **Read → parse → dispatch.** Readable connections are drained to
//!   `WouldBlock` into the parser. A complete request moves the
//!   connection to `InHandler`, clears its epoll interest (no HTTP/1.1
//!   multiplexing — pipelined bytes wait in the parser), and queues a
//!   job. Workers run the handler (panic-caught, `in_flight`-gauged),
//!   push the response to a completion list, and wake the loop via an
//!   `eventfd`.
//! * **Write.** Responses are serialized and written nonblocking;
//!   `WouldBlock` arms `EPOLLOUT` and resumes on writability. After a
//!   keep-alive response the parser is re-advanced immediately, so
//!   pipelined requests are served without waiting for new bytes.
//! * **Deadlines.** `epoll_wait` ticks at least every
//!   [`READ_POLL`](super::READ_POLL); a sweep applies the same budgets
//!   as the threaded backend: idle keep-alive close, per-phase 400
//!   read timeouts, [`HttpConfig::request_deadline`] → 408, and the
//!   bounded RST-safe drain after rejections.
//! * **Shutdown.** The [`ShutdownHandle`](super::ShutdownHandle) wake
//!   connection lands on the listener and wakes `epoll_wait`; the loop
//!   stops accepting, closes idle connections, lets in-flight requests
//!   finish (their responses say `Connection: close`), then joins the
//!   workers.
//!
//! [`HttpConfig::shed_watermark`]: super::HttpConfig::shed_watermark
//! [`HttpConfig::request_deadline`]: super::HttpConfig::request_deadline

use super::{Handler, ServerStats, Transport, TransportHost};

/// The event-driven epoll backend (Linux only); see the module docs.
/// On other platforms the type exists but [`Transport::serve`] (and
/// [`HttpServer::bind`](super::HttpServer::bind) with
/// [`TransportKind::Epoll`](super::TransportKind::Epoll)) return
/// `ErrorKind::Unsupported`.
pub struct EpollTransport;

impl Transport for EpollTransport {
    fn name(&self) -> &'static str {
        "epoll"
    }

    fn serve(&self, host: TransportHost, handler: Handler) -> std::io::Result<ServerStats> {
        #[cfg(target_os = "linux")]
        {
            linux::serve(host, handler)
        }
        #[cfg(not(target_os = "linux"))]
        {
            let _ = (host, handler);
            Err(unsupported())
        }
    }
}

/// Cheap availability check run at bind time, so `serve` cannot fail
/// after a successful bind.
pub(crate) fn probe() -> std::io::Result<()> {
    #[cfg(target_os = "linux")]
    {
        linux::Epoll::new().map(|_| ())
    }
    #[cfg(not(target_os = "linux"))]
    {
        Err(unsupported())
    }
}

#[cfg(not(target_os = "linux"))]
fn unsupported() -> std::io::Error {
    std::io::Error::new(
        std::io::ErrorKind::Unsupported,
        "the epoll transport requires Linux; use the threaded transport",
    )
}

#[cfg(target_os = "linux")]
mod linux {
    use std::fs::File;
    use std::io::{ErrorKind, Read, Write};
    use std::net::{Shutdown, TcpListener, TcpStream};
    use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{mpsc, Arc, Mutex, PoisonError};
    use std::time::Instant;

    use scamdetect::trace::{ActiveTrace, Stage};

    use crate::http::parser::{Parsed, Phase, RequestParser};
    use crate::http::{
        attach_trace, encode_response, shed_connection, DrainBudget, Handler, HttpConfig,
        HttpRequest, HttpResponse, LoadGauge, ServerStats, ShutdownHandle, TraceHub, TransportHost,
        READ_POLL,
    };

    // ───────────────────────── raw syscalls ─────────────────────────

    /// `struct epoll_event`: packed on x86-64 (the kernel ABI demands
    /// it there), naturally aligned elsewhere.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn eventfd(initval: u32, flags: i32) -> i32;
    }

    const EPOLL_CLOEXEC: i32 = 0o2000000;
    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLRDHUP: u32 = 0x2000;
    const EFD_CLOEXEC: i32 = 0o2000000;
    const EFD_NONBLOCK: i32 = 0o4000;

    /// An owned epoll instance (closed on drop via [`OwnedFd`]).
    pub(super) struct Epoll {
        fd: OwnedFd,
    }

    impl Epoll {
        pub(super) fn new() -> std::io::Result<Epoll> {
            let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if fd < 0 {
                return Err(std::io::Error::last_os_error());
            }
            Ok(Epoll {
                fd: unsafe { OwnedFd::from_raw_fd(fd) },
            })
        }

        fn ctl(&self, op: i32, fd: RawFd, events: u32, token: u64) -> std::io::Result<()> {
            let mut ev = EpollEvent {
                events,
                data: token,
            };
            let rc = unsafe { epoll_ctl(self.fd.as_raw_fd(), op, fd, &mut ev) };
            if rc < 0 {
                return Err(std::io::Error::last_os_error());
            }
            Ok(())
        }

        fn add(&self, fd: RawFd, events: u32, token: u64) -> std::io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, events, token)
        }

        fn modify(&self, fd: RawFd, events: u32, token: u64) -> std::io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, events, token)
        }

        fn del(&self, fd: RawFd) {
            // Deregistration failure is unrecoverable but harmless:
            // closing the fd removes it from the interest set anyway.
            let _ = self.ctl(EPOLL_CTL_DEL, fd, 0, 0);
        }

        /// Waits up to `timeout_ms`; EINTR reads as "no events".
        fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> std::io::Result<usize> {
            let n = unsafe {
                epoll_wait(
                    self.fd.as_raw_fd(),
                    events.as_mut_ptr(),
                    events.len() as i32,
                    timeout_ms,
                )
            };
            if n < 0 {
                let e = std::io::Error::last_os_error();
                if e.kind() == ErrorKind::Interrupted {
                    return Ok(0);
                }
                return Err(e);
            }
            Ok(n as usize)
        }
    }

    /// The worker→loop wakeup: an `eventfd` the workers write after
    /// pushing a completion, registered for readability like any
    /// socket. Wrapped in [`File`] so reads/writes need no new FFI.
    struct WakeFd {
        file: Arc<File>,
    }

    impl WakeFd {
        fn new() -> std::io::Result<WakeFd> {
            let fd = unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) };
            if fd < 0 {
                return Err(std::io::Error::last_os_error());
            }
            Ok(WakeFd {
                file: Arc::new(unsafe { File::from_raw_fd(fd) }),
            })
        }

        /// A cloneable signaller for the worker threads.
        fn signaller(&self) -> Arc<File> {
            Arc::clone(&self.file)
        }

        /// Consumes pending signals (one read zeroes the counter).
        fn drain(&self) {
            let mut buf = [0u8; 8];
            let _ = (&*self.file).read(&mut buf);
        }
    }

    fn signal_wake(file: &File) {
        let _ = { file }.write_all(&1u64.to_ne_bytes());
    }

    // ──────────────────────── the event loop ────────────────────────

    const TOKEN_LISTENER: u64 = u64::MAX;
    const TOKEN_WAKE: u64 = u64::MAX - 1;

    fn token(slot: usize, generation: u32) -> u64 {
        slot as u64 | (u64::from(generation) << 32)
    }

    /// A complete request bound for the worker pool.
    struct Job {
        slot: usize,
        generation: u32,
        request: HttpRequest,
        /// When the request entered the job queue — the start of its
        /// trace `queue_wait` span, ended by the worker's dequeue.
        queued_at: Instant,
    }

    /// A handler result bound for the event loop.
    struct Done {
        slot: usize,
        generation: u32,
        response: HttpResponse,
        /// The request's span collector, riding back so the event loop
        /// can record the `write` span and seal the trace once the
        /// response bytes hit the socket.
        trace: Option<ActiveTrace>,
    }

    /// What happens when a response finishes writing.
    #[derive(Clone, Copy)]
    enum AfterWrite {
        /// Re-arm for reading (and serve any pipelined request).
        KeepAlive,
        /// Orderly close (client asked, cap reached, or drain).
        Close,
        /// Protocol rejection: half-close then the bounded RST-safe
        /// drain, exactly the [`DrainBudget::for_rejection`] policy.
        Drain,
    }

    enum State {
        /// Registered for readability, accumulating a request.
        Reading,
        /// A complete request is with the worker pool; epoll interest
        /// is cleared (pipelined bytes wait in the parser).
        InHandler { keep_alive: bool },
        /// A serialized response is being written out.
        Writing {
            buf: Vec<u8>,
            off: usize,
            then: AfterWrite,
            /// The request's trace (collector + write-start instant),
            /// sealed when the final byte lands.
            trace: Option<(ActiveTrace, Instant)>,
        },
        /// Rejection sent and FIN'd; discarding the client's in-flight
        /// bytes within budget so the close stays RST-safe.
        Draining { deadline: Instant, remaining: usize },
    }

    /// Why the read side of a connection ended.
    #[derive(Clone, Copy, PartialEq, Eq)]
    enum PeerGone {
        /// Clean FIN.
        Eof,
        /// A hard socket error.
        Error,
    }

    struct Conn {
        stream: TcpStream,
        parser: RequestParser,
        generation: u32,
        state: State,
        /// Last byte movement in either direction; drives idle/read
        /// timeouts and the write-stall guard.
        last_activity: Instant,
        served: u64,
        /// Currently armed epoll interest mask.
        interest: u32,
        /// Set once the peer's read side ended; acted on only after
        /// buffered bytes are fully parsed (a complete request that
        /// arrived with a trailing FIN is still served).
        peer_gone: Option<PeerGone>,
    }

    /// What `advance_conn` decided while the connection was borrowed.
    enum ParseOutcome {
        Wait,
        Dispatch(HttpRequest, bool, Instant),
        Reject(HttpResponse),
        Close,
    }

    struct EventLoop {
        ep: Epoll,
        listener: TcpListener,
        wake: WakeFd,
        config: HttpConfig,
        shutdown: ShutdownHandle,
        protocol_errors: Arc<AtomicU64>,
        load: Arc<LoadGauge>,
        trace: Arc<TraceHub>,
        slots: Vec<Option<Conn>>,
        /// Per-slot generation counters, persisting across reuse.
        generations: Vec<u32>,
        free: Vec<usize>,
        live: usize,
        job_tx: Option<mpsc::Sender<Job>>,
        shed_tx: Option<mpsc::Sender<TcpStream>>,
        completions: Arc<Mutex<Vec<Done>>>,
        connections: u64,
        requests: u64,
        /// Set once the listener has been deregistered for shutdown.
        draining: bool,
        /// Last full slab sweep — throttles [`EventLoop::sweep`] to the
        /// [`READ_POLL`] cadence so a busy loop (which returns from
        /// `epoll_wait` far more often than the tick) does not rescan
        /// thousands of idle slots per event batch.
        last_sweep: Instant,
    }

    pub(super) fn serve(host: TransportHost, handler: Handler) -> std::io::Result<ServerStats> {
        let TransportHost {
            listener,
            config,
            shutdown,
            protocol_errors,
            load,
            trace,
        } = host;
        listener.set_nonblocking(true)?;
        let ep = Epoll::new()?;
        let wake = WakeFd::new()?;
        ep.add(listener.as_raw_fd(), EPOLLIN, TOKEN_LISTENER)?;
        ep.add(wake.file.as_raw_fd(), EPOLLIN, TOKEN_WAKE)?;

        let workers = config.resolved_workers();
        let (job_tx, job_rx) = mpsc::channel::<Job>();
        let job_rx = Arc::new(Mutex::new(job_rx));
        let (shed_tx, shed_rx) = mpsc::channel::<TcpStream>();
        let completions: Arc<Mutex<Vec<Done>>> = Arc::new(Mutex::new(Vec::new()));
        let retry_after_s = config.retry_after_s;

        let mut el = EventLoop {
            ep,
            listener,
            wake,
            config,
            shutdown,
            protocol_errors,
            load: Arc::clone(&load),
            trace,
            slots: Vec::new(),
            generations: Vec::new(),
            free: Vec::new(),
            live: 0,
            job_tx: Some(job_tx),
            shed_tx: Some(shed_tx),
            completions: Arc::clone(&completions),
            connections: 0,
            requests: 0,
            draining: false,
            last_sweep: Instant::now(),
        };

        let run = std::thread::scope(|scope| {
            // The same dedicated shedder as the threaded backend: shed
            // storms cost the event loop a channel send and nothing
            // more. (Accepted sockets start blocking — nonblocking is
            // only set on admission — so the shedder's timeout-bounded
            // blocking writes work unchanged.)
            scope.spawn(move || {
                while let Ok(stream) = shed_rx.recv() {
                    shed_connection(stream, retry_after_s);
                }
            });
            let watermark = el.config.shed_watermark;
            for _ in 0..workers {
                let job_rx = Arc::clone(&job_rx);
                let handler = Arc::clone(&handler);
                let load = Arc::clone(&load);
                let completions = Arc::clone(&completions);
                let wake = el.wake.signaller();
                scope.spawn(move || loop {
                    // Hold the receiver lock only for the dequeue.
                    let mut job = match job_rx.lock().unwrap_or_else(|e| e.into_inner()).recv() {
                        Ok(job) => job,
                        Err(_) => break, // event loop dropped the sender
                    };
                    let dequeued = Instant::now();
                    load.queued.fetch_sub(1, Ordering::Relaxed);
                    load.in_flight.fetch_add(1, Ordering::Relaxed);
                    if job.request.trace.is_some() {
                        job.request
                            .trace_record(Stage::QueueWait, job.queued_at, dequeued);
                        job.request.trace_record_note(
                            Stage::Admission,
                            dequeued,
                            dequeued,
                            format!(
                                "queued={} in_flight={} watermark={}",
                                load.queued.load(Ordering::Relaxed),
                                load.in_flight.load(Ordering::Relaxed),
                                watermark,
                            ),
                        );
                    }
                    let handler_span = job.request.trace_begin(Stage::Handler);
                    let mut response =
                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            handler(&job.request)
                        }))
                        .unwrap_or_else(|_| HttpResponse::error(500, "handler panicked"));
                    load.in_flight.fetch_sub(1, Ordering::Relaxed);
                    if let Some(id) = job.request.trace_id() {
                        job.request
                            .trace_end_note(handler_span, format!("status={}", response.status));
                        response = response.with_header("x-trace-id", id.to_hex());
                    }
                    let trace = job
                        .request
                        .trace
                        .take()
                        .map(|cell| cell.into_inner().unwrap_or_else(PoisonError::into_inner));
                    completions
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .push(Done {
                            slot: job.slot,
                            generation: job.generation,
                            response,
                            trace,
                        });
                    signal_wake(&wake);
                });
            }
            let run = el.run();
            // Closing the channels releases the workers and the
            // shedder whether the loop ended cleanly or not.
            el.job_tx = None;
            el.shed_tx = None;
            run
        });

        run.map(|()| ServerStats {
            connections: el.connections,
            requests: el.requests,
        })
    }

    impl EventLoop {
        fn run(&mut self) -> std::io::Result<()> {
            let mut events = vec![EpollEvent { events: 0, data: 0 }; 256];
            loop {
                let n = self.ep.wait(&mut events, READ_POLL.as_millis() as i32)?;
                for ev in events.iter().take(n) {
                    let tok = ev.data;
                    match tok {
                        TOKEN_LISTENER => self.accept_ready(),
                        TOKEN_WAKE => self.wake.drain(),
                        _ => self.conn_ready(tok),
                    }
                }
                self.apply_completions();
                if self.last_sweep.elapsed() >= READ_POLL {
                    self.sweep();
                    self.last_sweep = Instant::now();
                }
                if self.shutdown.is_shutdown() {
                    self.begin_drain();
                    if self.live == 0 {
                        return Ok(());
                    }
                }
            }
        }

        /// Drains `accept` to `WouldBlock`, shedding past the
        /// admission watermark exactly as the threaded backend does.
        fn accept_ready(&mut self) {
            loop {
                match self.listener.accept() {
                    Ok((stream, _)) => {
                        if self.shutdown.is_shutdown() {
                            // The shutdown wake connection (or any
                            // racer): drop unserved, like the threaded
                            // accept loop breaking.
                            drop(stream);
                            continue;
                        }
                        if self.config.shed_watermark > 0
                            && self.load.queued.load(Ordering::Relaxed)
                                >= self.config.shed_watermark
                        {
                            self.load.shed_total.fetch_add(1, Ordering::Relaxed);
                            if let Some(tx) = &self.shed_tx {
                                let _ = tx.send(stream);
                            }
                            continue;
                        }
                        self.admit(stream);
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e)
                        if matches!(
                            e.kind(),
                            ErrorKind::ConnectionAborted | ErrorKind::Interrupted
                        ) =>
                    {
                        continue
                    }
                    // Transient accept failures (fd exhaustion and
                    // kin): give up on this readiness round; the
                    // level-triggered listener retries next wake.
                    Err(_) => break,
                }
            }
        }

        fn admit(&mut self, stream: TcpStream) {
            if stream.set_nonblocking(true).is_err() {
                return;
            }
            let _ = stream.set_nodelay(true);
            let slot = match self.free.pop() {
                Some(slot) => slot,
                None => {
                    self.slots.push(None);
                    self.generations.push(0);
                    self.slots.len() - 1
                }
            };
            let generation = self.generations[slot].wrapping_add(1);
            self.generations[slot] = generation;
            let interest = EPOLLIN | EPOLLRDHUP;
            if self
                .ep
                .add(stream.as_raw_fd(), interest, token(slot, generation))
                .is_err()
            {
                self.free.push(slot);
                return;
            }
            self.slots[slot] = Some(Conn {
                stream,
                parser: RequestParser::new(),
                generation,
                state: State::Reading,
                last_activity: Instant::now(),
                served: 0,
                interest,
                peer_gone: None,
            });
            self.live += 1;
            self.connections += 1;
        }

        /// Routes a readiness event to the connection's current state;
        /// stale tokens (recycled slots) are dropped here.
        fn conn_ready(&mut self, tok: u64) {
            let slot = (tok & u64::from(u32::MAX)) as usize;
            let generation = (tok >> 32) as u32;
            let Some(conn) = self.slots.get(slot).and_then(Option::as_ref) else {
                return;
            };
            if conn.generation != generation {
                return;
            }
            match conn.state {
                State::Reading => self.do_read(slot),
                // Interest is cleared in-handler, but EPOLLERR/HUP are
                // always delivered; defer to the write attempt, which
                // observes the dead socket and closes.
                State::InHandler { .. } => {}
                State::Writing { .. } => self.do_write(slot),
                State::Draining { .. } => self.do_drain(slot),
            }
        }

        /// Reads to `WouldBlock`, feeding the parser, then advances.
        fn do_read(&mut self, slot: usize) {
            loop {
                let Some(conn) = self.slots[slot].as_mut() else {
                    return;
                };
                let mut chunk = [0u8; 4096];
                match conn.stream.read(&mut chunk) {
                    Ok(0) => {
                        conn.peer_gone = Some(PeerGone::Eof);
                        break;
                    }
                    Ok(n) => {
                        conn.parser.feed(&chunk[..n]);
                        conn.last_activity = Instant::now();
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(_) => {
                        conn.peer_gone = Some(PeerGone::Error);
                        break;
                    }
                }
            }
            self.advance_conn(slot);
        }

        /// Drives the parser: dispatches a complete request, reports a
        /// violation, or — when the bytes ran out — applies deadline
        /// and peer-gone semantics. Mirrors the threaded backend's
        /// `read_request` decision order exactly.
        fn advance_conn(&mut self, slot: usize) {
            let outcome = {
                let Some(conn) = self.slots[slot].as_mut() else {
                    return;
                };
                if !matches!(conn.state, State::Reading) {
                    return;
                }
                match conn.parser.advance(&self.config) {
                    Err(failure) => ParseOutcome::Reject(failure),
                    Ok(Parsed::Request {
                        request,
                        keep_alive,
                        received,
                    }) => ParseOutcome::Dispatch(request, keep_alive, received),
                    Ok(Parsed::NeedMore) => {
                        if conn.parser.overdue(&self.config) {
                            ParseOutcome::Reject(RequestParser::deadline_response(&self.config))
                        } else {
                            match conn.peer_gone {
                                None => ParseOutcome::Wait,
                                Some(PeerGone::Eof) => match conn.parser.eof_error() {
                                    Some(failure) => ParseOutcome::Reject(failure),
                                    None => ParseOutcome::Close, // clean FIN while idle
                                },
                                // Mid-body connection errors are
                                // reported (the client committed to a
                                // body it never delivered); otherwise
                                // close quietly like the EOF path.
                                Some(PeerGone::Error) => match conn.parser.phase() {
                                    Phase::Body => ParseOutcome::Reject(HttpResponse::error(
                                        400,
                                        "connection error mid-body",
                                    )),
                                    _ => ParseOutcome::Close,
                                },
                            }
                        }
                    }
                }
            };
            match outcome {
                ParseOutcome::Wait => {}
                ParseOutcome::Dispatch(request, keep_alive, received) => {
                    self.dispatch(slot, request, keep_alive, received)
                }
                ParseOutcome::Reject(failure) => self.reject(slot, failure),
                ParseOutcome::Close => self.close(slot),
            }
        }

        /// Hands a complete request to the worker pool and parks the
        /// connection (interest cleared) until the response lands.
        fn dispatch(
            &mut self,
            slot: usize,
            mut request: HttpRequest,
            keep_alive: bool,
            received: Instant,
        ) {
            let generation = {
                let Some(conn) = self.slots[slot].as_mut() else {
                    return;
                };
                conn.state = State::InHandler { keep_alive };
                conn.generation
            };
            self.set_interest(slot, 0);
            // Under epoll the trace's time axis starts at the request's
            // first byte (connections idle in the slab for free, so
            // accept time would charge keep-alive idle to the request).
            let parsed_at = Instant::now();
            attach_trace(&self.trace, &mut request, received);
            request.trace_record(Stage::Parse, received, parsed_at);
            self.load.queued.fetch_add(1, Ordering::Relaxed);
            let sent = match &self.job_tx {
                Some(tx) => tx
                    .send(Job {
                        slot,
                        generation,
                        request,
                        queued_at: Instant::now(),
                    })
                    .is_ok(),
                None => false,
            };
            if !sent {
                self.load.queued.fetch_sub(1, Ordering::Relaxed);
                self.close(slot);
            }
        }

        /// Applies finished handler results, discarding any whose
        /// connection died (generation mismatch) in the meantime.
        fn apply_completions(&mut self) {
            let done =
                std::mem::take(&mut *self.completions.lock().unwrap_or_else(|e| e.into_inner()));
            for item in done {
                let request_keep_alive = {
                    let Some(conn) = self.slots.get_mut(item.slot).and_then(Option::as_mut) else {
                        continue;
                    };
                    if conn.generation != item.generation {
                        continue;
                    }
                    let State::InHandler { keep_alive } = &conn.state else {
                        continue;
                    };
                    let keep_alive = *keep_alive;
                    conn.served += 1;
                    // The advertised connection state must match what
                    // happens next: the response that exhausts the
                    // per-connection cap (or lands during a drain)
                    // says `Connection: close` — the threaded
                    // backend's rule exactly.
                    keep_alive && conn.served < self.config.max_requests_per_conn as u64
                };
                self.requests += 1;
                let keep_alive = request_keep_alive && !self.shutdown.is_shutdown();
                let then = if keep_alive {
                    AfterWrite::KeepAlive
                } else {
                    AfterWrite::Close
                };
                self.start_write(item.slot, &item.response, keep_alive, then, item.trace);
            }
        }

        /// A protocol rejection (431/413/411/400/408): count it, write
        /// the response, then the RST-safe bounded drain.
        fn reject(&mut self, slot: usize, failure: HttpResponse) {
            self.protocol_errors.fetch_add(1, Ordering::Relaxed);
            self.requests += 1;
            if let Some(conn) = self.slots[slot].as_mut() {
                conn.served += 1;
            }
            self.start_write(slot, &failure, false, AfterWrite::Drain, None);
        }

        fn start_write(
            &mut self,
            slot: usize,
            response: &HttpResponse,
            keep_alive: bool,
            then: AfterWrite,
            trace: Option<ActiveTrace>,
        ) {
            {
                let Some(conn) = self.slots[slot].as_mut() else {
                    return;
                };
                conn.state = State::Writing {
                    buf: encode_response(response, keep_alive),
                    off: 0,
                    then,
                    trace: trace.map(|active| (active, Instant::now())),
                };
                conn.last_activity = Instant::now();
            }
            self.do_write(slot);
        }

        /// Writes to completion or `WouldBlock` (arming `EPOLLOUT`).
        fn do_write(&mut self, slot: usize) {
            enum Step {
                Finished(AfterWrite),
                Blocked,
                Broken,
                Progress,
            }
            loop {
                let step = {
                    let Some(conn) = self.slots[slot].as_mut() else {
                        return;
                    };
                    let State::Writing { buf, off, then, .. } = &mut conn.state else {
                        return;
                    };
                    if *off >= buf.len() {
                        Step::Finished(*then)
                    } else {
                        match conn.stream.write(&buf[*off..]) {
                            Ok(n) => {
                                *off += n;
                                conn.last_activity = Instant::now();
                                Step::Progress
                            }
                            Err(e) if e.kind() == ErrorKind::WouldBlock => Step::Blocked,
                            Err(e) if e.kind() == ErrorKind::Interrupted => Step::Progress,
                            Err(_) => Step::Broken,
                        }
                    }
                };
                match step {
                    Step::Progress => continue,
                    Step::Finished(then) => {
                        self.finish_write(slot, then);
                        return;
                    }
                    Step::Blocked => {
                        self.set_interest(slot, EPOLLOUT);
                        return;
                    }
                    Step::Broken => {
                        self.close(slot);
                        return;
                    }
                }
            }
        }

        fn finish_write(&mut self, slot: usize, then: AfterWrite) {
            // Every response byte is on the socket: record the write
            // span and seal the trace before the state transition.
            let sealed = self.slots[slot]
                .as_mut()
                .and_then(|conn| match &mut conn.state {
                    State::Writing { trace, .. } => trace.take(),
                    _ => None,
                });
            if let Some((mut active, write_start)) = sealed {
                active.record(Stage::Write, write_start, Instant::now());
                self.trace.finish(active);
            }
            match then {
                AfterWrite::Close => self.close(slot),
                AfterWrite::KeepAlive => {
                    {
                        let Some(conn) = self.slots[slot].as_mut() else {
                            return;
                        };
                        conn.state = State::Reading;
                        conn.last_activity = Instant::now();
                    }
                    self.set_interest(slot, EPOLLIN | EPOLLRDHUP);
                    // Pipelined bytes may already hold the next
                    // request — serve it without waiting for new data.
                    self.advance_conn(slot);
                }
                AfterWrite::Drain => {
                    let budget = DrainBudget::for_rejection(&self.config);
                    {
                        let Some(conn) = self.slots[slot].as_mut() else {
                            return;
                        };
                        let _ = conn.stream.shutdown(Shutdown::Write);
                        conn.state = State::Draining {
                            deadline: Instant::now() + budget.window,
                            remaining: budget.max_bytes,
                        };
                    }
                    self.set_interest(slot, EPOLLIN | EPOLLRDHUP);
                    self.do_drain(slot);
                }
            }
        }

        /// The nonblocking arm of the shared RST-safe close policy:
        /// discard the client's in-flight bytes within the
        /// [`DrainBudget`] so the final close degrades to FIN and the
        /// rejection response survives.
        fn do_drain(&mut self, slot: usize) {
            enum Step {
                Finished,
                Waiting,
                Progress,
            }
            loop {
                let step = {
                    let Some(conn) = self.slots[slot].as_mut() else {
                        return;
                    };
                    let State::Draining {
                        deadline,
                        remaining,
                    } = &mut conn.state
                    else {
                        return;
                    };
                    if *remaining == 0 || Instant::now() >= *deadline {
                        Step::Finished
                    } else {
                        let mut chunk = [0u8; 4096];
                        match conn.stream.read(&mut chunk) {
                            Ok(0) => Step::Finished, // client saw our FIN
                            Ok(n) => {
                                *remaining = remaining.saturating_sub(n);
                                Step::Progress
                            }
                            Err(e) if e.kind() == ErrorKind::WouldBlock => Step::Waiting,
                            Err(e) if e.kind() == ErrorKind::Interrupted => Step::Progress,
                            Err(_) => Step::Finished,
                        }
                    }
                };
                match step {
                    Step::Progress => continue,
                    Step::Waiting => return,
                    Step::Finished => {
                        self.close(slot);
                        return;
                    }
                }
            }
        }

        /// Applies time budgets across the slab; runs at least every
        /// [`READ_POLL`]. `InHandler` connections are exempt — their
        /// request fully arrived and the handler owns the clock.
        fn sweep(&mut self) {
            enum Due {
                Nothing,
                Close,
                Reject(HttpResponse),
            }
            let shutting_down = self.shutdown.is_shutdown();
            for slot in 0..self.slots.len() {
                let due = {
                    let Some(conn) = self.slots[slot].as_ref() else {
                        continue;
                    };
                    let quiet_for = conn.last_activity.elapsed();
                    match &conn.state {
                        State::Reading => {
                            if conn.parser.is_idle() {
                                if shutting_down || quiet_for > self.config.read_timeout {
                                    Due::Close // quiet idle close
                                } else {
                                    Due::Nothing
                                }
                            } else if conn.parser.overdue(&self.config) {
                                Due::Reject(RequestParser::deadline_response(&self.config))
                            } else if quiet_for > self.config.read_timeout {
                                match conn.parser.timeout_error() {
                                    Some(failure) => Due::Reject(failure),
                                    None => Due::Nothing,
                                }
                            } else {
                                Due::Nothing
                            }
                        }
                        State::InHandler { .. } => Due::Nothing,
                        // A client that stops reading its response
                        // gets the request deadline as a stall bound,
                        // then a hard close (no response can be
                        // delivered anyway).
                        State::Writing { .. } => {
                            if quiet_for > self.config.request_deadline {
                                Due::Close
                            } else {
                                Due::Nothing
                            }
                        }
                        State::Draining { deadline, .. } => {
                            if Instant::now() >= *deadline {
                                Due::Close
                            } else {
                                Due::Nothing
                            }
                        }
                    }
                };
                match due {
                    Due::Nothing => {}
                    Due::Close => self.close(slot),
                    Due::Reject(failure) => self.reject(slot, failure),
                }
            }
        }

        /// One-time shutdown work: stop watching the listener. Idle
        /// connections are closed by the sweep's `shutting_down` arm;
        /// mid-request and in-flight connections finish under their
        /// deadlines with `Connection: close` responses.
        fn begin_drain(&mut self) {
            if self.draining {
                return;
            }
            self.draining = true;
            self.ep.del(self.listener.as_raw_fd());
        }

        fn set_interest(&mut self, slot: usize, events: u32) {
            let (fd, tok, current) = {
                let Some(conn) = self.slots[slot].as_ref() else {
                    return;
                };
                (
                    conn.stream.as_raw_fd(),
                    token(slot, conn.generation),
                    conn.interest,
                )
            };
            if current == events {
                return;
            }
            if self.ep.modify(fd, events, tok).is_ok() {
                if let Some(conn) = self.slots[slot].as_mut() {
                    conn.interest = events;
                }
            }
        }

        fn close(&mut self, slot: usize) {
            if let Some(conn) = self.slots[slot].take() {
                self.ep.del(conn.stream.as_raw_fd());
                self.live -= 1;
                self.free.push(slot);
            }
        }
    }
}
