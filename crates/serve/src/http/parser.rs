//! Incremental HTTP/1.1 request parsing, shared by every transport.
//!
//! The parser owns the per-connection byte buffer and carries partial
//! state across arbitrarily fragmented reads: the threaded transport
//! feeds it from blocking reads, the epoll transport from readiness
//! events, and both observe identical message boundaries, limits, and
//! error statuses because the logic lives here exactly once.
//!
//! Shape: [`RequestParser::feed`] appends raw bytes,
//! [`RequestParser::advance`] drives the state machine as far as the
//! buffered bytes allow — yielding [`Parsed::NeedMore`], a complete
//! [`Parsed::Request`], or a typed error response (431/413/411/400)
//! that the transport writes before closing. Bytes past a completed
//! request stay buffered for the next pipelined request, and the
//! parser tracks the wall-clock start of the in-progress request so
//! transports can enforce [`HttpConfig::request_deadline`] uniformly.

use std::time::Instant;

use super::{HttpConfig, HttpRequest, HttpResponse};

/// Where the in-progress request stands — transports use this to pick
/// timeout/EOF semantics (idle connections close quietly; half-received
/// requests are protocol errors).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Phase {
    /// No byte of a request has arrived.
    Idle,
    /// Some bytes arrived but the header block is incomplete, or the
    /// head is complete and unconsumed bytes are being scanned.
    Headers,
    /// Head parsed; waiting for `Content-Length` body bytes.
    Body,
}

/// One step of [`RequestParser::advance`].
///
/// The size skew is deliberate: a `Parsed` lives only for the one call
/// that destructures it, so boxing the request would trade a stack copy
/// for a per-request heap allocation on the hot path.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub(crate) enum Parsed {
    /// The buffer holds no complete request; feed more bytes.
    NeedMore,
    /// A complete request, plus whether the connection should persist
    /// afterwards (from `Connection:` headers and the HTTP version).
    Request {
        request: HttpRequest,
        keep_alive: bool,
        /// When the request's first byte arrived — the start of the
        /// trace `parse` span (receive + parse window).
        received: Instant,
    },
}

/// Parsed request head awaiting its body.
struct Head {
    method: String,
    path: String,
    query: String,
    headers: Vec<(String, String)>,
    content_length: usize,
    keep_alive: bool,
}

/// Per-connection incremental parser state.
pub(crate) struct RequestParser {
    /// Unconsumed bytes: the in-progress request plus anything
    /// pipelined behind it.
    buf: Vec<u8>,
    /// How far the header-terminator scan has advanced into `buf`, so
    /// repeated `advance` calls on a dribbling connection stay O(new
    /// bytes) instead of rescanning from the start.
    scanned: usize,
    /// The parsed head once the header block has landed.
    head: Option<Head>,
    /// When the in-progress request's first byte arrived; bounds the
    /// whole receive via [`HttpConfig::request_deadline`].
    started: Option<Instant>,
}

impl RequestParser {
    pub(crate) fn new() -> RequestParser {
        RequestParser {
            buf: Vec::new(),
            scanned: 0,
            head: None,
            started: None,
        }
    }

    /// Appends raw bytes off the wire. The first byte of a request
    /// starts its [`HttpConfig::request_deadline`] clock.
    pub(crate) fn feed(&mut self, bytes: &[u8]) {
        if bytes.is_empty() {
            return;
        }
        self.buf.extend_from_slice(bytes);
        self.started.get_or_insert_with(Instant::now);
    }

    /// `true` when no byte of a request is pending (a quiet close is
    /// clean, not a truncation).
    pub(crate) fn is_idle(&self) -> bool {
        self.head.is_none() && self.buf.is_empty()
    }

    pub(crate) fn phase(&self) -> Phase {
        if self.head.is_some() {
            Phase::Body
        } else if self.buf.is_empty() {
            Phase::Idle
        } else {
            Phase::Headers
        }
    }

    /// `true` once the in-progress request has been arriving for
    /// longer than [`HttpConfig::request_deadline`]. The per-read idle
    /// timeout alone cannot stop a slow-drip client (1 byte per
    /// timeout window resets it forever); this bounds the whole
    /// receive.
    pub(crate) fn overdue(&self, config: &HttpConfig) -> bool {
        self.started
            .is_some_and(|t| t.elapsed() > config.request_deadline)
    }

    /// The 408 served when [`RequestParser::overdue`] trips.
    pub(crate) fn deadline_response(config: &HttpConfig) -> HttpResponse {
        HttpResponse::error(408, "request took too long to arrive")
            .with_header("Retry-After", config.retry_after_s.to_string())
    }

    /// The error owed to the client when the connection hits EOF, by
    /// phase: `None` when idle (clean close).
    pub(crate) fn eof_error(&self) -> Option<HttpResponse> {
        match self.phase() {
            Phase::Idle => None,
            Phase::Headers => Some(HttpResponse::error(400, "truncated request")),
            Phase::Body => Some(HttpResponse::error(400, "truncated request body")),
        }
    }

    /// The error owed when no bytes arrive for a full
    /// [`HttpConfig::read_timeout`] mid-request, by phase: `None` when
    /// idle (an idle keep-alive connection just closes).
    pub(crate) fn timeout_error(&self) -> Option<HttpResponse> {
        match self.phase() {
            Phase::Idle => None,
            Phase::Headers => Some(HttpResponse::error(400, "request read timed out")),
            Phase::Body => Some(HttpResponse::error(400, "request body read timed out")),
        }
    }

    /// Drives parsing as far as the buffered bytes allow.
    ///
    /// # Errors
    ///
    /// A typed response (431/413/411/400) the transport must write
    /// before closing; parser state is not meaningful afterwards.
    pub(crate) fn advance(&mut self, config: &HttpConfig) -> Result<Parsed, HttpResponse> {
        if self.head.is_none() {
            if self.buf.is_empty() {
                return Ok(Parsed::NeedMore);
            }
            let Some(end) = self.find_header_end() else {
                if self.buf.len() > config.max_header_bytes {
                    return Err(HttpResponse::error(431, "header block too large"));
                }
                return Ok(Parsed::NeedMore);
            };
            if end > config.max_header_bytes {
                return Err(HttpResponse::error(431, "header block too large"));
            }
            let head = parse_head(&self.buf[..end])?;
            if head.content_length > config.max_body_bytes {
                return Err(HttpResponse::error(413, "request body too large"));
            }
            self.buf.drain(..end + 4);
            self.scanned = 0;
            self.head = Some(head);
        }
        let pending = self.head.as_ref().expect("head was just ensured");
        if self.buf.len() < pending.content_length {
            return Ok(Parsed::NeedMore);
        }
        let head = self.head.take().expect("head is present");
        let body: Vec<u8> = self.buf.drain(..head.content_length).collect();
        let received = self.started.take().unwrap_or_else(Instant::now);
        // Anything left belongs to the next pipelined request, whose
        // deadline clock starts now.
        self.started = if self.buf.is_empty() {
            None
        } else {
            Some(Instant::now())
        };
        self.scanned = 0;
        Ok(Parsed::Request {
            request: HttpRequest {
                method: head.method,
                path: head.path,
                query: head.query,
                headers: head.headers,
                body,
                trace: None,
            },
            keep_alive: head.keep_alive,
            received,
        })
    }

    /// Finds `\r\n\r\n`, resuming the scan where the last call left
    /// off (a terminator can straddle the resume point by up to 3
    /// bytes).
    fn find_header_end(&mut self) -> Option<usize> {
        let from = self.scanned.saturating_sub(3);
        match self.buf[from..].windows(4).position(|w| w == b"\r\n\r\n") {
            Some(pos) => Some(from + pos),
            None => {
                self.scanned = self.buf.len();
                None
            }
        }
    }
}

/// Parses a complete header block (request line + headers, excluding
/// the `\r\n\r\n` terminator) into a [`Head`].
fn parse_head(raw: &[u8]) -> Result<Head, HttpResponse> {
    let header_text = std::str::from_utf8(raw)
        .map_err(|_| HttpResponse::error(400, "headers are not valid utf-8"))?;
    let mut lines = header_text.split("\r\n");
    let request_line = lines
        .next()
        .ok_or_else(|| HttpResponse::error(400, "missing request line"))?;
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty())
        .ok_or_else(|| HttpResponse::error(400, "missing method"))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or_else(|| HttpResponse::error(400, "missing request target"))?
        .to_string();
    let version = parts
        .next()
        .ok_or_else(|| HttpResponse::error(400, "missing HTTP version"))?;
    if !matches!(version, "HTTP/1.1" | "HTTP/1.0") {
        return Err(HttpResponse::error(400, "unsupported HTTP version"));
    }

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpResponse::error(400, "malformed header line"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let header_of = |name: &str| {
        headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    };
    if header_of("transfer-encoding").is_some() {
        return Err(HttpResponse::error(
            411,
            "chunked bodies are not supported; send Content-Length",
        ));
    }
    // RFC 9110 §8.6: duplicate Content-Length headers are a
    // request-smuggling vector (an intermediary honoring a different
    // occurrence desyncs on message boundaries) — reject outright.
    if headers
        .iter()
        .filter(|(k, _)| k == "content-length")
        .count()
        > 1
    {
        return Err(HttpResponse::error(400, "duplicate Content-Length"));
    }
    let content_length = match header_of("content-length") {
        None => 0usize,
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| HttpResponse::error(400, "invalid Content-Length"))?,
    };

    let keep_alive = match header_of("connection").map(str::to_ascii_lowercase) {
        Some(v) if v == "close" => false,
        Some(v) if v == "keep-alive" => true,
        _ => version == "HTTP/1.1", // protocol default
    };
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target, String::new()),
    };
    Ok(Head {
        method,
        path,
        query,
        headers,
        content_length,
        keep_alive,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> HttpConfig {
        HttpConfig {
            max_header_bytes: 256,
            max_body_bytes: 64,
            ..HttpConfig::default()
        }
    }

    fn parse_all(parser: &mut RequestParser, cfg: &HttpConfig) -> Vec<(HttpRequest, bool)> {
        let mut out = Vec::new();
        while let Ok(Parsed::Request {
            request,
            keep_alive,
            ..
        }) = parser.advance(cfg)
        {
            out.push((request, keep_alive));
        }
        out
    }

    #[test]
    fn whole_request_in_one_feed() {
        let cfg = config();
        let mut p = RequestParser::new();
        p.feed(b"POST /scan?x=1 HTTP/1.1\r\nHost: a\r\nContent-Length: 5\r\n\r\nhello");
        let got = parse_all(&mut p, &cfg);
        assert_eq!(got.len(), 1);
        let (req, ka) = &got[0];
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/scan");
        assert_eq!(req.query, "x=1");
        assert_eq!(req.body, b"hello");
        assert!(*ka);
        assert!(p.is_idle());
    }

    #[test]
    fn every_byte_boundary_yields_the_same_request() {
        let cfg = config();
        let raw = b"POST /echo HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nbody";
        for split in 1..raw.len() {
            let mut p = RequestParser::new();
            p.feed(&raw[..split]);
            let first = parse_all(&mut p, &cfg);
            let expect_complete = split == raw.len();
            assert_eq!(first.len(), usize::from(expect_complete), "split {split}");
            p.feed(&raw[split..]);
            let got = parse_all(&mut p, &cfg);
            if !expect_complete {
                assert_eq!(got.len(), 1, "split {split}");
                assert_eq!(got[0].0.body, b"body", "split {split}");
            }
            assert!(p.is_idle(), "split {split}");
        }
    }

    #[test]
    fn pipelined_requests_come_out_in_order() {
        let cfg = config();
        let mut p = RequestParser::new();
        p.feed(b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\nConnection: close\r\n\r\n");
        let got = parse_all(&mut p, &cfg);
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].0.path, "/a");
        assert!(got[0].1);
        assert_eq!(got[1].0.path, "/b");
        assert!(!got[1].1);
    }

    #[test]
    fn oversized_header_block_is_431_even_unterminated() {
        let cfg = config();
        let mut p = RequestParser::new();
        p.feed(format!("GET / HTTP/1.1\r\nX-Big: {}\r\n", "y".repeat(300)).as_bytes());
        let err = p.advance(&cfg).expect_err("431");
        assert_eq!(err.status, 431);
    }

    #[test]
    fn oversized_body_is_413_before_the_body_arrives() {
        let cfg = config();
        let mut p = RequestParser::new();
        p.feed(b"POST / HTTP/1.1\r\nContent-Length: 100000\r\n\r\n");
        let err = p.advance(&cfg).expect_err("413");
        assert_eq!(err.status, 413);
    }

    #[test]
    fn phase_tracks_request_progress() {
        let cfg = config();
        let mut p = RequestParser::new();
        assert_eq!(p.phase(), Phase::Idle);
        assert!(p.eof_error().is_none());
        p.feed(b"POST / HTTP/1.1\r\nConte");
        assert!(matches!(p.advance(&cfg), Ok(Parsed::NeedMore)));
        assert_eq!(p.phase(), Phase::Headers);
        assert_eq!(p.eof_error().map(|r| r.status), Some(400));
        p.feed(b"nt-Length: 3\r\n\r\nab");
        assert!(matches!(p.advance(&cfg), Ok(Parsed::NeedMore)));
        assert_eq!(p.phase(), Phase::Body);
        assert!(p.timeout_error().is_some());
        p.feed(b"c");
        assert!(matches!(p.advance(&cfg), Ok(Parsed::Request { .. })));
        assert_eq!(p.phase(), Phase::Idle);
    }
}
