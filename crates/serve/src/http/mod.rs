//! A hand-rolled HTTP/1.1 server on [`std::net::TcpListener`], with
//! pluggable connection transports.
//!
//! The workspace is offline and std-only — no tokio, no hyper — and the
//! daemon's needs are narrow: small JSON requests, keep-alive, bounded
//! inputs, graceful shutdown. The server splits those needs across two
//! layers:
//!
//! * **The protocol layer** (this module + the private `parser`
//!   submodule): request/response
//!   types, bounded incremental HTTP/1.1 parsing, admission shedding,
//!   deadline budgets, and the RST-safe rejection close. This is shared
//!   verbatim by every transport, so limits (431/413/411/408) and drain
//!   semantics cannot drift between backends.
//! * **The connection layer** (the [`Transport`] trait): who owns the
//!   accept/read/write/shutdown lifecycle. Two backends ship:
//!   [`ThreadedTransport`] — a blocking worker pool where each worker
//!   owns a connection for its keep-alive lifetime (portable, the
//!   default) — and [`EpollTransport`] — a nonblocking `epoll`
//!   readiness loop (Linux) where idle connections cost a registration
//!   and a parser buffer instead of a thread, and only *complete*
//!   requests are handed to the worker pool.
//!
//! Select a backend with [`HttpConfig::transport`] (or the
//! `SCAMDETECT_TRANSPORT` environment variable, which the default
//! honors so whole test suites can be pointed at a backend without
//! touching call sites). Both backends serve identical responses for
//! identical inputs; the conformance suite in
//! `tests/transport_conformance.rs` holds them to that.

mod epoll;
mod parser;
mod threaded;

pub use epoll::EpollTransport;
pub use threaded::ThreadedTransport;

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

use crate::metrics::LatencyHistogram;
use scamdetect::trace::{ActiveTrace, Sampler, Stage, Trace, TraceId, TraceRing};

/// Which connection backend a server runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportKind {
    /// Blocking worker pool: one pool thread owns each admitted
    /// connection for its whole keep-alive lifetime. Portable, simple,
    /// and right-sized when connection counts stay near worker counts.
    Threaded,
    /// Nonblocking `epoll` readiness loop (Linux only): one event-loop
    /// thread owns every connection and hands complete requests to the
    /// worker pool, so 10k idle keep-alive connections cost 10k epoll
    /// registrations, not 10k threads.
    Epoll,
}

impl TransportKind {
    /// The flag/env spelling of this backend.
    pub fn as_str(self) -> &'static str {
        match self {
            TransportKind::Threaded => "threads",
            TransportKind::Epoll => "epoll",
        }
    }
}

impl std::fmt::Display for TransportKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for TransportKind {
    type Err = String;

    fn from_str(s: &str) -> Result<TransportKind, String> {
        match s {
            "threads" | "threaded" => Ok(TransportKind::Threaded),
            "epoll" => Ok(TransportKind::Epoll),
            other => Err(format!(
                "unknown transport '{other}' (expected 'threads' or 'epoll')"
            )),
        }
    }
}

impl Default for TransportKind {
    /// Honors `SCAMDETECT_TRANSPORT` (`threads` | `epoll`) so existing
    /// suites and deployments can switch backends without touching
    /// call sites; anything unset or unrecognized means [`Threaded`],
    /// the portable backend.
    ///
    /// [`Threaded`]: TransportKind::Threaded
    fn default() -> TransportKind {
        std::env::var("SCAMDETECT_TRANSPORT")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(TransportKind::Threaded)
    }
}

/// Server knobs. The defaults suit a loopback scanning daemon.
///
/// Construct via [`HttpConfig::builder`] for validated settings, or
/// `Default` + struct-update syntax when the values are known-good
/// literals (tests, fixed deployments).
#[derive(Debug, Clone)]
pub struct HttpConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker threads owning request handling; 0 = available
    /// parallelism.
    pub workers: usize,
    /// Largest accepted request body (413 beyond). Bytecode arrives
    /// hex- or base64-encoded, so 8 MiB covers multi-megabyte contracts.
    pub max_body_bytes: usize,
    /// Largest accepted header block (431 beyond).
    pub max_header_bytes: usize,
    /// Idle keep-alive / mid-request read timeout (no bytes at all for
    /// this long ends the read).
    pub read_timeout: Duration,
    /// Hard wall-clock cap on receiving one complete request. The idle
    /// timeout alone cannot stop a slow-drip client (1 byte per
    /// `read_timeout` resets it forever, pinning a pool worker); once a
    /// request's first byte arrives, the whole thing must land within
    /// this deadline or the connection gets a 408 and closes.
    pub request_deadline: Duration,
    /// Requests served per connection before an orderly close (bounds
    /// the damage of a client that never disconnects).
    pub max_requests_per_conn: usize,
    /// Admission watermark: work queued at the accept→worker handoff
    /// beyond which new connections are **shed** with
    /// `429 + Retry-After` instead of queueing unboundedly. Under the
    /// threaded backend the queue holds connections waiting for a
    /// worker; under epoll it holds complete requests waiting for one —
    /// either way, past the watermark the wait is unbounded and an
    /// honest early 429 beats a silent queue. `0` disables shedding
    /// (the pre-admission-control behavior).
    pub shed_watermark: usize,
    /// Seconds suggested in `Retry-After` on shed (429) and
    /// slow-request (408) responses.
    pub retry_after_s: u32,
    /// Which connection backend serves this config. Defaults to
    /// [`TransportKind::Threaded`] unless `SCAMDETECT_TRANSPORT`
    /// overrides it.
    pub transport: TransportKind,
    /// Head-sampling cadence for request tracing: keep 1 trace in every
    /// `trace_sample` into the completed-trace ring. `0` disables
    /// tracing entirely (no spans recorded, no `x-trace-id` echoed).
    /// Requests slower than [`HttpConfig::trace_slow_us`] and requests
    /// arriving with an `x-trace-id` header are kept regardless.
    pub trace_sample: u32,
    /// Slow-trace override, µs: a request whose end-to-end time meets
    /// this threshold is kept even when head sampling passed on it.
    /// `0` disables the override.
    pub trace_slow_us: u64,
    /// Capacity of the bounded completed-trace ring served by
    /// `GET /trace/recent` and `GET /trace/<id>`.
    pub trace_ring: usize,
}

impl Default for HttpConfig {
    fn default() -> Self {
        HttpConfig {
            addr: "127.0.0.1:7878".to_string(),
            workers: 0,
            max_body_bytes: 8 << 20,
            max_header_bytes: 16 << 10,
            read_timeout: Duration::from_secs(5),
            request_deadline: Duration::from_secs(30),
            max_requests_per_conn: 10_000,
            shed_watermark: 256,
            retry_after_s: 1,
            transport: TransportKind::default(),
            trace_sample: 16,
            trace_slow_us: 50_000,
            trace_ring: 256,
        }
    }
}

impl HttpConfig {
    /// A validating builder: the setters accept anything, and
    /// [`HttpConfigBuilder::build`] rejects configurations that would
    /// bind a server only to misbehave (zero workers, a shed watermark
    /// below the pool size, zero timeouts or limits).
    pub fn builder() -> HttpConfigBuilder {
        HttpConfigBuilder {
            config: HttpConfig::default(),
            workers_explicit: false,
        }
    }

    /// The worker-thread count this config resolves to (0 = available
    /// parallelism, floor 2 — shared by every transport so pool sizing
    /// cannot drift between backends).
    pub fn resolved_workers(&self) -> usize {
        if self.workers == 0 {
            std::thread::available_parallelism().map_or(2, |n| n.get())
        } else {
            self.workers
        }
    }
}

/// A rejected [`HttpConfigBuilder::build`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// `workers(0)` was requested explicitly. Zero is the *internal*
    /// "auto" sentinel; a caller writing 0 almost always meant a
    /// computed value that collapsed unexpectedly — omit the call to
    /// get auto-sizing instead.
    ZeroWorkers,
    /// The shed watermark is below the worker-pool size: the server
    /// would shed traffic while workers sit idle.
    WatermarkBelowWorkers { watermark: usize, workers: usize },
    /// A timeout was zero (`read_timeout` / `request_deadline`), which
    /// would time out every request instantly.
    ZeroTimeout(&'static str),
    /// A size or count limit was zero (`max_body_bytes`,
    /// `max_header_bytes`, `max_requests_per_conn`), which would
    /// reject or close everything.
    ZeroLimit(&'static str),
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ZeroWorkers => {
                write!(
                    f,
                    "workers must be nonzero (omit the setting for auto-sizing)"
                )
            }
            ConfigError::WatermarkBelowWorkers { watermark, workers } => write!(
                f,
                "shed watermark {watermark} is below the worker pool size {workers}: \
                 the server would shed while workers sit idle"
            ),
            ConfigError::ZeroTimeout(name) => write!(f, "{name} must be nonzero"),
            ConfigError::ZeroLimit(name) => write!(f, "{name} must be nonzero"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Builder for [`HttpConfig`]; see [`HttpConfig::builder`].
#[derive(Debug, Clone)]
pub struct HttpConfigBuilder {
    config: HttpConfig,
    workers_explicit: bool,
}

impl HttpConfigBuilder {
    /// Bind address; port 0 picks an ephemeral port.
    pub fn addr(mut self, addr: impl Into<String>) -> Self {
        self.config.addr = addr.into();
        self
    }

    /// Worker threads. Omit for auto-sizing (available parallelism);
    /// an explicit 0 is rejected at [`HttpConfigBuilder::build`].
    pub fn workers(mut self, workers: usize) -> Self {
        self.config.workers = workers;
        self.workers_explicit = true;
        self
    }

    /// Largest accepted request body (413 beyond).
    pub fn max_body_bytes(mut self, bytes: usize) -> Self {
        self.config.max_body_bytes = bytes;
        self
    }

    /// Largest accepted header block (431 beyond).
    pub fn max_header_bytes(mut self, bytes: usize) -> Self {
        self.config.max_header_bytes = bytes;
        self
    }

    /// Idle keep-alive / mid-request read timeout.
    pub fn read_timeout(mut self, timeout: Duration) -> Self {
        self.config.read_timeout = timeout;
        self
    }

    /// Hard wall-clock cap on receiving one complete request.
    pub fn request_deadline(mut self, deadline: Duration) -> Self {
        self.config.request_deadline = deadline;
        self
    }

    /// Requests served per connection before an orderly close.
    pub fn max_requests_per_conn(mut self, limit: usize) -> Self {
        self.config.max_requests_per_conn = limit;
        self
    }

    /// Admission watermark (0 disables shedding).
    pub fn shed_watermark(mut self, watermark: usize) -> Self {
        self.config.shed_watermark = watermark;
        self
    }

    /// Seconds suggested in `Retry-After` on 429/408 responses.
    pub fn retry_after_s(mut self, seconds: u32) -> Self {
        self.config.retry_after_s = seconds;
        self
    }

    /// Which connection backend serves this config.
    pub fn transport(mut self, transport: TransportKind) -> Self {
        self.config.transport = transport;
        self
    }

    /// Head-sampling cadence: keep 1 trace in `every` (0 disables
    /// tracing).
    pub fn trace_sample(mut self, every: u32) -> Self {
        self.config.trace_sample = every;
        self
    }

    /// Slow-trace keep threshold, µs (0 disables the override).
    pub fn trace_slow_us(mut self, micros: u64) -> Self {
        self.config.trace_slow_us = micros;
        self
    }

    /// Completed-trace ring capacity.
    pub fn trace_ring(mut self, capacity: usize) -> Self {
        self.config.trace_ring = capacity;
        self
    }

    /// Validates and produces the config.
    ///
    /// # Errors
    ///
    /// [`ConfigError`] on zero workers (explicitly set), a shed
    /// watermark below an explicitly sized pool, or zero
    /// timeouts/limits.
    pub fn build(self) -> Result<HttpConfig, ConfigError> {
        let c = &self.config;
        if self.workers_explicit && c.workers == 0 {
            return Err(ConfigError::ZeroWorkers);
        }
        if c.shed_watermark > 0 && c.workers > 0 && c.shed_watermark < c.workers {
            return Err(ConfigError::WatermarkBelowWorkers {
                watermark: c.shed_watermark,
                workers: c.workers,
            });
        }
        if c.read_timeout.is_zero() {
            return Err(ConfigError::ZeroTimeout("read_timeout"));
        }
        if c.request_deadline.is_zero() {
            return Err(ConfigError::ZeroTimeout("request_deadline"));
        }
        if c.max_body_bytes == 0 {
            return Err(ConfigError::ZeroLimit("max_body_bytes"));
        }
        if c.max_header_bytes == 0 {
            return Err(ConfigError::ZeroLimit("max_header_bytes"));
        }
        if c.max_requests_per_conn == 0 {
            return Err(ConfigError::ZeroLimit("max_requests_per_conn"));
        }
        Ok(self.config)
    }
}

/// Live load observed by the server, shared out for metrics scrapes
/// and the admission gate. All relaxed atomics — the counters steer
/// shedding and dashboards, not correctness.
#[derive(Debug, Default)]
pub struct LoadGauge {
    /// Work handed to the accept→worker channel and not yet picked up
    /// by a worker (the unbounded queue the shed watermark bounds):
    /// connections under the threaded backend, complete requests under
    /// epoll.
    pub queued: AtomicUsize,
    /// Requests currently inside a route handler.
    pub in_flight: AtomicUsize,
    /// Connections answered `429 + Retry-After` at the admission gate.
    pub shed_total: AtomicU64,
}

/// The server's tracing surface: the head sampler, the bounded
/// completed-trace ring, and per-stage latency histograms folded from
/// every finished trace (sampled or not — recording is per-request,
/// *keeping* is sampled/slow/forced). One hub per [`HttpServer`],
/// shared by the transport, the route handler (for `/trace/*`) and the
/// metrics scrape.
#[derive(Debug)]
pub struct TraceHub {
    sampler: Sampler,
    ring: TraceRing,
    stage_hist: Vec<LatencyHistogram>,
}

impl TraceHub {
    pub fn new(sample_every: u32, slow_us: u64, ring_capacity: usize) -> TraceHub {
        TraceHub {
            sampler: Sampler::new(sample_every, slow_us),
            ring: TraceRing::new(ring_capacity),
            stage_hist: Stage::ALL.iter().map(|_| LatencyHistogram::new()).collect(),
        }
    }

    fn from_config(config: &HttpConfig) -> TraceHub {
        TraceHub::new(config.trace_sample, config.trace_slow_us, config.trace_ring)
    }

    /// False when tracing is disabled (`trace_sample == 0`).
    pub fn enabled(&self) -> bool {
        self.sampler.enabled()
    }

    /// The configured head-sampling cadence (0 = off).
    pub fn sample_every(&self) -> u32 {
        self.sampler.every()
    }

    /// The slow-trace keep threshold, µs.
    pub fn slow_us(&self) -> u64 {
        self.sampler.slow_us()
    }

    /// Opens a trace for one request. `forced` carries an upstream id
    /// from `x-trace-id` — such traces are always kept, so a router (or
    /// an operator with `curl -H`) can demand capture end to end.
    /// Returns `None` when tracing is disabled.
    pub fn begin(&self, origin: Instant, forced: Option<TraceId>) -> Option<ActiveTrace> {
        if !self.sampler.enabled() {
            return None;
        }
        let sampled = self.sampler.sample();
        Some(match forced {
            Some(id) => ActiveTrace::start(id, origin, sampled, true),
            None => ActiveTrace::start(TraceId::generate(), origin, sampled, false),
        })
    }

    /// Seals a trace: folds every span into the per-stage histograms,
    /// then keeps it in the ring iff head-sampled, slow, or forced.
    pub fn finish(&self, active: ActiveTrace) -> Arc<Trace> {
        let trace = Arc::new(active.finish(Instant::now(), self.sampler.slow_us()));
        for span in &trace.spans {
            self.stage_hist[span.stage.index()].record_with_trace(span.duration_us, Some(trace.id));
        }
        if trace.sampled || trace.slow || trace.forced {
            self.ring.push(Arc::clone(&trace));
        }
        trace
    }

    /// Newest-first snapshot of up to `limit` kept traces.
    pub fn recent(&self, limit: usize) -> Vec<Arc<Trace>> {
        self.ring.recent(limit)
    }

    /// A kept trace by id, if still in the ring.
    pub fn find(&self, id: TraceId) -> Option<Arc<Trace>> {
        self.ring.find(id)
    }

    /// Traces kept in / dropped at the ring since start.
    pub fn ring_counts(&self) -> (u64, u64) {
        (self.ring.kept(), self.ring.dropped())
    }

    /// Per-stage duration histograms in [`Stage::ALL`] order, for the
    /// metrics scrape.
    pub fn stage_histograms(&self) -> impl Iterator<Item = (Stage, &LatencyHistogram)> {
        Stage::ALL.iter().copied().zip(self.stage_hist.iter())
    }
}

/// Attaches a span collector to a freshly parsed request when the hub
/// elects to trace it. `origin` anchors the trace's time axis (accept
/// time for a connection's first request, first byte otherwise).
pub(crate) fn attach_trace(hub: &TraceHub, request: &mut HttpRequest, origin: Instant) {
    let forced = request.header("x-trace-id").and_then(TraceId::parse);
    if let Some(active) = hub.begin(origin, forced) {
        request.trace = Some(Mutex::new(active));
    }
}

/// Seals a request's trace after its response bytes hit the socket:
/// records the `write` span and hands the trace to the hub.
pub(crate) fn finish_trace(hub: &TraceHub, cell: Mutex<ActiveTrace>, write_start: Instant) {
    let mut active = cell.into_inner().unwrap_or_else(PoisonError::into_inner);
    active.record(Stage::Write, write_start, Instant::now());
    hub.finish(active);
}

/// One parsed request.
#[derive(Debug)]
pub struct HttpRequest {
    /// Request method, uppercase (`GET`, `POST`, …).
    pub method: String,
    /// Decoded path without the query string.
    pub path: String,
    /// Raw query string (no leading `?`; empty when absent).
    pub query: String,
    /// Header list with lowercased names.
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
    /// The request's span collector when tracing elected it, attached
    /// by the transport before dispatch. Handlers receive `&HttpRequest`
    /// so the collector sits behind a `Mutex` — uncontended in practice
    /// (one request, one thread at a time), it exists purely for
    /// interior mutability.
    pub trace: Option<Mutex<ActiveTrace>>,
}

impl HttpRequest {
    /// First header value under `name` (lowercase), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Runs `f` against the span collector, if this request is traced.
    pub fn with_trace<R>(&self, f: impl FnOnce(&mut ActiveTrace) -> R) -> Option<R> {
        self.trace
            .as_ref()
            .map(|cell| f(&mut cell.lock().unwrap_or_else(PoisonError::into_inner)))
    }

    /// This request's trace id, when traced.
    pub fn trace_id(&self) -> Option<TraceId> {
        self.with_trace(|at| at.id())
    }

    /// Opens a span under the innermost open span; pair with
    /// [`HttpRequest::trace_end`]. No-op (returns `None`) when the
    /// request is untraced.
    pub fn trace_begin(&self, stage: Stage) -> Option<u32> {
        self.with_trace(|at| at.begin(stage))
    }

    /// Closes a span opened by [`HttpRequest::trace_begin`].
    pub fn trace_end(&self, span: Option<u32>) {
        if let Some(id) = span {
            self.with_trace(|at| at.end(id));
        }
    }

    /// Closes a span and attaches a note.
    pub fn trace_end_note(&self, span: Option<u32>, note: String) {
        if let Some(id) = span {
            self.with_trace(|at| at.end_with_note(id, note));
        }
    }

    /// Records an already-measured interval as a closed child span.
    pub fn trace_record(&self, stage: Stage, start: Instant, end: Instant) {
        self.with_trace(|at| at.record(stage, start, end));
    }

    /// [`HttpRequest::trace_record`] with a note.
    pub fn trace_record_note(&self, stage: Stage, start: Instant, end: Instant, note: String) {
        self.with_trace(|at| at.record_note(stage, start, end, Some(note)));
    }
}

/// One response to write.
#[derive(Debug)]
pub struct HttpResponse {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Extra response headers (name, value) beyond the always-present
    /// `Content-Type`/`Content-Length`/`Connection` trio — e.g. the
    /// fleet router's `Retry-After` on 503.
    pub headers: Vec<(&'static str, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// A JSON response.
    pub fn json(status: u16, value: &crate::json::Json) -> HttpResponse {
        HttpResponse {
            status,
            content_type: "application/json",
            headers: Vec::new(),
            body: value.render().into_bytes(),
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<String>) -> HttpResponse {
        HttpResponse {
            status,
            content_type: "text/plain; version=0.0.4",
            headers: Vec::new(),
            body: body.into().into_bytes(),
        }
    }

    /// A JSON error envelope: `{"error": "<message>"}`.
    pub fn error(status: u16, message: &str) -> HttpResponse {
        HttpResponse::json(
            status,
            &crate::json::obj([("error", crate::json::Json::from(message))]),
        )
    }

    /// Attaches one extra response header (builder-style).
    pub fn with_header(mut self, name: &'static str, value: impl Into<String>) -> HttpResponse {
        self.headers.push((name, value.into()));
        self
    }
}

pub(crate) fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        411 => "Length Required",
        413 => "Payload Too Large",
        422 => "Unprocessable Content",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// The route handler: pure request → response. Panics inside the
/// handler are caught per request and served as 500s (the worker and
/// its connection survive).
pub type Handler = Arc<dyn Fn(&HttpRequest) -> HttpResponse + Send + Sync>;

/// Cloneable trigger for a graceful stop. Triggering is cheap,
/// idempotent and safe from any thread (an atomic store plus a wake
/// connection), so signal watchers and tests share the same mechanism.
/// The wake connection lands on the listener, which unblocks both the
/// threaded backend's `accept` and the epoll backend's `epoll_wait`.
#[derive(Clone)]
pub struct ShutdownHandle {
    state: Arc<ShutdownState>,
}

struct ShutdownState {
    flag: AtomicBool,
    addr: SocketAddr,
}

impl ShutdownHandle {
    /// Requests shutdown: no new connections are accepted, in-flight
    /// requests finish, [`HttpServer::serve`] returns after joining its
    /// workers.
    pub fn shutdown(&self) {
        if !self.state.flag.swap(true, Ordering::SeqCst) {
            // Wake the blocked accept/poll with a throwaway connection;
            // if the listener is already gone the store alone suffices.
            let _ = TcpStream::connect_timeout(&self.state.addr, Duration::from_millis(250));
        }
    }

    /// `true` once shutdown has been requested.
    pub fn is_shutdown(&self) -> bool {
        self.state.flag.load(Ordering::SeqCst)
    }
}

/// Counters accumulated over a server's lifetime, returned by
/// [`HttpServer::serve`] so callers can assert on clean shutdown.
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Connections accepted (shed connections are not counted).
    pub connections: u64,
    /// Requests parsed and answered (any status).
    pub requests: u64,
}

/// Everything a [`Transport`] needs to run a bound server: the
/// listener plus the shared observability and control surfaces
/// [`HttpServer`] exposes. Handed to [`Transport::serve`] by
/// [`HttpServer::serve_with`].
pub struct TransportHost {
    /// The bound listener the transport accepts on.
    pub listener: TcpListener,
    /// The server's configuration.
    pub config: HttpConfig,
    /// The graceful-stop flag; transports must re-check it between
    /// requests and drain promptly when it flips.
    pub shutdown: ShutdownHandle,
    /// Counter of rejections decided below the route handler
    /// (malformed request lines, 431/413/411/408).
    pub protocol_errors: Arc<AtomicU64>,
    /// Queue-depth / in-flight / shed gauges feeding the admission
    /// gate and metrics.
    pub load: Arc<LoadGauge>,
    /// The tracing surface: sampler, completed-trace ring, per-stage
    /// histograms. Transports attach collectors to elected requests and
    /// seal them after the response write.
    pub trace: Arc<TraceHub>,
}

/// A connection backend: owns the accept → read → dispatch → write →
/// shutdown lifecycle for every connection of a running server.
///
/// Implementations must preserve the protocol layer's observable
/// behavior — identical status codes and bodies for identical inputs,
/// admission shedding at [`HttpConfig::shed_watermark`], deadline
/// budgets, and graceful drain — so callers can switch backends
/// freely. The conformance suite (`tests/transport_conformance.rs`)
/// runs the same cases against every shipped backend.
pub trait Transport {
    /// The backend's flag/env spelling (`"threads"`, `"epoll"`).
    fn name(&self) -> &'static str;

    /// Serves until shutdown, then returns lifetime counters.
    ///
    /// # Errors
    ///
    /// Setup failures only (e.g. the backend is unsupported on this
    /// platform); once serving, errors are per-connection and
    /// swallowed.
    fn serve(&self, host: TransportHost, handler: Handler) -> std::io::Result<ServerStats>;
}

/// A bound-but-not-yet-serving HTTP server.
pub struct HttpServer {
    listener: TcpListener,
    local_addr: SocketAddr,
    config: HttpConfig,
    shutdown: ShutdownHandle,
    /// Rejections decided *below* the route handler (malformed request
    /// line, 431/413/411/408): the handler's own error accounting never
    /// sees these, so the count is shared out via
    /// [`HttpServer::protocol_error_counter`] for metrics scrapes.
    protocol_errors: Arc<AtomicU64>,
    /// Queue depth / in-flight / shed counters, shared out via
    /// [`HttpServer::load_gauge`].
    load: Arc<LoadGauge>,
    /// Tracing surface, shared out via [`HttpServer::trace_hub`].
    trace: Arc<TraceHub>,
}

impl HttpServer {
    /// Binds the configured address (resolving `:0` to a real port)
    /// and verifies the configured transport is available, so
    /// [`HttpServer::serve`] cannot fail after a successful bind.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure; `ErrorKind::Unsupported` when
    /// [`HttpConfig::transport`] is [`TransportKind::Epoll`] on a
    /// platform without epoll.
    pub fn bind(config: HttpConfig) -> std::io::Result<HttpServer> {
        if config.transport == TransportKind::Epoll {
            epoll::probe()?;
        }
        let addr =
            config.addr.to_socket_addrs()?.next().ok_or_else(|| {
                std::io::Error::new(ErrorKind::InvalidInput, "unresolvable address")
            })?;
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let trace = Arc::new(TraceHub::from_config(&config));
        Ok(HttpServer {
            listener,
            local_addr,
            config,
            shutdown: ShutdownHandle {
                state: Arc::new(ShutdownState {
                    flag: AtomicBool::new(false),
                    addr: local_addr,
                }),
            },
            protocol_errors: Arc::new(AtomicU64::new(0)),
            load: Arc::new(LoadGauge::default()),
            trace,
        })
    }

    /// The bound address (the real port when `:0` was requested).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A handle that stops this server gracefully.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        self.shutdown.clone()
    }

    /// Live count of protocol-level rejections (4xx decided before the
    /// route handler runs: malformed request lines, 431/413/411/408).
    /// Clone it before [`HttpServer::serve`] to fold into metrics.
    pub fn protocol_error_counter(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.protocol_errors)
    }

    /// Live queue-depth / in-flight / shed counters (clone before
    /// [`HttpServer::serve`] to fold into metrics).
    pub fn load_gauge(&self) -> Arc<LoadGauge> {
        Arc::clone(&self.load)
    }

    /// The tracing surface (sampler, completed-trace ring, per-stage
    /// histograms). Clone before [`HttpServer::serve`] to route
    /// `/trace/*` requests and fold stage histograms into metrics.
    pub fn trace_hub(&self) -> Arc<TraceHub> {
        Arc::clone(&self.trace)
    }

    /// Serves until shutdown on the transport named by
    /// [`HttpConfig::transport`], returns lifetime counters.
    pub fn serve(self, handler: Handler) -> ServerStats {
        let transport: &dyn Transport = match self.config.transport {
            TransportKind::Threaded => &ThreadedTransport,
            TransportKind::Epoll => &EpollTransport,
        };
        self.serve_with(transport, handler)
            .expect("transport availability was verified at bind time")
    }

    /// Serves until shutdown on an explicit [`Transport`] (the seam
    /// for out-of-tree backends; [`HttpServer::serve`] is this with
    /// the configured built-in).
    ///
    /// # Errors
    ///
    /// The transport's setup failure, if any.
    pub fn serve_with(
        self,
        transport: &dyn Transport,
        handler: Handler,
    ) -> std::io::Result<ServerStats> {
        transport.serve(
            TransportHost {
                listener: self.listener,
                config: self.config,
                shutdown: self.shutdown,
                protocol_errors: self.protocol_errors,
                load: self.load,
                trace: self.trace,
            },
            handler,
        )
    }
}

/// How often a blocked read wakes to re-check the shutdown flag (and
/// the epoll loop's poll tick). A connection parked idle notices a
/// drain within this interval instead of holding shutdown hostage for
/// the full idle timeout.
pub(crate) const READ_POLL: Duration = Duration::from_millis(100);

/// Bounds on the post-rejection drain: how many client bytes to
/// discard, for how long, before closing a connection that was just
/// served an error. One policy shared by the shed path and both
/// transports' error paths, so the 429/408 close semantics cannot
/// drift.
#[derive(Debug, Clone, Copy)]
pub(crate) struct DrainBudget {
    /// Discard at most this many bytes.
    pub max_bytes: usize,
    /// Stop draining after this long regardless.
    pub window: Duration,
}

impl DrainBudget {
    /// The budget after a protocol-error response: the client may have
    /// a whole announced body in flight (a 413's natural fate), so
    /// allow one max body plus slack, bounded by the read timeout.
    pub(crate) fn for_rejection(config: &HttpConfig) -> DrainBudget {
        DrainBudget {
            max_bytes: config.max_body_bytes + (64 << 10),
            window: config.read_timeout,
        }
    }

    /// The budget after an admission-gate 429: the connection was shed
    /// *before* reading anything, so whatever is in flight is small —
    /// keep the shedder thread's per-connection cost tightly bounded.
    pub(crate) fn for_shed() -> DrainBudget {
        DrainBudget {
            max_bytes: 64 << 10,
            window: Duration::from_millis(250),
        }
    }
}

/// Finishes a connection that was just served a rejection (429, 408,
/// 4xx protocol error): half-close, drain within `budget`, close.
///
/// The close must not be an immediate teardown: closing a socket with
/// the client's unread request bytes still buffered makes the kernel
/// send RST, which can destroy the response before the client reads
/// it. Sending FIN first and then draining (briefly — the budget
/// bounds a malicious dribbler) lets the response land and the
/// connection die with a clean FIN exchange.
pub(crate) fn finish_rejected(stream: &mut TcpStream, budget: DrainBudget) {
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let _ = stream.set_read_timeout(Some(READ_POLL.min(budget.window)));
    let deadline = Instant::now() + budget.window;
    let mut remaining = budget.max_bytes;
    let mut chunk = [0u8; 4096];
    while remaining > 0 && Instant::now() < deadline {
        match stream.read(&mut chunk) {
            Ok(0) => break, // client saw our FIN and closed too
            Ok(n) => remaining = remaining.saturating_sub(n),
            Err(e) if is_timeout(&e) || e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => break,
        }
    }
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

/// Answers a connection the admission gate rejected: a one-line 429
/// with `Retry-After`, then the RST-safe [`finish_rejected`] close.
/// Runs on a dedicated shedder thread with every step timeout-bounded,
/// so a slow client can neither stall the accept path nor hold the
/// shedder hostage.
pub(crate) fn shed_connection(mut stream: TcpStream, retry_after_s: u32) {
    let _ = stream.set_write_timeout(Some(Duration::from_millis(250)));
    let _ = stream.set_nodelay(true);
    let response = HttpResponse::error(429, "server saturated; retry later")
        .with_header("Retry-After", retry_after_s.to_string());
    let _ = write_response(&mut stream, &response, false);
    finish_rejected(&mut stream, DrainBudget::for_shed());
}

pub(crate) fn is_timeout(e: &std::io::Error) -> bool {
    matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut)
}

/// Serializes the status line, framing headers, extras and body —
/// the one wire encoding both transports emit.
pub(crate) fn encode_response(response: &HttpResponse, keep_alive: bool) -> Vec<u8> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
        response.status,
        status_reason(response.status),
        response.content_type,
        response.body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    for (name, value) in &response.headers {
        use std::fmt::Write as _;
        let _ = write!(head, "{name}: {value}\r\n");
    }
    head.push_str("\r\n");
    let mut out = head.into_bytes();
    out.extend_from_slice(&response.body);
    out
}

pub(crate) fn write_response(
    stream: &mut TcpStream,
    response: &HttpResponse,
    keep_alive: bool,
) -> std::io::Result<()> {
    stream.write_all(&encode_response(response, keep_alive))?;
    stream.flush()
}

// ───────────────────────── signal handling ─────────────────────────

/// The process-wide "a termination signal arrived" flag. Signal
/// handlers may only do async-signal-safe work; a relaxed store is.
static SIGNAL_FLAG: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
extern "C" fn on_termination_signal(_signum: i32) {
    SIGNAL_FLAG.store(true, Ordering::Relaxed);
}

/// Installs SIGINT/SIGTERM hooks (libc `signal`, linked by std on every
/// unix target — no crate dependency) and spawns a watcher thread that
/// converts the flag into a graceful [`ShutdownHandle::shutdown`].
///
/// On non-unix targets this is a no-op: ctrl-c falls back to the OS
/// default of killing the process.
pub fn shutdown_on_signals(handle: ShutdownHandle) {
    #[cfg(unix)]
    {
        extern "C" {
            fn signal(signum: i32, handler: extern "C" fn(i32)) -> isize;
        }
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        unsafe {
            signal(SIGINT, on_termination_signal);
            signal(SIGTERM, on_termination_signal);
        }
    }
    std::thread::spawn(move || loop {
        // `swap` consumes the flag: a later daemon in the same process
        // must not be shut down by a signal its predecessor absorbed.
        if SIGNAL_FLAG.swap(false, Ordering::Relaxed) || handle.is_shutdown() {
            handle.shutdown();
            break;
        }
        std::thread::sleep(Duration::from_millis(100));
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{obj, Json};
    use std::io::{BufRead, BufReader};

    fn echo_server(
        config: HttpConfig,
    ) -> (
        SocketAddr,
        ShutdownHandle,
        std::thread::JoinHandle<ServerStats>,
    ) {
        let server = HttpServer::bind(config).expect("binds");
        let addr = server.local_addr();
        let handle = server.shutdown_handle();
        let join = std::thread::spawn(move || {
            server.serve(Arc::new(|req: &HttpRequest| match req.path.as_str() {
                "/echo" => HttpResponse::json(
                    200,
                    &obj([
                        ("method", Json::from(req.method.as_str())),
                        ("len", Json::from(req.body.len())),
                    ]),
                ),
                "/panic" => panic!("handler exploded"),
                _ => HttpResponse::error(404, "no such route"),
            }))
        });
        (addr, handle, join)
    }

    fn raw_round_trip(addr: SocketAddr, request: &str) -> String {
        let mut stream = TcpStream::connect(addr).expect("connects");
        stream.write_all(request.as_bytes()).expect("writes");
        let mut reply = String::new();
        let mut reader = BufReader::new(stream);
        loop {
            let mut line = String::new();
            match reader.read_line(&mut line) {
                Ok(0) => break,
                Ok(_) => reply.push_str(&line),
                Err(_) => break,
            }
        }
        reply
    }

    #[test]
    fn serves_parses_and_shuts_down_cleanly() {
        let (addr, handle, join) = echo_server(HttpConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            read_timeout: Duration::from_millis(500),
            ..HttpConfig::default()
        });

        let reply = raw_round_trip(
            addr,
            "POST /echo HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\nConnection: close\r\n\r\nhello",
        );
        assert!(reply.starts_with("HTTP/1.1 200 OK"), "{reply}");
        assert!(reply.contains(r#""len":5"#), "{reply}");

        let reply = raw_round_trip(addr, "GET /nope HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert!(reply.starts_with("HTTP/1.1 404"), "{reply}");

        handle.shutdown();
        let stats = join.join().expect("server thread joins");
        assert!(stats.requests >= 2);
    }

    #[test]
    fn keep_alive_serves_multiple_requests_on_one_connection() {
        let (addr, handle, join) = echo_server(HttpConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 1,
            read_timeout: Duration::from_millis(500),
            ..HttpConfig::default()
        });
        let mut stream = TcpStream::connect(addr).expect("connects");
        for i in 0..3 {
            let body = "x".repeat(i + 1);
            let req = format!(
                "POST /echo HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            );
            stream.write_all(req.as_bytes()).expect("writes");
            let mut reader = BufReader::new(stream.try_clone().expect("clone"));
            let mut status = String::new();
            reader.read_line(&mut status).expect("status line");
            assert!(status.starts_with("HTTP/1.1 200"), "req {i}: {status}");
            // Drain headers + the exact body, leaving the stream clean.
            let mut content_length = 0usize;
            loop {
                let mut line = String::new();
                reader.read_line(&mut line).expect("header line");
                if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
                    content_length = v.trim().parse().expect("length");
                }
                if line == "\r\n" {
                    break;
                }
            }
            let mut body = vec![0u8; content_length];
            reader.read_exact(&mut body).expect("body");
        }
        handle.shutdown();
        let stats = join.join().expect("joins");
        assert_eq!(stats.requests, 3);
        assert_eq!(stats.connections, 1);
    }

    #[test]
    fn size_limits_and_bad_requests_are_typed_statuses() {
        let (addr, handle, join) = echo_server(HttpConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 1,
            max_body_bytes: 64,
            max_header_bytes: 256,
            read_timeout: Duration::from_millis(300),
            ..HttpConfig::default()
        });

        let reply = raw_round_trip(
            addr,
            "POST /echo HTTP/1.1\r\nContent-Length: 100000\r\n\r\n",
        );
        assert!(reply.starts_with("HTTP/1.1 413"), "{reply}");

        let big_header = format!("GET /echo HTTP/1.1\r\nX-Big: {}\r\n\r\n", "y".repeat(1000));
        let reply = raw_round_trip(addr, &big_header);
        assert!(reply.starts_with("HTTP/1.1 431"), "{reply}");

        let reply = raw_round_trip(addr, "BROKEN\r\n\r\n");
        assert!(reply.starts_with("HTTP/1.1 400"), "{reply}");

        // Duplicate Content-Length is a smuggling vector: rejected.
        let reply = raw_round_trip(
            addr,
            "POST /echo HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 20\r\n\r\nhi",
        );
        assert!(reply.starts_with("HTTP/1.1 400"), "{reply}");

        // An oversized upload must still *receive* its 413: the server
        // drains the announced body instead of RST-ing the response.
        let mut stream = TcpStream::connect(addr).expect("connects");
        let body = vec![b'x'; 300];
        stream
            .write_all(b"POST /echo HTTP/1.1\r\nContent-Length: 300\r\n\r\n")
            .expect("head");
        stream.write_all(&body).expect("body");
        let mut reply = String::new();
        let mut reader = BufReader::new(stream);
        reader.read_line(&mut reply).expect("status line arrives");
        assert!(reply.starts_with("HTTP/1.1 413"), "{reply}");

        let reply = raw_round_trip(
            addr,
            "POST /echo HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
        );
        assert!(reply.starts_with("HTTP/1.1 411"), "{reply}");

        handle.shutdown();
        join.join().expect("joins");
    }

    #[test]
    fn handler_panic_becomes_500_not_a_dead_worker() {
        let (addr, handle, join) = echo_server(HttpConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 1,
            read_timeout: Duration::from_millis(500),
            ..HttpConfig::default()
        });
        let reply = raw_round_trip(addr, "GET /panic HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert!(reply.starts_with("HTTP/1.1 500"), "{reply}");
        // The single worker must still be alive to serve this.
        let reply = raw_round_trip(
            addr,
            "POST /echo HTTP/1.1\r\nContent-Length: 0\r\nConnection: close\r\n\r\n",
        );
        assert!(reply.starts_with("HTTP/1.1 200"), "{reply}");
        handle.shutdown();
        join.join().expect("joins");
    }

    #[test]
    fn admission_gate_sheds_past_the_watermark_with_429() {
        let server = HttpServer::bind(HttpConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 1,
            shed_watermark: 1,
            retry_after_s: 3,
            read_timeout: Duration::from_millis(500),
            transport: TransportKind::Threaded,
            ..HttpConfig::default()
        })
        .expect("binds");
        let addr = server.local_addr();
        let handle = server.shutdown_handle();
        let load = server.load_gauge();
        let join = std::thread::spawn(move || {
            server.serve(Arc::new(|_req: &HttpRequest| {
                std::thread::sleep(Duration::from_millis(600));
                HttpResponse::text(200, "finally")
            }))
        });

        // Occupy the single worker and wait until its handler is truly
        // in flight (so the next connection parks in the queue instead
        // of racing the dequeue).
        let deadline = Instant::now() + Duration::from_secs(5);
        let mut busy = TcpStream::connect(addr).expect("connects");
        busy.write_all(b"GET /slow HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n")
            .expect("writes");
        while load.in_flight.load(Ordering::Relaxed) < 1 {
            assert!(
                Instant::now() < deadline,
                "the busy request never reached the handler"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
        // Park one more connection in the queue: that reaches the
        // watermark. (Transport pinned to threaded above: only there
        // does a connection itself occupy the queue — under epoll the
        // queue holds complete requests, covered by the conformance
        // suite.)
        let _parked = TcpStream::connect(addr).expect("connects");
        while load.queued.load(Ordering::Relaxed) < 1 {
            assert!(
                Instant::now() < deadline,
                "the parked connection never reached the queue"
            );
            std::thread::sleep(Duration::from_millis(10));
        }

        // The next connection must be shed immediately with 429.
        let reply = raw_round_trip(addr, "GET /slow HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(reply.starts_with("HTTP/1.1 429"), "{reply}");
        assert!(reply.contains("Retry-After: 3"), "{reply}");
        assert_eq!(load.shed_total.load(Ordering::Relaxed), 1);

        handle.shutdown();
        join.join().expect("joins");
    }

    #[test]
    fn shutdown_without_traffic_returns_promptly() {
        let (_, handle, join) = echo_server(HttpConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            ..HttpConfig::default()
        });
        handle.shutdown();
        handle.shutdown(); // idempotent
        let stats = join.join().expect("joins");
        assert_eq!(stats.requests, 0);
    }

    #[test]
    fn builder_accepts_reasonable_configs_and_defaults() {
        let config = HttpConfig::builder()
            .addr("127.0.0.1:0")
            .workers(4)
            .shed_watermark(64)
            .transport(TransportKind::Threaded)
            .build()
            .expect("valid");
        assert_eq!(config.workers, 4);
        assert_eq!(config.shed_watermark, 64);
        // Unset knobs keep their defaults.
        assert_eq!(config.max_body_bytes, HttpConfig::default().max_body_bytes);
        // Omitting workers() keeps the auto sentinel without tripping
        // the explicit-zero check.
        let auto = HttpConfig::builder().build().expect("auto workers");
        assert_eq!(auto.workers, 0);
    }

    #[test]
    fn builder_rejects_degenerate_configs() {
        assert_eq!(
            HttpConfig::builder().workers(0).build().unwrap_err(),
            ConfigError::ZeroWorkers
        );
        assert_eq!(
            HttpConfig::builder()
                .workers(8)
                .shed_watermark(2)
                .build()
                .unwrap_err(),
            ConfigError::WatermarkBelowWorkers {
                watermark: 2,
                workers: 8
            }
        );
        assert_eq!(
            HttpConfig::builder()
                .read_timeout(Duration::ZERO)
                .build()
                .unwrap_err(),
            ConfigError::ZeroTimeout("read_timeout")
        );
        assert_eq!(
            HttpConfig::builder()
                .request_deadline(Duration::ZERO)
                .build()
                .unwrap_err(),
            ConfigError::ZeroTimeout("request_deadline")
        );
        assert_eq!(
            HttpConfig::builder().max_body_bytes(0).build().unwrap_err(),
            ConfigError::ZeroLimit("max_body_bytes")
        );
        assert_eq!(
            HttpConfig::builder()
                .max_requests_per_conn(0)
                .build()
                .unwrap_err(),
            ConfigError::ZeroLimit("max_requests_per_conn")
        );
        // Watermark 0 means "shedding disabled", not "watermark below
        // pool": valid.
        assert!(HttpConfig::builder()
            .workers(8)
            .shed_watermark(0)
            .build()
            .is_ok());
    }

    #[test]
    fn transport_kind_parses_its_flag_spellings() {
        assert_eq!("threads".parse(), Ok(TransportKind::Threaded));
        assert_eq!("threaded".parse(), Ok(TransportKind::Threaded));
        assert_eq!("epoll".parse(), Ok(TransportKind::Epoll));
        assert!("uring".parse::<TransportKind>().is_err());
        assert_eq!(TransportKind::Epoll.to_string(), "epoll");
    }
}
