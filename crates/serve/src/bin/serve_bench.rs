//! Loopback load generator for the scanning daemon: the serving path's
//! perf trajectory, measured from day one.
//!
//! ```text
//! cargo run --release -p scamdetect-serve --bin serve_bench \
//!     [-- --out BENCH_PR5.json --clients 4 --requests 800]
//! ```
//!
//! Trains a small logistic-regression artifact, spawns the daemon
//! in-process on an ephemeral loopback port, then drives it with N
//! client threads over keep-alive connections. The request mix mirrors
//! production bulk scanning: a duplicate-heavy corpus (ERC-1167-style
//! proxy clones included), so both the cold lift path and the verdict
//! cache are exercised.
//!
//! Writes req/s and p50/p99 request latency to JSON (default
//! `BENCH_PR5.json`; CI uploads it as a workflow artifact). The gate is
//! **correctness**, not speed: every response must be a 200 with a
//! parseable verdict, and the run fails loudly otherwise — latency
//! numbers from a shared CI runner are a trajectory, not a contract.

use scamdetect::{ClassicModel, FeatureKind, ModelKind, ScannerBuilder};
use scamdetect_dataset::{Corpus, CorpusConfig};
use scamdetect_serve::client::HttpClient;
use scamdetect_serve::daemon::{spawn, ServeConfig};
use scamdetect_serve::json::Json;
use std::fmt::Write as _;
use std::process::ExitCode;
use std::time::Instant;

struct Options {
    out_path: String,
    clients: usize,
    requests: usize,
}

fn parse_args() -> Result<Options, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut options = Options {
        out_path: "BENCH_PR5.json".to_string(),
        clients: 4,
        requests: 800,
    };
    let mut i = 0;
    while i < args.len() {
        let value = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            args.get(*i)
                .cloned()
                .ok_or_else(|| format!("{} needs a value", args[*i - 1]))
        };
        match args[i].as_str() {
            "--out" => options.out_path = value(&mut i)?,
            "--clients" => {
                options.clients = value(&mut i)?
                    .parse()
                    .map_err(|e| format!("--clients: {e}"))?
            }
            "--requests" => {
                options.requests = value(&mut i)?
                    .parse()
                    .map_err(|e| format!("--requests: {e}"))?
            }
            other => {
                return Err(format!(
                    "unknown option '{other}' (usage: serve_bench [--out <path>] \
                     [--clients <n>] [--requests <n>])"
                ))
            }
        }
        i += 1;
    }
    if options.clients == 0 || options.requests == 0 {
        return Err("--clients and --requests must be at least 1".to_string());
    }
    Ok(options)
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(options) => options,
        Err(message) => {
            eprintln!("serve-bench: {message}");
            return ExitCode::from(2);
        }
    };

    // 1. Train once, persist into a throwaway models dir.
    eprintln!("serve-bench: training the serving artifact…");
    let models_dir =
        std::env::temp_dir().join(format!("scamdetect-serve-bench-{}", std::process::id()));
    if let Err(e) = std::fs::create_dir_all(&models_dir) {
        eprintln!("serve-bench: cannot create {}: {e}", models_dir.display());
        return ExitCode::FAILURE;
    }
    let train_corpus = Corpus::generate(&CorpusConfig {
        size: 80,
        seed: 11,
        ..CorpusConfig::default()
    });
    let trained = ScannerBuilder::new()
        .model(ModelKind::Classic(
            ClassicModel::LogisticRegression,
            FeatureKind::Unified,
        ))
        .train(&train_corpus)
        .expect("trains");
    trained
        .save(models_dir.join("bench-v1.scam"))
        .expect("saves artifact");

    // 2. Spawn the daemon on an ephemeral loopback port.
    let mut config = ServeConfig::default();
    config.http.addr = "127.0.0.1:0".to_string();
    config.registry.models_dir = models_dir.clone();
    let daemon = spawn(config).expect("daemon spawns");
    eprintln!("serve-bench: daemon on http://{}", daemon.addr);

    // 3. The request mix: duplicate-heavy bulk traffic.
    let scan_corpus = Corpus::generate(&CorpusConfig {
        size: 48,
        seed: 12,
        proxy_duplicates: 16,
        ..CorpusConfig::default()
    });
    let bodies: Vec<String> = scan_corpus
        .contracts()
        .iter()
        .map(|c| {
            format!(
                r#"{{"bytecode": "{}"}}"#,
                scamdetect_serve::wire::encode_hex(&c.bytes)
            )
        })
        .collect();

    // Warm-up pass: every unique skeleton gets lifted once before the
    // measured window, so the numbers describe steady-state serving.
    {
        let mut client = HttpClient::connect(daemon.addr).expect("warm-up connects");
        for body in &bodies {
            let reply = client
                .request("POST", "/scan", Some(body))
                .expect("warm-up scan");
            assert_eq!(reply.status, 200, "warm-up scan failed: {}", reply.body);
        }
    }

    // 4. Measured window: N clients × keep-alive connections.
    eprintln!(
        "serve-bench: driving {} requests over {} client threads…",
        options.requests, options.clients
    );
    let per_client = options.requests.div_ceil(options.clients);
    let started = Instant::now();
    let mut latencies_us: Vec<u64> = Vec::with_capacity(options.requests);
    let mut failures = 0usize;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..options.clients)
            .map(|client_idx| {
                let bodies = &bodies;
                let addr = daemon.addr;
                scope.spawn(move || {
                    let mut client = HttpClient::connect(addr).expect("client connects");
                    let mut local = Vec::with_capacity(per_client);
                    let mut failed = 0usize;
                    for i in 0..per_client {
                        let body = &bodies[(client_idx + i * 7) % bodies.len()];
                        let sent = Instant::now();
                        match client.request("POST", "/scan", Some(body)) {
                            Ok(reply) if reply.status == 200 => {
                                local.push(sent.elapsed().as_micros() as u64);
                            }
                            Ok(reply) => {
                                eprintln!("serve-bench: status {}: {}", reply.status, reply.body);
                                failed += 1;
                            }
                            Err(e) => {
                                eprintln!("serve-bench: request error: {e}");
                                failed += 1;
                            }
                        }
                    }
                    (local, failed)
                })
            })
            .collect();
        for handle in handles {
            let (local, failed) = handle.join().expect("client thread");
            latencies_us.extend(local);
            failures += failed;
        }
    });
    let elapsed = started.elapsed();

    // 5. Correctness probe after load: a verdict must still parse, and
    //    the metrics endpoint must report the traffic.
    let reply = scamdetect_serve::client::http_call(daemon.addr, "POST", "/scan", Some(&bodies[0]))
        .expect("probe scan");
    let verdict_ok = Json::parse(&reply.body)
        .ok()
        .and_then(|v| v.get("score").and_then(Json::as_f64))
        .is_some();
    let metrics_text = scamdetect_serve::client::http_call(daemon.addr, "GET", "/metrics", None)
        .expect("metrics scrape")
        .body;
    let hit_ratio = daemon.metrics.cache_hit_ratio();

    let stats = daemon.stop().expect("clean daemon shutdown");

    // 6. Aggregate + emit.
    latencies_us.sort_unstable();
    let pick = |q: f64| {
        if latencies_us.is_empty() {
            0
        } else {
            latencies_us[((latencies_us.len() - 1) as f64 * q) as usize]
        }
    };
    let completed = latencies_us.len();
    let req_per_sec = completed as f64 / elapsed.as_secs_f64().max(1e-9);
    let (p50, p99) = (pick(0.50), pick(0.99));
    eprintln!(
        "serve-bench: {completed} requests in {:.1}ms → {req_per_sec:.0} req/s \
         (p50 {p50}µs, p99 {p99}µs, cache hit ratio {hit_ratio:.2})",
        elapsed.as_secs_f64() * 1e3,
    );

    let gate_pass = failures == 0
        && verdict_ok
        && completed >= options.requests
        && metrics_text.contains("scamdetect_requests_total");
    let mut json = String::new();
    json.push_str("{\n  \"schema\": \"scamdetect-serve-bench/v1\",\n");
    let _ = writeln!(
        json,
        "  \"scan_loopback\": {{\"clients\": {}, \"requests\": {completed}, \
         \"elapsed_us\": {}, \"req_per_sec\": {req_per_sec:.0}, \"p50_us\": {p50}, \
         \"p99_us\": {p99}, \"cache_hit_ratio\": {hit_ratio:.4}, \
         \"server_connections\": {}, \"server_requests\": {}}},",
        options.clients,
        elapsed.as_micros(),
        stats.connections,
        stats.requests,
    );
    let _ = writeln!(
        json,
        "  \"gate\": {{\"pass\": {gate_pass}, \"rule\": \"every request answers 200 with a \
         parseable verdict and the daemon shuts down cleanly; latency is recorded as a \
         trajectory, not gated\"}}"
    );
    json.push_str("}\n");
    if let Err(e) = std::fs::write(&options.out_path, &json) {
        eprintln!("serve-bench: cannot write {}: {e}", options.out_path);
        return ExitCode::FAILURE;
    }
    eprintln!("serve-bench: wrote {}", options.out_path);
    std::fs::remove_dir_all(&models_dir).ok();

    if !gate_pass {
        eprintln!("serve-bench: GATE FAILED ({failures} failed requests, verdict_ok {verdict_ok})");
        return ExitCode::FAILURE;
    }
    eprintln!("serve-bench: gate passed");
    ExitCode::SUCCESS
}
