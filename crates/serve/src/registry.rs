//! The hot-swap model registry: versioned [`ModelArtifact`]s on disk,
//! one atomically swappable serving model in memory.
//!
//! A registry owns a **models directory** of `*.scam` artifacts (the
//! train-once / serve-anywhere files written by `scamdetect-cli train
//! --save` or [`Scanner::save`]). One artifact is *active* at a time:
//! the explicitly pinned id, or the lexicographically last file stem —
//! so date-stamped or zero-padded version names (`rf-2026-07-31`,
//! `rf-v007`) naturally promote the newest model.
//!
//! # Swap semantics
//!
//! The active model lives behind `RwLock<Arc<ServingModel>>`. Request
//! handlers take a read lock just long enough to clone the `Arc` — a
//! few nanoseconds, never held across scoring — so scans in flight
//! during a swap finish on the snapshot they started with, and the
//! response's `model`/`epoch` fields name exactly the weights that
//! produced the score. There is no torn state to observe: a response
//! is always bit-consistent with one model.
//!
//! Verdict caches are **per scanner** and therefore die with the
//! snapshot on swap — a stale score physically cannot be served by the
//! next model. What survives the swap is the shared [`PrepCache`]:
//! prepared inputs (feature rows, CSR graphs) carry no model weights,
//! so the new model re-scores warm skeletons without re-paying the
//! lift and graph preparation (see `scamdetect::scan::PrepCache`).
//!
//! [`Scanner::save`]: scamdetect::Scanner::save

use crate::metrics::{LifecycleCounter, LifecycleCounters};
use scamdetect::{ModelArtifact, PrepCache, ScamDetectError, ScanRequest, Scanner, ScannerBuilder};
use scamdetect_evm::proxy::fnv1a;
use scamdetect_ir::Platform;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

/// Default minimum mirrored samples before a shadow candidate may be
/// promoted.
pub const SHADOW_MIN_SAMPLES_DEFAULT: u64 = 32;

/// Default minimum champion/candidate agreement ratio for promotion.
pub const SHADOW_MIN_AGREEMENT_DEFAULT: f64 = 0.95;

/// Bounded depth of the shadow mirror queue; scans beyond it are
/// dropped (counted), never blocked on.
const SHADOW_QUEUE: usize = 1024;

/// Registry configuration.
#[derive(Debug, Clone)]
pub struct RegistryConfig {
    /// Directory scanned for `*.scam` artifacts.
    pub models_dir: PathBuf,
    /// Serve exactly this model id (file stem) instead of the
    /// lexicographically last one.
    pub pinned: Option<String>,
    /// Verdict-cache capacity per serving scanner.
    pub cache_capacity: usize,
    /// Shared prepared-input cache capacity (survives swaps).
    pub prep_capacity: usize,
    /// Worker threads for `/batch` scans (0 = auto).
    pub workers: usize,
}

impl Default for RegistryConfig {
    fn default() -> Self {
        RegistryConfig {
            models_dir: PathBuf::from("models"),
            pinned: None,
            cache_capacity: scamdetect::scan::DEFAULT_CACHE_CAPACITY,
            prep_capacity: scamdetect::scan::DEFAULT_CACHE_CAPACITY,
            workers: 0,
        }
    }
}

/// Why the registry could not load or swap.
#[derive(Debug)]
#[non_exhaustive]
pub enum ServeError {
    /// Filesystem problem touching the models directory.
    Io {
        /// The offending path.
        path: String,
        /// OS error message.
        message: String,
    },
    /// The models directory holds no `*.scam` artifact.
    NoModels {
        /// The scanned directory.
        dir: String,
    },
    /// A pinned model id has no corresponding artifact file.
    UnknownModel {
        /// The requested id.
        id: String,
        /// The scanned directory.
        dir: String,
    },
    /// A model id unfit to become a file stem (empty, too long, or
    /// holding characters outside `[A-Za-z0-9._-]`).
    InvalidModelId {
        /// The rejected id.
        id: String,
    },
    /// Pushed artifact bytes did not hash to the checksum the sender
    /// claimed — the transfer (or the sender) is corrupt.
    ChecksumMismatch {
        /// The target id.
        id: String,
        /// The checksum the sender claimed.
        expected: u64,
        /// FNV-1a over the bytes actually received.
        actual: u64,
    },
    /// Refusing to delete the artifact currently being served.
    ActiveModel {
        /// The active id.
        id: String,
    },
    /// A shadow operation needs a running shadow session and none is.
    ShadowUnavailable,
    /// Promotion refused: the shadow session has not cleared the
    /// configured sample-count / agreement thresholds.
    ShadowNotReady {
        /// Mirrored samples scored so far.
        samples: u64,
        /// Required sample count.
        min_samples: u64,
        /// Agreement ratio so far.
        agreement: f64,
        /// Required agreement ratio.
        min_agreement: f64,
    },
    /// The artifact exists but cannot be parsed/reconstructed.
    Artifact(ScamDetectError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io { path, message } => write!(f, "{path}: {message}"),
            ServeError::NoModels { dir } => {
                write!(f, "no *.scam model artifacts in {dir}")
            }
            ServeError::UnknownModel { id, dir } => {
                write!(f, "no artifact named '{id}.scam' in {dir}")
            }
            ServeError::InvalidModelId { id } => {
                write!(
                    f,
                    "invalid model id '{id}': want 1-64 chars of [A-Za-z0-9._-], \
                     not starting with '.'"
                )
            }
            ServeError::ChecksumMismatch {
                id,
                expected,
                actual,
            } => {
                write!(
                    f,
                    "artifact '{id}' checksum mismatch: sender claimed \
                     {expected:#018x}, received bytes hash to {actual:#018x}"
                )
            }
            ServeError::ActiveModel { id } => {
                write!(f, "model '{id}' is currently being served")
            }
            ServeError::ShadowUnavailable => {
                write!(
                    f,
                    "no shadow session is running (start one with POST /shadow/start)"
                )
            }
            ServeError::ShadowNotReady {
                samples,
                min_samples,
                agreement,
                min_agreement,
            } => {
                write!(
                    f,
                    "shadow candidate not ready for promotion: {samples} samples \
                     (need {min_samples}), agreement {agreement:.4} (need {min_agreement:.4})"
                )
            }
            ServeError::Artifact(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Artifact(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ScamDetectError> for ServeError {
    fn from(e: ScamDetectError) -> Self {
        ServeError::Artifact(e)
    }
}

/// One immutable serving snapshot: a scanner plus its provenance.
/// Handlers clone the `Arc` once per request and use only this.
pub struct ServingModel {
    /// Model id: the artifact's file stem.
    pub id: String,
    /// Monotonic swap epoch (0 for the model loaded at startup).
    pub epoch: u64,
    /// Detector name (e.g. `random_forest[unified]`).
    pub kind: String,
    /// Decision threshold in effect.
    pub threshold: f64,
    /// FNV-1a over the artifact bytes — the swap no-op check.
    pub fingerprint: u64,
    /// The scanner serving this snapshot.
    pub scanner: Scanner,
}

/// Metadata for one artifact on disk, as reported by `GET /models`.
#[derive(Debug, Clone)]
pub struct ModelEntry {
    /// File stem.
    pub id: String,
    /// Artifact size in bytes.
    pub bytes: u64,
    /// `true` when this is the currently served model.
    pub active: bool,
}

/// Outcome of a [`ModelRegistry::reload`].
#[derive(Debug, Clone)]
pub struct ReloadOutcome {
    /// Whether a swap actually happened.
    pub swapped: bool,
    /// The id now being served.
    pub active: String,
    /// The epoch now being served.
    pub epoch: u64,
}

/// Outcome of a [`ModelRegistry::install_artifact`].
#[derive(Debug, Clone)]
pub struct InstallOutcome {
    /// The installed id.
    pub id: String,
    /// Artifact size in bytes.
    pub bytes: u64,
    /// FNV-1a over the artifact bytes (what a later reload will see).
    pub fingerprint: u64,
    /// `true` when an artifact with this id already existed and was
    /// replaced.
    pub replaced: bool,
}

/// Session counters for one shadow-scoring run. Relaxed atomics,
/// written by the shadow worker, read by `/metrics`, `/shadow` and the
/// promotion gate.
#[derive(Debug, Default)]
pub struct ShadowCounters {
    /// Mirrored scans the candidate scored (failures included).
    pub samples: AtomicU64,
    /// Samples where candidate and champion verdicts agreed.
    pub agreements: AtomicU64,
    /// Samples where the candidate disagreed or failed.
    pub disagreements: AtomicU64,
    /// Candidate scans that errored (counted into disagreements too —
    /// a candidate that cannot score traffic must not promote).
    pub failures: AtomicU64,
    /// Scans not mirrored because the queue was full.
    pub dropped: AtomicU64,
    /// Sum of signed candidate-minus-champion latency deltas, µs.
    pub latency_delta_us: AtomicI64,
}

impl ShadowCounters {
    /// Session agreement ratio; 0 before any sample.
    pub fn agreement(&self) -> f64 {
        let samples = self.samples.load(Ordering::Relaxed);
        if samples == 0 {
            return 0.0;
        }
        self.agreements.load(Ordering::Relaxed) as f64 / samples as f64
    }
}

/// One mirrored scan, queued for the shadow worker.
struct ShadowJob {
    bytes: Vec<u8>,
    platform: Option<Platform>,
    champion_malicious: bool,
    champion_us: u64,
}

/// A live shadow-scoring session: the candidate model, its session
/// counters, and the mirror queue feeding the worker thread.
///
/// The worker holds only the candidate `Arc`, the counters and the
/// queue's receiving end — never this struct — so dropping the last
/// `ShadowState` (on `shadow stop`, promotion, or a replacing start)
/// closes the channel and the worker exits on its own.
pub struct ShadowState {
    /// The candidate serving snapshot (scores off the response path).
    pub model: Arc<ServingModel>,
    /// Session counters.
    pub counters: Arc<ShadowCounters>,
    tx: SyncSender<ShadowJob>,
}

impl fmt::Debug for ShadowState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShadowState")
            .field("candidate", &self.model.id)
            .field("samples", &self.counters.samples.load(Ordering::Relaxed))
            .finish()
    }
}

impl ShadowState {
    /// Mirrors one served scan to the candidate, off the response path.
    ///
    /// Non-blocking: a full queue drops the sample and counts it — the
    /// champion's latency is never hostage to a slow candidate.
    pub fn submit(
        &self,
        bytes: Vec<u8>,
        platform: Option<Platform>,
        champion_malicious: bool,
        champion_us: u64,
        lifecycle: &LifecycleCounters,
    ) {
        let job = ShadowJob {
            bytes,
            platform,
            champion_malicious,
            champion_us,
        };
        match self.tx.try_send(job) {
            Ok(()) => {}
            Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {
                self.counters.dropped.fetch_add(1, Ordering::Relaxed);
                lifecycle.incr(LifecycleCounter::ShadowDropped);
            }
        }
    }
}

/// The shadow worker loop: drains mirrored scans, scores them on the
/// candidate, and books agreement/latency against both the session
/// counters and the cumulative lifecycle family.
fn shadow_worker(
    candidate: Arc<ServingModel>,
    counters: Arc<ShadowCounters>,
    lifecycle: Arc<LifecycleCounters>,
    rx: Receiver<ShadowJob>,
) {
    while let Ok(job) = rx.recv() {
        let mut request = ScanRequest::new(&job.bytes);
        if let Some(platform) = job.platform {
            request = request.on(platform);
        }
        let started = Instant::now();
        let outcome = candidate.scanner.scan_request(&request);
        let candidate_us = started.elapsed().as_micros() as u64;
        counters.samples.fetch_add(1, Ordering::Relaxed);
        lifecycle.incr(LifecycleCounter::ShadowSamples);
        match outcome {
            Ok(report) => {
                if report.is_malicious() == job.champion_malicious {
                    counters.agreements.fetch_add(1, Ordering::Relaxed);
                    lifecycle.incr(LifecycleCounter::ShadowAgreements);
                } else {
                    counters.disagreements.fetch_add(1, Ordering::Relaxed);
                    lifecycle.incr(LifecycleCounter::ShadowDisagreements);
                }
                let delta = candidate_us as i64 - job.champion_us as i64;
                counters
                    .latency_delta_us
                    .fetch_add(delta, Ordering::Relaxed);
            }
            Err(_) => {
                // A candidate that cannot score live traffic is the
                // strongest possible disagreement.
                counters.failures.fetch_add(1, Ordering::Relaxed);
                counters.disagreements.fetch_add(1, Ordering::Relaxed);
                lifecycle.incr(LifecycleCounter::ShadowDisagreements);
            }
        }
    }
}

/// See the module docs.
pub struct ModelRegistry {
    config: RegistryConfig,
    prep: Arc<PrepCache>,
    active: RwLock<Arc<ServingModel>>,
    /// The live shadow session, if any. Readers clone the `Arc`;
    /// start/stop/promote replace the option under [`Self::reload_lock`].
    shadow: RwLock<Option<Arc<ShadowState>>>,
    /// Serializes whole [`ModelRegistry::reload`] calls (HTTP workers
    /// can race `POST /models/reload`): without it two concurrent
    /// reloads could mint the same epoch and the write-lock loser could
    /// overwrite a newer artifact with an older one. Readers never
    /// touch this lock.
    reload_lock: Mutex<()>,
    swaps: AtomicU64,
    loaded_at: Instant,
}

impl fmt::Debug for ModelRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ModelRegistry")
            .field("dir", &self.config.models_dir)
            .field("active", &self.model().id)
            .field("swaps", &self.swaps.load(Ordering::Relaxed))
            .finish()
    }
}

impl ModelRegistry {
    /// Scans the models directory and loads the active artifact.
    ///
    /// # Errors
    ///
    /// [`ServeError::NoModels`] / [`ServeError::UnknownModel`] when
    /// nothing (or not the pinned id) is there, I/O and artifact
    /// errors otherwise.
    pub fn open(config: RegistryConfig) -> Result<ModelRegistry, ServeError> {
        let prep = PrepCache::shared(config.prep_capacity);
        let (id, path) = resolve_active(&config, None)?;
        let model = load_model(&config, &prep, &id, &path, 0)?;
        Ok(ModelRegistry {
            config,
            prep,
            active: RwLock::new(Arc::new(model)),
            shadow: RwLock::new(None),
            reload_lock: Mutex::new(()),
            swaps: AtomicU64::new(0),
            loaded_at: Instant::now(),
        })
    }

    /// The current serving snapshot. Cheap (`Arc` clone under a read
    /// lock held for nanoseconds); never blocks behind scoring work,
    /// and scoring work never blocks a swap.
    pub fn model(&self) -> Arc<ServingModel> {
        Arc::clone(&self.active.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Completed swaps since startup.
    pub fn swap_count(&self) -> u64 {
        self.swaps.load(Ordering::Relaxed)
    }

    /// Seconds since the registry loaded its first model.
    pub fn uptime_s(&self) -> u64 {
        self.loaded_at.elapsed().as_secs()
    }

    /// The prep cache shared across every scanner this registry builds.
    pub fn prep_cache(&self) -> &Arc<PrepCache> {
        &self.prep
    }

    /// Re-resolves the active artifact on disk and swaps it in if it
    /// changed (different id *or* different bytes under the same id).
    /// Scans in flight keep their snapshot; new requests see the new
    /// model immediately after the swap.
    ///
    /// # Errors
    ///
    /// Everything [`ModelRegistry::open`] can raise. On error the old
    /// model keeps serving — a bad reload is observable, never fatal.
    pub fn reload(&self) -> Result<ReloadOutcome, ServeError> {
        self.reload_with(None)
    }

    /// [`ModelRegistry::reload`] with a one-shot pin override: swap to
    /// exactly `pin` regardless of the configured pin or sort order.
    /// This is the rollout primitive — a canary swaps to the pushed
    /// candidate, and an abort swaps back to the previous id — and it
    /// is also the rollback path when a bad artifact happens to sort
    /// last. The override applies to this call only; it does not
    /// change the configured pin.
    ///
    /// # Errors
    ///
    /// Everything [`ModelRegistry::reload`] can raise, plus
    /// [`ServeError::UnknownModel`] when `pin` has no artifact.
    pub fn reload_with(&self, pin: Option<&str>) -> Result<ReloadOutcome, ServeError> {
        // One reload at a time, end to end: resolve → compare → build →
        // swap. Concurrent `POST /models/reload` calls queue here (each
        // sees the directory as of its own turn); scans are unaffected.
        let _serialized = self
            .reload_lock
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        let (id, path) = resolve_active(&self.config, pin)?;
        let bytes = read_artifact_bytes(&path)?;
        let fingerprint = fnv1a(&bytes);
        {
            let current = self.model();
            if current.id == id && current.fingerprint == fingerprint {
                return Ok(ReloadOutcome {
                    swapped: false,
                    active: current.id.clone(),
                    epoch: current.epoch,
                });
            }
        }
        // Build the successor completely before taking the write lock:
        // artifact parsing is milliseconds, the swap itself is a
        // pointer store.
        let epoch = self.swaps.load(Ordering::Relaxed) + 1;
        let model = build_model(&self.config, &self.prep, &id, &bytes, fingerprint, epoch)?;
        let model = Arc::new(model);
        *self.active.write().unwrap_or_else(|e| e.into_inner()) = Arc::clone(&model);
        self.swaps.store(epoch, Ordering::Relaxed);
        Ok(ReloadOutcome {
            swapped: true,
            active: model.id.clone(),
            epoch,
        })
    }

    /// Installs pushed artifact bytes as `<id>.scam` in the models
    /// directory — the server half of `PUT /models/<id>`.
    ///
    /// The bytes must parse as a valid [`ModelArtifact`] (which checks
    /// the embedded per-section checksums), and when the sender claims
    /// a whole-file FNV-1a via `expected_fnv1a` the received bytes must
    /// hash to it. The write is atomic (temp file + rename), so a
    /// concurrent reload can never observe a half-written artifact.
    /// Installing does **not** swap; the caller decides when to reload.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidModelId`], [`ServeError::ChecksumMismatch`],
    /// artifact parse errors, and I/O errors.
    pub fn install_artifact(
        &self,
        id: &str,
        bytes: &[u8],
        expected_fnv1a: Option<u64>,
    ) -> Result<InstallOutcome, ServeError> {
        validate_model_id(id)?;
        let actual = fnv1a(bytes);
        if let Some(expected) = expected_fnv1a {
            if expected != actual {
                return Err(ServeError::ChecksumMismatch {
                    id: id.to_string(),
                    expected,
                    actual,
                });
            }
        }
        // Reject garbage before it lands on disk: a broken file would
        // poison every later sort-order reload.
        ModelArtifact::from_bytes(bytes)?;

        // Serialize against reloads so a reload never runs between our
        // existence check and the rename (the rename itself is atomic;
        // the lock just keeps `replaced` truthful and installs ordered).
        let _serialized = self
            .reload_lock
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        let final_path = self.config.models_dir.join(format!("{id}.scam"));
        let replaced = final_path.exists();
        let tmp_path = self
            .config
            .models_dir
            .join(format!("{id}.scam.tmp-{}", std::process::id()));
        let io_err = |path: &Path, e: std::io::Error| ServeError::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        };
        std::fs::write(&tmp_path, bytes).map_err(|e| io_err(&tmp_path, e))?;
        std::fs::rename(&tmp_path, &final_path).map_err(|e| {
            std::fs::remove_file(&tmp_path).ok();
            io_err(&final_path, e)
        })?;
        Ok(InstallOutcome {
            id: id.to_string(),
            bytes: bytes.len() as u64,
            fingerprint: actual,
            replaced,
        })
    }

    /// Deletes `<id>.scam` from the models directory — the server half
    /// of `DELETE /models/<id>`, used by an aborted rollout to clean up
    /// the rejected candidate.
    ///
    /// # Errors
    ///
    /// [`ServeError::ActiveModel`] when `id` is currently serving
    /// (swap away first), [`ServeError::UnknownModel`] when no such
    /// artifact exists, [`ServeError::InvalidModelId`], I/O errors.
    pub fn remove_artifact(&self, id: &str) -> Result<(), ServeError> {
        validate_model_id(id)?;
        let _serialized = self
            .reload_lock
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        if self.model().id == id {
            return Err(ServeError::ActiveModel { id: id.to_string() });
        }
        let path = self.config.models_dir.join(format!("{id}.scam"));
        if !path.exists() {
            return Err(ServeError::UnknownModel {
                id: id.to_string(),
                dir: self.config.models_dir.display().to_string(),
            });
        }
        std::fs::remove_file(&path).map_err(|e| ServeError::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        })
    }

    /// The live shadow session, if any. Cheap `Arc` clone, like
    /// [`ModelRegistry::model`].
    pub fn shadow(&self) -> Option<Arc<ShadowState>> {
        self.shadow
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .as_ref()
            .map(Arc::clone)
    }

    /// Loads `<id>.scam` as a shadow candidate alongside the champion.
    ///
    /// The candidate gets its own scanner (own verdict cache, shared
    /// prep cache) and a dedicated worker thread; served scans are
    /// mirrored to it via [`ShadowState::submit`] while the champion
    /// keeps answering the wire. Starting replaces any previous shadow
    /// session (its worker drains and exits once its queue closes).
    ///
    /// # Errors
    ///
    /// [`ServeError::ActiveModel`] when `id` is the champion (shadowing
    /// the model already serving measures nothing),
    /// [`ServeError::UnknownModel`] / [`ServeError::InvalidModelId`] /
    /// artifact and I/O errors as in [`ModelRegistry::reload_with`].
    pub fn shadow_start(
        &self,
        id: &str,
        lifecycle: Arc<LifecycleCounters>,
    ) -> Result<Arc<ShadowState>, ServeError> {
        validate_model_id(id)?;
        // Same serialization as reloads: a concurrent promote/reload
        // must not race the champion comparison below.
        let _serialized = self
            .reload_lock
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        if self.model().id == id {
            return Err(ServeError::ActiveModel { id: id.to_string() });
        }
        let (resolved, path) = resolve_active(&self.config, Some(id))?;
        let epoch = self.swaps.load(Ordering::Relaxed);
        let candidate = Arc::new(load_model(
            &self.config,
            &self.prep,
            &resolved,
            &path,
            epoch,
        )?);
        let counters = Arc::new(ShadowCounters::default());
        let (tx, rx) = sync_channel::<ShadowJob>(SHADOW_QUEUE);
        {
            let candidate = Arc::clone(&candidate);
            let counters = Arc::clone(&counters);
            std::thread::Builder::new()
                .name(format!("shadow-{resolved}"))
                .spawn(move || shadow_worker(candidate, counters, lifecycle, rx))
                .map_err(|e| ServeError::Io {
                    path: "shadow worker".to_string(),
                    message: e.to_string(),
                })?;
        }
        let state = Arc::new(ShadowState {
            model: candidate,
            counters,
            tx,
        });
        *self.shadow.write().unwrap_or_else(|e| e.into_inner()) = Some(Arc::clone(&state));
        Ok(state)
    }

    /// Ends the shadow session, if any. Returns whether one was
    /// running. The worker exits once the dropped queue drains.
    pub fn shadow_stop(&self) -> bool {
        self.shadow
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .take()
            .is_some()
    }

    /// Promotes the shadow candidate to champion — the measured hot
    /// swap at the end of the lifecycle loop.
    ///
    /// Refused unless the session has scored at least `min_samples`
    /// mirrored scans at an agreement ratio of at least `min_agreement`
    /// (pass the `SHADOW_*_DEFAULT` consts for the standard gate). On
    /// success the candidate's artifact is reloaded from disk under the
    /// usual swap discipline (epoch bump, in-flight scans keep their
    /// snapshot) and the shadow session ends.
    ///
    /// # Errors
    ///
    /// [`ServeError::ShadowUnavailable`] with no session running,
    /// [`ServeError::ShadowNotReady`] below thresholds, and everything
    /// [`ModelRegistry::reload_with`] can raise (on reload failure the
    /// shadow session stays up — the operator can retry).
    pub fn shadow_promote(
        &self,
        min_samples: u64,
        min_agreement: f64,
    ) -> Result<ReloadOutcome, ServeError> {
        let state = self.shadow().ok_or(ServeError::ShadowUnavailable)?;
        let samples = state.counters.samples.load(Ordering::Relaxed);
        let agreement = state.counters.agreement();
        if samples < min_samples || agreement < min_agreement {
            return Err(ServeError::ShadowNotReady {
                samples,
                min_samples,
                agreement,
                min_agreement,
            });
        }
        let outcome = self.reload_with(Some(&state.model.id))?;
        self.shadow_stop();
        Ok(outcome)
    }

    /// Every artifact currently in the models directory.
    ///
    /// # Errors
    ///
    /// I/O errors reading the directory.
    pub fn list(&self) -> Result<Vec<ModelEntry>, ServeError> {
        let active = self.model();
        let mut entries: Vec<ModelEntry> = artifact_files(&self.config.models_dir)?
            .into_iter()
            .map(|(id, path)| {
                let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
                ModelEntry {
                    active: id == active.id,
                    id,
                    bytes,
                }
            })
            .collect();
        entries.sort_by(|a, b| a.id.cmp(&b.id));
        Ok(entries)
    }
}

/// `(file stem, path)` of every `*.scam` in `dir`.
fn artifact_files(dir: &Path) -> Result<Vec<(String, PathBuf)>, ServeError> {
    let read = std::fs::read_dir(dir).map_err(|e| ServeError::Io {
        path: dir.display().to_string(),
        message: e.to_string(),
    })?;
    let mut found = Vec::new();
    for entry in read {
        let entry = entry.map_err(|e| ServeError::Io {
            path: dir.display().to_string(),
            message: e.to_string(),
        })?;
        let path = entry.path();
        if path.extension().and_then(|e| e.to_str()) != Some("scam") {
            continue;
        }
        if let Some(stem) = path.file_stem().and_then(|s| s.to_str()) {
            found.push((stem.to_string(), path.clone()));
        }
    }
    Ok(found)
}

/// A model id doubles as a file stem, so constrain it to boring
/// filesystem-safe names: 1–64 chars of `[A-Za-z0-9._-]`, not starting
/// with `.` (no hidden files, no `..` traversal, no separators).
fn validate_model_id(id: &str) -> Result<(), ServeError> {
    let ok = !id.is_empty()
        && id.len() <= 64
        && !id.starts_with('.')
        && id
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'.' | b'_' | b'-'));
    if ok {
        Ok(())
    } else {
        Err(ServeError::InvalidModelId { id: id.to_string() })
    }
}

/// Which artifact should serve: the one-shot override pin, the
/// configured pin, or the lexicographically last stem.
fn resolve_active(
    config: &RegistryConfig,
    pin_override: Option<&str>,
) -> Result<(String, PathBuf), ServeError> {
    let mut files = artifact_files(&config.models_dir)?;
    if files.is_empty() {
        return Err(ServeError::NoModels {
            dir: config.models_dir.display().to_string(),
        });
    }
    let pinned = pin_override
        .map(str::to_string)
        .or_else(|| config.pinned.clone());
    match &pinned {
        Some(id) => files
            .into_iter()
            .find(|(stem, _)| stem == id)
            .ok_or_else(|| ServeError::UnknownModel {
                id: id.clone(),
                dir: config.models_dir.display().to_string(),
            }),
        None => {
            files.sort_by(|a, b| a.0.cmp(&b.0));
            Ok(files.pop().expect("non-empty"))
        }
    }
}

fn read_artifact_bytes(path: &Path) -> Result<Vec<u8>, ServeError> {
    std::fs::read(path).map_err(|e| ServeError::Io {
        path: path.display().to_string(),
        message: e.to_string(),
    })
}

fn load_model(
    config: &RegistryConfig,
    prep: &Arc<PrepCache>,
    id: &str,
    path: &Path,
    epoch: u64,
) -> Result<ServingModel, ServeError> {
    let bytes = read_artifact_bytes(path)?;
    let fingerprint = fnv1a(&bytes);
    build_model(config, prep, id, &bytes, fingerprint, epoch)
}

fn build_model(
    config: &RegistryConfig,
    prep: &Arc<PrepCache>,
    id: &str,
    bytes: &[u8],
    fingerprint: u64,
    epoch: u64,
) -> Result<ServingModel, ServeError> {
    // Parse once; reuse the parsed artifact for both the scanner and
    // the provenance fields.
    let artifact = ModelArtifact::from_bytes(bytes)?;
    let scanner = ScannerBuilder::new()
        .cache_capacity(config.cache_capacity)
        .workers(config.workers)
        .shared_prep_cache(Arc::clone(prep))
        .from_artifact(&artifact)?;
    Ok(ServingModel {
        id: id.to_string(),
        epoch,
        kind: scanner.detector().name(),
        threshold: scanner.threshold(),
        fingerprint,
        scanner,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use scamdetect_dataset::{Corpus, CorpusConfig};

    fn temp_models_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("scamdetect-registry-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp models dir");
        dir
    }

    fn train_artifact_bytes(seed: u64) -> Vec<u8> {
        let corpus = Corpus::generate(&CorpusConfig {
            size: 30,
            seed,
            ..CorpusConfig::default()
        });
        ScannerBuilder::new()
            .model(scamdetect::ModelKind::Classic(
                scamdetect::ClassicModel::LogisticRegression,
                scamdetect::FeatureKind::Unified,
            ))
            .train(&corpus)
            .expect("trains")
            .to_artifact()
            .expect("artifact")
            .to_bytes()
    }

    fn config(dir: &Path) -> RegistryConfig {
        RegistryConfig {
            models_dir: dir.to_path_buf(),
            cache_capacity: 128,
            prep_capacity: 128,
            ..RegistryConfig::default()
        }
    }

    #[test]
    fn open_picks_lexicographically_last_and_pin_overrides() {
        let dir = temp_models_dir("pick");
        std::fs::write(dir.join("model-v1.scam"), train_artifact_bytes(1)).unwrap();
        std::fs::write(dir.join("model-v2.scam"), train_artifact_bytes(2)).unwrap();

        let registry = ModelRegistry::open(config(&dir)).expect("opens");
        assert_eq!(registry.model().id, "model-v2");
        assert_eq!(registry.model().epoch, 0);

        let pinned = ModelRegistry::open(RegistryConfig {
            pinned: Some("model-v1".to_string()),
            ..config(&dir)
        })
        .expect("opens pinned");
        assert_eq!(pinned.model().id, "model-v1");

        let missing = ModelRegistry::open(RegistryConfig {
            pinned: Some("model-v9".to_string()),
            ..config(&dir)
        });
        assert!(matches!(missing, Err(ServeError::UnknownModel { .. })));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_dir_is_a_typed_error() {
        let dir = temp_models_dir("empty");
        assert!(matches!(
            ModelRegistry::open(config(&dir)),
            Err(ServeError::NoModels { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reload_is_noop_without_change_and_swaps_on_new_artifact() {
        let dir = temp_models_dir("reload");
        std::fs::write(dir.join("m-v1.scam"), train_artifact_bytes(1)).unwrap();
        let registry = ModelRegistry::open(config(&dir)).expect("opens");

        let outcome = registry.reload().expect("reloads");
        assert!(!outcome.swapped);
        assert_eq!(registry.swap_count(), 0);

        // New, later-sorting artifact ⇒ swap.
        std::fs::write(dir.join("m-v2.scam"), train_artifact_bytes(2)).unwrap();
        let outcome = registry.reload().expect("reloads");
        assert!(outcome.swapped);
        assert_eq!(outcome.active, "m-v2");
        assert_eq!(outcome.epoch, 1);
        assert_eq!(registry.model().id, "m-v2");
        assert_eq!(registry.swap_count(), 1);

        // Same id, different bytes ⇒ swap too.
        std::fs::write(dir.join("m-v2.scam"), train_artifact_bytes(3)).unwrap();
        let outcome = registry.reload().expect("reloads");
        assert!(outcome.swapped);
        assert_eq!(outcome.epoch, 2);

        // A broken artifact on disk fails the reload but keeps serving.
        std::fs::write(dir.join("m-v3.scam"), b"garbage").unwrap();
        assert!(registry.reload().is_err());
        assert_eq!(registry.model().id, "m-v2");
        let list = registry.list().expect("lists");
        assert_eq!(list.len(), 3);
        assert!(list.iter().any(|e| e.id == "m-v2" && e.active));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn install_checksums_validates_and_is_atomic_then_remove_guards_active() {
        let dir = temp_models_dir("install");
        std::fs::write(dir.join("m-v1.scam"), train_artifact_bytes(1)).unwrap();
        let registry = ModelRegistry::open(config(&dir)).expect("opens");

        let bytes = train_artifact_bytes(2);
        let checksum = fnv1a(&bytes);

        // Wrong claimed checksum ⇒ rejected, nothing lands on disk.
        let err = registry.install_artifact("m-v2", &bytes, Some(checksum ^ 1));
        assert!(matches!(err, Err(ServeError::ChecksumMismatch { .. })));
        assert!(!dir.join("m-v2.scam").exists());

        // Garbage bytes ⇒ rejected even with an honest checksum.
        let err = registry.install_artifact("m-bad", b"garbage", Some(fnv1a(b"garbage")));
        assert!(matches!(err, Err(ServeError::Artifact(_))));
        assert!(!dir.join("m-bad.scam").exists());

        // Hostile ids never touch the filesystem.
        for id in ["", ".hidden", "a/b", "..", &"x".repeat(65)] {
            assert!(matches!(
                registry.install_artifact(id, &bytes, None),
                Err(ServeError::InvalidModelId { .. })
            ));
        }

        // The honest push installs without swapping; reload promotes it.
        let outcome = registry
            .install_artifact("m-v2", &bytes, Some(checksum))
            .expect("installs");
        assert!(!outcome.replaced);
        assert_eq!(outcome.fingerprint, checksum);
        assert_eq!(registry.model().id, "m-v1", "install does not swap");
        let reload = registry.reload().expect("reloads");
        assert!(reload.swapped);
        assert_eq!(reload.active, "m-v2");

        // Re-push of the same id reports the replacement.
        assert!(
            registry
                .install_artifact("m-v2", &bytes, None)
                .expect("reinstalls")
                .replaced
        );

        // The serving artifact is delete-protected; the idle one is not.
        assert!(matches!(
            registry.remove_artifact("m-v2"),
            Err(ServeError::ActiveModel { .. })
        ));
        registry.remove_artifact("m-v1").expect("removes idle");
        assert!(!dir.join("m-v1.scam").exists());
        assert!(matches!(
            registry.remove_artifact("m-v1"),
            Err(ServeError::UnknownModel { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reload_with_pin_override_swaps_to_exact_id_and_back() {
        let dir = temp_models_dir("pinswap");
        std::fs::write(dir.join("m-v1.scam"), train_artifact_bytes(1)).unwrap();
        std::fs::write(dir.join("m-v2.scam"), train_artifact_bytes(2)).unwrap();
        let registry = ModelRegistry::open(config(&dir)).expect("opens");
        assert_eq!(registry.model().id, "m-v2");

        // Canary-style: swap *backwards* against sort order.
        let outcome = registry.reload_with(Some("m-v1")).expect("pins");
        assert!(outcome.swapped);
        assert_eq!(outcome.active, "m-v1");
        assert_eq!(registry.model().id, "m-v1");

        // The override is one-shot: a plain reload reverts to sort order.
        let outcome = registry.reload().expect("reloads");
        assert!(outcome.swapped);
        assert_eq!(outcome.active, "m-v2");

        assert!(matches!(
            registry.reload_with(Some("m-v9")),
            Err(ServeError::UnknownModel { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn prep_cache_survives_swaps_and_scores_stay_exact() {
        let dir = temp_models_dir("prep");
        std::fs::write(dir.join("m-v1.scam"), train_artifact_bytes(1)).unwrap();
        let registry = ModelRegistry::open(config(&dir)).expect("opens");

        let corpus = Corpus::generate(&CorpusConfig {
            size: 6,
            seed: 99,
            ..CorpusConfig::default()
        });
        let probe = &corpus.contracts()[0].bytes;
        registry.model().scanner.scan(probe).expect("scan");
        assert!(!registry.prep_cache().is_empty());

        std::fs::write(dir.join("m-v2.scam"), train_artifact_bytes(2)).unwrap();
        registry.reload().expect("swap");
        let prep_len = registry.prep_cache().len();
        assert!(prep_len > 0, "prep cache survives the swap");

        // The new model's score via the warm prep path matches a cold
        // scanner loaded from the same artifact — bit for bit.
        let via_prep = registry
            .model()
            .scanner
            .scan(probe)
            .expect("scan")
            .verdict
            .malicious_probability;
        let cold = ScannerBuilder::new()
            .load(dir.join("m-v2.scam"))
            .expect("loads")
            .scan(probe)
            .expect("scan")
            .verdict
            .malicious_probability;
        assert_eq!(via_prep.to_bits(), cold.to_bits());
        std::fs::remove_dir_all(&dir).ok();
    }

    fn train_artifact_bytes_with_threshold(seed: u64, threshold: f64) -> Vec<u8> {
        let corpus = Corpus::generate(&CorpusConfig {
            size: 30,
            seed,
            ..CorpusConfig::default()
        });
        ScannerBuilder::new()
            .model(scamdetect::ModelKind::Classic(
                scamdetect::ClassicModel::LogisticRegression,
                scamdetect::FeatureKind::Unified,
            ))
            .threshold(threshold)
            .train(&corpus)
            .expect("trains")
            .to_artifact()
            .expect("artifact")
            .to_bytes()
    }

    #[test]
    fn shadow_session_scores_mirrored_traffic_and_gates_promotion() {
        let dir = temp_models_dir("shadow");
        std::fs::write(dir.join("m-v1.scam"), train_artifact_bytes(1)).unwrap();
        // Same weights, threshold 0: the candidate flags everything, so
        // every benign champion verdict becomes a disagreement.
        std::fs::write(
            dir.join("cand-v2.scam"),
            train_artifact_bytes_with_threshold(1, 0.0),
        )
        .unwrap();
        let registry = ModelRegistry::open(config(&dir)).expect("opens");
        assert_eq!(registry.model().id, "m-v1");
        assert!(registry.shadow().is_none());

        let lifecycle = Arc::new(LifecycleCounters::default());

        // Shadowing the champion itself is refused.
        assert!(matches!(
            registry.shadow_start("m-v1", Arc::clone(&lifecycle)),
            Err(ServeError::ActiveModel { .. })
        ));
        // Unknown candidates are a typed error.
        assert!(matches!(
            registry.shadow_start("nope", Arc::clone(&lifecycle)),
            Err(ServeError::UnknownModel { .. })
        ));

        let shadow = registry
            .shadow_start("cand-v2", Arc::clone(&lifecycle))
            .expect("starts");
        assert_eq!(shadow.model.id, "cand-v2");

        // Mirror a small corpus through the session.
        let corpus = Corpus::generate(&CorpusConfig {
            size: 12,
            seed: 5,
            ..CorpusConfig::default()
        });
        let champion = registry.model();
        let mut expected_agree = 0u64;
        for contract in corpus.contracts() {
            let report = champion.scanner.scan(&contract.bytes).expect("scan");
            // Candidate threshold 0 flags everything: agreement exactly
            // when the champion flagged too.
            if report.is_malicious() {
                expected_agree += 1;
            }
            shadow.submit(
                contract.bytes.clone(),
                None,
                report.is_malicious(),
                report.elapsed.as_micros() as u64,
                &lifecycle,
            );
        }
        let total = corpus.contracts().len() as u64;
        // The worker is asynchronous; wait for it to drain the queue.
        let deadline = Instant::now() + std::time::Duration::from_secs(10);
        while shadow.counters.samples.load(Ordering::Relaxed) < total {
            assert!(Instant::now() < deadline, "shadow worker stalled");
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        assert_eq!(shadow.counters.samples.load(Ordering::Relaxed), total);
        assert_eq!(
            shadow.counters.agreements.load(Ordering::Relaxed),
            expected_agree
        );
        assert_eq!(
            shadow.counters.disagreements.load(Ordering::Relaxed),
            total - expected_agree
        );
        assert_eq!(shadow.counters.failures.load(Ordering::Relaxed), 0);
        assert!(
            expected_agree < total,
            "corpus must contain benign champion verdicts for the test to bite"
        );
        // The cumulative lifecycle family tracked the session.
        assert_eq!(lifecycle.get(LifecycleCounter::ShadowSamples), total);
        assert_eq!(
            lifecycle.get(LifecycleCounter::ShadowAgreements),
            expected_agree
        );

        // Under-sampled or under-agreeing sessions are refused, typed.
        assert!(matches!(
            registry.shadow_promote(total + 100, 0.0),
            Err(ServeError::ShadowNotReady { .. })
        ));
        assert!(matches!(
            registry.shadow_promote(1, 1.01),
            Err(ServeError::ShadowNotReady { .. })
        ));
        assert_eq!(registry.model().id, "m-v1", "refusal must not swap");

        // A cleared gate promotes: epoch bump, shadow session ends.
        let outcome = registry
            .shadow_promote(total, shadow.counters.agreement())
            .expect("promotes");
        assert!(outcome.swapped);
        assert_eq!(outcome.active, "cand-v2");
        assert_eq!(outcome.epoch, 1);
        assert_eq!(registry.model().id, "cand-v2");
        assert!(registry.shadow().is_none());
        assert!(matches!(
            registry.shadow_promote(0, 0.0),
            Err(ServeError::ShadowUnavailable)
        ));
        assert!(!registry.shadow_stop());
        std::fs::remove_dir_all(&dir).ok();
    }
}
