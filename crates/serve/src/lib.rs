//! # scamdetect-serve
//!
//! The long-running scanning daemon: a **std-only** HTTP/1.1 server
//! (the workspace is offline — no tokio, no hyper, no serde) exposing
//! the [`scamdetect`] scanner behind a hot-swappable model registry.
//! This is the serving half of *train once, serve anywhere*: training
//! writes a versioned `ModelArtifact`, and a fleet of these daemons
//! serves it with bit-identical verdicts, swapping to new artifacts
//! mid-traffic without dropping a request.
//!
//! ## Serving quickstart
//!
//! ```text
//! # 1. Train once, persist the artifact into a models directory.
//! scamdetect-cli train --save models/rf-v1.scam --model rf
//!
//! # 2. Serve it (lexicographically last *.scam stem wins; pin with --model).
//! scamdetect-cli serve --models-dir models --addr 127.0.0.1:7878
//!
//! # 3. Scan over HTTP.
//! curl -s -X POST http://127.0.0.1:7878/scan \
//!      -d '{"bytecode": "0x363d3d373d3d3d363d73bebebebebebebebebebebebebebebebebebebebe5af43d82803e903d91602b57fd5bf3"}'
//! # → {"verdict":"benign","score":0.142…,"threshold":0.5,"platform":"evm",
//! #    "cache":"miss","model":"rf-v1","model_epoch":0,"skeleton":"…",
//! #    "blocks":…,"instructions":…,"elapsed_us":…}
//!
//! # 4. Ship a new model and hot-swap it under live traffic.
//! scamdetect-cli train --save models/rf-v2.scam --model rf --seed 43
//! curl -s -X POST http://127.0.0.1:7878/models/reload
//! # → {"swapped":true,"active":"rf-v2","model_epoch":1}
//! ```
//!
//! `GET /healthz` answers liveness, `GET /metrics` is Prometheus text
//! (request counters, cache hit ratio, p50/p99 scan latency, swap
//! count), `GET /models` lists the directory, and `POST /batch` scans
//! many contracts with skeleton dedup + parallel workers. The full
//! JSON wire schema is documented in [`wire`].
//!
//! ## Architecture
//!
//! * [`http`] — hand-rolled HTTP/1.1 on `std::net::TcpListener`: fixed
//!   worker pool, request size limits, keep-alive, graceful shutdown
//!   (SIGTERM/ctrl-c on unix) that drains in-flight requests.
//! * [`json`] — minimal JSON value/writer/tolerant reader; float
//!   rendering round-trips `f64` bit-exactly, so served scores equal
//!   library scores to the last bit.
//! * [`registry`] — the [`ModelRegistry`]:
//!   versioned artifacts on disk, one `Arc<ServingModel>` snapshot in
//!   memory. Swaps are a pointer store; readers clone the `Arc` and
//!   never block on a swap. Verdict caches die with their snapshot (a
//!   stale score cannot outlive its model) while the shared
//!   prepared-input cache ([`scamdetect::PrepCache`]) survives, so a
//!   swap costs one re-score per warm skeleton instead of a re-lift.
//! * [`metrics`] — relaxed-atomic counters + a latency ring buffer,
//!   rendered as Prometheus text.
//! * [`daemon`] — the routes, [`daemon::ServeConfig`], and the
//!   [`daemon::serve`] / [`daemon::spawn`] entry points (foreground
//!   CLI use vs. embedded tests/benches).
//!
//! The `serve_bench` binary drives a loopback daemon with N client
//! threads and writes `BENCH_PR5.json` (req/s, p50/p99) — the serving
//! path's perf trajectory from day one.
//!
//! Embedded use (tests, benches, other daemons):
//!
//! ```no_run
//! use scamdetect_serve::daemon::{spawn, ServeConfig};
//!
//! # fn main() -> Result<(), scamdetect_serve::registry::ServeError> {
//! let mut config = ServeConfig::default();
//! config.http.addr = "127.0.0.1:0".to_string(); // ephemeral port
//! config.registry.models_dir = "models".into();
//! let daemon = spawn(config)?;
//! println!("serving on {}", daemon.addr);
//! daemon.stop().expect("clean shutdown");
//! # Ok(())
//! # }
//! ```

pub mod client;
pub mod daemon;
pub mod http;
pub mod json;
pub mod metrics;
pub mod registry;
pub mod wire;

pub use daemon::{serve, spawn, RunningDaemon, ServeConfig};
pub use http::{HttpConfig, ShutdownHandle};
pub use registry::{ModelRegistry, RegistryConfig, ServeError, ServingModel};
