//! # scamdetect-serve
//!
//! The long-running scanning daemon: a **std-only** HTTP/1.1 server
//! (the workspace is offline — no tokio, no hyper, no serde) exposing
//! the [`scamdetect`] scanner behind a hot-swappable model registry.
//! This is the serving half of *train once, serve anywhere*: training
//! writes a versioned `ModelArtifact`, and a fleet of these daemons
//! serves it with bit-identical verdicts, swapping to new artifacts
//! mid-traffic without dropping a request.
//!
//! ## Serving quickstart
//!
//! ```text
//! # 1. Train once, persist the artifact into a models directory.
//! scamdetect-cli train --save models/rf-v1.scam --model rf
//!
//! # 2. Serve it (lexicographically last *.scam stem wins; pin with --model).
//! scamdetect-cli serve --models-dir models --addr 127.0.0.1:7878
//!
//! # 3. Scan over HTTP.
//! curl -s -X POST http://127.0.0.1:7878/scan \
//!      -d '{"bytecode": "0x363d3d373d3d3d363d73bebebebebebebebebebebebebebebebebebebebe5af43d82803e903d91602b57fd5bf3"}'
//! # → {"verdict":"benign","score":0.142…,"threshold":0.5,"platform":"evm",
//! #    "cache":"miss","model":"rf-v1","model_epoch":0,"skeleton":"…",
//! #    "blocks":…,"instructions":…,"elapsed_us":…}
//!
//! # 4. Ship a new model and hot-swap it under live traffic.
//! scamdetect-cli train --save models/rf-v2.scam --model rf --seed 43
//! curl -s -X POST http://127.0.0.1:7878/models/reload
//! # → {"swapped":true,"active":"rf-v2","model_epoch":1}
//! ```
//!
//! `GET /healthz` answers liveness, `GET /metrics` is Prometheus text
//! (request counters, cache hit ratio, p50/p99 scan latency, swap
//! count), `GET /models` lists the directory, and `POST /batch` scans
//! many contracts with skeleton dedup + parallel workers. The full
//! JSON wire schema is documented in [`wire`].
//!
//! ## Architecture
//!
//! * [`http`] — hand-rolled HTTP/1.1 on `std::net::TcpListener`, split
//!   into a protocol layer and a connection layer behind the
//!   [`http::Transport`] seam. The protocol layer (incremental
//!   request parser, size limits, deadlines, keep-alive rules,
//!   graceful shutdown on SIGTERM/ctrl-c) is shared; the connection
//!   layer is pluggable: [`http::ThreadedTransport`] is the portable
//!   blocking worker pool, [`http::EpollTransport`] is an
//!   event-driven `epoll` readiness loop (Linux) where idle
//!   keep-alive connections cost a registration + parser buffer
//!   instead of a thread. Select with [`HttpConfig::transport`]
//!   (`--transport {threads,epoll}` on the CLI, or the
//!   `SCAMDETECT_TRANSPORT` env var).
//! * [`json`] — minimal JSON value/writer/tolerant reader; float
//!   rendering round-trips `f64` bit-exactly, so served scores equal
//!   library scores to the last bit.
//! * [`registry`] — the [`ModelRegistry`]:
//!   versioned artifacts on disk, one `Arc<ServingModel>` snapshot in
//!   memory. Swaps are a pointer store; readers clone the `Arc` and
//!   never block on a swap. Verdict caches die with their snapshot (a
//!   stale score cannot outlive its model) while the shared
//!   prepared-input cache ([`scamdetect::PrepCache`]) survives, so a
//!   swap costs one re-score per warm skeleton instead of a re-lift.
//! * [`metrics`] — relaxed-atomic counters + a latency ring buffer,
//!   rendered as Prometheus text.
//! * [`daemon`] — the routes, [`daemon::ServeConfig`], and the
//!   [`daemon::serve`] / [`daemon::spawn`] entry points (foreground
//!   CLI use vs. embedded tests/benches).
//!
//! The `serve_bench` binary drives a loopback daemon with N client
//! threads and writes `BENCH_PR5.json` (req/s, p50/p99) — the serving
//! path's perf trajectory from day one.
//!
//! ## Operating under load
//!
//! The daemon degrades *explicitly*, never silently, and the policy is
//! transport-independent: both backends enforce the same admission
//! gate, deadlines, and drain semantics, so switching transports is a
//! capacity decision, not a behavior change.
//!
//! * **Choosing a transport.** `threads` (the default) parks one pool
//!   worker per live connection — simple, portable, and right when
//!   connection counts stay near the pool size. `epoll` multiplexes
//!   every connection onto one event-loop thread and hands only
//!   *complete* requests to the same worker pool — right for fleet
//!   fronts and long-poll clients where idle keep-alive connections
//!   dwarf the pool (thousands of open connections, worker-pool-sized
//!   thread count). The epoll backend is Linux-only;
//!   [`HttpServer::bind`](http::HttpServer::bind) fails fast with
//!   `Unsupported` elsewhere, and `threads` remains the portable
//!   fallback.
//! * **Admission control.** Connections queue at the accept→worker
//!   handoff; past [`HttpConfig::shed_watermark`] queued jobs
//!   (default 256, `--shed-watermark` on the CLI, `0` disables) new
//!   arrivals are shed immediately with `429 Too Many Requests` plus a
//!   `Retry-After: <s>` header ([`HttpConfig::retry_after_s`]). An
//!   honest early 429 beats an unbounded queue: the client can back
//!   off or re-route while accepted requests keep their latency.
//! * **Slow-client defense.** A request that does not fully arrive
//!   within [`HttpConfig::request_deadline`] gets `408 + Retry-After`
//!   and the connection closes — a slowloris dribbling one byte per
//!   idle-timeout cannot pin a pool worker forever, and healthy
//!   requests on other connections are unaffected.
//! * **Observability.** `GET /metrics` exposes the live gauge:
//!   `scamdetect_queue_depth`, `scamdetect_in_flight_requests`, and
//!   the `scamdetect_requests_shed_total` counter, alongside p50/p99
//!   scan latency. Watch shed-total's rate to size the fleet.
//! * **Retry semantics.** 408/429 responses always carry `Retry-After`;
//!   clients should treat them as backpressure, not failure. The
//!   bundled [`client::HttpClient`] resends idempotent requests once
//!   over a fresh connection and exposes
//!   [`client::HttpClient::request_raw_opts`] with `retry_safe = false`
//!   for writes that must never double-send.
//!
//! `serve_bench --shed` (in the fleet crate) drives the daemon at 2x
//! saturation and records shed-rate plus accepted-request p99 to
//! `BENCH_PR7.json` — the graceful-degradation gate CI enforces.
//!
//! ## Model lifecycle
//!
//! Serving is not the end of a model's life: verdicts come back as
//! corrections, corrections become the next model, and the next model
//! must prove itself on real traffic before it answers the wire. The
//! [`lifecycle`] module (with [`scamdetect::lifecycle`] underneath)
//! closes that loop in three stages:
//!
//! * **Feedback ingestion.** `POST /feedback` records ground-truth
//!   corrections — keyed by the same skeleton fingerprint the caches
//!   shard on — into an append-only, length+checksum-framed log
//!   ([`scamdetect::lifecycle::FeedbackLog`], enabled with
//!   `--feedback-log <path>`). Replay tolerates torn tails and
//!   detects corruption, in the same crash-safety style as the model
//!   artifact format. Disagreement with the serving champion is
//!   counted as it happens (`scamdetect_feedback_total`,
//!   `scamdetect_feedback_disagreements_total`).
//! * **Shadow scoring.** `POST /shadow/start` loads a candidate
//!   artifact beside the champion; every scan is mirrored to it off
//!   the response path (a bounded queue that drops rather than
//!   blocks — serving latency is never taxed, and champion scores
//!   stay bit-identical shadow on or off). `POST /shadow/promote`
//!   refuses until the candidate has scored enough mirrored traffic
//!   at high enough agreement, then performs the usual epoch-bumped
//!   hot swap. The wire details live in [`wire`].
//! * **Drift telemetry.** [`DriftTelemetry`] keeps per-platform score
//!   histograms for the current window against a trailing baseline,
//!   cache-hit-rate decay, and the feedback disagreement rate —
//!   `/metrics` surfaces all three so dashboards see a model aging
//!   before operators do.
//!
//! Every lifecycle counter is declared once, in
//! [`LIFECYCLE_COUNTERS`] — the daemon's `/metrics` renderer, the
//! fleet router's roll-up, and the CLI all read that one table, so a
//! new counter cannot silently miss an aggregation point.
//!
//! The operator's loop, end to end:
//!
//! ```text
//! # 1. Serve with feedback ingestion on.
//! scamdetect-cli serve --models-dir models --feedback-log feedback.log
//!
//! # 2. File corrections as they come back from analysts.
//! curl -s -X POST http://127.0.0.1:7878/feedback \
//!      -d '{"bytecode": "0x6001600155", "label": "malicious"}'
//!
//! # 3. Retrain with the log folded into the corpus (deterministic
//! #    given --seed and the log), saving a candidate artifact.
//! scamdetect-cli retrain --feedback-log feedback.log \
//!     --save models/rf-v4.scam --model rf --seed 44
//!
//! # 4. Shadow it on real traffic; watch agreement; promote when ready.
//! scamdetect-cli shadow start --model rf-v4
//! scamdetect-cli shadow status
//! scamdetect-cli shadow promote --min-samples 256 --min-agreement 0.98
//! ```
//!
//! Fleet-wide, `scamdetect-cli fleet rollout --shadow` runs the same
//! gate per replica inside the staged rollout, and `serve_bench
//! --shadow` writes `BENCH_PR9.json` — the CI gate that mirroring
//! costs the serving path at most 1.5x p99.
//!
//! ## Observability
//!
//! Every request can carry a distributed trace: a [`scamdetect::trace::TraceId`]
//! plus a tree of stage spans (accept → parse → queue wait → admission
//! → handler → cache lookup → prep → score → serialize → write)
//! recorded with monotonic timestamps on both transports. The span
//! machinery is std-only ([`scamdetect::trace`]); completed traces
//! drain into a bounded in-memory ring ([`http::TraceHub`]) that
//! *drops* under pressure rather than blocking a worker.
//!
//! * **Sampling.** Head-based: 1 in [`HttpConfig::trace_sample`]
//!   requests is captured (`--trace-sample <n>` on the CLI; default 16,
//!   `0` disables tracing entirely and the `/trace/*` routes answer
//!   `409`). Two overrides force capture regardless of the sampler: a
//!   client-sent `x-trace-id` header (honored verbatim, echoed on the
//!   response — this is how the fleet router propagates one id across
//!   processes), and any request slower than
//!   [`HttpConfig::trace_slow_us`] (`--trace-slow-ms`, default 50 ms) —
//!   the tail you most want to explain is always kept.
//! * **Reading a trace.** `GET /trace/recent` lists the ring's newest
//!   traces (plus kept/dropped totals); `GET /trace/<id>` returns one
//!   full span tree. Both are documented in [`wire`]. For a routed
//!   request, `scamdetect-cli trace <id> --router <addr>` stitches the
//!   cross-process timeline: it fetches the router's trace, follows
//!   each forward span's `replica=<addr>` note to the replica that
//!   served it, and splices the replica's spans under the forward span
//!   on one shifted clock — queue wait, cache lookup, and scoring time
//!   line up against the wire latency in a single indented tree.
//! * **Histograms.** `/metrics` renders real log-linear latency
//!   histograms ([`metrics::LatencyHistogram`]) as Prometheus
//!   `_bucket`/`_sum`/`_count` series — per endpoint
//!   (`scamdetect_request_duration_us`) and per pipeline stage
//!   (`scamdetect_stage_duration_us`) — so dashboards aggregate true
//!   percentiles across the fleet instead of averaging per-replica
//!   p99s. Each slowest-bucket gauge carries a `trace_id` exemplar
//!   label: from a latency spike on a dashboard to the exact span tree
//!   that caused it is one `scamdetect-cli trace` away.
//!
//! `serve_bench --trace` (in the fleet crate) drives the same loopback
//! load with tracing off and then sampling 1-in-16, and writes
//! `BENCH_PR10.json` — the CI gate that tracing-on p99 stays within
//! 1.1x tracing-off.
//!
//! Embedded use (tests, benches, other daemons):
//!
//! ```no_run
//! use scamdetect_serve::daemon::{spawn, ServeConfig};
//!
//! # fn main() -> Result<(), scamdetect_serve::registry::ServeError> {
//! let mut config = ServeConfig::default();
//! config.http.addr = "127.0.0.1:0".to_string(); // ephemeral port
//! config.registry.models_dir = "models".into();
//! let daemon = spawn(config)?;
//! println!("serving on {}", daemon.addr);
//! daemon.stop().expect("clean shutdown");
//! # Ok(())
//! # }
//! ```

pub mod client;
pub mod daemon;
pub mod http;
pub mod json;
pub mod lifecycle;
pub mod metrics;
pub mod registry;
pub mod wire;

pub use daemon::{serve, spawn, RunningDaemon, ServeConfig};
pub use http::{
    ConfigError, EpollTransport, HttpConfig, HttpConfigBuilder, LoadGauge, ShutdownHandle,
    ThreadedTransport, TraceHub, Transport, TransportKind,
};
pub use lifecycle::{DriftTelemetry, LifecycleConfig};
pub use metrics::{LifecycleCounter, LifecycleCounters, MetricDef, LIFECYCLE_COUNTERS};
pub use registry::{ModelRegistry, RegistryConfig, ServeError, ServingModel};
