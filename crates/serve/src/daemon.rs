//! The scanning daemon: routes, lifecycle, and the `serve` entry point.
//!
//! Endpoints (see [`crate::wire`] for the JSON schema):
//!
//! | Route                 | Method | Purpose                                     |
//! |-----------------------|--------|---------------------------------------------|
//! | `/scan`               | POST   | score one contract                          |
//! | `/batch`              | POST   | score many (dedup + parallel workers)       |
//! | `/models`             | GET    | artifacts on disk + which one is active     |
//! | `/models/reload`      | POST   | re-resolve (or pin via body), hot-swap      |
//! | `/models/<id>`        | PUT    | install pushed artifact bytes (no swap)     |
//! | `/models/<id>`        | DELETE | delete an idle artifact                     |
//! | `/feedback`           | POST   | record a verdict correction (lifecycle)     |
//! | `/shadow`             | GET    | shadow-session status                       |
//! | `/shadow/start`       | POST   | load a candidate for shadow scoring         |
//! | `/shadow/stop`        | POST   | end the shadow session                      |
//! | `/shadow/promote`     | POST   | thresholded candidate → champion hot swap   |
//! | `/healthz`            | GET    | liveness + model/epoch/cache snapshot       |
//! | `/metrics`            | GET    | Prometheus text format                      |
//! | `/trace/recent`       | GET    | recently kept request traces (span trees)   |
//! | `/trace/<id>`         | GET    | one kept trace by its hex id                |
//!
//! Every scan response names the `model`/`model_epoch` that produced
//! it: handlers snapshot the registry's `Arc<ServingModel>` once per
//! request, so a hot swap never tears a response and in-flight scans
//! finish on the model they started with.

use crate::http::{
    Handler, HttpConfig, HttpRequest, HttpResponse, HttpServer, LoadGauge, ServerStats,
    ShutdownHandle, TraceHub,
};
use crate::json::{obj, Json};
use crate::lifecycle::LifecycleConfig;
use crate::metrics::{LifecycleCounter, Metrics, ShadowScrape};
use crate::registry::{
    ModelRegistry, RegistryConfig, ServeError, ShadowState, SHADOW_MIN_AGREEMENT_DEFAULT,
    SHADOW_MIN_SAMPLES_DEFAULT,
};
use crate::wire;
use scamdetect::lifecycle::{FeedbackLog, FeedbackRecord, FEEDBACK_FSYNC_EVERY};
use scamdetect::trace::{Stage, TraceId};
use scamdetect::ScanRequest;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// The feedback log as the router holds it: appended under a mutex
/// (corrections are rare, human-scale events; scans never touch it).
type SharedFeedbackLog = Arc<Mutex<FeedbackLog>>;

/// Everything `serve` needs: where to listen, where the models live.
#[derive(Debug, Clone, Default)]
pub struct ServeConfig {
    /// HTTP server knobs (bind address, transport, workers, limits).
    pub http: HttpConfig,
    /// Model registry knobs (models dir, pinned id, cache sizes).
    pub registry: RegistryConfig,
    /// Model lifecycle knobs (feedback log path, fsync bound).
    pub lifecycle: LifecycleConfig,
}

/// A daemon that has been bound and spawned onto a background thread —
/// the embedded form used by tests, the load-generator bench and the
/// CLI (which just blocks on [`RunningDaemon::join`]).
pub struct RunningDaemon {
    /// The bound address (real port when `:0` was configured).
    pub addr: std::net::SocketAddr,
    /// Graceful-stop trigger.
    pub shutdown: ShutdownHandle,
    /// The registry backing the daemon (tests swap through this).
    pub registry: Arc<ModelRegistry>,
    /// Live daemon counters.
    pub metrics: Arc<Metrics>,
    thread: std::thread::JoinHandle<ServerStats>,
}

impl RunningDaemon {
    /// Blocks until the daemon shuts down; returns the final counters.
    ///
    /// # Errors
    ///
    /// The server thread's panic payload, if it panicked.
    pub fn join(self) -> std::thread::Result<ServerStats> {
        self.thread.join()
    }

    /// Requests shutdown and joins — the orderly stop used by tests.
    ///
    /// # Errors
    ///
    /// The server thread's panic payload, if it panicked.
    pub fn stop(self) -> std::thread::Result<ServerStats> {
        self.shutdown.shutdown();
        self.join()
    }
}

/// Binds the address, loads the registry and serves on a background
/// thread. [`serve`] is the foreground convenience over this.
///
/// # Errors
///
/// Registry errors (no artifacts, bad artifact) and bind failures.
pub fn spawn(config: ServeConfig) -> Result<RunningDaemon, ServeError> {
    let registry = Arc::new(ModelRegistry::open(config.registry)?);
    let metrics = Arc::new(Metrics::default());
    let feedback = match &config.lifecycle.feedback_log {
        Some(path) => {
            let fsync_every = if config.lifecycle.fsync_every == 0 {
                FEEDBACK_FSYNC_EVERY
            } else {
                config.lifecycle.fsync_every
            };
            let log = FeedbackLog::open(path, fsync_every).map_err(|e| ServeError::Io {
                path: path.display().to_string(),
                message: e.to_string(),
            })?;
            Some(Arc::new(Mutex::new(log)))
        }
        None => None,
    };
    let server = HttpServer::bind(config.http).map_err(|e| ServeError::Io {
        path: "bind".to_string(),
        message: e.to_string(),
    })?;
    let addr = server.local_addr();
    let shutdown = server.shutdown_handle();
    let handler = router(
        Arc::clone(&registry),
        Arc::clone(&metrics),
        server.protocol_error_counter(),
        server.load_gauge(),
        feedback,
        server.trace_hub(),
    );
    let thread = std::thread::spawn(move || server.serve(handler));
    Ok(RunningDaemon {
        addr,
        shutdown,
        registry,
        metrics,
        thread,
    })
}

/// Runs the daemon in the foreground until SIGTERM/SIGINT (unix) or a
/// shutdown triggered through some other clone of the handle; prints
/// one line per lifecycle event to stderr.
///
/// # Errors
///
/// Everything [`spawn`] can raise.
pub fn serve(config: ServeConfig) -> Result<ServerStats, ServeError> {
    let transport = config.http.transport;
    let daemon = spawn(config)?;
    eprintln!(
        "scamdetect-serve: listening on http://{} (model '{}', kind {}, transport {})",
        daemon.addr,
        daemon.registry.model().id,
        daemon.registry.model().kind,
        transport,
    );
    crate::http::shutdown_on_signals(daemon.shutdown.clone());
    let stats = daemon
        .join()
        .unwrap_or_else(|_| panic!("server thread panicked"));
    eprintln!(
        "scamdetect-serve: drained and stopped ({} connections, {} requests)",
        stats.connections, stats.requests
    );
    Ok(stats)
}

/// Builds the route handler over a registry + metrics pair.
/// `protocol_errors` is the HTTP layer's below-the-router rejection
/// counter ([`crate::http::HttpServer::protocol_error_counter`]) and
/// `load` its admission-gate gauge
/// ([`crate::http::HttpServer::load_gauge`]), both folded into
/// `/metrics` scrapes.
pub fn router(
    registry: Arc<ModelRegistry>,
    metrics: Arc<Metrics>,
    protocol_errors: Arc<std::sync::atomic::AtomicU64>,
    load: Arc<LoadGauge>,
    feedback: Option<SharedFeedbackLog>,
    trace: Arc<TraceHub>,
) -> Handler {
    Arc::new(move |request: &HttpRequest| {
        let response = route(
            &registry,
            &metrics,
            &protocol_errors,
            &load,
            feedback.as_ref(),
            &trace,
            request,
        );
        if response.status >= 400 {
            metrics.errors.fetch_add(1, Ordering::Relaxed);
        }
        response
    })
}

fn route(
    registry: &ModelRegistry,
    metrics: &Metrics,
    protocol_errors: &std::sync::atomic::AtomicU64,
    load: &LoadGauge,
    feedback: Option<&SharedFeedbackLog>,
    trace: &TraceHub,
    request: &HttpRequest,
) -> HttpResponse {
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/scan") => {
            metrics.requests_scan.fetch_add(1, Ordering::Relaxed);
            handle_scan(registry, metrics, request)
        }
        ("POST", "/batch") => {
            metrics.requests_batch.fetch_add(1, Ordering::Relaxed);
            handle_batch(registry, metrics, request)
        }
        ("GET", "/models") => {
            metrics.requests_other.fetch_add(1, Ordering::Relaxed);
            handle_models(registry)
        }
        ("POST", "/models/reload") => {
            metrics.requests_other.fetch_add(1, Ordering::Relaxed);
            handle_reload(registry, metrics, request)
        }
        ("POST", "/feedback") => {
            metrics.requests_other.fetch_add(1, Ordering::Relaxed);
            handle_feedback(registry, metrics, feedback, request)
        }
        ("GET", "/shadow") => {
            metrics.requests_other.fetch_add(1, Ordering::Relaxed);
            handle_shadow_status(registry)
        }
        ("POST", "/shadow/start") => {
            metrics.requests_other.fetch_add(1, Ordering::Relaxed);
            handle_shadow_start(registry, metrics, request)
        }
        ("POST", "/shadow/stop") => {
            metrics.requests_other.fetch_add(1, Ordering::Relaxed);
            HttpResponse::json(200, &obj([("stopped", Json::from(registry.shadow_stop()))]))
        }
        ("POST", "/shadow/promote") => {
            metrics.requests_other.fetch_add(1, Ordering::Relaxed);
            handle_shadow_promote(registry, metrics, request)
        }
        // `/models/reload` is claimed by the arm above; any other
        // non-empty suffix is a model id ("reload" itself can never be
        // an artifact name over the wire).
        ("PUT", path) if model_id_of(path).is_some() => {
            metrics.requests_other.fetch_add(1, Ordering::Relaxed);
            handle_install(
                registry,
                metrics,
                model_id_of(path).expect("guard"),
                request,
            )
        }
        ("DELETE", path) if model_id_of(path).is_some() => {
            metrics.requests_other.fetch_add(1, Ordering::Relaxed);
            handle_remove(registry, model_id_of(path).expect("guard"))
        }
        ("GET", "/trace/recent") => {
            metrics.requests_other.fetch_add(1, Ordering::Relaxed);
            handle_trace_recent(trace)
        }
        ("GET", path) if path.strip_prefix("/trace/").is_some_and(|s| !s.is_empty()) => {
            metrics.requests_other.fetch_add(1, Ordering::Relaxed);
            handle_trace_by_id(trace, path.strip_prefix("/trace/").expect("guard"))
        }
        ("GET", "/healthz") => {
            metrics.requests_other.fetch_add(1, Ordering::Relaxed);
            // The full snapshot a router needs for staleness-aware
            // decisions — plain `status == ok` + HTTP 200 still works
            // for old probes that ignore the rest.
            let model = registry.model();
            let shadow_state = registry
                .shadow()
                .map(|s| Json::from(s.model.id.as_str()))
                .unwrap_or_else(|| Json::from("off"));
            HttpResponse::json(
                200,
                &obj([
                    ("status", Json::from("ok")),
                    ("model", Json::from(model.id.as_str())),
                    ("model_epoch", Json::from(model.epoch)),
                    ("kind", Json::from(model.kind.as_str())),
                    ("threshold", Json::from(model.threshold)),
                    ("swaps", Json::from(registry.swap_count())),
                    ("uptime_s", Json::from(registry.uptime_s())),
                    (
                        "verdict_cache_entries",
                        Json::from(model.scanner.cache_len() as u64),
                    ),
                    (
                        "prep_cache_entries",
                        Json::from(registry.prep_cache().len() as u64),
                    ),
                    ("shadow", shadow_state),
                ]),
            )
        }
        ("GET", "/metrics") => {
            metrics.requests_other.fetch_add(1, Ordering::Relaxed);
            let model = registry.model();
            // The local keeps the shadow candidate's id alive for the
            // borrow in ShadowScrape.
            let shadow = registry.shadow();
            let shadow_scrape = shadow.as_ref().map(|s| ShadowScrape {
                candidate: &s.model.id,
                candidate_epoch: s.model.epoch,
                samples: s.counters.samples.load(Ordering::Relaxed),
                agreements: s.counters.agreements.load(Ordering::Relaxed),
                disagreements: s.counters.disagreements.load(Ordering::Relaxed),
                failures: s.counters.failures.load(Ordering::Relaxed),
                dropped: s.counters.dropped.load(Ordering::Relaxed),
                latency_delta_us: s.counters.latency_delta_us.load(Ordering::Relaxed),
            });
            let feedback_log_records =
                feedback.map(|log| log.lock().unwrap_or_else(|e| e.into_inner()).len());
            HttpResponse::text(
                200,
                metrics.render_prometheus(&crate::metrics::ScrapeSnapshot {
                    model_id: &model.id,
                    model_epoch: model.epoch,
                    uptime_s: registry.uptime_s(),
                    verdict_cache_len: model.scanner.cache_len(),
                    prep_cache_len: registry.prep_cache().len(),
                    protocol_errors: protocol_errors.load(Ordering::Relaxed),
                    load,
                    shadow: shadow_scrape,
                    feedback_log_records,
                    trace: Some(trace),
                }),
            )
        }
        (_, "/scan" | "/batch" | "/models/reload" | "/feedback") => {
            metrics.requests_other.fetch_add(1, Ordering::Relaxed);
            HttpResponse::error(405, "use POST")
        }
        (_, "/shadow/start" | "/shadow/stop" | "/shadow/promote") => {
            metrics.requests_other.fetch_add(1, Ordering::Relaxed);
            HttpResponse::error(405, "use POST")
        }
        (_, path) if model_id_of(path).is_some() => {
            metrics.requests_other.fetch_add(1, Ordering::Relaxed);
            HttpResponse::error(405, "use PUT or DELETE")
        }
        (_, "/models" | "/healthz" | "/metrics" | "/shadow") => {
            metrics.requests_other.fetch_add(1, Ordering::Relaxed);
            HttpResponse::error(405, "use GET")
        }
        (_, path) if path == "/trace/recent" || path.starts_with("/trace/") => {
            metrics.requests_other.fetch_add(1, Ordering::Relaxed);
            HttpResponse::error(405, "use GET")
        }
        _ => {
            metrics.requests_other.fetch_add(1, Ordering::Relaxed);
            HttpResponse::error(404, "no such route")
        }
    }
}

/// The `<id>` of a `/models/<id>` path, `None` for `/models/reload`
/// (that is an action, not an artifact) and for paths outside the
/// models namespace. Id *validity* is the registry's call.
fn model_id_of(path: &str) -> Option<&str> {
    path.strip_prefix("/models/")
        .filter(|id| !id.is_empty() && *id != "reload")
}

/// `GET /trace/recent`: the most recently kept traces, newest first,
/// as summaries (fetch a full span tree via `/trace/<id>`).
fn handle_trace_recent(trace: &TraceHub) -> HttpResponse {
    if !trace.enabled() {
        return HttpResponse::error(409, "tracing disabled (serve with --trace-sample > 0)");
    }
    let recent = trace.recent(wire::TRACE_RECENT_LIMIT);
    let (kept, dropped) = trace.ring_counts();
    HttpResponse::json(200, &wire::render_trace_recent(&recent, kept, dropped))
}

/// `GET /trace/<id>`: one kept trace as a full span tree.
fn handle_trace_by_id(trace: &TraceHub, raw: &str) -> HttpResponse {
    if !trace.enabled() {
        return HttpResponse::error(409, "tracing disabled (serve with --trace-sample > 0)");
    }
    let Some(id) = TraceId::parse(raw) else {
        return HttpResponse::error(400, "trace id must be 1-16 hex digits");
    };
    match trace.find(id) {
        Some(t) => HttpResponse::json(200, &wire::render_trace(&t)),
        None => HttpResponse::error(
            404,
            "no kept trace with that id (sampled away, evicted, or never seen)",
        ),
    }
}

fn parse_body(request: &HttpRequest) -> Result<Json, HttpResponse> {
    let text = std::str::from_utf8(&request.body)
        .map_err(|_| HttpResponse::error(400, "request body is not valid utf-8"))?;
    Json::parse(text).map_err(|e| HttpResponse::error(400, &format!("invalid JSON: {e}")))
}

fn handle_scan(registry: &ModelRegistry, metrics: &Metrics, request: &HttpRequest) -> HttpResponse {
    // Prep: body decode — JSON parse plus hex/base64 bytecode decode.
    let prep_start = Instant::now();
    let body = match parse_body(request) {
        Ok(body) => body,
        Err(response) => return response,
    };
    let wire_request = match wire::parse_scan_request(&body) {
        Ok(parsed) => parsed,
        Err(message) => {
            metrics.scan_failures.fetch_add(1, Ordering::Relaxed);
            return HttpResponse::error(400, &message);
        }
    };
    request.trace_record(Stage::Prep, prep_start, Instant::now());
    // One snapshot for the whole request: the response's model/epoch
    // fields name exactly the weights that scored it.
    let model = registry.model();
    let started = Instant::now();
    let mut scan = ScanRequest::new(&wire_request.bytes);
    if let Some(platform) = wire_request.platform {
        scan = scan.on(platform);
    }
    let outcome = model.scanner.scan_request(&scan);
    let scanned_at = Instant::now();
    let elapsed_us = started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
    metrics
        .scan_latency
        .record_with_trace(elapsed_us, request.trace_id());
    metrics.scans_total.fetch_add(1, Ordering::Relaxed);
    match outcome {
        Ok(report) => {
            let cache_hit = report.cache == scamdetect::CacheStatus::CacheHit;
            if request.trace.is_some() {
                // The scan window splits on the report's own compute
                // time: everything outside it is fingerprint + cache
                // probe, everything inside is model scoring (zero on a
                // cache hit, which therefore records no score span).
                let score_start = scanned_at.checked_sub(report.elapsed).unwrap_or(started);
                request.trace_record_note(
                    Stage::CacheLookup,
                    started,
                    score_start,
                    format!("cache={:?}", report.cache),
                );
                if !report.elapsed.is_zero() {
                    request.trace_record(Stage::Score, score_start, scanned_at);
                }
            }
            if cache_hit {
                metrics.cache_hits.fetch_add(1, Ordering::Relaxed);
            }
            if report.is_malicious() {
                metrics.malicious_verdicts.fetch_add(1, Ordering::Relaxed);
            }
            metrics.drift.observe_score(
                report.verdict.platform,
                report.verdict.malicious_probability,
                cache_hit,
            );
            if let Some(shadow) = registry.shadow() {
                shadow.submit(
                    wire_request.bytes.clone(),
                    wire_request.platform,
                    report.is_malicious(),
                    elapsed_us,
                    &metrics.lifecycle,
                );
            }
            let serialize_start = Instant::now();
            let response = HttpResponse::json(200, &wire::render_report(&report, &model));
            request.trace_record(Stage::Serialize, serialize_start, Instant::now());
            response
        }
        Err(e) => {
            metrics.scan_failures.fetch_add(1, Ordering::Relaxed);
            HttpResponse::error(422, &format!("scan failed: {e}"))
        }
    }
}

fn handle_batch(
    registry: &ModelRegistry,
    metrics: &Metrics,
    request: &HttpRequest,
) -> HttpResponse {
    let batch_start = Instant::now();
    let prep_start = batch_start;
    let body = match parse_body(request) {
        Ok(body) => body,
        Err(response) => return response,
    };
    let items = match body.get("requests").and_then(Json::as_array) {
        Some(items) => items,
        None => return HttpResponse::error(400, "missing 'requests' array"),
    };
    if items.len() > wire::MAX_BATCH_REQUESTS {
        return HttpResponse::error(
            413,
            &format!(
                "batch of {} exceeds the {} request cap",
                items.len(),
                wire::MAX_BATCH_REQUESTS
            ),
        );
    }

    // Decode every slot first; a malformed slot degrades to a per-slot
    // error without failing its neighbours (mirroring ScanOutcome).
    let decoded: Vec<Result<wire::WireScanRequest, String>> =
        items.iter().map(wire::parse_scan_request).collect();
    let scannable: Vec<(usize, &wire::WireScanRequest)> = decoded
        .iter()
        .enumerate()
        .filter_map(|(i, r)| r.as_ref().ok().map(|req| (i, req)))
        .collect();
    let requests: Vec<ScanRequest> = scannable
        .iter()
        .map(|(_, w)| {
            let mut scan = ScanRequest::new(&w.bytes);
            if let Some(platform) = w.platform {
                scan = scan.on(platform);
            }
            scan
        })
        .collect();

    request.trace_record_note(
        Stage::Prep,
        prep_start,
        Instant::now(),
        format!("contracts={}", items.len()),
    );

    let model = registry.model();
    let started = Instant::now();
    let outcomes = model.scanner.scan_batch(&requests);
    request.trace_record(Stage::Score, started, Instant::now());
    // The scan histogram feeds the *per-scan* p50/p99 gauges; a whole
    // batch is many scans, so record its amortised per-contract cost
    // rather than one giant sample that would masquerade as a slow scan.
    if !requests.is_empty() {
        let per_contract_us =
            (started.elapsed().as_micros() / requests.len() as u128).min(u128::from(u64::MAX));
        metrics.record_latency_us(per_contract_us as u64);
    }

    let mut results: Vec<Json> = decoded
        .iter()
        .map(|slot| match slot {
            Ok(_) => Json::Null, // placeholder, filled below
            Err(message) => {
                metrics.scan_failures.fetch_add(1, Ordering::Relaxed);
                obj([("error", Json::from(message.as_str()))])
            }
        })
        .collect();
    let shadow = registry.shadow();
    for ((slot, wire_request), outcome) in scannable.iter().zip(outcomes) {
        metrics.scans_total.fetch_add(1, Ordering::Relaxed);
        results[*slot] = match outcome {
            Ok(report) => {
                let mut cache_hit = false;
                match report.cache {
                    scamdetect::CacheStatus::CacheHit => {
                        cache_hit = true;
                        metrics.cache_hits.fetch_add(1, Ordering::Relaxed);
                    }
                    scamdetect::CacheStatus::BatchHit => {
                        cache_hit = true;
                        metrics.batch_hits.fetch_add(1, Ordering::Relaxed);
                    }
                    scamdetect::CacheStatus::Miss => {}
                }
                if report.is_malicious() {
                    metrics.malicious_verdicts.fetch_add(1, Ordering::Relaxed);
                }
                metrics.drift.observe_score(
                    report.verdict.platform,
                    report.verdict.malicious_probability,
                    cache_hit,
                );
                if let Some(shadow) = &shadow {
                    shadow.submit(
                        wire_request.bytes.clone(),
                        wire_request.platform,
                        report.is_malicious(),
                        report.elapsed.as_micros().min(u128::from(u64::MAX)) as u64,
                        &metrics.lifecycle,
                    );
                }
                wire::render_report(&report, &model)
            }
            Err(e) => {
                metrics.scan_failures.fetch_add(1, Ordering::Relaxed);
                obj([("error", Json::from(format!("scan failed: {e}")))])
            }
        };
    }
    let serialize_start = Instant::now();
    let response = HttpResponse::json(
        200,
        &obj([
            ("model", Json::from(model.id.as_str())),
            ("model_epoch", Json::from(model.epoch)),
            ("results", Json::Arr(results)),
        ]),
    );
    request.trace_record(Stage::Serialize, serialize_start, Instant::now());
    // The whole-request histogram (per endpoint) complements the
    // amortised per-contract sample recorded above.
    metrics.batch_latency.record_with_trace(
        batch_start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64,
        request.trace_id(),
    );
    response
}

fn handle_models(registry: &ModelRegistry) -> HttpResponse {
    match registry.list() {
        Ok(entries) => {
            let active = registry.model();
            let models: Vec<Json> = entries
                .iter()
                .map(|e| {
                    obj([
                        ("id", Json::from(e.id.as_str())),
                        ("bytes", Json::from(e.bytes)),
                        ("active", Json::from(e.active)),
                    ])
                })
                .collect();
            // The shadow candidate rides along so one GET answers the
            // operator's whole question: what is on disk, what serves,
            // and what is being auditioned.
            let shadow = registry
                .shadow()
                .map(|s| shadow_status_json(&s))
                .unwrap_or(Json::Null);
            HttpResponse::json(
                200,
                &obj([
                    ("active", Json::from(active.id.as_str())),
                    ("kind", Json::from(active.kind.as_str())),
                    ("threshold", Json::from(active.threshold)),
                    ("model_epoch", Json::from(active.epoch)),
                    ("models", Json::Arr(models)),
                    ("shadow", shadow),
                ]),
            )
        }
        Err(e) => HttpResponse::error(500, &format!("cannot list models: {e}")),
    }
}

/// The JSON summary of a live shadow session, shared by `GET /shadow`
/// and the `shadow` field of `GET /models`.
fn shadow_status_json(state: &ShadowState) -> Json {
    let samples = state.counters.samples.load(Ordering::Relaxed);
    let latency_delta = state.counters.latency_delta_us.load(Ordering::Relaxed);
    let mean_delta = if samples == 0 {
        0.0
    } else {
        latency_delta as f64 / samples as f64
    };
    obj([
        ("candidate", Json::from(state.model.id.as_str())),
        ("candidate_kind", Json::from(state.model.kind.as_str())),
        ("candidate_epoch", Json::from(state.model.epoch)),
        ("samples", Json::from(samples)),
        (
            "agreements",
            Json::from(state.counters.agreements.load(Ordering::Relaxed)),
        ),
        (
            "disagreements",
            Json::from(state.counters.disagreements.load(Ordering::Relaxed)),
        ),
        ("agreement", Json::from(state.counters.agreement())),
        (
            "failures",
            Json::from(state.counters.failures.load(Ordering::Relaxed)),
        ),
        (
            "dropped",
            Json::from(state.counters.dropped.load(Ordering::Relaxed)),
        ),
        ("latency_delta_us_avg", Json::from(mean_delta)),
    ])
}

/// `GET /shadow`: the live session summary, or `{"active": false}`.
fn handle_shadow_status(registry: &ModelRegistry) -> HttpResponse {
    match registry.shadow() {
        Some(state) => {
            // Flatten the shared summary under a top-level `active` flag.
            let mut fields = vec![("active".to_string(), Json::from(true))];
            if let Json::Obj(pairs) = shadow_status_json(&state) {
                fields.extend(pairs);
            }
            HttpResponse::json(200, &Json::Obj(fields))
        }
        None => HttpResponse::json(200, &obj([("active", Json::from(false))])),
    }
}

/// Installs pushed artifact bytes as `<id>.scam`. The body is the raw
/// binary artifact; an optional `x-artifact-fnv1a` header (hex, with or
/// without `0x`) is the end-to-end checksum handshake — mismatch is a
/// 409 and nothing lands on disk.
fn handle_install(
    registry: &ModelRegistry,
    metrics: &Metrics,
    id: &str,
    request: &HttpRequest,
) -> HttpResponse {
    let expected = match request.header("x-artifact-fnv1a") {
        Some(raw) => {
            let digits = raw.strip_prefix("0x").unwrap_or(raw);
            match u64::from_str_radix(digits, 16) {
                Ok(v) => Some(v),
                Err(_) => {
                    return HttpResponse::error(
                        400,
                        "x-artifact-fnv1a must be a hex u64 (e.g. 0x1a2b3c)",
                    )
                }
            }
        }
        None => None,
    };
    if request.body.is_empty() {
        return HttpResponse::error(400, "empty body: expected ModelArtifact bytes");
    }
    match registry.install_artifact(id, &request.body, expected) {
        Ok(outcome) => {
            metrics.model_installs.fetch_add(1, Ordering::Relaxed);
            HttpResponse::json(
                200,
                &obj([
                    ("installed", Json::from(outcome.id.as_str())),
                    ("bytes", Json::from(outcome.bytes)),
                    (
                        "fnv1a",
                        Json::from(format!("{:#018x}", outcome.fingerprint)),
                    ),
                    ("replaced", Json::from(outcome.replaced)),
                ]),
            )
        }
        Err(e @ ServeError::ChecksumMismatch { .. }) => HttpResponse::error(409, &e.to_string()),
        Err(e @ ServeError::InvalidModelId { .. }) => HttpResponse::error(400, &e.to_string()),
        Err(e @ ServeError::Artifact(_)) => {
            HttpResponse::error(422, &format!("artifact rejected: {e}"))
        }
        Err(e) => HttpResponse::error(500, &e.to_string()),
    }
}

fn handle_remove(registry: &ModelRegistry, id: &str) -> HttpResponse {
    match registry.remove_artifact(id) {
        Ok(()) => HttpResponse::json(200, &obj([("deleted", Json::from(id))])),
        Err(e @ ServeError::ActiveModel { .. }) => HttpResponse::error(409, &e.to_string()),
        Err(e @ ServeError::UnknownModel { .. }) => HttpResponse::error(404, &e.to_string()),
        Err(e @ ServeError::InvalidModelId { .. }) => HttpResponse::error(400, &e.to_string()),
        Err(e) => HttpResponse::error(500, &e.to_string()),
    }
}

/// `POST /models/reload`: empty body re-resolves the directory (pin or
/// sort order); a `{"model": "<id>"}` body is a one-shot pin to exactly
/// that artifact — the canary/rollback primitive.
fn handle_reload(
    registry: &ModelRegistry,
    metrics: &Metrics,
    request: &HttpRequest,
) -> HttpResponse {
    let pin: Option<String> = if request.body.is_empty() {
        None
    } else {
        let body = match parse_body(request) {
            Ok(body) => body,
            Err(response) => return response,
        };
        match body.get("model") {
            Some(Json::Str(id)) => Some(id.clone()),
            Some(_) => return HttpResponse::error(400, "'model' must be a string"),
            None => None,
        }
    };
    match registry.reload_with(pin.as_deref()) {
        Ok(outcome) => {
            if outcome.swapped {
                metrics.model_swaps.fetch_add(1, Ordering::Relaxed);
            }
            HttpResponse::json(
                200,
                &obj([
                    ("swapped", Json::from(outcome.swapped)),
                    ("active", Json::from(outcome.active.as_str())),
                    ("model_epoch", Json::from(outcome.epoch)),
                ]),
            )
        }
        // The old model keeps serving on a failed reload; 409 tells the
        // operator the swap did not happen without killing traffic.
        Err(e) => HttpResponse::error(409, &format!("reload failed (still serving): {e}")),
    }
}

/// Parses a `"platform"` JSON field: `"evm"` or `"wasm"`.
fn parse_platform_field(value: &Json) -> Result<scamdetect_ir::Platform, HttpResponse> {
    match value.as_str() {
        Some("evm") => Ok(scamdetect_ir::Platform::Evm),
        Some("wasm") => Ok(scamdetect_ir::Platform::Wasm),
        _ => Err(HttpResponse::error(
            400,
            "'platform' must be \"evm\" or \"wasm\"",
        )),
    }
}

/// `POST /feedback`: records a verdict correction into the feedback log.
///
/// The correction carries a `label` (`"malicious"` / `"benign"`) and
/// identifies the contract either by `bytecode` (re-scored by the
/// champion, so the served verdict/score and the cache fingerprint are
/// recovered exactly) or by `skeleton` + `platform` (the fingerprint a
/// previous scan response reported; `score`/`served_verdict` optional —
/// without `served_verdict` the disagreement counter is not advanced
/// and the response's `disagreement` is `null`).
fn handle_feedback(
    registry: &ModelRegistry,
    metrics: &Metrics,
    feedback: Option<&SharedFeedbackLog>,
    request: &HttpRequest,
) -> HttpResponse {
    let Some(log) = feedback else {
        return HttpResponse::error(
            409,
            "feedback ingestion disabled (start the daemon with --feedback-log <path>)",
        );
    };
    let body = match parse_body(request) {
        Ok(body) => body,
        Err(response) => return response,
    };
    let label = match body.get("label").and_then(Json::as_str) {
        Some("malicious") => scamdetect::lifecycle::ContractLabel::Malicious,
        Some("benign") => scamdetect::lifecycle::ContractLabel::Benign,
        _ => {
            return HttpResponse::error(400, "missing 'label': \"malicious\" or \"benign\"");
        }
    };
    let model = registry.model();

    // Resolve (platform, fingerprint, disputed score, disagreement).
    let (platform, fingerprint, score, disagreement) = if body.get("bytecode").is_some() {
        // Keyed by bytes: re-score with the champion so the correction
        // disputes exactly what the wire served (cache included).
        let wire_request = match wire::parse_scan_request(&body) {
            Ok(parsed) => parsed,
            Err(message) => return HttpResponse::error(400, &message),
        };
        let mut scan = ScanRequest::new(&wire_request.bytes);
        if let Some(platform) = wire_request.platform {
            scan = scan.on(platform);
        }
        match model.scanner.scan_request(&scan) {
            Ok(report) => {
                let disagreement = (report.verdict.label != label) as u8;
                (
                    report.verdict.platform,
                    report.skeleton,
                    report.verdict.malicious_probability,
                    Some(disagreement == 1),
                )
            }
            Err(e) => {
                return HttpResponse::error(422, &format!("cannot score feedback subject: {e}"))
            }
        }
    } else if let Some(skeleton) = body.get("skeleton") {
        let Some(hex) = skeleton.as_str() else {
            return HttpResponse::error(400, "'skeleton' must be a hex string");
        };
        let digits = hex.strip_prefix("0x").unwrap_or(hex);
        let Ok(fingerprint) = u64::from_str_radix(digits, 16) else {
            return HttpResponse::error(400, "'skeleton' must be a hex u64");
        };
        let Some(platform_field) = body.get("platform") else {
            return HttpResponse::error(400, "skeleton feedback requires 'platform'");
        };
        let platform = match parse_platform_field(platform_field) {
            Ok(p) => p,
            Err(response) => return response,
        };
        let score = body.get("score").and_then(Json::as_f64).unwrap_or(f64::NAN);
        let disagreement = match body.get("served_verdict").and_then(Json::as_str) {
            Some("malicious") => Some(label != scamdetect::lifecycle::ContractLabel::Malicious),
            Some("benign") => Some(label != scamdetect::lifecycle::ContractLabel::Benign),
            Some(_) => {
                return HttpResponse::error(
                    400,
                    "'served_verdict' must be \"malicious\" or \"benign\"",
                )
            }
            None => None,
        };
        (platform, fingerprint, score, disagreement)
    } else {
        return HttpResponse::error(400, "feedback requires 'bytecode' or 'skeleton'");
    };

    let record = FeedbackRecord {
        fingerprint,
        platform,
        label,
        score,
        model_epoch: model.epoch,
        model_id: model.id.clone(),
    };
    let records = {
        let mut log = log.lock().unwrap_or_else(|e| e.into_inner());
        if let Err(e) = log.append(&record) {
            return HttpResponse::error(500, &format!("feedback log write failed: {e}"));
        }
        log.len()
    };
    metrics.lifecycle.incr(LifecycleCounter::Feedback);
    if disagreement == Some(true) {
        metrics
            .lifecycle
            .incr(LifecycleCounter::FeedbackDisagreements);
    }
    HttpResponse::json(
        200,
        &obj([
            ("recorded", Json::from(true)),
            ("skeleton", Json::from(format!("{fingerprint:016x}"))),
            ("platform", Json::from(platform.to_string())),
            (
                "disagreement",
                disagreement.map(Json::from).unwrap_or(Json::Null),
            ),
            ("log_records", Json::from(records)),
        ]),
    )
}

/// `POST /shadow/start`: loads `{"model": "<id>"}` as the shadow
/// candidate and begins mirroring served scans to it.
fn handle_shadow_start(
    registry: &ModelRegistry,
    metrics: &Metrics,
    request: &HttpRequest,
) -> HttpResponse {
    let body = match parse_body(request) {
        Ok(body) => body,
        Err(response) => return response,
    };
    let Some(id) = body.get("model").and_then(Json::as_str) else {
        return HttpResponse::error(400, "missing 'model': the candidate artifact id");
    };
    match registry.shadow_start(id, Arc::clone(&metrics.lifecycle)) {
        Ok(state) => HttpResponse::json(
            200,
            &obj([
                ("shadowing", Json::from(state.model.id.as_str())),
                ("candidate_kind", Json::from(state.model.kind.as_str())),
                ("candidate_epoch", Json::from(state.model.epoch)),
            ]),
        ),
        Err(e @ ServeError::UnknownModel { .. }) => HttpResponse::error(404, &e.to_string()),
        Err(e @ ServeError::ActiveModel { .. }) => HttpResponse::error(409, &e.to_string()),
        Err(e @ ServeError::InvalidModelId { .. }) => HttpResponse::error(400, &e.to_string()),
        Err(e @ ServeError::Artifact(_)) => {
            HttpResponse::error(422, &format!("candidate rejected: {e}"))
        }
        Err(e) => HttpResponse::error(500, &e.to_string()),
    }
}

/// `POST /shadow/promote`: the thresholded candidate → champion swap.
/// Body optional: `{"min_samples": n, "min_agreement": x}` override the
/// defaults (32 samples, 0.95 agreement).
fn handle_shadow_promote(
    registry: &ModelRegistry,
    metrics: &Metrics,
    request: &HttpRequest,
) -> HttpResponse {
    let (min_samples, min_agreement) = if request.body.is_empty() {
        (SHADOW_MIN_SAMPLES_DEFAULT, SHADOW_MIN_AGREEMENT_DEFAULT)
    } else {
        let body = match parse_body(request) {
            Ok(body) => body,
            Err(response) => return response,
        };
        let min_samples = match body.get("min_samples") {
            Some(v) => match v.as_f64() {
                Some(n) if n >= 0.0 => n as u64,
                _ => {
                    return HttpResponse::error(400, "'min_samples' must be a non-negative number")
                }
            },
            None => SHADOW_MIN_SAMPLES_DEFAULT,
        };
        let min_agreement = match body.get("min_agreement") {
            Some(v) => match v.as_f64() {
                Some(x) if (0.0..=1.0).contains(&x) => x,
                _ => return HttpResponse::error(400, "'min_agreement' must be in [0, 1]"),
            },
            None => SHADOW_MIN_AGREEMENT_DEFAULT,
        };
        (min_samples, min_agreement)
    };
    match registry.shadow_promote(min_samples, min_agreement) {
        Ok(outcome) => {
            if outcome.swapped {
                metrics.model_swaps.fetch_add(1, Ordering::Relaxed);
            }
            HttpResponse::json(
                200,
                &obj([
                    ("promoted", Json::from(outcome.active.as_str())),
                    ("swapped", Json::from(outcome.swapped)),
                    ("model_epoch", Json::from(outcome.epoch)),
                ]),
            )
        }
        Err(e @ (ServeError::ShadowUnavailable | ServeError::ShadowNotReady { .. })) => {
            HttpResponse::error(409, &e.to_string())
        }
        Err(e) => HttpResponse::error(409, &format!("promotion failed (still serving): {e}")),
    }
}
