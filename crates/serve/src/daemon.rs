//! The scanning daemon: routes, lifecycle, and the `serve` entry point.
//!
//! Endpoints (see [`crate::wire`] for the JSON schema):
//!
//! | Route                 | Method | Purpose                                     |
//! |-----------------------|--------|---------------------------------------------|
//! | `/scan`               | POST   | score one contract                          |
//! | `/batch`              | POST   | score many (dedup + parallel workers)       |
//! | `/models`             | GET    | artifacts on disk + which one is active     |
//! | `/models/reload`      | POST   | re-resolve (or pin via body), hot-swap      |
//! | `/models/<id>`        | PUT    | install pushed artifact bytes (no swap)     |
//! | `/models/<id>`        | DELETE | delete an idle artifact                     |
//! | `/healthz`            | GET    | liveness + model/epoch/cache snapshot       |
//! | `/metrics`            | GET    | Prometheus text format                      |
//!
//! Every scan response names the `model`/`model_epoch` that produced
//! it: handlers snapshot the registry's `Arc<ServingModel>` once per
//! request, so a hot swap never tears a response and in-flight scans
//! finish on the model they started with.

use crate::http::{
    Handler, HttpConfig, HttpRequest, HttpResponse, HttpServer, LoadGauge, ServerStats,
    ShutdownHandle,
};
use crate::json::{obj, Json};
use crate::metrics::Metrics;
use crate::registry::{ModelRegistry, RegistryConfig, ServeError};
use crate::wire;
use scamdetect::ScanRequest;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

/// Everything `serve` needs: where to listen, where the models live.
#[derive(Debug, Clone, Default)]
pub struct ServeConfig {
    /// HTTP server knobs (bind address, transport, workers, limits).
    pub http: HttpConfig,
    /// Model registry knobs (models dir, pinned id, cache sizes).
    pub registry: RegistryConfig,
}

/// A daemon that has been bound and spawned onto a background thread —
/// the embedded form used by tests, the load-generator bench and the
/// CLI (which just blocks on [`RunningDaemon::join`]).
pub struct RunningDaemon {
    /// The bound address (real port when `:0` was configured).
    pub addr: std::net::SocketAddr,
    /// Graceful-stop trigger.
    pub shutdown: ShutdownHandle,
    /// The registry backing the daemon (tests swap through this).
    pub registry: Arc<ModelRegistry>,
    /// Live daemon counters.
    pub metrics: Arc<Metrics>,
    thread: std::thread::JoinHandle<ServerStats>,
}

impl RunningDaemon {
    /// Blocks until the daemon shuts down; returns the final counters.
    ///
    /// # Errors
    ///
    /// The server thread's panic payload, if it panicked.
    pub fn join(self) -> std::thread::Result<ServerStats> {
        self.thread.join()
    }

    /// Requests shutdown and joins — the orderly stop used by tests.
    ///
    /// # Errors
    ///
    /// The server thread's panic payload, if it panicked.
    pub fn stop(self) -> std::thread::Result<ServerStats> {
        self.shutdown.shutdown();
        self.join()
    }
}

/// Binds the address, loads the registry and serves on a background
/// thread. [`serve`] is the foreground convenience over this.
///
/// # Errors
///
/// Registry errors (no artifacts, bad artifact) and bind failures.
pub fn spawn(config: ServeConfig) -> Result<RunningDaemon, ServeError> {
    let registry = Arc::new(ModelRegistry::open(config.registry)?);
    let metrics = Arc::new(Metrics::default());
    let server = HttpServer::bind(config.http).map_err(|e| ServeError::Io {
        path: "bind".to_string(),
        message: e.to_string(),
    })?;
    let addr = server.local_addr();
    let shutdown = server.shutdown_handle();
    let handler = router(
        Arc::clone(&registry),
        Arc::clone(&metrics),
        server.protocol_error_counter(),
        server.load_gauge(),
    );
    let thread = std::thread::spawn(move || server.serve(handler));
    Ok(RunningDaemon {
        addr,
        shutdown,
        registry,
        metrics,
        thread,
    })
}

/// Runs the daemon in the foreground until SIGTERM/SIGINT (unix) or a
/// shutdown triggered through some other clone of the handle; prints
/// one line per lifecycle event to stderr.
///
/// # Errors
///
/// Everything [`spawn`] can raise.
pub fn serve(config: ServeConfig) -> Result<ServerStats, ServeError> {
    let transport = config.http.transport;
    let daemon = spawn(config)?;
    eprintln!(
        "scamdetect-serve: listening on http://{} (model '{}', kind {}, transport {})",
        daemon.addr,
        daemon.registry.model().id,
        daemon.registry.model().kind,
        transport,
    );
    crate::http::shutdown_on_signals(daemon.shutdown.clone());
    let stats = daemon
        .join()
        .unwrap_or_else(|_| panic!("server thread panicked"));
    eprintln!(
        "scamdetect-serve: drained and stopped ({} connections, {} requests)",
        stats.connections, stats.requests
    );
    Ok(stats)
}

/// Builds the route handler over a registry + metrics pair.
/// `protocol_errors` is the HTTP layer's below-the-router rejection
/// counter ([`crate::http::HttpServer::protocol_error_counter`]) and
/// `load` its admission-gate gauge
/// ([`crate::http::HttpServer::load_gauge`]), both folded into
/// `/metrics` scrapes.
pub fn router(
    registry: Arc<ModelRegistry>,
    metrics: Arc<Metrics>,
    protocol_errors: Arc<std::sync::atomic::AtomicU64>,
    load: Arc<LoadGauge>,
) -> Handler {
    Arc::new(move |request: &HttpRequest| {
        let response = route(&registry, &metrics, &protocol_errors, &load, request);
        if response.status >= 400 {
            metrics.errors.fetch_add(1, Ordering::Relaxed);
        }
        response
    })
}

fn route(
    registry: &ModelRegistry,
    metrics: &Metrics,
    protocol_errors: &std::sync::atomic::AtomicU64,
    load: &LoadGauge,
    request: &HttpRequest,
) -> HttpResponse {
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/scan") => {
            metrics.requests_scan.fetch_add(1, Ordering::Relaxed);
            handle_scan(registry, metrics, request)
        }
        ("POST", "/batch") => {
            metrics.requests_batch.fetch_add(1, Ordering::Relaxed);
            handle_batch(registry, metrics, request)
        }
        ("GET", "/models") => {
            metrics.requests_other.fetch_add(1, Ordering::Relaxed);
            handle_models(registry)
        }
        ("POST", "/models/reload") => {
            metrics.requests_other.fetch_add(1, Ordering::Relaxed);
            handle_reload(registry, metrics, request)
        }
        // `/models/reload` is claimed by the arm above; any other
        // non-empty suffix is a model id ("reload" itself can never be
        // an artifact name over the wire).
        ("PUT", path) if model_id_of(path).is_some() => {
            metrics.requests_other.fetch_add(1, Ordering::Relaxed);
            handle_install(
                registry,
                metrics,
                model_id_of(path).expect("guard"),
                request,
            )
        }
        ("DELETE", path) if model_id_of(path).is_some() => {
            metrics.requests_other.fetch_add(1, Ordering::Relaxed);
            handle_remove(registry, model_id_of(path).expect("guard"))
        }
        ("GET", "/healthz") => {
            metrics.requests_other.fetch_add(1, Ordering::Relaxed);
            // The full snapshot a router needs for staleness-aware
            // decisions — plain `status == ok` + HTTP 200 still works
            // for old probes that ignore the rest.
            let model = registry.model();
            HttpResponse::json(
                200,
                &obj([
                    ("status", Json::from("ok")),
                    ("model", Json::from(model.id.as_str())),
                    ("model_epoch", Json::from(model.epoch)),
                    ("kind", Json::from(model.kind.as_str())),
                    ("threshold", Json::from(model.threshold)),
                    ("swaps", Json::from(registry.swap_count())),
                    ("uptime_s", Json::from(registry.uptime_s())),
                    (
                        "verdict_cache_entries",
                        Json::from(model.scanner.cache_len() as u64),
                    ),
                    (
                        "prep_cache_entries",
                        Json::from(registry.prep_cache().len() as u64),
                    ),
                ]),
            )
        }
        ("GET", "/metrics") => {
            metrics.requests_other.fetch_add(1, Ordering::Relaxed);
            let model = registry.model();
            HttpResponse::text(
                200,
                metrics.render_prometheus(&crate::metrics::ScrapeSnapshot {
                    model_id: &model.id,
                    model_epoch: model.epoch,
                    uptime_s: registry.uptime_s(),
                    verdict_cache_len: model.scanner.cache_len(),
                    prep_cache_len: registry.prep_cache().len(),
                    protocol_errors: protocol_errors.load(Ordering::Relaxed),
                    load,
                }),
            )
        }
        (_, "/scan" | "/batch" | "/models/reload") => {
            metrics.requests_other.fetch_add(1, Ordering::Relaxed);
            HttpResponse::error(405, "use POST")
        }
        (_, path) if model_id_of(path).is_some() => {
            metrics.requests_other.fetch_add(1, Ordering::Relaxed);
            HttpResponse::error(405, "use PUT or DELETE")
        }
        (_, "/models" | "/healthz" | "/metrics") => {
            metrics.requests_other.fetch_add(1, Ordering::Relaxed);
            HttpResponse::error(405, "use GET")
        }
        _ => {
            metrics.requests_other.fetch_add(1, Ordering::Relaxed);
            HttpResponse::error(404, "no such route")
        }
    }
}

/// The `<id>` of a `/models/<id>` path, `None` for `/models/reload`
/// (that is an action, not an artifact) and for paths outside the
/// models namespace. Id *validity* is the registry's call.
fn model_id_of(path: &str) -> Option<&str> {
    path.strip_prefix("/models/")
        .filter(|id| !id.is_empty() && *id != "reload")
}

fn parse_body(request: &HttpRequest) -> Result<Json, HttpResponse> {
    let text = std::str::from_utf8(&request.body)
        .map_err(|_| HttpResponse::error(400, "request body is not valid utf-8"))?;
    Json::parse(text).map_err(|e| HttpResponse::error(400, &format!("invalid JSON: {e}")))
}

fn handle_scan(registry: &ModelRegistry, metrics: &Metrics, request: &HttpRequest) -> HttpResponse {
    let body = match parse_body(request) {
        Ok(body) => body,
        Err(response) => return response,
    };
    let wire_request = match wire::parse_scan_request(&body) {
        Ok(parsed) => parsed,
        Err(message) => {
            metrics.scan_failures.fetch_add(1, Ordering::Relaxed);
            return HttpResponse::error(400, &message);
        }
    };
    // One snapshot for the whole request: the response's model/epoch
    // fields name exactly the weights that scored it.
    let model = registry.model();
    let started = Instant::now();
    let mut scan = ScanRequest::new(&wire_request.bytes);
    if let Some(platform) = wire_request.platform {
        scan = scan.on(platform);
    }
    let outcome = model.scanner.scan_request(&scan);
    metrics.record_latency_us(started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64);
    metrics.scans_total.fetch_add(1, Ordering::Relaxed);
    match outcome {
        Ok(report) => {
            if report.cache == scamdetect::CacheStatus::CacheHit {
                metrics.cache_hits.fetch_add(1, Ordering::Relaxed);
            }
            if report.is_malicious() {
                metrics.malicious_verdicts.fetch_add(1, Ordering::Relaxed);
            }
            HttpResponse::json(200, &wire::render_report(&report, &model))
        }
        Err(e) => {
            metrics.scan_failures.fetch_add(1, Ordering::Relaxed);
            HttpResponse::error(422, &format!("scan failed: {e}"))
        }
    }
}

fn handle_batch(
    registry: &ModelRegistry,
    metrics: &Metrics,
    request: &HttpRequest,
) -> HttpResponse {
    let body = match parse_body(request) {
        Ok(body) => body,
        Err(response) => return response,
    };
    let items = match body.get("requests").and_then(Json::as_array) {
        Some(items) => items,
        None => return HttpResponse::error(400, "missing 'requests' array"),
    };
    if items.len() > wire::MAX_BATCH_REQUESTS {
        return HttpResponse::error(
            413,
            &format!(
                "batch of {} exceeds the {} request cap",
                items.len(),
                wire::MAX_BATCH_REQUESTS
            ),
        );
    }

    // Decode every slot first; a malformed slot degrades to a per-slot
    // error without failing its neighbours (mirroring ScanOutcome).
    let decoded: Vec<Result<wire::WireScanRequest, String>> =
        items.iter().map(wire::parse_scan_request).collect();
    let scannable: Vec<(usize, &wire::WireScanRequest)> = decoded
        .iter()
        .enumerate()
        .filter_map(|(i, r)| r.as_ref().ok().map(|req| (i, req)))
        .collect();
    let requests: Vec<ScanRequest> = scannable
        .iter()
        .map(|(_, w)| {
            let mut scan = ScanRequest::new(&w.bytes);
            if let Some(platform) = w.platform {
                scan = scan.on(platform);
            }
            scan
        })
        .collect();

    let model = registry.model();
    let started = Instant::now();
    let outcomes = model.scanner.scan_batch(&requests);
    // The latency ring feeds the *per-scan* p50/p99 gauges; a whole
    // batch is many scans, so record its amortised per-contract cost
    // rather than one giant sample that would masquerade as a slow scan.
    if !requests.is_empty() {
        let per_contract_us =
            (started.elapsed().as_micros() / requests.len() as u128).min(u128::from(u64::MAX));
        metrics.record_latency_us(per_contract_us as u64);
    }

    let mut results: Vec<Json> = decoded
        .iter()
        .map(|slot| match slot {
            Ok(_) => Json::Null, // placeholder, filled below
            Err(message) => {
                metrics.scan_failures.fetch_add(1, Ordering::Relaxed);
                obj([("error", Json::from(message.as_str()))])
            }
        })
        .collect();
    for ((slot, _), outcome) in scannable.iter().zip(outcomes) {
        metrics.scans_total.fetch_add(1, Ordering::Relaxed);
        results[*slot] = match outcome {
            Ok(report) => {
                match report.cache {
                    scamdetect::CacheStatus::CacheHit => {
                        metrics.cache_hits.fetch_add(1, Ordering::Relaxed);
                    }
                    scamdetect::CacheStatus::BatchHit => {
                        metrics.batch_hits.fetch_add(1, Ordering::Relaxed);
                    }
                    scamdetect::CacheStatus::Miss => {}
                }
                if report.is_malicious() {
                    metrics.malicious_verdicts.fetch_add(1, Ordering::Relaxed);
                }
                wire::render_report(&report, &model)
            }
            Err(e) => {
                metrics.scan_failures.fetch_add(1, Ordering::Relaxed);
                obj([("error", Json::from(format!("scan failed: {e}")))])
            }
        };
    }
    HttpResponse::json(
        200,
        &obj([
            ("model", Json::from(model.id.as_str())),
            ("model_epoch", Json::from(model.epoch)),
            ("results", Json::Arr(results)),
        ]),
    )
}

fn handle_models(registry: &ModelRegistry) -> HttpResponse {
    match registry.list() {
        Ok(entries) => {
            let active = registry.model();
            let models: Vec<Json> = entries
                .iter()
                .map(|e| {
                    obj([
                        ("id", Json::from(e.id.as_str())),
                        ("bytes", Json::from(e.bytes)),
                        ("active", Json::from(e.active)),
                    ])
                })
                .collect();
            HttpResponse::json(
                200,
                &obj([
                    ("active", Json::from(active.id.as_str())),
                    ("kind", Json::from(active.kind.as_str())),
                    ("threshold", Json::from(active.threshold)),
                    ("model_epoch", Json::from(active.epoch)),
                    ("models", Json::Arr(models)),
                ]),
            )
        }
        Err(e) => HttpResponse::error(500, &format!("cannot list models: {e}")),
    }
}

/// Installs pushed artifact bytes as `<id>.scam`. The body is the raw
/// binary artifact; an optional `x-artifact-fnv1a` header (hex, with or
/// without `0x`) is the end-to-end checksum handshake — mismatch is a
/// 409 and nothing lands on disk.
fn handle_install(
    registry: &ModelRegistry,
    metrics: &Metrics,
    id: &str,
    request: &HttpRequest,
) -> HttpResponse {
    let expected = match request.header("x-artifact-fnv1a") {
        Some(raw) => {
            let digits = raw.strip_prefix("0x").unwrap_or(raw);
            match u64::from_str_radix(digits, 16) {
                Ok(v) => Some(v),
                Err(_) => {
                    return HttpResponse::error(
                        400,
                        "x-artifact-fnv1a must be a hex u64 (e.g. 0x1a2b3c)",
                    )
                }
            }
        }
        None => None,
    };
    if request.body.is_empty() {
        return HttpResponse::error(400, "empty body: expected ModelArtifact bytes");
    }
    match registry.install_artifact(id, &request.body, expected) {
        Ok(outcome) => {
            metrics.model_installs.fetch_add(1, Ordering::Relaxed);
            HttpResponse::json(
                200,
                &obj([
                    ("installed", Json::from(outcome.id.as_str())),
                    ("bytes", Json::from(outcome.bytes)),
                    (
                        "fnv1a",
                        Json::from(format!("{:#018x}", outcome.fingerprint)),
                    ),
                    ("replaced", Json::from(outcome.replaced)),
                ]),
            )
        }
        Err(e @ ServeError::ChecksumMismatch { .. }) => HttpResponse::error(409, &e.to_string()),
        Err(e @ ServeError::InvalidModelId { .. }) => HttpResponse::error(400, &e.to_string()),
        Err(e @ ServeError::Artifact(_)) => {
            HttpResponse::error(422, &format!("artifact rejected: {e}"))
        }
        Err(e) => HttpResponse::error(500, &e.to_string()),
    }
}

fn handle_remove(registry: &ModelRegistry, id: &str) -> HttpResponse {
    match registry.remove_artifact(id) {
        Ok(()) => HttpResponse::json(200, &obj([("deleted", Json::from(id))])),
        Err(e @ ServeError::ActiveModel { .. }) => HttpResponse::error(409, &e.to_string()),
        Err(e @ ServeError::UnknownModel { .. }) => HttpResponse::error(404, &e.to_string()),
        Err(e @ ServeError::InvalidModelId { .. }) => HttpResponse::error(400, &e.to_string()),
        Err(e) => HttpResponse::error(500, &e.to_string()),
    }
}

/// `POST /models/reload`: empty body re-resolves the directory (pin or
/// sort order); a `{"model": "<id>"}` body is a one-shot pin to exactly
/// that artifact — the canary/rollback primitive.
fn handle_reload(
    registry: &ModelRegistry,
    metrics: &Metrics,
    request: &HttpRequest,
) -> HttpResponse {
    let pin: Option<String> = if request.body.is_empty() {
        None
    } else {
        let body = match parse_body(request) {
            Ok(body) => body,
            Err(response) => return response,
        };
        match body.get("model") {
            Some(Json::Str(id)) => Some(id.clone()),
            Some(_) => return HttpResponse::error(400, "'model' must be a string"),
            None => None,
        }
    };
    match registry.reload_with(pin.as_deref()) {
        Ok(outcome) => {
            if outcome.swapped {
                metrics.model_swaps.fetch_add(1, Ordering::Relaxed);
            }
            HttpResponse::json(
                200,
                &obj([
                    ("swapped", Json::from(outcome.swapped)),
                    ("active", Json::from(outcome.active.as_str())),
                    ("model_epoch", Json::from(outcome.epoch)),
                ]),
            )
        }
        // The old model keeps serving on a failed reload; 409 tells the
        // operator the swap did not happen without killing traffic.
        Err(e) => HttpResponse::error(409, &format!("reload failed (still serving): {e}")),
    }
}
