//! A minimal blocking HTTP/1.1 client over [`std::net::TcpStream`] —
//! just enough to drive the daemon from the load-generator bench, the
//! integration tests, smoke checks and the fleet router. Keep-alive by
//! default: one [`HttpClient`] holds one connection and pipelines
//! sequential request/response pairs over it.
//!
//! # Retry semantics
//!
//! A keep-alive peer may close the connection between our requests (its
//! per-connection request cap, an idle timeout, a drain) — and a
//! replica that is restarting refuses connections for a moment. Neither
//! should surface as a user-visible error for an idempotent request, so
//! [`HttpClient::request`] retries **exactly once** on
//! `ConnectionRefused` / `UnexpectedEof` (and their keep-alive cousins
//! `ConnectionReset` / `BrokenPipe`) after a short jittered backoff,
//! over a *fresh* connection. The retry only happens when no byte of a
//! response was consumed, so a half-read reply can never be mistaken
//! for a fresh one — but "no response byte arrived" does **not** prove
//! the request wasn't processed (the peer may have acted and died
//! before answering). Resending is therefore gated on the caller's
//! `retry_safe` claim: scans are pure and reload/install converge, so
//! the default is to retry, but a caller for whom double-delivery is
//! unacceptable (the fleet's artifact push) passes `retry_safe = false`
//! via [`HttpClient::request_raw_opts`] and handles the ambiguity
//! itself.

use std::io::{BufRead, BufReader, ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Base of the jittered pre-retry backoff; the jitter adds up to the
/// same amount again so racing clients do not reconnect in lockstep.
const RETRY_BACKOFF_BASE: Duration = Duration::from_millis(5);

/// One response: status code, headers and body.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Response headers, names lowercased, in wire order.
    pub headers: Vec<(String, String)>,
    /// Response body (UTF-8; the daemon only serves text/JSON).
    pub body: String,
}

impl ClientResponse {
    /// First header with `name` (case-insensitive), if present — how
    /// callers read `x-trace-id` off a traced response.
    pub fn header(&self, name: &str) -> Option<&str> {
        let wanted = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == wanted)
            .map(|(_, v)| v.as_str())
    }
}

/// A keep-alive connection to one daemon (reconnecting: see the module
/// docs for the one-shot retry semantics).
pub struct HttpClient {
    addr: SocketAddr,
    timeout: Duration,
    conn: Option<Conn>,
}

struct Conn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl HttpClient {
    /// Connects with a read/write timeout suited to loopback testing.
    ///
    /// # Errors
    ///
    /// Connection failures.
    pub fn connect(addr: SocketAddr) -> std::io::Result<HttpClient> {
        Self::connect_with_timeout(addr, Duration::from_secs(10))
    }

    /// [`HttpClient::connect`] with an explicit timeout.
    ///
    /// # Errors
    ///
    /// Connection failures.
    pub fn connect_with_timeout(
        addr: SocketAddr,
        timeout: Duration,
    ) -> std::io::Result<HttpClient> {
        Ok(HttpClient {
            addr,
            timeout,
            conn: Some(open_conn(addr, timeout)?),
        })
    }

    /// The address this client talks to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Re-arms the read/write/connect timeout, applying it to the live
    /// connection too. The fleet router uses this to shrink a pooled
    /// connection's I/O deadline to a request's remaining budget.
    pub fn set_io_timeout(&mut self, timeout: Duration) {
        self.timeout = timeout;
        if let Some(conn) = &self.conn {
            let stream = conn.reader.get_ref();
            if stream.set_read_timeout(Some(timeout)).is_err()
                || conn.writer.set_write_timeout(Some(timeout)).is_err()
            {
                // A socket that rejects timeout changes cannot honor the
                // deadline; drop it and reconnect lazily.
                self.conn = None;
            }
        }
    }

    /// Sends one request and reads the full response (keep-alive: the
    /// connection stays usable for the next call). Retries once over a
    /// fresh connection on `ConnectionRefused`/`UnexpectedEof`-class
    /// failures — see the module docs.
    ///
    /// # Errors
    ///
    /// I/O failures (after the one retry) and malformed responses.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> std::io::Result<ClientResponse> {
        self.request_raw(method, path, body.unwrap_or("").as_bytes(), &[])
    }

    /// [`HttpClient::request`] with a binary body and extra headers —
    /// the artifact-push path (`PUT /models/<id>` carries raw
    /// `ModelArtifact` bytes plus the FNV-1a handshake header).
    ///
    /// # Errors
    ///
    /// Same failure modes as [`HttpClient::request`].
    pub fn request_raw(
        &mut self,
        method: &str,
        path: &str,
        body: &[u8],
        extra_headers: &[(&str, &str)],
    ) -> std::io::Result<ClientResponse> {
        self.request_raw_opts(method, path, body, extra_headers, true)
    }

    /// [`HttpClient::request_raw`] with the resend decision exposed:
    /// `retry_safe = false` turns the one-shot retry off, for requests
    /// where a duplicate delivery is worse than a reported failure
    /// (non-idempotent writes like the fleet's artifact push).
    ///
    /// # Errors
    ///
    /// Same failure modes as [`HttpClient::request`]; with
    /// `retry_safe = false`, transport failures surface immediately.
    pub fn request_raw_opts(
        &mut self,
        method: &str,
        path: &str,
        body: &[u8],
        extra_headers: &[(&str, &str)],
        retry_safe: bool,
    ) -> std::io::Result<ClientResponse> {
        match self.try_once(method, path, body, extra_headers) {
            Ok(response) => Ok(response),
            Err(e) if retry_safe && is_retryable(&e) => {
                // The connection died before any response byte arrived:
                // back off briefly (jittered so a fleet of clients does
                // not stampede a restarting replica), reconnect, resend.
                self.conn = None;
                std::thread::sleep(jittered_backoff(self.addr));
                self.try_once(method, path, body, extra_headers)
            }
            Err(e) => Err(e),
        }
    }

    fn try_once(
        &mut self,
        method: &str,
        path: &str,
        body: &[u8],
        extra_headers: &[(&str, &str)],
    ) -> std::io::Result<ClientResponse> {
        if self.conn.is_none() {
            self.conn = Some(open_conn(self.addr, self.timeout)?);
        }
        let conn = self.conn.as_mut().expect("connection just ensured");
        let result = round_trip(conn, method, path, body, extra_headers);
        if result.is_err() {
            // Whatever state the connection is in, it is not trustworthy
            // for another request.
            self.conn = None;
        }
        result
    }
}

fn open_conn(addr: SocketAddr, timeout: Duration) -> std::io::Result<Conn> {
    let stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    stream.set_nodelay(true)?;
    let writer = stream.try_clone()?;
    Ok(Conn {
        reader: BufReader::new(stream),
        writer,
    })
}

/// Failures worth one resend over a fresh connection: the peer was
/// down/restarting (`ConnectionRefused`) or closed a keep-alive
/// connection before answering (`UnexpectedEof` from an empty read,
/// `ConnectionReset`/`BrokenPipe` from racing the close).
fn is_retryable(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        ErrorKind::ConnectionRefused
            | ErrorKind::UnexpectedEof
            | ErrorKind::ConnectionReset
            | ErrorKind::BrokenPipe
    )
}

/// Deterministic-enough jitter without a RNG dependency: the clock's
/// sub-millisecond bits, folded with the target address so distinct
/// clients spread out even when started in the same instant.
fn jittered_backoff(addr: SocketAddr) -> Duration {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.subsec_nanos() as u64);
    let salt = u64::from(addr.port());
    let jitter_ms = (nanos ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        % (RETRY_BACKOFF_BASE.as_millis() as u64 + 1);
    RETRY_BACKOFF_BASE + Duration::from_millis(jitter_ms)
}

fn round_trip(
    conn: &mut Conn,
    method: &str,
    path: &str,
    body: &[u8],
    extra_headers: &[(&str, &str)],
) -> std::io::Result<ClientResponse> {
    use std::fmt::Write as _;
    let mut head = format!(
        "{method} {path} HTTP/1.1\r\nHost: scamdetect\r\nContent-Length: {}\r\n",
        body.len()
    );
    for (name, value) in extra_headers {
        let _ = write!(head, "{name}: {value}\r\n");
    }
    head.push_str("\r\n");
    conn.writer.write_all(head.as_bytes())?;
    conn.writer.write_all(body)?;
    conn.writer.flush()?;

    let bad = |what: &str| std::io::Error::new(ErrorKind::InvalidData, what.to_string());
    let mut status_line = String::new();
    if conn.reader.read_line(&mut status_line)? == 0 {
        // The peer closed the keep-alive connection before answering —
        // the classic stale-connection race, reported as UnexpectedEof
        // so the caller's retry path can distinguish it from a
        // malformed-but-live response.
        return Err(std::io::Error::new(
            ErrorKind::UnexpectedEof,
            "connection closed before the status line",
        ));
    }
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("malformed status line"))?;
    let mut content_length = 0usize;
    let mut headers: Vec<(String, String)> = Vec::new();
    loop {
        let mut line = String::new();
        if conn.reader.read_line(&mut line)? == 0 {
            return Err(std::io::Error::new(
                ErrorKind::InvalidData,
                "connection closed mid-headers",
            ));
        }
        if line == "\r\n" {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim().to_string();
            if name == "content-length" {
                content_length = value.parse().map_err(|_| bad("invalid content-length"))?;
            }
            headers.push((name, value));
        }
    }
    let mut body = vec![0u8; content_length];
    conn.reader.read_exact(&mut body)?;
    Ok(ClientResponse {
        status,
        headers,
        body: String::from_utf8(body).map_err(|_| bad("non-utf8 body"))?,
    })
}

/// One-shot convenience: fresh connection, one request, done.
///
/// # Errors
///
/// Same failure modes as [`HttpClient::request`].
pub fn http_call(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> std::io::Result<ClientResponse> {
    HttpClient::connect(addr)?.request(method, path, body)
}

/// [`http_call`] with an explicit connect/read timeout — the fleet's
/// health prober needs a much shorter deadline than the 10s test
/// default.
///
/// # Errors
///
/// Same failure modes as [`HttpClient::request`].
pub fn http_call_with_timeout(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
    timeout: Duration,
) -> std::io::Result<ClientResponse> {
    HttpClient::connect_with_timeout(addr, timeout)?.request(method, path, body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::{HttpConfig, HttpRequest, HttpResponse, HttpServer};
    use std::sync::Arc;

    /// A tiny echo server whose connections die after ONE request — the
    /// worst-case keep-alive peer. The client's stale-connection retry
    /// must make sequential requests over one `HttpClient` succeed
    /// anyway.
    #[test]
    fn stale_keep_alive_connection_is_retried_once_transparently() {
        let server = HttpServer::bind(HttpConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 1,
            max_requests_per_conn: 1,
            read_timeout: Duration::from_millis(300),
            ..HttpConfig::default()
        })
        .expect("binds");
        let addr = server.local_addr();
        let handle = server.shutdown_handle();
        let join = std::thread::spawn(move || {
            server.serve(Arc::new(|req: &HttpRequest| {
                HttpResponse::text(200, format!("len={}", req.body.len()))
            }))
        });

        let mut client = HttpClient::connect(addr).expect("connects");
        for i in 0..4usize {
            // Request 1 closes the connection (cap = 1); request 2 hits
            // the stale socket, gets the UnexpectedEof/BrokenPipe class,
            // reconnects and succeeds. And so on.
            let reply = client
                .request("POST", "/echo", Some(&"x".repeat(i)))
                .unwrap_or_else(|e| panic!("request {i} failed: {e}"));
            assert_eq!(reply.status, 200);
            assert_eq!(reply.body, format!("len={i}"));
        }
        handle.shutdown();
        let stats = join.join().expect("joins");
        assert_eq!(stats.requests, 4);
        assert!(stats.connections >= 4, "each request used a fresh conn");
    }

    /// With `retry_safe = false` the stale-connection class surfaces as
    /// an error instead of a transparent resend — the guarantee the
    /// fleet's artifact push relies on to never double-send.
    #[test]
    fn non_retry_safe_request_surfaces_stale_connection_instead_of_resending() {
        let server = HttpServer::bind(HttpConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 1,
            max_requests_per_conn: 1,
            read_timeout: Duration::from_millis(300),
            ..HttpConfig::default()
        })
        .expect("binds");
        let addr = server.local_addr();
        let handle = server.shutdown_handle();
        let join = std::thread::spawn(move || {
            server.serve(Arc::new(|_req: &HttpRequest| HttpResponse::text(200, "ok")))
        });

        let mut client = HttpClient::connect(addr).expect("connects");
        let first = client
            .request_raw_opts("PUT", "/models/x", b"artifact", &[], false)
            .expect("first request on a fresh connection succeeds");
        assert_eq!(first.status, 200);
        // The server closed after request 1 (cap = 1). The second
        // attempt hits the stale socket and MUST error rather than
        // silently resend over a fresh connection.
        let second = client.request_raw_opts("PUT", "/models/x", b"artifact", &[], false);
        assert!(
            second.is_err(),
            "a non-retry-safe request must not transparently resend: {second:?}"
        );
        // The client recovers on the next call (fresh connection).
        let third = client
            .request_raw_opts("PUT", "/models/x", b"artifact", &[], false)
            .expect("fresh connection after the surfaced error");
        assert_eq!(third.status, 200);

        handle.shutdown();
        let stats = join.join().expect("joins");
        assert_eq!(stats.requests, 2, "exactly two PUTs reached the server");
    }

    /// A dead address stays an error: the retry is one reconnect, not a
    /// loop.
    #[test]
    fn refused_connection_errors_after_one_retry() {
        // Bind-then-drop: the port is real but nothing listens.
        let addr = {
            let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("binds");
            listener.local_addr().expect("addr")
        };
        let started = std::time::Instant::now();
        let result = http_call_with_timeout(addr, "GET", "/healthz", None, Duration::from_secs(2));
        assert!(result.is_err(), "nothing listens there");
        assert!(
            started.elapsed() < Duration::from_secs(2),
            "a refused connection must fail fast, not spin"
        );
    }
}
