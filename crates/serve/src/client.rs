//! A minimal blocking HTTP/1.1 client over [`std::net::TcpStream`] —
//! just enough to drive the daemon from the load-generator bench, the
//! integration tests and smoke checks. Keep-alive by default: one
//! [`HttpClient`] holds one connection and pipelines sequential
//! request/response pairs over it.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// One response: status code and body.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Response body (UTF-8; the daemon only serves text/JSON).
    pub body: String,
}

/// A keep-alive connection to one daemon.
pub struct HttpClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl HttpClient {
    /// Connects with a read/write timeout suited to loopback testing.
    ///
    /// # Errors
    ///
    /// Connection failures.
    pub fn connect(addr: SocketAddr) -> std::io::Result<HttpClient> {
        Self::connect_with_timeout(addr, Duration::from_secs(10))
    }

    /// [`HttpClient::connect`] with an explicit timeout.
    ///
    /// # Errors
    ///
    /// Connection failures.
    pub fn connect_with_timeout(
        addr: SocketAddr,
        timeout: Duration,
    ) -> std::io::Result<HttpClient> {
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(HttpClient {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Sends one request and reads the full response (keep-alive: the
    /// connection stays usable for the next call).
    ///
    /// # Errors
    ///
    /// I/O failures and malformed responses.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> std::io::Result<ClientResponse> {
        let body = body.unwrap_or("");
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: scamdetect\r\nContent-Length: {}\r\n\r\n",
            body.len()
        );
        self.writer.write_all(head.as_bytes())?;
        self.writer.write_all(body.as_bytes())?;
        self.writer.flush()?;

        let bad =
            |what: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, what.to_string());
        let mut status_line = String::new();
        self.reader.read_line(&mut status_line)?;
        let status: u16 = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad("malformed status line"))?;
        let mut content_length = 0usize;
        loop {
            let mut line = String::new();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(bad("connection closed mid-headers"));
            }
            if line == "\r\n" {
                break;
            }
            if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
                content_length = v
                    .trim()
                    .parse()
                    .map_err(|_| bad("invalid content-length"))?;
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body)?;
        Ok(ClientResponse {
            status,
            body: String::from_utf8(body).map_err(|_| bad("non-utf8 body"))?,
        })
    }
}

/// One-shot convenience: fresh connection, one request, done.
///
/// # Errors
///
/// Same failure modes as [`HttpClient::request`].
pub fn http_call(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> std::io::Result<ClientResponse> {
    HttpClient::connect(addr)?.request(method, path, body)
}
