//! Daemon metrics: lock-free counters plus log-linear latency
//! histograms, rendered in the Prometheus text exposition format.
//!
//! Everything on the hot path is a relaxed atomic op. Latency lives in
//! [`LatencyHistogram`]s — HDR-style log-linear buckets (two linear
//! sub-buckets per power-of-two octave, 1µs to ~100s) — so `/metrics`
//! exposes real `_bucket`/`_sum`/`_count` series per endpoint and, via
//! the trace hub, per pipeline stage. The p50/p99 gauges of earlier
//! releases remain, now interpolated from the buckets instead of
//! sorted from a sample ring; the slowest sample of each histogram
//! carries its trace id as an exemplar series so a latency spike links
//! straight to a captured span timeline.

use crate::http::{LoadGauge, TraceHub};
use crate::lifecycle::{DriftTelemetry, DriftWindow};
use scamdetect::trace::TraceId;
use scamdetect_ir::Platform;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Number of finite histogram bucket bounds (the overflow bucket —
/// Prometheus `+Inf` — is stored separately).
pub const HIST_BOUNDS_LEN: usize = 53;

/// Upper bounds (µs, inclusive) of the log-linear latency histogram:
/// two linear sub-buckets per power-of-two octave, so every bucket is
/// at most 33% wider than its lower edge. Spans 1µs .. ~100s; samples
/// above the last bound land in the overflow (`+Inf`) bucket.
pub const HIST_BOUNDS: [u64; HIST_BOUNDS_LEN] = hist_bounds();

const fn hist_bounds() -> [u64; HIST_BOUNDS_LEN] {
    // 1, then per octave k >= 1 the pair (2^k, 3 * 2^(k-1)):
    // 1, 2, 3, 4, 6, 8, 12, 16, 24, ... 67_108_864, 100_663_296.
    let mut bounds = [0u64; HIST_BOUNDS_LEN];
    bounds[0] = 1;
    let mut i = 1;
    let mut k = 1u32;
    while i < HIST_BOUNDS_LEN {
        bounds[i] = 1u64 << k;
        if i + 1 < HIST_BOUNDS_LEN {
            bounds[i + 1] = 3u64 << (k - 1);
        }
        i += 2;
        k += 1;
    }
    bounds
}

/// Index of the finite bucket whose bound is the smallest `>= us`, or
/// `HIST_BOUNDS_LEN` for the overflow bucket. O(1): the octave comes
/// from the leading-zero count, the sub-bucket from one compare.
fn bucket_index(us: u64) -> usize {
    if us <= 1 {
        return 0;
    }
    let k = (63 - us.leading_zeros()) as usize; // floor(log2(us)), >= 1
    let idx = if us == 1u64 << k {
        2 * k - 1
    } else if us <= 3u64 << (k - 1) {
        2 * k
    } else {
        2 * k + 1
    };
    idx.min(HIST_BOUNDS_LEN)
}

/// A fixed-footprint log-linear latency histogram (HDR-style): lock
/// free, allocation free, every recording path three relaxed atomic
/// adds plus a `fetch_max`. Percentiles are interpolated from the
/// buckets at read time and clamped to the observed maximum, so a
/// lone sample reads back exactly and bulk traffic reads back within
/// one sub-bucket (≤ 33% relative error by construction).
///
/// The slowest sample's trace id is retained alongside the maximum —
/// the exemplar that links a histogram tail to a span timeline.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; HIST_BOUNDS_LEN + 1], // last = overflow (+Inf)
    sum: AtomicU64,
    count: AtomicU64,
    max: AtomicU64,
    /// TraceId bits of the slowest sample; 0 = none recorded.
    max_trace: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: [const { AtomicU64::new(0) }; HIST_BOUNDS_LEN + 1],
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
            max: AtomicU64::new(0),
            max_trace: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram::default()
    }

    /// Records one latency sample (microseconds). A real 0µs sample is
    /// recorded as 0µs: occupancy is the bucket count, so no sentinel
    /// value exists for zero to collide with.
    pub fn record(&self, us: u64) {
        self.record_with_trace(us, None);
    }

    /// Records one sample and, when it becomes the new maximum, retains
    /// `trace` as the exemplar for the histogram's tail.
    pub fn record_with_trace(&self, us: u64, trace: Option<TraceId>) {
        self.buckets[bucket_index(us)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(us, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let prev = self.max.fetch_max(us, Ordering::Relaxed);
        if us >= prev {
            if let Some(id) = trace {
                // Benign race: two concurrent maxima may interleave the
                // two stores; either exemplar is a real slow trace.
                self.max_trace.store(id.as_u64(), Ordering::Relaxed);
            }
        }
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples, microseconds.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest sample seen, microseconds (0 before any sample).
    pub fn max_us(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// `(max_us, trace_id)` of the slowest traced sample, when the
    /// current maximum arrived with a trace id attached.
    pub fn exemplar(&self) -> Option<(u64, TraceId)> {
        let id = TraceId::from_raw(self.max_trace.load(Ordering::Relaxed))?;
        Some((self.max_us(), id))
    }

    /// The `q`-quantile (`0.0 ..= 1.0`), microseconds, interpolated
    /// linearly within the containing bucket and clamped to the
    /// observed maximum; 0 before any sample arrives.
    pub fn percentile(&self, q: f64) -> u64 {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let max = self.max_us();
        let rank = ((total as f64 * q).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, &n) in counts.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if seen + n >= rank {
                let lower = if i == 0 { 0 } else { HIST_BOUNDS[i - 1] };
                let upper = if i < HIST_BOUNDS_LEN {
                    HIST_BOUNDS[i].min(max.max(lower))
                } else {
                    max
                };
                let within = (rank - seen) as f64 / n as f64;
                let value = lower as f64 + within * (upper.saturating_sub(lower)) as f64;
                return (value.round() as u64).min(max);
            }
            seen += n;
        }
        max
    }

    /// Cumulative `(le_bound, count)` pairs over the finite bounds,
    /// trimmed after the last occupied bucket; the caller appends the
    /// `+Inf` line from [`LatencyHistogram::count`]. Trimming keeps a
    /// cold histogram from costing 54 scrape lines.
    fn cumulative_trimmed(&self) -> Vec<(u64, u64)> {
        let counts: Vec<u64> = self.buckets[..HIST_BOUNDS_LEN]
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let keep = match counts.iter().rposition(|&n| n > 0) {
            Some(i) => i + 1,
            None => 0,
        };
        let mut cum = 0u64;
        HIST_BOUNDS[..keep]
            .iter()
            .zip(counts)
            .map(|(&bound, n)| {
                cum += n;
                (bound, cum)
            })
            .collect()
    }
}

/// Writes one Prometheus histogram series (`_bucket`/`_sum`/`_count`)
/// for `hist` under `name{labels}`. `labels` is either empty or a
/// comma-joined `key="value"` list without braces. The caller emits
/// the family's `# HELP`/`# TYPE histogram` header once.
pub(crate) fn write_histogram_series(
    out: &mut String,
    name: &str,
    labels: &str,
    hist: &LatencyHistogram,
) {
    use std::fmt::Write as _;
    let sep = if labels.is_empty() { "" } else { "," };
    for (bound, cum) in hist.cumulative_trimmed() {
        let _ = writeln!(out, "{name}_bucket{{{labels}{sep}le=\"{bound}\"}} {cum}");
    }
    let _ = writeln!(
        out,
        "{name}_bucket{{{labels}{sep}le=\"+Inf\"}} {}",
        hist.count()
    );
    let brace = if labels.is_empty() {
        String::new()
    } else {
        format!("{{{labels}}}")
    };
    let _ = writeln!(out, "{name}_sum{brace} {}", hist.sum());
    let _ = writeln!(out, "{name}_count{brace} {}", hist.count());
}

/// Name + help text of one exported metric — the registration record.
#[derive(Debug, Clone, Copy)]
pub struct MetricDef {
    /// Prometheus metric name.
    pub name: &'static str,
    /// `# HELP` text.
    pub help: &'static str,
}

/// The single registration point for the lifecycle counter family.
///
/// Everything that renders or aggregates these counters iterates this
/// table — the daemon's `/metrics` (on both transports, which share one
/// `render_prometheus`) and the fleet router's cross-replica aggregation
/// — so a counter added here appears everywhere at once and a name can
/// never drift between the exporter and the aggregator. Indexed by
/// [`LifecycleCounter`]; the unit tests pin the two in sync.
///
/// Counters only: these names are scraped back by the fleet router's
/// bare-name metric parser, so the family must stay label-free.
pub const LIFECYCLE_COUNTERS: &[MetricDef] = &[
    MetricDef {
        name: "scamdetect_feedback_total",
        help: "verdict corrections accepted through POST /feedback",
    },
    MetricDef {
        name: "scamdetect_feedback_disagreements_total",
        help: "accepted corrections that contradicted the served verdict",
    },
    MetricDef {
        name: "scamdetect_shadow_samples_total",
        help: "scans mirrored to a shadow candidate (all shadow sessions)",
    },
    MetricDef {
        name: "scamdetect_shadow_agreements_total",
        help: "mirrored scans where champion and candidate verdicts agreed",
    },
    MetricDef {
        name: "scamdetect_shadow_disagreements_total",
        help: "mirrored scans where the candidate contradicted the champion (or failed)",
    },
    MetricDef {
        name: "scamdetect_shadow_dropped_total",
        help: "scans not mirrored because the shadow queue was full",
    },
];

/// Index into [`LIFECYCLE_COUNTERS`] / [`LifecycleCounters`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LifecycleCounter {
    /// Corrections accepted through `POST /feedback`.
    Feedback = 0,
    /// Accepted corrections contradicting the served verdict.
    FeedbackDisagreements = 1,
    /// Scans mirrored to a shadow candidate.
    ShadowSamples = 2,
    /// Mirrored scans with agreeing verdicts.
    ShadowAgreements = 3,
    /// Mirrored scans where the candidate disagreed or failed.
    ShadowDisagreements = 4,
    /// Scans dropped at a full shadow queue.
    ShadowDropped = 5,
}

/// Values behind [`LIFECYCLE_COUNTERS`], one relaxed atomic per entry.
///
/// Lives behind an `Arc` on [`Metrics`] because the shadow-scoring
/// worker thread increments it off the response path.
#[derive(Debug, Default)]
pub struct LifecycleCounters {
    values: [AtomicU64; LIFECYCLE_COUNTERS.len()],
}

impl LifecycleCounters {
    /// Adds 1 to one counter.
    pub fn incr(&self, which: LifecycleCounter) {
        self.values[which as usize].fetch_add(1, Ordering::Relaxed);
    }

    /// Reads one counter.
    pub fn get(&self, which: LifecycleCounter) -> u64 {
        self.values[which as usize].load(Ordering::Relaxed)
    }

    /// Reads every counter, positionally aligned with
    /// [`LIFECYCLE_COUNTERS`].
    pub fn snapshot(&self) -> [u64; LIFECYCLE_COUNTERS.len()] {
        let mut out = [0u64; LIFECYCLE_COUNTERS.len()];
        for (slot, v) in out.iter_mut().zip(self.values.iter()) {
            *slot = v.load(Ordering::Relaxed);
        }
        out
    }
}

/// Scrape-time view of the active shadow-scoring session, if any.
///
/// Session-scoped (reset on `shadow start`), unlike the cumulative
/// [`LifecycleCounters`]; promotion thresholds judge the session, the
/// counters record the lifetime.
#[derive(Debug, Clone, Copy)]
pub struct ShadowScrape<'a> {
    /// Candidate model id.
    pub candidate: &'a str,
    /// Registry epoch at candidate load (informational; the real epoch
    /// is minted at promotion).
    pub candidate_epoch: u64,
    /// Mirrored scans scored by the candidate this session.
    pub samples: u64,
    /// Samples where both models agreed.
    pub agreements: u64,
    /// Samples where the candidate disagreed (failures included).
    pub disagreements: u64,
    /// Candidate scans that errored.
    pub failures: u64,
    /// Scans dropped at a full queue this session.
    pub dropped: u64,
    /// Sum of signed per-sample latency deltas (candidate − champion),
    /// microseconds.
    pub latency_delta_us: i64,
}

/// Point-in-time state gathered by the `/metrics` route handler for
/// one scrape: the identity of the served model, daemon uptime, live
/// cache sizes, the HTTP layer's below-route rejection count (bad
/// request lines, 431/413/411/408), the live admission-gate gauge
/// (queue depth, in-flight, shed count), and — when the serving layer
/// runs with tracing enabled — the trace hub whose per-stage
/// histograms and ring counters the scrape renders.
#[derive(Debug, Clone, Copy)]
pub struct ScrapeSnapshot<'a> {
    /// Id of the model currently serving.
    pub model_id: &'a str,
    /// Monotonic epoch of the served model (bumps on every swap).
    pub model_epoch: u64,
    /// Seconds since the daemon started.
    pub uptime_s: u64,
    /// Entries in the serving scanner's verdict cache.
    pub verdict_cache_len: usize,
    /// Entries in the shared prepared-input cache.
    pub prep_cache_len: usize,
    /// Requests rejected below the route layer.
    pub protocol_errors: u64,
    /// Live server load (queue depth, in-flight, shed count).
    pub load: &'a LoadGauge,
    /// The active shadow-scoring session, when one is running.
    pub shadow: Option<ShadowScrape<'a>>,
    /// Whole records in the feedback log; `None` when ingestion is off.
    pub feedback_log_records: Option<u64>,
    /// The serving layer's trace hub (stage histograms, sampling
    /// config, ring occupancy); `None` on scrapes without one.
    pub trace: Option<&'a TraceHub>,
}

/// Counters and latency histograms for one daemon lifetime.
pub struct Metrics {
    /// Requests answered, by coarse endpoint family.
    pub requests_scan: AtomicU64,
    /// `/batch` requests (the *contracts* inside count into
    /// `scans_total` / cache counters like single scans).
    pub requests_batch: AtomicU64,
    /// Every other endpoint (`/healthz`, `/metrics`, `/models`, …).
    pub requests_other: AtomicU64,
    /// Responses with status >= 400.
    pub errors: AtomicU64,
    /// Contracts scored (cache hits included).
    pub scans_total: AtomicU64,
    /// Scans served from the verdict cache (cross-request).
    pub cache_hits: AtomicU64,
    /// Scans deduplicated inside one `/batch` request.
    pub batch_hits: AtomicU64,
    /// Scans that flagged the contract malicious.
    pub malicious_verdicts: AtomicU64,
    /// Scan requests that failed: undecodable `bytecode` fields as well
    /// as decoded-but-unliftable contracts.
    pub scan_failures: AtomicU64,
    /// Completed hot model swaps.
    pub model_swaps: AtomicU64,
    /// Artifacts accepted through `PUT /models/<id>`.
    pub model_installs: AtomicU64,
    /// Lifecycle counter family (see [`LIFECYCLE_COUNTERS`]). Shared
    /// with the shadow-scoring worker thread.
    pub lifecycle: Arc<LifecycleCounters>,
    /// Streaming drift telemetry (score histograms, cache decay).
    pub drift: DriftTelemetry,
    /// `/scan` handler latency.
    pub scan_latency: LatencyHistogram,
    /// `/batch` handler latency (whole request, not per contract).
    pub batch_latency: LatencyHistogram,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics {
            requests_scan: AtomicU64::new(0),
            requests_batch: AtomicU64::new(0),
            requests_other: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            scans_total: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            batch_hits: AtomicU64::new(0),
            malicious_verdicts: AtomicU64::new(0),
            scan_failures: AtomicU64::new(0),
            model_swaps: AtomicU64::new(0),
            model_installs: AtomicU64::new(0),
            lifecycle: Arc::new(LifecycleCounters::default()),
            drift: DriftTelemetry::default(),
            scan_latency: LatencyHistogram::new(),
            batch_latency: LatencyHistogram::new(),
        }
    }
}

impl Metrics {
    /// Records one scan latency sample (microseconds). Zero is a real
    /// value here: sub-microsecond cache hits count as 0µs instead of
    /// being rounded up to dodge a sentinel, because histogram
    /// occupancy — not a magic value — marks a bucket live.
    pub fn record_latency_us(&self, micros: u64) {
        self.scan_latency.record(micros);
    }

    /// `(p50, p99)` over the scan-latency histogram, microseconds,
    /// bucket-interpolated; zeros before any sample arrives.
    pub fn latency_percentiles_us(&self) -> (u64, u64) {
        (
            self.scan_latency.percentile(0.50),
            self.scan_latency.percentile(0.99),
        )
    }

    /// Verdict-cache hit ratio over everything scanned so far (batch
    /// dedup hits count as hits: the work was skipped either way).
    pub fn cache_hit_ratio(&self) -> f64 {
        let total = self.scans_total.load(Ordering::Relaxed);
        if total == 0 {
            return 0.0;
        }
        let hits =
            self.cache_hits.load(Ordering::Relaxed) + self.batch_hits.load(Ordering::Relaxed);
        hits as f64 / total as f64
    }

    /// Renders the Prometheus text exposition format over `snap`, the
    /// scrape-time state gathered by the `/metrics` route handler.
    pub fn render_prometheus(&self, snap: &ScrapeSnapshot<'_>) -> String {
        let ScrapeSnapshot {
            model_id,
            model_epoch,
            uptime_s,
            verdict_cache_len,
            prep_cache_len,
            protocol_errors,
            load,
            shadow,
            feedback_log_records,
            trace,
        } = *snap;
        use std::fmt::Write as _;
        // A full scrape with drift histograms, two endpoint latency
        // histograms and the stage family runs ~10–14 KiB; one power
        // of two above that means a scrape almost never reallocates.
        let mut out = String::with_capacity(16 * 1024);
        let mut counter = |name: &str, help: &str, value: u64| {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {value}");
        };
        counter(
            "scamdetect_requests_total",
            "HTTP requests answered (scan endpoint)",
            self.requests_scan.load(Ordering::Relaxed),
        );
        counter(
            "scamdetect_batch_requests_total",
            "HTTP requests answered (batch endpoint)",
            self.requests_batch.load(Ordering::Relaxed),
        );
        counter(
            "scamdetect_other_requests_total",
            "HTTP requests answered (all other endpoints)",
            self.requests_other.load(Ordering::Relaxed),
        );
        counter(
            "scamdetect_errors_total",
            "route-handler responses with status >= 400",
            self.errors.load(Ordering::Relaxed),
        );
        counter(
            "scamdetect_protocol_errors_total",
            "requests rejected below the route layer (bad request line, 431/413/411/408)",
            protocol_errors,
        );
        counter(
            "scamdetect_scans_total",
            "contracts scored, cache hits included",
            self.scans_total.load(Ordering::Relaxed),
        );
        counter(
            "scamdetect_cache_hits_total",
            "scans served from the cross-request verdict cache",
            self.cache_hits.load(Ordering::Relaxed),
        );
        counter(
            "scamdetect_batch_dedup_hits_total",
            "scans deduplicated within one batch request",
            self.batch_hits.load(Ordering::Relaxed),
        );
        counter(
            "scamdetect_malicious_verdicts_total",
            "scans that flagged the contract",
            self.malicious_verdicts.load(Ordering::Relaxed),
        );
        counter(
            "scamdetect_scan_failures_total",
            "scan requests that failed (undecodable or unliftable bytecode)",
            self.scan_failures.load(Ordering::Relaxed),
        );
        counter(
            "scamdetect_model_swaps_total",
            "completed hot model swaps",
            self.model_swaps.load(Ordering::Relaxed),
        );
        counter(
            "scamdetect_model_installs_total",
            "artifacts accepted through PUT /models/<id>",
            self.model_installs.load(Ordering::Relaxed),
        );
        counter(
            "scamdetect_requests_shed_total",
            "connections answered 429 at the admission gate",
            load.shed_total.load(Ordering::Relaxed),
        );
        // The lifecycle family renders straight off its registration
        // table — adding a counter there adds it here, to the epoll
        // transport's scrape, and to the fleet router's aggregation,
        // with no second list to keep in sync.
        for (def, value) in LIFECYCLE_COUNTERS.iter().zip(self.lifecycle.snapshot()) {
            counter(def.name, def.help, value);
        }
        if let Some(hub) = trace {
            let (kept, dropped) = hub.ring_counts();
            counter(
                "scamdetect_traces_kept_total",
                "completed traces retained in the recent-trace ring",
                kept,
            );
            counter(
                "scamdetect_traces_dropped_total",
                "completed traces dropped at a contended or full trace ring",
                dropped,
            );
        }

        let (p50, p99) = self.latency_percentiles_us();
        let mut gauge = |name: &str, help: &str, value: String| {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {value}");
        };
        gauge(
            "scamdetect_scan_latency_p50_us",
            "median scan latency interpolated from the latency histogram, microseconds",
            p50.to_string(),
        );
        gauge(
            "scamdetect_scan_latency_p99_us",
            "p99 scan latency interpolated from the latency histogram, microseconds",
            p99.to_string(),
        );
        gauge(
            "scamdetect_cache_hit_ratio",
            "verdict-cache hit ratio since startup",
            format!("{:.6}", self.cache_hit_ratio()),
        );
        gauge(
            "scamdetect_verdict_cache_entries",
            "entries in the serving scanner's verdict cache",
            verdict_cache_len.to_string(),
        );
        gauge(
            "scamdetect_prep_cache_entries",
            "entries in the shared prepared-input cache",
            prep_cache_len.to_string(),
        );
        gauge(
            "scamdetect_queue_depth",
            "connections waiting at the accept-to-worker handoff",
            load.queued.load(Ordering::Relaxed).to_string(),
        );
        gauge(
            "scamdetect_in_flight_requests",
            "requests currently inside a route handler",
            load.in_flight.load(Ordering::Relaxed).to_string(),
        );
        gauge(
            "scamdetect_uptime_seconds",
            "seconds since the daemon started",
            uptime_s.to_string(),
        );
        gauge(
            "scamdetect_model_epoch",
            "monotonic epoch of the served model (bumps on every swap)",
            model_epoch.to_string(),
        );
        if let Some(hub) = trace {
            gauge(
                "scamdetect_trace_sample_every",
                "head-sampling rate: 1 in N traced requests kept (0 = tracing off)",
                hub.sample_every().to_string(),
            );
            gauge(
                "scamdetect_trace_slow_threshold_us",
                "requests at or above this total latency are always kept (0 = off)",
                hub.slow_us().to_string(),
            );
        }
        // Drift telemetry. The drift and decay gauges are the headline
        // signals; the raw histogram series (labeled, so deliberately
        // outside the aggregated counter family) let an operator see
        // *where* the score mass moved.
        let disagreement_rate = {
            let total = self.lifecycle.get(LifecycleCounter::Feedback);
            if total == 0 {
                0.0
            } else {
                self.lifecycle.get(LifecycleCounter::FeedbackDisagreements) as f64 / total as f64
            }
        };
        gauge(
            "scamdetect_feedback_disagreement_rate",
            "fraction of accepted corrections contradicting the served verdict",
            format!("{disagreement_rate:.6}"),
        );
        gauge(
            "scamdetect_cache_hit_recent_ratio",
            "verdict-cache hit ratio over the recent window",
            format!("{:.6}", self.drift.recent_cache_ratio()),
        );
        gauge(
            "scamdetect_cache_hit_decay",
            "lifetime cache-hit ratio minus the recent-window ratio (positive = decaying)",
            format!("{:.6}", self.drift.cache_hit_decay(self.cache_hit_ratio())),
        );
        if let Some(records) = feedback_log_records {
            gauge(
                "scamdetect_feedback_log_records",
                "whole records in the feedback log",
                records.to_string(),
            );
        }

        // Shadow-scoring session state, when one is running.
        gauge(
            "scamdetect_shadow_active",
            "1 while a shadow candidate is loaded and scoring mirrored traffic",
            if shadow.is_some() { "1" } else { "0" }.to_string(),
        );
        if let Some(sh) = shadow {
            let agreement = if sh.samples == 0 {
                0.0
            } else {
                sh.agreements as f64 / sh.samples as f64
            };
            gauge(
                "scamdetect_shadow_agreement_ratio",
                "fraction of mirrored samples where candidate agreed with champion (this session)",
                format!("{agreement:.6}"),
            );
            let mean_delta = if sh.samples == 0 {
                0.0
            } else {
                sh.latency_delta_us as f64 / sh.samples as f64
            };
            gauge(
                "scamdetect_shadow_latency_delta_us",
                "mean signed candidate-minus-champion scan latency delta, microseconds (this session)",
                format!("{mean_delta:.3}"),
            );
        }

        // Labeled series, written directly (the counter/gauge helpers
        // above emit bare names only).
        //
        // Endpoint latency histograms: real cumulative `_bucket` series
        // over the log-linear bounds, trimmed after the last occupied
        // bucket to keep cold endpoints cheap.
        let _ = writeln!(
            out,
            "# HELP scamdetect_request_duration_us route-handler latency by endpoint, microseconds\n\
             # TYPE scamdetect_request_duration_us histogram"
        );
        for (endpoint, hist) in [("scan", &self.scan_latency), ("batch", &self.batch_latency)] {
            write_histogram_series(
                &mut out,
                "scamdetect_request_duration_us",
                &format!("endpoint=\"{endpoint}\""),
                hist,
            );
        }
        // The per-stage family comes from the trace hub: every traced
        // request folds its span durations in, sampled away or not, so
        // the histograms see full traffic while the ring keeps only
        // the sampled/slow/forced timelines.
        if let Some(hub) = trace {
            let _ = writeln!(
                out,
                "# HELP scamdetect_stage_duration_us span duration by pipeline stage over traced requests, microseconds\n\
                 # TYPE scamdetect_stage_duration_us histogram"
            );
            for (stage, hist) in hub.stage_histograms() {
                if hist.count() == 0 {
                    continue;
                }
                write_histogram_series(
                    &mut out,
                    "scamdetect_stage_duration_us",
                    &format!("stage=\"{stage}\""),
                    hist,
                );
            }
        }
        // Exemplars: the slowest sample of each histogram carries its
        // trace id, linking the tail to GET /trace/<id>.
        {
            let mut wrote_header = false;
            let mut exemplar = |out: &mut String, labels: String, hist: &LatencyHistogram| {
                if let Some((us, id)) = hist.exemplar() {
                    if !wrote_header {
                        let _ = writeln!(
                            out,
                            "# HELP scamdetect_slowest_trace_us slowest observed sample per series, with its trace id as an exemplar label\n\
                             # TYPE scamdetect_slowest_trace_us gauge"
                        );
                        wrote_header = true;
                    }
                    let _ = writeln!(
                        out,
                        "scamdetect_slowest_trace_us{{{labels},trace_id=\"{}\"}} {us}",
                        id.to_hex()
                    );
                }
            };
            exemplar(
                &mut out,
                "endpoint=\"scan\"".to_string(),
                &self.scan_latency,
            );
            exemplar(
                &mut out,
                "endpoint=\"batch\"".to_string(),
                &self.batch_latency,
            );
            if let Some(hub) = trace {
                for (stage, hist) in hub.stage_histograms() {
                    exemplar(&mut out, format!("stage=\"{stage}\""), hist);
                }
            }
        }
        let _ = writeln!(
            out,
            "# HELP scamdetect_score_drift L1 distance between current and baseline score histograms, per platform\n\
             # TYPE scamdetect_score_drift gauge"
        );
        for platform in [Platform::Evm, Platform::Wasm] {
            let _ = writeln!(
                out,
                "scamdetect_score_drift{{platform=\"{platform}\"}} {:.6}",
                self.drift.score_drift(platform)
            );
        }
        let _ = writeln!(
            out,
            "# HELP scamdetect_score_hist served-score histogram buckets per platform and window\n\
             # TYPE scamdetect_score_hist gauge"
        );
        for platform in [Platform::Evm, Platform::Wasm] {
            for (window, tag) in [
                (DriftWindow::Current, "current"),
                (DriftWindow::Baseline, "baseline"),
            ] {
                let hist = self.drift.histogram(platform, window);
                for (bucket, count) in hist.iter().enumerate() {
                    let _ = writeln!(
                        out,
                        "scamdetect_score_hist{{platform=\"{platform}\",window=\"{tag}\",bucket=\"{bucket}\"}} {count}"
                    );
                }
            }
        }
        if let Some(sh) = shadow {
            let _ = writeln!(
                out,
                "# HELP scamdetect_shadow_info shadow candidate id as a label\n\
                 # TYPE scamdetect_shadow_info gauge\n\
                 scamdetect_shadow_info{{candidate=\"{}\"}} 1",
                sh.candidate.replace('\\', "\\\\").replace('"', "\\\"")
            );
        }
        let _ = writeln!(
            out,
            "# HELP scamdetect_model_info served model id as a label\n\
             # TYPE scamdetect_model_info gauge\n\
             scamdetect_model_info{{model=\"{}\"}} 1",
            model_id.replace('\\', "\\\\").replace('"', "\\\"")
        );
        let _ = writeln!(
            out,
            "# HELP scamdetect_build_info build metadata as labels\n\
             # TYPE scamdetect_build_info gauge\n\
             scamdetect_build_info{{version=\"{}\"}} 1",
            env!("CARGO_PKG_VERSION")
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_matches_linear_search() {
        // The O(1) octave computation must agree with the definition:
        // smallest bound >= the sample, overflow past the last bound.
        let reference = |us: u64| {
            HIST_BOUNDS
                .iter()
                .position(|&b| b >= us)
                .unwrap_or(HIST_BOUNDS_LEN)
        };
        for us in 0..=2048u64 {
            assert_eq!(bucket_index(us), reference(us), "us={us}");
        }
        for &us in &[1 << 20, (1 << 20) + 1, 100_663_296, 100_663_297, u64::MAX] {
            assert_eq!(bucket_index(us), reference(us), "us={us}");
        }
        // Bounds are strictly increasing (cumulative rendering relies
        // on it).
        assert!(HIST_BOUNDS.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn zero_latency_samples_are_recorded_faithfully() {
        // A real 0µs sample (sub-microsecond cache hit) used to be
        // clamped up to 1µs to dodge the old ring's EMPTY sentinel.
        // Histogram occupancy needs no sentinel: zeros stay zeros.
        let m = Metrics::default();
        for _ in 0..10 {
            m.record_latency_us(0);
        }
        assert_eq!(m.scan_latency.count(), 10);
        assert_eq!(m.scan_latency.sum(), 0);
        assert_eq!(m.scan_latency.max_us(), 0);
        assert_eq!(m.latency_percentiles_us(), (0, 0));
    }

    #[test]
    fn percentiles_over_known_samples() {
        let m = Metrics::default();
        assert_eq!(m.latency_percentiles_us(), (0, 0));
        for us in 1..=100u64 {
            m.record_latency_us(us);
        }
        let (p50, p99) = m.latency_percentiles_us();
        assert!((48..=52).contains(&p50), "p50 {p50}");
        assert!((96..=100).contains(&p99), "p99 {p99}");
    }

    #[test]
    fn single_sample_reads_back_exactly() {
        // Interpolation clamps to the observed max, so one sample is
        // recovered bit-exact despite ~25%-wide buckets.
        let h = LatencyHistogram::new();
        h.record(123);
        assert_eq!(h.percentile(0.5), 123);
        assert_eq!(h.percentile(0.99), 123);
        assert_eq!(h.max_us(), 123);
    }

    #[test]
    fn heavy_traffic_stays_within_one_bucket() {
        let h = LatencyHistogram::new();
        for _ in 0..4096 {
            h.record(7);
        }
        assert_eq!(h.percentile(0.5), 7);
        assert_eq!(h.percentile(0.99), 7);
        assert_eq!(h.count(), 4096);
        assert_eq!(h.sum(), 7 * 4096);
    }

    #[test]
    fn exemplar_tracks_the_slowest_traced_sample() {
        let h = LatencyHistogram::new();
        h.record(500); // untraced: no exemplar yet
        assert!(h.exemplar().is_none());
        let slow = TraceId::parse("00000000000000ab").unwrap();
        let fast = TraceId::parse("00000000000000cd").unwrap();
        h.record_with_trace(900, Some(slow));
        h.record_with_trace(100, Some(fast)); // not the max: ignored
        let (us, id) = h.exemplar().unwrap();
        assert_eq!(us, 900);
        assert_eq!(id, slow);
    }

    #[test]
    fn histogram_series_are_cumulative_and_inf_terminated() {
        let h = LatencyHistogram::new();
        h.record(3);
        h.record(3);
        h.record(100);
        let mut out = String::new();
        write_histogram_series(&mut out, "x_us", "endpoint=\"scan\"", &h);
        let mut last_cum = 0u64;
        let mut bucket_lines = 0;
        for line in out.lines().filter(|l| l.contains("_bucket")) {
            let value: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(value >= last_cum, "non-monotonic: {line}");
            last_cum = value;
            bucket_lines += 1;
        }
        assert!(out.contains("x_us_bucket{endpoint=\"scan\",le=\"3\"} 2"));
        assert!(out.contains("x_us_bucket{endpoint=\"scan\",le=\"+Inf\"} 3"));
        assert!(out.contains("x_us_sum{endpoint=\"scan\"} 106"));
        assert!(out.contains("x_us_count{endpoint=\"scan\"} 3"));
        // Trimmed after the last occupied bucket: 100 lands at le=128,
        // so no bounds beyond that render (plus the +Inf line).
        assert_eq!(
            bucket_lines,
            HIST_BOUNDS.iter().position(|&b| b >= 100).unwrap() + 2
        );
    }

    #[test]
    fn hit_ratio_counts_batch_dedup() {
        let m = Metrics::default();
        assert_eq!(m.cache_hit_ratio(), 0.0);
        m.scans_total.store(10, Ordering::Relaxed);
        m.cache_hits.store(3, Ordering::Relaxed);
        m.batch_hits.store(2, Ordering::Relaxed);
        assert!((m.cache_hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn prometheus_rendering_is_well_formed() {
        let m = Metrics::default();
        m.requests_scan.store(4, Ordering::Relaxed);
        m.record_latency_us(123);
        let load = LoadGauge::default();
        load.shed_total.store(5, Ordering::Relaxed);
        load.queued.store(2, Ordering::Relaxed);
        m.lifecycle.incr(LifecycleCounter::Feedback);
        m.lifecycle.incr(LifecycleCounter::FeedbackDisagreements);
        m.drift.observe_score(Platform::Evm, 0.85, true);
        let hub = TraceHub::new(16, 50_000, 64);
        let text = m.render_prometheus(&ScrapeSnapshot {
            model_id: "rf-v3",
            model_epoch: 2,
            uptime_s: 60,
            verdict_cache_len: 10,
            prep_cache_len: 12,
            protocol_errors: 3,
            load: &load,
            shadow: Some(ShadowScrape {
                candidate: "rf-v4",
                candidate_epoch: 2,
                samples: 8,
                agreements: 6,
                disagreements: 2,
                failures: 0,
                dropped: 1,
                latency_delta_us: -40,
            }),
            feedback_log_records: Some(17),
            trace: Some(&hub),
        });
        assert!(text.contains("scamdetect_requests_total 4"));
        assert!(text.contains("scamdetect_protocol_errors_total 3"));
        assert!(text.contains("scamdetect_requests_shed_total 5"));
        assert!(text.contains("scamdetect_queue_depth 2"));
        assert!(text.contains("scamdetect_in_flight_requests 0"));
        assert!(text.contains("scamdetect_scan_latency_p50_us 123"));
        assert!(text.contains("scamdetect_model_info{model=\"rf-v3\"} 1"));
        assert!(text.contains("scamdetect_model_epoch 2"));
        assert!(text.contains(&format!(
            "scamdetect_build_info{{version=\"{}\"}} 1",
            env!("CARGO_PKG_VERSION")
        )));
        assert!(text.contains("scamdetect_uptime_seconds 60"));
        assert!(text.contains("scamdetect_trace_sample_every 16"));
        assert!(text.contains("scamdetect_trace_slow_threshold_us 50000"));
        assert!(text.contains("scamdetect_traces_kept_total 0"));
        // The single 123µs sample renders as a real cumulative series.
        assert!(
            text.contains("scamdetect_request_duration_us_bucket{endpoint=\"scan\",le=\"128\"} 1")
        );
        assert!(
            text.contains("scamdetect_request_duration_us_bucket{endpoint=\"scan\",le=\"+Inf\"} 1")
        );
        assert!(text.contains("scamdetect_request_duration_us_sum{endpoint=\"scan\"} 123"));
        assert!(text.contains("scamdetect_request_duration_us_count{endpoint=\"scan\"} 1"));
        // A cold endpoint still closes its series with +Inf/sum/count.
        assert!(text
            .contains("scamdetect_request_duration_us_bucket{endpoint=\"batch\",le=\"+Inf\"} 0"));
        assert!(text.contains("scamdetect_request_duration_us_count{endpoint=\"batch\"} 0"));
        // Every registered lifecycle counter renders by its table name.
        for def in LIFECYCLE_COUNTERS {
            assert!(
                text.contains(&format!("\n{} ", def.name)),
                "{} missing",
                def.name
            );
        }
        assert!(text.contains("scamdetect_feedback_total 1"));
        assert!(text.contains("scamdetect_feedback_disagreement_rate 1.000000"));
        assert!(text.contains("scamdetect_feedback_log_records 17"));
        assert!(text
            .contains("scamdetect_score_hist{platform=\"evm\",window=\"current\",bucket=\"8\"} 1"));
        assert!(text.contains("scamdetect_score_drift{platform=\"wasm\"} 0.000000"));
        assert!(text.contains("scamdetect_shadow_active 1"));
        assert!(text.contains("scamdetect_shadow_agreement_ratio 0.750000"));
        assert!(text.contains("scamdetect_shadow_latency_delta_us -5.000"));
        assert!(text.contains("scamdetect_shadow_info{candidate=\"rf-v4\"} 1"));
        // Every non-comment line is `name[{labels}] value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let mut parts = line.split(' ');
            assert!(parts.next().is_some(), "{line}");
            assert!(parts.next().unwrap().parse::<f64>().is_ok(), "{line}");
        }
    }

    #[test]
    fn shadow_off_renders_inactive_gauge_and_no_session_series() {
        let m = Metrics::default();
        let load = LoadGauge::default();
        let text = m.render_prometheus(&ScrapeSnapshot {
            model_id: "rf-v3",
            model_epoch: 1,
            uptime_s: 1,
            verdict_cache_len: 0,
            prep_cache_len: 0,
            protocol_errors: 0,
            load: &load,
            shadow: None,
            feedback_log_records: None,
            trace: None,
        });
        assert!(text.contains("scamdetect_shadow_active 0"));
        assert!(!text.contains("scamdetect_shadow_info"));
        assert!(!text.contains("scamdetect_feedback_log_records"));
        assert!(!text.contains("scamdetect_trace_sample_every"));
        assert!(!text.contains("scamdetect_stage_duration_us"));
        // The cumulative family still renders (zeros) with shadow off.
        assert!(text.contains("scamdetect_shadow_samples_total 0"));
    }

    #[test]
    fn lifecycle_table_and_index_agree() {
        // The enum indexes the table; a counter added to one without the
        // other fails here, named.
        let counters = [
            LifecycleCounter::Feedback,
            LifecycleCounter::FeedbackDisagreements,
            LifecycleCounter::ShadowSamples,
            LifecycleCounter::ShadowAgreements,
            LifecycleCounter::ShadowDisagreements,
            LifecycleCounter::ShadowDropped,
        ];
        assert_eq!(counters.len(), LIFECYCLE_COUNTERS.len());
        let c = LifecycleCounters::default();
        for (i, &which) in counters.iter().enumerate() {
            assert_eq!(which as usize, i);
            c.incr(which);
            assert_eq!(c.get(which), 1);
            assert_eq!(c.snapshot()[i], 1);
        }
        // Aggregation constraint: the family must stay label-free and
        // use the shared prefix + _total convention.
        for def in LIFECYCLE_COUNTERS {
            assert!(def.name.starts_with("scamdetect_"), "{}", def.name);
            assert!(def.name.ends_with("_total"), "{}", def.name);
            assert!(!def.name.contains('{'), "{}", def.name);
        }
    }
}
