//! Daemon metrics: lock-free counters plus a latency ring buffer,
//! rendered in the Prometheus text exposition format.
//!
//! Everything on the hot path is a relaxed atomic op. Percentiles are
//! computed at scrape time from a fixed ring of the most recent scan
//! latencies (the standard "sliding window of samples" compromise: no
//! allocation while serving, exact-enough p50/p99 over recent traffic,
//! O(ring) work only when `/metrics` is hit).

use crate::http::LoadGauge;
use crate::lifecycle::{DriftTelemetry, DriftWindow};
use scamdetect_ir::Platform;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Samples kept for percentile estimation.
const LATENCY_RING: usize = 2048;

/// Name + help text of one exported metric — the registration record.
#[derive(Debug, Clone, Copy)]
pub struct MetricDef {
    /// Prometheus metric name.
    pub name: &'static str,
    /// `# HELP` text.
    pub help: &'static str,
}

/// The single registration point for the lifecycle counter family.
///
/// Everything that renders or aggregates these counters iterates this
/// table — the daemon's `/metrics` (on both transports, which share one
/// `render_prometheus`) and the fleet router's cross-replica aggregation
/// — so a counter added here appears everywhere at once and a name can
/// never drift between the exporter and the aggregator. Indexed by
/// [`LifecycleCounter`]; the unit tests pin the two in sync.
///
/// Counters only: these names are scraped back by the fleet router's
/// bare-name metric parser, so the family must stay label-free.
pub const LIFECYCLE_COUNTERS: &[MetricDef] = &[
    MetricDef {
        name: "scamdetect_feedback_total",
        help: "verdict corrections accepted through POST /feedback",
    },
    MetricDef {
        name: "scamdetect_feedback_disagreements_total",
        help: "accepted corrections that contradicted the served verdict",
    },
    MetricDef {
        name: "scamdetect_shadow_samples_total",
        help: "scans mirrored to a shadow candidate (all shadow sessions)",
    },
    MetricDef {
        name: "scamdetect_shadow_agreements_total",
        help: "mirrored scans where champion and candidate verdicts agreed",
    },
    MetricDef {
        name: "scamdetect_shadow_disagreements_total",
        help: "mirrored scans where the candidate contradicted the champion (or failed)",
    },
    MetricDef {
        name: "scamdetect_shadow_dropped_total",
        help: "scans not mirrored because the shadow queue was full",
    },
];

/// Index into [`LIFECYCLE_COUNTERS`] / [`LifecycleCounters`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LifecycleCounter {
    /// Corrections accepted through `POST /feedback`.
    Feedback = 0,
    /// Accepted corrections contradicting the served verdict.
    FeedbackDisagreements = 1,
    /// Scans mirrored to a shadow candidate.
    ShadowSamples = 2,
    /// Mirrored scans with agreeing verdicts.
    ShadowAgreements = 3,
    /// Mirrored scans where the candidate disagreed or failed.
    ShadowDisagreements = 4,
    /// Scans dropped at a full shadow queue.
    ShadowDropped = 5,
}

/// Values behind [`LIFECYCLE_COUNTERS`], one relaxed atomic per entry.
///
/// Lives behind an `Arc` on [`Metrics`] because the shadow-scoring
/// worker thread increments it off the response path.
#[derive(Debug, Default)]
pub struct LifecycleCounters {
    values: [AtomicU64; LIFECYCLE_COUNTERS.len()],
}

impl LifecycleCounters {
    /// Adds 1 to one counter.
    pub fn incr(&self, which: LifecycleCounter) {
        self.values[which as usize].fetch_add(1, Ordering::Relaxed);
    }

    /// Reads one counter.
    pub fn get(&self, which: LifecycleCounter) -> u64 {
        self.values[which as usize].load(Ordering::Relaxed)
    }

    /// Reads every counter, positionally aligned with
    /// [`LIFECYCLE_COUNTERS`].
    pub fn snapshot(&self) -> [u64; LIFECYCLE_COUNTERS.len()] {
        let mut out = [0u64; LIFECYCLE_COUNTERS.len()];
        for (slot, v) in out.iter_mut().zip(self.values.iter()) {
            *slot = v.load(Ordering::Relaxed);
        }
        out
    }
}

/// Scrape-time view of the active shadow-scoring session, if any.
///
/// Session-scoped (reset on `shadow start`), unlike the cumulative
/// [`LifecycleCounters`]; promotion thresholds judge the session, the
/// counters record the lifetime.
#[derive(Debug, Clone, Copy)]
pub struct ShadowScrape<'a> {
    /// Candidate model id.
    pub candidate: &'a str,
    /// Registry epoch at candidate load (informational; the real epoch
    /// is minted at promotion).
    pub candidate_epoch: u64,
    /// Mirrored scans scored by the candidate this session.
    pub samples: u64,
    /// Samples where both models agreed.
    pub agreements: u64,
    /// Samples where the candidate disagreed (failures included).
    pub disagreements: u64,
    /// Candidate scans that errored.
    pub failures: u64,
    /// Scans dropped at a full queue this session.
    pub dropped: u64,
    /// Sum of signed per-sample latency deltas (candidate − champion),
    /// microseconds.
    pub latency_delta_us: i64,
}

/// Sentinel for "slot never written" (a real 0µs latency is recorded
/// as 1µs — the measurement floor, far below anything the scan path
/// can produce).
const EMPTY: u64 = u64::MAX;

/// Point-in-time state gathered by the `/metrics` route handler for
/// one scrape: the identity of the served model, daemon uptime, live
/// cache sizes, the HTTP layer's below-route rejection count (bad
/// request lines, 431/413/411/408), and the live admission-gate gauge
/// (queue depth, in-flight, shed count).
#[derive(Debug, Clone, Copy)]
pub struct ScrapeSnapshot<'a> {
    /// Id of the model currently serving.
    pub model_id: &'a str,
    /// Monotonic epoch of the served model (bumps on every swap).
    pub model_epoch: u64,
    /// Seconds since the daemon started.
    pub uptime_s: u64,
    /// Entries in the serving scanner's verdict cache.
    pub verdict_cache_len: usize,
    /// Entries in the shared prepared-input cache.
    pub prep_cache_len: usize,
    /// Requests rejected below the route layer.
    pub protocol_errors: u64,
    /// Live server load (queue depth, in-flight, shed count).
    pub load: &'a LoadGauge,
    /// The active shadow-scoring session, when one is running.
    pub shadow: Option<ShadowScrape<'a>>,
    /// Whole records in the feedback log; `None` when ingestion is off.
    pub feedback_log_records: Option<u64>,
}

/// Counters and latency samples for one daemon lifetime.
pub struct Metrics {
    /// Requests answered, by coarse endpoint family.
    pub requests_scan: AtomicU64,
    /// `/batch` requests (the *contracts* inside count into
    /// `scans_total` / cache counters like single scans).
    pub requests_batch: AtomicU64,
    /// Every other endpoint (`/healthz`, `/metrics`, `/models`, …).
    pub requests_other: AtomicU64,
    /// Responses with status >= 400.
    pub errors: AtomicU64,
    /// Contracts scored (cache hits included).
    pub scans_total: AtomicU64,
    /// Scans served from the verdict cache (cross-request).
    pub cache_hits: AtomicU64,
    /// Scans deduplicated inside one `/batch` request.
    pub batch_hits: AtomicU64,
    /// Scans that flagged the contract malicious.
    pub malicious_verdicts: AtomicU64,
    /// Scan requests that failed: undecodable `bytecode` fields as well
    /// as decoded-but-unliftable contracts.
    pub scan_failures: AtomicU64,
    /// Completed hot model swaps.
    pub model_swaps: AtomicU64,
    /// Artifacts accepted through `PUT /models/<id>`.
    pub model_installs: AtomicU64,
    /// Lifecycle counter family (see [`LIFECYCLE_COUNTERS`]). Shared
    /// with the shadow-scoring worker thread.
    pub lifecycle: Arc<LifecycleCounters>,
    /// Streaming drift telemetry (score histograms, cache decay).
    pub drift: DriftTelemetry,
    ring: [AtomicU64; LATENCY_RING],
    ring_next: AtomicUsize,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics {
            requests_scan: AtomicU64::new(0),
            requests_batch: AtomicU64::new(0),
            requests_other: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            scans_total: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            batch_hits: AtomicU64::new(0),
            malicious_verdicts: AtomicU64::new(0),
            scan_failures: AtomicU64::new(0),
            model_swaps: AtomicU64::new(0),
            model_installs: AtomicU64::new(0),
            lifecycle: Arc::new(LifecycleCounters::default()),
            drift: DriftTelemetry::default(),
            ring: [const { AtomicU64::new(EMPTY) }; LATENCY_RING],
            ring_next: AtomicUsize::new(0),
        }
    }
}

impl Metrics {
    /// Records one scan latency sample (microseconds).
    pub fn record_latency_us(&self, micros: u64) {
        let slot = self.ring_next.fetch_add(1, Ordering::Relaxed) % LATENCY_RING;
        self.ring[slot].store(micros.clamp(1, EMPTY - 1), Ordering::Relaxed);
    }

    /// `(p50, p99)` over the retained latency window, microseconds;
    /// zeros before any sample arrives.
    pub fn latency_percentiles_us(&self) -> (u64, u64) {
        let mut samples: Vec<u64> = self
            .ring
            .iter()
            .map(|s| s.load(Ordering::Relaxed))
            .filter(|&v| v != EMPTY)
            .collect();
        if samples.is_empty() {
            return (0, 0);
        }
        samples.sort_unstable();
        let pick = |q: f64| samples[((samples.len() - 1) as f64 * q) as usize];
        (pick(0.50), pick(0.99))
    }

    /// Verdict-cache hit ratio over everything scanned so far (batch
    /// dedup hits count as hits: the work was skipped either way).
    pub fn cache_hit_ratio(&self) -> f64 {
        let total = self.scans_total.load(Ordering::Relaxed);
        if total == 0 {
            return 0.0;
        }
        let hits =
            self.cache_hits.load(Ordering::Relaxed) + self.batch_hits.load(Ordering::Relaxed);
        hits as f64 / total as f64
    }

    /// Renders the Prometheus text exposition format over `snap`, the
    /// scrape-time state gathered by the `/metrics` route handler.
    pub fn render_prometheus(&self, snap: &ScrapeSnapshot<'_>) -> String {
        let ScrapeSnapshot {
            model_id,
            model_epoch,
            uptime_s,
            verdict_cache_len,
            prep_cache_len,
            protocol_errors,
            load,
            shadow,
            feedback_log_records,
        } = *snap;
        use std::fmt::Write as _;
        let mut out = String::with_capacity(2048);
        let mut counter = |name: &str, help: &str, value: u64| {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {value}");
        };
        counter(
            "scamdetect_requests_total",
            "HTTP requests answered (scan endpoint)",
            self.requests_scan.load(Ordering::Relaxed),
        );
        counter(
            "scamdetect_batch_requests_total",
            "HTTP requests answered (batch endpoint)",
            self.requests_batch.load(Ordering::Relaxed),
        );
        counter(
            "scamdetect_other_requests_total",
            "HTTP requests answered (all other endpoints)",
            self.requests_other.load(Ordering::Relaxed),
        );
        counter(
            "scamdetect_errors_total",
            "route-handler responses with status >= 400",
            self.errors.load(Ordering::Relaxed),
        );
        counter(
            "scamdetect_protocol_errors_total",
            "requests rejected below the route layer (bad request line, 431/413/411/408)",
            protocol_errors,
        );
        counter(
            "scamdetect_scans_total",
            "contracts scored, cache hits included",
            self.scans_total.load(Ordering::Relaxed),
        );
        counter(
            "scamdetect_cache_hits_total",
            "scans served from the cross-request verdict cache",
            self.cache_hits.load(Ordering::Relaxed),
        );
        counter(
            "scamdetect_batch_dedup_hits_total",
            "scans deduplicated within one batch request",
            self.batch_hits.load(Ordering::Relaxed),
        );
        counter(
            "scamdetect_malicious_verdicts_total",
            "scans that flagged the contract",
            self.malicious_verdicts.load(Ordering::Relaxed),
        );
        counter(
            "scamdetect_scan_failures_total",
            "scan requests that failed (undecodable or unliftable bytecode)",
            self.scan_failures.load(Ordering::Relaxed),
        );
        counter(
            "scamdetect_model_swaps_total",
            "completed hot model swaps",
            self.model_swaps.load(Ordering::Relaxed),
        );
        counter(
            "scamdetect_model_installs_total",
            "artifacts accepted through PUT /models/<id>",
            self.model_installs.load(Ordering::Relaxed),
        );
        counter(
            "scamdetect_requests_shed_total",
            "connections answered 429 at the admission gate",
            load.shed_total.load(Ordering::Relaxed),
        );
        // The lifecycle family renders straight off its registration
        // table — adding a counter there adds it here, to the epoll
        // transport's scrape, and to the fleet router's aggregation,
        // with no second list to keep in sync.
        for (def, value) in LIFECYCLE_COUNTERS.iter().zip(self.lifecycle.snapshot()) {
            counter(def.name, def.help, value);
        }

        let (p50, p99) = self.latency_percentiles_us();
        let mut gauge = |name: &str, help: &str, value: String| {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {value}");
        };
        gauge(
            "scamdetect_scan_latency_p50_us",
            "median scan latency over the recent-sample window, microseconds",
            p50.to_string(),
        );
        gauge(
            "scamdetect_scan_latency_p99_us",
            "p99 scan latency over the recent-sample window, microseconds",
            p99.to_string(),
        );
        gauge(
            "scamdetect_cache_hit_ratio",
            "verdict-cache hit ratio since startup",
            format!("{:.6}", self.cache_hit_ratio()),
        );
        gauge(
            "scamdetect_verdict_cache_entries",
            "entries in the serving scanner's verdict cache",
            verdict_cache_len.to_string(),
        );
        gauge(
            "scamdetect_prep_cache_entries",
            "entries in the shared prepared-input cache",
            prep_cache_len.to_string(),
        );
        gauge(
            "scamdetect_queue_depth",
            "connections waiting at the accept-to-worker handoff",
            load.queued.load(Ordering::Relaxed).to_string(),
        );
        gauge(
            "scamdetect_in_flight_requests",
            "requests currently inside a route handler",
            load.in_flight.load(Ordering::Relaxed).to_string(),
        );
        gauge(
            "scamdetect_uptime_seconds",
            "seconds since the daemon started",
            uptime_s.to_string(),
        );
        gauge(
            "scamdetect_model_epoch",
            "monotonic epoch of the served model (bumps on every swap)",
            model_epoch.to_string(),
        );
        // Drift telemetry. The drift and decay gauges are the headline
        // signals; the raw histogram series (labeled, so deliberately
        // outside the aggregated counter family) let an operator see
        // *where* the score mass moved.
        let disagreement_rate = {
            let total = self.lifecycle.get(LifecycleCounter::Feedback);
            if total == 0 {
                0.0
            } else {
                self.lifecycle.get(LifecycleCounter::FeedbackDisagreements) as f64 / total as f64
            }
        };
        gauge(
            "scamdetect_feedback_disagreement_rate",
            "fraction of accepted corrections contradicting the served verdict",
            format!("{disagreement_rate:.6}"),
        );
        gauge(
            "scamdetect_cache_hit_recent_ratio",
            "verdict-cache hit ratio over the recent window",
            format!("{:.6}", self.drift.recent_cache_ratio()),
        );
        gauge(
            "scamdetect_cache_hit_decay",
            "lifetime cache-hit ratio minus the recent-window ratio (positive = decaying)",
            format!("{:.6}", self.drift.cache_hit_decay(self.cache_hit_ratio())),
        );
        if let Some(records) = feedback_log_records {
            gauge(
                "scamdetect_feedback_log_records",
                "whole records in the feedback log",
                records.to_string(),
            );
        }

        // Shadow-scoring session state, when one is running.
        gauge(
            "scamdetect_shadow_active",
            "1 while a shadow candidate is loaded and scoring mirrored traffic",
            if shadow.is_some() { "1" } else { "0" }.to_string(),
        );
        if let Some(sh) = shadow {
            let agreement = if sh.samples == 0 {
                0.0
            } else {
                sh.agreements as f64 / sh.samples as f64
            };
            gauge(
                "scamdetect_shadow_agreement_ratio",
                "fraction of mirrored samples where candidate agreed with champion (this session)",
                format!("{agreement:.6}"),
            );
            let mean_delta = if sh.samples == 0 {
                0.0
            } else {
                sh.latency_delta_us as f64 / sh.samples as f64
            };
            gauge(
                "scamdetect_shadow_latency_delta_us",
                "mean signed candidate-minus-champion scan latency delta, microseconds (this session)",
                format!("{mean_delta:.3}"),
            );
        }

        // Labeled series, written directly (the counter/gauge helpers
        // above emit bare names only).
        let _ = writeln!(
            out,
            "# HELP scamdetect_score_drift L1 distance between current and baseline score histograms, per platform\n\
             # TYPE scamdetect_score_drift gauge"
        );
        for platform in [Platform::Evm, Platform::Wasm] {
            let _ = writeln!(
                out,
                "scamdetect_score_drift{{platform=\"{platform}\"}} {:.6}",
                self.drift.score_drift(platform)
            );
        }
        let _ = writeln!(
            out,
            "# HELP scamdetect_score_hist served-score histogram buckets per platform and window\n\
             # TYPE scamdetect_score_hist gauge"
        );
        for platform in [Platform::Evm, Platform::Wasm] {
            for (window, tag) in [
                (DriftWindow::Current, "current"),
                (DriftWindow::Baseline, "baseline"),
            ] {
                let hist = self.drift.histogram(platform, window);
                for (bucket, count) in hist.iter().enumerate() {
                    let _ = writeln!(
                        out,
                        "scamdetect_score_hist{{platform=\"{platform}\",window=\"{tag}\",bucket=\"{bucket}\"}} {count}"
                    );
                }
            }
        }
        if let Some(sh) = shadow {
            let _ = writeln!(
                out,
                "# HELP scamdetect_shadow_info shadow candidate id as a label\n\
                 # TYPE scamdetect_shadow_info gauge\n\
                 scamdetect_shadow_info{{candidate=\"{}\"}} 1",
                sh.candidate.replace('\\', "\\\\").replace('"', "\\\"")
            );
        }
        let _ = writeln!(
            out,
            "# HELP scamdetect_model_info served model id as a label\n\
             # TYPE scamdetect_model_info gauge\n\
             scamdetect_model_info{{model=\"{}\"}} 1",
            model_id.replace('\\', "\\\\").replace('"', "\\\"")
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_over_known_samples() {
        let m = Metrics::default();
        assert_eq!(m.latency_percentiles_us(), (0, 0));
        for us in 1..=100u64 {
            m.record_latency_us(us);
        }
        let (p50, p99) = m.latency_percentiles_us();
        assert!((49..=51).contains(&p50), "p50 {p50}");
        assert!((98..=100).contains(&p99), "p99 {p99}");
    }

    #[test]
    fn ring_wraps_without_losing_recency() {
        let m = Metrics::default();
        for _ in 0..(LATENCY_RING * 2) {
            m.record_latency_us(7);
        }
        assert_eq!(m.latency_percentiles_us(), (7, 7));
    }

    #[test]
    fn hit_ratio_counts_batch_dedup() {
        let m = Metrics::default();
        assert_eq!(m.cache_hit_ratio(), 0.0);
        m.scans_total.store(10, Ordering::Relaxed);
        m.cache_hits.store(3, Ordering::Relaxed);
        m.batch_hits.store(2, Ordering::Relaxed);
        assert!((m.cache_hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn prometheus_rendering_is_well_formed() {
        let m = Metrics::default();
        m.requests_scan.store(4, Ordering::Relaxed);
        m.record_latency_us(123);
        let load = LoadGauge::default();
        load.shed_total.store(5, Ordering::Relaxed);
        load.queued.store(2, Ordering::Relaxed);
        m.lifecycle.incr(LifecycleCounter::Feedback);
        m.lifecycle.incr(LifecycleCounter::FeedbackDisagreements);
        m.drift.observe_score(Platform::Evm, 0.85, true);
        let text = m.render_prometheus(&ScrapeSnapshot {
            model_id: "rf-v3",
            model_epoch: 2,
            uptime_s: 60,
            verdict_cache_len: 10,
            prep_cache_len: 12,
            protocol_errors: 3,
            load: &load,
            shadow: Some(ShadowScrape {
                candidate: "rf-v4",
                candidate_epoch: 2,
                samples: 8,
                agreements: 6,
                disagreements: 2,
                failures: 0,
                dropped: 1,
                latency_delta_us: -40,
            }),
            feedback_log_records: Some(17),
        });
        assert!(text.contains("scamdetect_requests_total 4"));
        assert!(text.contains("scamdetect_protocol_errors_total 3"));
        assert!(text.contains("scamdetect_requests_shed_total 5"));
        assert!(text.contains("scamdetect_queue_depth 2"));
        assert!(text.contains("scamdetect_in_flight_requests 0"));
        assert!(text.contains("scamdetect_scan_latency_p50_us 123"));
        assert!(text.contains("scamdetect_model_info{model=\"rf-v3\"} 1"));
        assert!(text.contains("scamdetect_model_epoch 2"));
        // Every registered lifecycle counter renders by its table name.
        for def in LIFECYCLE_COUNTERS {
            assert!(
                text.contains(&format!("\n{} ", def.name)),
                "{} missing",
                def.name
            );
        }
        assert!(text.contains("scamdetect_feedback_total 1"));
        assert!(text.contains("scamdetect_feedback_disagreement_rate 1.000000"));
        assert!(text.contains("scamdetect_feedback_log_records 17"));
        assert!(text
            .contains("scamdetect_score_hist{platform=\"evm\",window=\"current\",bucket=\"8\"} 1"));
        assert!(text.contains("scamdetect_score_drift{platform=\"wasm\"} 0.000000"));
        assert!(text.contains("scamdetect_shadow_active 1"));
        assert!(text.contains("scamdetect_shadow_agreement_ratio 0.750000"));
        assert!(text.contains("scamdetect_shadow_latency_delta_us -5.000"));
        assert!(text.contains("scamdetect_shadow_info{candidate=\"rf-v4\"} 1"));
        // Every non-comment line is `name[{labels}] value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let mut parts = line.split(' ');
            assert!(parts.next().is_some(), "{line}");
            assert!(parts.next().unwrap().parse::<f64>().is_ok(), "{line}");
        }
    }

    #[test]
    fn shadow_off_renders_inactive_gauge_and_no_session_series() {
        let m = Metrics::default();
        let load = LoadGauge::default();
        let text = m.render_prometheus(&ScrapeSnapshot {
            model_id: "rf-v3",
            model_epoch: 1,
            uptime_s: 1,
            verdict_cache_len: 0,
            prep_cache_len: 0,
            protocol_errors: 0,
            load: &load,
            shadow: None,
            feedback_log_records: None,
        });
        assert!(text.contains("scamdetect_shadow_active 0"));
        assert!(!text.contains("scamdetect_shadow_info"));
        assert!(!text.contains("scamdetect_feedback_log_records"));
        // The cumulative family still renders (zeros) with shadow off.
        assert!(text.contains("scamdetect_shadow_samples_total 0"));
    }

    #[test]
    fn lifecycle_table_and_index_agree() {
        // The enum indexes the table; a counter added to one without the
        // other fails here, named.
        let counters = [
            LifecycleCounter::Feedback,
            LifecycleCounter::FeedbackDisagreements,
            LifecycleCounter::ShadowSamples,
            LifecycleCounter::ShadowAgreements,
            LifecycleCounter::ShadowDisagreements,
            LifecycleCounter::ShadowDropped,
        ];
        assert_eq!(counters.len(), LIFECYCLE_COUNTERS.len());
        let c = LifecycleCounters::default();
        for (i, &which) in counters.iter().enumerate() {
            assert_eq!(which as usize, i);
            c.incr(which);
            assert_eq!(c.get(which), 1);
            assert_eq!(c.snapshot()[i], 1);
        }
        // Aggregation constraint: the family must stay label-free and
        // use the shared prefix + _total convention.
        for def in LIFECYCLE_COUNTERS {
            assert!(def.name.starts_with("scamdetect_"), "{}", def.name);
            assert!(def.name.ends_with("_total"), "{}", def.name);
            assert!(!def.name.contains('{'), "{}", def.name);
        }
    }
}
