//! A hand-rolled HTTP/1.1 server on [`std::net::TcpListener`].
//!
//! The workspace is offline and std-only — no tokio, no hyper — and the
//! daemon's needs are narrow: small JSON requests, keep-alive, bounded
//! inputs, graceful shutdown. That fits a classic fixed worker-pool
//! design in a few hundred lines:
//!
//! * **Accept loop + worker pool.** The caller's thread accepts
//!   connections and hands them to N worker threads over a channel.
//!   Workers own a connection for its whole keep-alive lifetime; the
//!   scan handler itself is CPU-bound, so more connections than workers
//!   queue at the channel rather than thrash.
//! * **Bounded parsing.** Header block and body sizes are capped
//!   ([`HttpConfig::max_header_bytes`] / [`HttpConfig::max_body_bytes`],
//!   431/413 on violation); requests bodies require `Content-Length`
//!   (chunked uploads are rejected with 411 — no scan client needs
//!   streaming).
//! * **Keep-alive with an idle timeout.** HTTP/1.1 connections persist
//!   across requests until `Connection: close`, the idle read timeout,
//!   or shutdown; each worker re-checks the shutdown flag between
//!   requests so draining never waits on an idle client.
//! * **Graceful shutdown.** A [`ShutdownHandle`] (cloneable, signal-safe
//!   to trigger) flips an atomic and wakes the blocking `accept` with a
//!   loopback connection; the accept loop stops, the channel closes,
//!   workers finish their in-flight request and exit, and
//!   [`HttpServer::serve`] joins them all before returning.

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Server knobs. The defaults suit a loopback scanning daemon.
#[derive(Debug, Clone)]
pub struct HttpConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker threads owning connections; 0 = available parallelism.
    pub workers: usize,
    /// Largest accepted request body (413 beyond). Bytecode arrives
    /// hex- or base64-encoded, so 8 MiB covers multi-megabyte contracts.
    pub max_body_bytes: usize,
    /// Largest accepted header block (431 beyond).
    pub max_header_bytes: usize,
    /// Idle keep-alive / mid-request read timeout (no bytes at all for
    /// this long ends the read).
    pub read_timeout: Duration,
    /// Hard wall-clock cap on receiving one complete request. The idle
    /// timeout alone cannot stop a slow-drip client (1 byte per
    /// `read_timeout` resets it forever, pinning a pool worker); once a
    /// request's first byte arrives, the whole thing must land within
    /// this deadline or the connection gets a 408 and closes.
    pub request_deadline: Duration,
    /// Requests served per connection before an orderly close (bounds
    /// the damage of a client that never disconnects).
    pub max_requests_per_conn: usize,
    /// Admission watermark: connections queued at the accept→worker
    /// handoff beyond which new connections are **shed** with
    /// `429 + Retry-After` instead of queueing unboundedly. In this
    /// worker-pool design a queued connection waits for a worker to
    /// free, which under keep-alive saturation can be arbitrarily long —
    /// an honest early 429 beats an unbounded silent queue. `0`
    /// disables shedding (the pre-admission-control behavior).
    pub shed_watermark: usize,
    /// Seconds suggested in `Retry-After` on shed (429) and
    /// slow-request (408) responses.
    pub retry_after_s: u32,
}

impl Default for HttpConfig {
    fn default() -> Self {
        HttpConfig {
            addr: "127.0.0.1:7878".to_string(),
            workers: 0,
            max_body_bytes: 8 << 20,
            max_header_bytes: 16 << 10,
            read_timeout: Duration::from_secs(5),
            request_deadline: Duration::from_secs(30),
            max_requests_per_conn: 10_000,
            shed_watermark: 256,
            retry_after_s: 1,
        }
    }
}

/// Live load observed by the server, shared out for metrics scrapes
/// and the admission gate. All relaxed atomics — the counters steer
/// shedding and dashboards, not correctness.
#[derive(Debug, Default)]
pub struct LoadGauge {
    /// Connections accepted and handed to the worker channel, not yet
    /// picked up by a worker (the unbounded queue the shed watermark
    /// bounds).
    pub queued: AtomicUsize,
    /// Requests currently inside a route handler.
    pub in_flight: AtomicUsize,
    /// Connections answered `429 + Retry-After` at the admission gate.
    pub shed_total: AtomicU64,
}

/// One parsed request.
#[derive(Debug)]
pub struct HttpRequest {
    /// Request method, uppercase (`GET`, `POST`, …).
    pub method: String,
    /// Decoded path without the query string.
    pub path: String,
    /// Raw query string (no leading `?`; empty when absent).
    pub query: String,
    /// Header list with lowercased names.
    pub headers: Vec<(String, String)>,
    /// Request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl HttpRequest {
    /// First header value under `name` (lowercase), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// One response to write.
#[derive(Debug)]
pub struct HttpResponse {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Extra response headers (name, value) beyond the always-present
    /// `Content-Type`/`Content-Length`/`Connection` trio — e.g. the
    /// fleet router's `Retry-After` on 503.
    pub headers: Vec<(&'static str, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// A JSON response.
    pub fn json(status: u16, value: &crate::json::Json) -> HttpResponse {
        HttpResponse {
            status,
            content_type: "application/json",
            headers: Vec::new(),
            body: value.render().into_bytes(),
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<String>) -> HttpResponse {
        HttpResponse {
            status,
            content_type: "text/plain; version=0.0.4",
            headers: Vec::new(),
            body: body.into().into_bytes(),
        }
    }

    /// A JSON error envelope: `{"error": "<message>"}`.
    pub fn error(status: u16, message: &str) -> HttpResponse {
        HttpResponse::json(
            status,
            &crate::json::obj([("error", crate::json::Json::from(message))]),
        )
    }

    /// Attaches one extra response header (builder-style).
    pub fn with_header(mut self, name: &'static str, value: impl Into<String>) -> HttpResponse {
        self.headers.push((name, value.into()));
        self
    }
}

fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        411 => "Length Required",
        413 => "Payload Too Large",
        422 => "Unprocessable Content",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// The route handler: pure request → response. Panics inside the
/// handler are caught per request and served as 500s (the worker and
/// its connection survive).
pub type Handler = Arc<dyn Fn(&HttpRequest) -> HttpResponse + Send + Sync>;

/// Cloneable trigger for a graceful stop. Triggering is cheap,
/// idempotent and safe from any thread (an atomic store plus a wake
/// connection), so signal watchers and tests share the same mechanism.
#[derive(Clone)]
pub struct ShutdownHandle {
    state: Arc<ShutdownState>,
}

struct ShutdownState {
    flag: AtomicBool,
    addr: SocketAddr,
}

impl ShutdownHandle {
    /// Requests shutdown: no new connections are accepted, in-flight
    /// requests finish, [`HttpServer::serve`] returns after joining its
    /// workers.
    pub fn shutdown(&self) {
        if !self.state.flag.swap(true, Ordering::SeqCst) {
            // Wake the blocking accept with a throwaway connection; if
            // the listener is already gone the store alone suffices.
            let _ = TcpStream::connect_timeout(&self.state.addr, Duration::from_millis(250));
        }
    }

    /// `true` once shutdown has been requested.
    pub fn is_shutdown(&self) -> bool {
        self.state.flag.load(Ordering::SeqCst)
    }
}

/// Counters accumulated over a server's lifetime, returned by
/// [`HttpServer::serve`] so callers can assert on clean shutdown.
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Connections accepted.
    pub connections: u64,
    /// Requests parsed and answered (any status).
    pub requests: u64,
}

/// A bound-but-not-yet-serving HTTP server.
pub struct HttpServer {
    listener: TcpListener,
    local_addr: SocketAddr,
    config: HttpConfig,
    shutdown: ShutdownHandle,
    /// Rejections decided *below* the route handler (malformed request
    /// line, 431/413/411/408): the handler's own error accounting never
    /// sees these, so the count is shared out via
    /// [`HttpServer::protocol_error_counter`] for metrics scrapes.
    protocol_errors: Arc<AtomicU64>,
    /// Queue depth / in-flight / shed counters, shared out via
    /// [`HttpServer::load_gauge`].
    load: Arc<LoadGauge>,
}

impl HttpServer {
    /// Binds the configured address (resolving `:0` to a real port).
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(config: HttpConfig) -> std::io::Result<HttpServer> {
        let addr =
            config.addr.to_socket_addrs()?.next().ok_or_else(|| {
                std::io::Error::new(ErrorKind::InvalidInput, "unresolvable address")
            })?;
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        Ok(HttpServer {
            listener,
            local_addr,
            config,
            shutdown: ShutdownHandle {
                state: Arc::new(ShutdownState {
                    flag: AtomicBool::new(false),
                    addr: local_addr,
                }),
            },
            protocol_errors: Arc::new(AtomicU64::new(0)),
            load: Arc::new(LoadGauge::default()),
        })
    }

    /// The bound address (the real port when `:0` was requested).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A handle that stops this server gracefully.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        self.shutdown.clone()
    }

    /// Live count of protocol-level rejections (4xx decided before the
    /// route handler runs: malformed request lines, 431/413/411/408).
    /// Clone it before [`HttpServer::serve`] to fold into metrics.
    pub fn protocol_error_counter(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.protocol_errors)
    }

    /// Live queue-depth / in-flight / shed counters (clone before
    /// [`HttpServer::serve`] to fold into metrics).
    pub fn load_gauge(&self) -> Arc<LoadGauge> {
        Arc::clone(&self.load)
    }

    /// Serves until shutdown: accepts on the calling thread, handles
    /// requests on the worker pool, joins everything, returns counters.
    pub fn serve(self, handler: Handler) -> ServerStats {
        let workers = if self.config.workers == 0 {
            std::thread::available_parallelism().map_or(2, |n| n.get())
        } else {
            self.config.workers
        };
        let (tx, rx) = mpsc::channel::<TcpStream>();
        let rx = Arc::new(Mutex::new(rx));
        let (shed_tx, shed_rx) = mpsc::channel::<TcpStream>();
        let requests = Arc::new(AtomicU64::new(0));
        let mut connections = 0u64;

        std::thread::scope(|scope| {
            // One dedicated shedder: rejected connections cost the
            // accept loop a channel send and nothing more, so a shed
            // storm cannot delay the admission of acceptable traffic.
            let retry_after_s = self.config.retry_after_s;
            scope.spawn(move || {
                while let Ok(stream) = shed_rx.recv() {
                    shed_connection(stream, retry_after_s);
                }
            });
            for _ in 0..workers {
                let rx = Arc::clone(&rx);
                let handler = Arc::clone(&handler);
                let config = &self.config;
                let shutdown = self.shutdown.clone();
                let requests = Arc::clone(&requests);
                let protocol_errors = Arc::clone(&self.protocol_errors);
                let load = Arc::clone(&self.load);
                scope.spawn(move || loop {
                    // Hold the receiver lock only for the dequeue.
                    let conn = match rx.lock().unwrap_or_else(|e| e.into_inner()).recv() {
                        Ok(conn) => conn,
                        Err(_) => break, // accept loop closed the channel
                    };
                    load.queued.fetch_sub(1, Ordering::Relaxed);
                    let served = serve_connection(
                        conn,
                        config,
                        &handler,
                        &shutdown,
                        &protocol_errors,
                        &load,
                    );
                    requests.fetch_add(served, Ordering::Relaxed);
                });
            }

            for conn in self.listener.incoming() {
                if self.shutdown.is_shutdown() {
                    break; // the wake connection (or any racer) lands here
                }
                match conn {
                    Ok(stream) => {
                        // Admission gate: past the watermark a queued
                        // connection would wait for a worker with no
                        // bound, so shed it *now* with an honest 429.
                        if self.config.shed_watermark > 0
                            && self.load.queued.load(Ordering::Relaxed)
                                >= self.config.shed_watermark
                        {
                            self.load.shed_total.fetch_add(1, Ordering::Relaxed);
                            let _ = shed_tx.send(stream);
                            continue;
                        }
                        connections += 1;
                        self.load.queued.fetch_add(1, Ordering::Relaxed);
                        if tx.send(stream).is_err() {
                            break;
                        }
                    }
                    Err(e) if e.kind() == ErrorKind::ConnectionAborted => continue,
                    Err(_) => break,
                }
            }
            drop(tx); // workers drain queued connections, then exit
            drop(shed_tx); // the shedder drains its backlog, then exits
        });

        ServerStats {
            connections,
            requests: requests.load(Ordering::Relaxed),
        }
    }
}

/// How often a blocked read wakes to re-check the shutdown flag. A
/// worker parked on an idle keep-alive connection notices a drain
/// within this interval instead of holding shutdown hostage for the
/// full idle timeout.
const READ_POLL: Duration = Duration::from_millis(100);

/// Answers a connection the admission gate rejected: a one-line 429
/// with `Retry-After`, then an orderly close. Runs on the dedicated
/// shedder thread with every step timeout-bounded, so a slow client
/// can neither stall the accept loop nor hold the shedder hostage.
///
/// The close is half-close-then-drain, not an immediate teardown:
/// closing a socket with the client's unread request bytes still
/// buffered makes the kernel send RST, which can destroy the 429
/// before the client reads it. Sending FIN first and then draining
/// (briefly — the timeout bounds a malicious dribbler) lets the 429
/// land and the connection die with a clean FIN exchange.
fn shed_connection(mut stream: TcpStream, retry_after_s: u32) {
    let _ = stream.set_write_timeout(Some(Duration::from_millis(250)));
    let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
    let _ = stream.set_nodelay(true);
    let response = HttpResponse::error(429, "server saturated; retry later")
        .with_header("Retry-After", retry_after_s.to_string());
    let _ = write_response(&mut stream, &response, false);
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut sink = [0u8; 4096];
    let deadline = std::time::Instant::now() + Duration::from_millis(250);
    while std::time::Instant::now() < deadline {
        match stream.read(&mut sink) {
            Ok(0) | Err(_) => break, // client saw the FIN and closed
            Ok(_) => {}              // discard whatever was in flight
        }
    }
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

/// Serves one connection for its keep-alive lifetime; returns how many
/// requests were answered.
fn serve_connection(
    mut stream: TcpStream,
    config: &HttpConfig,
    handler: &Handler,
    shutdown: &ShutdownHandle,
    protocol_errors: &AtomicU64,
    load: &LoadGauge,
) -> u64 {
    let _ = stream.set_read_timeout(Some(READ_POLL.min(config.read_timeout)));
    let _ = stream.set_nodelay(true);
    let mut served = 0u64;
    let mut buffered: Vec<u8> = Vec::new();
    while served < config.max_requests_per_conn as u64 && !shutdown.is_shutdown() {
        let (request, keep_alive) = match read_request(&mut stream, &mut buffered, config, shutdown)
        {
            Ok(Some(parsed)) => parsed,
            Ok(None) => break, // orderly close, idle timeout or drain
            Err(failure) => {
                protocol_errors.fetch_add(1, Ordering::Relaxed);
                let _ = write_response(&mut stream, &failure, false);
                // Closing with unread bytes in the kernel receive queue
                // makes TCP send RST, which discards the error response
                // before the client reads it (a 413's natural fate: the
                // oversized body is still in flight). Stop the client
                // and discard what it already sent — bounded — so the
                // close degrades to FIN and the status line survives.
                let _ = stream.shutdown(std::net::Shutdown::Write);
                discard_pending(&mut stream, config);
                served += 1;
                break;
            }
        };
        // A handler panic must not take the worker down with it: catch,
        // serve a 500, keep the connection policy honest.
        load.in_flight.fetch_add(1, Ordering::Relaxed);
        let response = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| handler(&request)))
            .unwrap_or_else(|_| HttpResponse::error(500, "handler panicked"));
        load.in_flight.fetch_sub(1, Ordering::Relaxed);
        // The advertised connection state must match what happens next:
        // the response that exhausts the per-connection request cap (or
        // lands during a drain) says `Connection: close`.
        let keep_alive = keep_alive
            && !shutdown.is_shutdown()
            && served + 1 < config.max_requests_per_conn as u64;
        served += 1;
        if write_response(&mut stream, &response, keep_alive).is_err() || !keep_alive {
            break;
        }
    }
    served
}

/// Reads and discards whatever the client is still sending after an
/// error response, bounded in bytes (one max body + slack) and time
/// (one read timeout), so the subsequent close is a FIN the response
/// survives rather than a response-destroying RST.
fn discard_pending(stream: &mut TcpStream, config: &HttpConfig) {
    let started = std::time::Instant::now();
    let mut remaining = config.max_body_bytes + (64 << 10);
    let mut chunk = [0u8; 4096];
    while remaining > 0 && started.elapsed() < config.read_timeout {
        match stream.read(&mut chunk) {
            Ok(0) => break, // client saw our FIN and closed too
            Ok(n) => remaining = remaining.saturating_sub(n),
            Err(e) if is_timeout(&e) || e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => break,
        }
    }
}

/// Reads one request off the connection. `Ok(None)` = clean end of the
/// keep-alive conversation (EOF, idle timeout before any byte, or a
/// shutdown drain reaching an idle connection); `Err(response)` = a
/// protocol violation to report before closing.
///
/// The socket's read timeout is the short [`READ_POLL`] interval, so
/// blocked reads are really a poll loop: each wake re-checks the
/// shutdown flag (an idle connection never delays a drain) and the
/// accumulated idle time against [`HttpConfig::read_timeout`].
fn read_request(
    stream: &mut TcpStream,
    buffered: &mut Vec<u8>,
    config: &HttpConfig,
    shutdown: &ShutdownHandle,
) -> Result<Option<(HttpRequest, bool)>, HttpResponse> {
    // Phase 1: accumulate the header block. `request_started` is set by
    // the request's first byte and bounds the *whole* receive
    // (`request_deadline`): the per-read idle timeout alone cannot stop
    // a slow-drip client whose every byte resets it.
    let mut last_activity = std::time::Instant::now();
    let mut request_started: Option<std::time::Instant> = if buffered.is_empty() {
        None
    } else {
        Some(std::time::Instant::now())
    };
    let overdue = |started: &Option<std::time::Instant>| {
        started.is_some_and(|t| t.elapsed() > config.request_deadline)
    };
    let header_end = loop {
        if let Some(end) = find_double_crlf(buffered) {
            if end > config.max_header_bytes {
                return Err(HttpResponse::error(431, "header block too large"));
            }
            break end;
        }
        if buffered.len() > config.max_header_bytes {
            return Err(HttpResponse::error(431, "header block too large"));
        }
        if overdue(&request_started) {
            return Err(HttpResponse::error(408, "request took too long to arrive")
                .with_header("Retry-After", config.retry_after_s.to_string()));
        }
        let mut chunk = [0u8; 4096];
        match stream.read(&mut chunk) {
            Ok(0) => {
                return if buffered.is_empty() {
                    Ok(None)
                } else {
                    Err(HttpResponse::error(400, "truncated request"))
                };
            }
            Ok(n) => {
                buffered.extend_from_slice(&chunk[..n]);
                last_activity = std::time::Instant::now();
                request_started.get_or_insert(last_activity);
            }
            Err(e) if is_timeout(&e) => {
                if buffered.is_empty() && shutdown.is_shutdown() {
                    return Ok(None); // drain reached an idle connection
                }
                if last_activity.elapsed() < config.read_timeout {
                    continue; // poll tick, not a real timeout
                }
                return if buffered.is_empty() {
                    Ok(None) // idle keep-alive connection: close quietly
                } else {
                    Err(HttpResponse::error(400, "request read timed out"))
                };
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => return Ok(None),
        }
    };

    let header_text = std::str::from_utf8(&buffered[..header_end])
        .map_err(|_| HttpResponse::error(400, "headers are not valid utf-8"))?
        .to_string();
    let mut lines = header_text.split("\r\n");
    let request_line = lines
        .next()
        .ok_or_else(|| HttpResponse::error(400, "missing request line"))?;
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty())
        .ok_or_else(|| HttpResponse::error(400, "missing method"))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or_else(|| HttpResponse::error(400, "missing request target"))?
        .to_string();
    let version = parts
        .next()
        .ok_or_else(|| HttpResponse::error(400, "missing HTTP version"))?;
    if !matches!(version, "HTTP/1.1" | "HTTP/1.0") {
        return Err(HttpResponse::error(400, "unsupported HTTP version"));
    }

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpResponse::error(400, "malformed header line"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let header_of = |name: &str| {
        headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    };
    if header_of("transfer-encoding").is_some() {
        return Err(HttpResponse::error(
            411,
            "chunked bodies are not supported; send Content-Length",
        ));
    }
    // RFC 9110 §8.6: duplicate Content-Length headers are a
    // request-smuggling vector (an intermediary honoring a different
    // occurrence desyncs on message boundaries) — reject outright.
    if headers
        .iter()
        .filter(|(k, _)| k == "content-length")
        .count()
        > 1
    {
        return Err(HttpResponse::error(400, "duplicate Content-Length"));
    }
    let content_length = match header_of("content-length") {
        None => 0usize,
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| HttpResponse::error(400, "invalid Content-Length"))?,
    };
    if content_length > config.max_body_bytes {
        return Err(HttpResponse::error(413, "request body too large"));
    }

    // Phase 2: the body — whatever followed the header block in the
    // buffer plus the remainder off the socket.
    let body_start = header_end + 4;
    let mut body: Vec<u8> = buffered[body_start.min(buffered.len())..].to_vec();
    // Anything past this request's body belongs to the next pipelined
    // request on the connection.
    let surplus = body.split_off(body.len().min(content_length));
    *buffered = surplus;
    let mut last_activity = std::time::Instant::now();
    while body.len() < content_length {
        if overdue(&request_started) {
            return Err(HttpResponse::error(408, "request took too long to arrive")
                .with_header("Retry-After", config.retry_after_s.to_string()));
        }
        let mut chunk = [0u8; 4096];
        match stream.read(&mut chunk) {
            Ok(0) => return Err(HttpResponse::error(400, "truncated request body")),
            Ok(n) => {
                let needed = content_length - body.len();
                body.extend_from_slice(&chunk[..n.min(needed)]);
                if n > needed {
                    buffered.extend_from_slice(&chunk[needed..n]);
                }
                last_activity = std::time::Instant::now();
            }
            Err(e) if is_timeout(&e) => {
                if last_activity.elapsed() < config.read_timeout {
                    continue; // poll tick, not a real timeout
                }
                return Err(HttpResponse::error(400, "request body read timed out"));
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => return Err(HttpResponse::error(400, "connection error mid-body")),
        }
    }

    let keep_alive = match header_of("connection").map(str::to_ascii_lowercase) {
        Some(v) if v == "close" => false,
        Some(v) if v == "keep-alive" => true,
        _ => version == "HTTP/1.1", // protocol default
    };
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target, String::new()),
    };
    Ok(Some((
        HttpRequest {
            method,
            path,
            query,
            headers,
            body,
        },
        keep_alive,
    )))
}

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut)
}

fn find_double_crlf(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn write_response(
    stream: &mut TcpStream,
    response: &HttpResponse,
    keep_alive: bool,
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
        response.status,
        status_reason(response.status),
        response.content_type,
        response.body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    for (name, value) in &response.headers {
        use std::fmt::Write as _;
        let _ = write!(head, "{name}: {value}\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(&response.body)?;
    stream.flush()
}

// ───────────────────────── signal handling ─────────────────────────

/// The process-wide "a termination signal arrived" flag. Signal
/// handlers may only do async-signal-safe work; a relaxed store is.
static SIGNAL_FLAG: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
extern "C" fn on_termination_signal(_signum: i32) {
    SIGNAL_FLAG.store(true, Ordering::Relaxed);
}

/// Installs SIGINT/SIGTERM hooks (libc `signal`, linked by std on every
/// unix target — no crate dependency) and spawns a watcher thread that
/// converts the flag into a graceful [`ShutdownHandle::shutdown`].
///
/// On non-unix targets this is a no-op: ctrl-c falls back to the OS
/// default of killing the process.
pub fn shutdown_on_signals(handle: ShutdownHandle) {
    #[cfg(unix)]
    {
        extern "C" {
            fn signal(signum: i32, handler: extern "C" fn(i32)) -> isize;
        }
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        unsafe {
            signal(SIGINT, on_termination_signal);
            signal(SIGTERM, on_termination_signal);
        }
    }
    std::thread::spawn(move || loop {
        // `swap` consumes the flag: a later daemon in the same process
        // must not be shut down by a signal its predecessor absorbed.
        if SIGNAL_FLAG.swap(false, Ordering::Relaxed) || handle.is_shutdown() {
            handle.shutdown();
            break;
        }
        std::thread::sleep(Duration::from_millis(100));
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{obj, Json};
    use std::io::{BufRead, BufReader};

    fn echo_server(
        config: HttpConfig,
    ) -> (
        SocketAddr,
        ShutdownHandle,
        std::thread::JoinHandle<ServerStats>,
    ) {
        let server = HttpServer::bind(config).expect("binds");
        let addr = server.local_addr();
        let handle = server.shutdown_handle();
        let join = std::thread::spawn(move || {
            server.serve(Arc::new(|req: &HttpRequest| match req.path.as_str() {
                "/echo" => HttpResponse::json(
                    200,
                    &obj([
                        ("method", Json::from(req.method.as_str())),
                        ("len", Json::from(req.body.len())),
                    ]),
                ),
                "/panic" => panic!("handler exploded"),
                _ => HttpResponse::error(404, "no such route"),
            }))
        });
        (addr, handle, join)
    }

    fn raw_round_trip(addr: SocketAddr, request: &str) -> String {
        let mut stream = TcpStream::connect(addr).expect("connects");
        stream.write_all(request.as_bytes()).expect("writes");
        let mut reply = String::new();
        let mut reader = BufReader::new(stream);
        loop {
            let mut line = String::new();
            match reader.read_line(&mut line) {
                Ok(0) => break,
                Ok(_) => reply.push_str(&line),
                Err(_) => break,
            }
        }
        reply
    }

    #[test]
    fn serves_parses_and_shuts_down_cleanly() {
        let (addr, handle, join) = echo_server(HttpConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            read_timeout: Duration::from_millis(500),
            ..HttpConfig::default()
        });

        let reply = raw_round_trip(
            addr,
            "POST /echo HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\nConnection: close\r\n\r\nhello",
        );
        assert!(reply.starts_with("HTTP/1.1 200 OK"), "{reply}");
        assert!(reply.contains(r#""len":5"#), "{reply}");

        let reply = raw_round_trip(addr, "GET /nope HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert!(reply.starts_with("HTTP/1.1 404"), "{reply}");

        handle.shutdown();
        let stats = join.join().expect("server thread joins");
        assert!(stats.requests >= 2);
    }

    #[test]
    fn keep_alive_serves_multiple_requests_on_one_connection() {
        let (addr, handle, join) = echo_server(HttpConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 1,
            read_timeout: Duration::from_millis(500),
            ..HttpConfig::default()
        });
        let mut stream = TcpStream::connect(addr).expect("connects");
        for i in 0..3 {
            let body = "x".repeat(i + 1);
            let req = format!(
                "POST /echo HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            );
            stream.write_all(req.as_bytes()).expect("writes");
            let mut reader = BufReader::new(stream.try_clone().expect("clone"));
            let mut status = String::new();
            reader.read_line(&mut status).expect("status line");
            assert!(status.starts_with("HTTP/1.1 200"), "req {i}: {status}");
            // Drain headers + the exact body, leaving the stream clean.
            let mut content_length = 0usize;
            loop {
                let mut line = String::new();
                reader.read_line(&mut line).expect("header line");
                if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
                    content_length = v.trim().parse().expect("length");
                }
                if line == "\r\n" {
                    break;
                }
            }
            let mut body = vec![0u8; content_length];
            reader.read_exact(&mut body).expect("body");
        }
        handle.shutdown();
        let stats = join.join().expect("joins");
        assert_eq!(stats.requests, 3);
        assert_eq!(stats.connections, 1);
    }

    #[test]
    fn size_limits_and_bad_requests_are_typed_statuses() {
        let (addr, handle, join) = echo_server(HttpConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 1,
            max_body_bytes: 64,
            max_header_bytes: 256,
            read_timeout: Duration::from_millis(300),
            ..HttpConfig::default()
        });

        let reply = raw_round_trip(
            addr,
            "POST /echo HTTP/1.1\r\nContent-Length: 100000\r\n\r\n",
        );
        assert!(reply.starts_with("HTTP/1.1 413"), "{reply}");

        let big_header = format!("GET /echo HTTP/1.1\r\nX-Big: {}\r\n\r\n", "y".repeat(1000));
        let reply = raw_round_trip(addr, &big_header);
        assert!(reply.starts_with("HTTP/1.1 431"), "{reply}");

        let reply = raw_round_trip(addr, "BROKEN\r\n\r\n");
        assert!(reply.starts_with("HTTP/1.1 400"), "{reply}");

        // Duplicate Content-Length is a smuggling vector: rejected.
        let reply = raw_round_trip(
            addr,
            "POST /echo HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 20\r\n\r\nhi",
        );
        assert!(reply.starts_with("HTTP/1.1 400"), "{reply}");

        // An oversized upload must still *receive* its 413: the server
        // drains the announced body instead of RST-ing the response.
        let mut stream = TcpStream::connect(addr).expect("connects");
        let body = vec![b'x'; 300];
        stream
            .write_all(b"POST /echo HTTP/1.1\r\nContent-Length: 300\r\n\r\n")
            .expect("head");
        stream.write_all(&body).expect("body");
        let mut reply = String::new();
        let mut reader = BufReader::new(stream);
        reader.read_line(&mut reply).expect("status line arrives");
        assert!(reply.starts_with("HTTP/1.1 413"), "{reply}");

        let reply = raw_round_trip(
            addr,
            "POST /echo HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
        );
        assert!(reply.starts_with("HTTP/1.1 411"), "{reply}");

        handle.shutdown();
        join.join().expect("joins");
    }

    #[test]
    fn handler_panic_becomes_500_not_a_dead_worker() {
        let (addr, handle, join) = echo_server(HttpConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 1,
            read_timeout: Duration::from_millis(500),
            ..HttpConfig::default()
        });
        let reply = raw_round_trip(addr, "GET /panic HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert!(reply.starts_with("HTTP/1.1 500"), "{reply}");
        // The single worker must still be alive to serve this.
        let reply = raw_round_trip(
            addr,
            "POST /echo HTTP/1.1\r\nContent-Length: 0\r\nConnection: close\r\n\r\n",
        );
        assert!(reply.starts_with("HTTP/1.1 200"), "{reply}");
        handle.shutdown();
        join.join().expect("joins");
    }

    #[test]
    fn admission_gate_sheds_past_the_watermark_with_429() {
        let server = HttpServer::bind(HttpConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 1,
            shed_watermark: 1,
            retry_after_s: 3,
            read_timeout: Duration::from_millis(500),
            ..HttpConfig::default()
        })
        .expect("binds");
        let addr = server.local_addr();
        let handle = server.shutdown_handle();
        let load = server.load_gauge();
        let join = std::thread::spawn(move || {
            server.serve(Arc::new(|_req: &HttpRequest| {
                std::thread::sleep(Duration::from_millis(600));
                HttpResponse::text(200, "finally")
            }))
        });

        // Occupy the single worker and wait until its handler is truly
        // in flight (so the next connection parks in the queue instead
        // of racing the dequeue).
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        let mut busy = TcpStream::connect(addr).expect("connects");
        busy.write_all(b"GET /slow HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n")
            .expect("writes");
        while load.in_flight.load(Ordering::Relaxed) < 1 {
            assert!(
                std::time::Instant::now() < deadline,
                "the busy request never reached the handler"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
        // Park one more connection in the queue: that reaches the
        // watermark.
        let _parked = TcpStream::connect(addr).expect("connects");
        while load.queued.load(Ordering::Relaxed) < 1 {
            assert!(
                std::time::Instant::now() < deadline,
                "the parked connection never reached the queue"
            );
            std::thread::sleep(Duration::from_millis(10));
        }

        // The next connection must be shed immediately with 429.
        let reply = raw_round_trip(addr, "GET /slow HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(reply.starts_with("HTTP/1.1 429"), "{reply}");
        assert!(reply.contains("Retry-After: 3"), "{reply}");
        assert_eq!(load.shed_total.load(Ordering::Relaxed), 1);

        handle.shutdown();
        join.join().expect("joins");
    }

    #[test]
    fn shutdown_without_traffic_returns_promptly() {
        let (_, handle, join) = echo_server(HttpConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            ..HttpConfig::default()
        });
        handle.shutdown();
        handle.shutdown(); // idempotent
        let stats = join.join().expect("joins");
        assert_eq!(stats.requests, 0);
    }
}
