//! A minimal JSON value, writer and tolerant reader.
//!
//! The workspace is offline and dependency-free (no serde), and the
//! daemon's wire format is small, so this is a few hundred lines of
//! recursive-descent parsing and escape-correct rendering instead of a
//! dependency. Design points:
//!
//! * **Tolerant reader.** Unknown object keys are preserved and simply
//!   ignored by the wire layer, so clients may send extra fields;
//!   duplicate keys resolve to the *last* occurrence (matching every
//!   mainstream parser). Structural errors — truncation, bad escapes,
//!   trailing garbage, pathological nesting — are typed
//!   [`JsonError`]s, never panics: this parser faces untrusted network
//!   bytes.
//! * **Round-tripping writer.** Numbers render through Rust's shortest
//!   round-trip float formatting, so a score written by the daemon
//!   parses back to bit-identical `f64` — the serve smoke test pins
//!   verdict bits end to end over the wire.

use std::fmt;

/// Maximum nesting depth the reader accepts. The daemon's schema needs
/// 3; anything deeper than this is an attack or a bug.
const MAX_DEPTH: usize = 64;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (always an `f64`, like JavaScript).
    Num(f64),
    /// A string (escapes already resolved).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object as an ordered key/value list (duplicates resolved to
    /// the last occurrence at access time).
    Obj(Vec<(String, Json)>),
}

/// Why a JSON document failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: &'static str,
    /// Byte offset the error was detected at.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses one complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    ///
    /// # Errors
    ///
    /// A typed [`JsonError`] with the offending byte offset.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing garbage after the JSON document"));
        }
        Ok(value)
    }

    /// Object field lookup (last occurrence wins on duplicates);
    /// `None` for missing keys and non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Renders the value as compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => render_number(*n, out),
            Json::Str(s) => render_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(key, out);
                    out.push(':');
                    value.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

/// Convenience constructors so wire code reads declaratively.
impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Num(n as f64)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

/// Builds an object from `(key, value)` pairs.
pub fn obj(fields: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
    Json::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn render_number(n: f64, out: &mut String) {
    use std::fmt::Write as _;
    if n.is_finite() {
        // Shortest round-trip representation: `f64 → text → f64` is
        // bit-exact, which the golden serve test relies on.
        let _ = write!(out, "{n}");
    } else {
        // JSON has no Inf/NaN; null is the conventional downgrade.
        out.push_str("null");
    }
}

fn render_string(s: &str, out: &mut String) {
    use std::fmt::Write as _;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &'static str) -> JsonError {
        JsonError {
            message,
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, expected: u8, message: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn eat_literal(&mut self, literal: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.eat_literal("true", Json::Bool(true)),
            Some(b'f') => self.eat_literal("false", Json::Bool(false)),
            Some(b'n') => self.eat_literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'{', "expected '{'")?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':' after object key")?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self
                        .peek()
                        .ok_or_else(|| self.err("truncated escape sequence"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let unit = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by an escaped low surrogate.
                            let c = if (0xD800..0xDC00).contains(&unit) {
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.eat(b'u', "expected low surrogate escape")?;
                                    let low = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&low) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let combined = 0x10000
                                        + ((unit as u32 - 0xD800) << 10)
                                        + (low as u32 - 0xDC00);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(unit as u32)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid unicode escape")),
                            }
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                }
                Some(b) if b < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8 by construction).
                    let rest = &self.bytes[self.pos..];
                    let len = utf8_len(rest[0]);
                    let chunk = std::str::from_utf8(&rest[..len.min(rest.len())])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    out.push_str(chunk);
                    self.pos += chunk.len();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, JsonError> {
        let mut value: u16 = 0;
        for _ in 0..4 {
            let b = self
                .peek()
                .ok_or_else(|| self.err("truncated \\u escape"))?;
            let digit = match b {
                b'0'..=b'9' => b - b'0',
                b'a'..=b'f' => b - b'a' + 10,
                b'A'..=b'F' => b - b'A' + 10,
                _ => return Err(self.err("invalid hex digit in \\u escape")),
            };
            value = (value << 4) | digit as u16;
            self.pos += 1;
        }
        Ok(value)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid utf-8 in number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_wire_shapes() {
        let doc = r#"{"bytecode": "0x6001", "platform": "evm", "n": 3.5, "flag": true,
                      "nested": {"a": [1, 2, {"b": null}]}, "extra_ignored": "ok"}"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(v.get("bytecode").unwrap().as_str(), Some("0x6001"));
        assert_eq!(v.get("platform").unwrap().as_str(), Some("evm"));
        assert_eq!(v.get("n").unwrap().as_f64(), Some(3.5));
        assert_eq!(v.get("flag").unwrap().as_bool(), Some(true));
        let nested = v.get("nested").unwrap().get("a").unwrap();
        assert_eq!(nested.as_array().unwrap().len(), 3);
    }

    #[test]
    fn duplicate_keys_resolve_to_last() {
        let v = Json::parse(r#"{"a": 1, "a": 2}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_f64(), Some(2.0));
    }

    #[test]
    fn render_round_trips_scores_bit_exactly() {
        for bits in [
            0x3FE5B791C7F65C58u64, // golden fixture probe scores
            0x3F7B05F5FE2E742D,
            0x0010000000000000, // smallest normal
            0x3FF0000000000000, // 1.0
        ] {
            let f = f64::from_bits(bits);
            let rendered = Json::Num(f).render();
            let back = Json::parse(&rendered).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), bits, "render {rendered}");
        }
    }

    #[test]
    fn escapes_round_trip() {
        let original = "quote\" back\\ newline\n tab\t unicode→ control\u{1}";
        let rendered = Json::Str(original.to_string()).render();
        let back = Json::parse(&rendered).unwrap();
        assert_eq!(back.as_str(), Some(original));
    }

    #[test]
    fn unicode_escapes_parse() {
        let v = Json::parse(r#""\u0041\u00e9\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("Aé😀"));
    }

    #[test]
    fn structural_garbage_is_typed_not_a_panic() {
        for bad in [
            "",
            "{",
            "[1,",
            "\"unterminated",
            "{\"a\" 1}",
            "01x",
            "nul",
            "{\"a\":1} trailing",
            "\"\\q\"",
            "\"\\u12g4\"",
            "\"\\ud800\"", // lone high surrogate
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn depth_bomb_rejected() {
        let bomb = format!("{}1{}", "[".repeat(1000), "]".repeat(1000));
        let err = Json::parse(&bomb).unwrap_err();
        assert_eq!(err.message, "nesting too deep");
    }

    #[test]
    fn obj_builder_renders() {
        let v = obj([("status", Json::from("ok")), ("n", Json::from(2u64))]);
        assert_eq!(v.render(), r#"{"status":"ok","n":2}"#);
    }
}
