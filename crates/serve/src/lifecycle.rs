//! Serving-side model lifecycle: drift telemetry and feedback config.
//!
//! The lifecycle loop (see the crate docs' *Model lifecycle* section)
//! needs the daemon to answer one question continuously: *is the champion
//! still scoring the traffic it was trained for?* This module holds the
//! streaming telemetry that answers it without touching the response
//! path:
//!
//! * **Score-distribution drift** — per-platform streaming histograms of
//!   served scores. Scores accumulate into a *current* window; every
//!   [`DRIFT_WINDOW`] samples the window rotates into the *trailing
//!   baseline* and the L1 distance between the two normalized histograms
//!   becomes the `scamdetect_score_drift{platform=…}` gauge. A model
//!   scoring stable traffic sits near 0; a population shift (or a decayed
//!   model, per Sendner et al.'s scanner study) pushes it toward 2.
//! * **Cache-hit decay** — the verdict cache's lifetime hit ratio minus
//!   its recent-window ratio. Contract populations churn; when recent
//!   traffic stops resembling what the cache memoised, the recent ratio
//!   falls first and the (signed) decay gauge goes positive.
//!
//! Everything here is relaxed atomics: observations race with rotations
//! by design, and a histogram that is off by a handful of samples at the
//! rotation boundary is irrelevant at window sizes of 1024. No lock, no
//! allocation, no effect on scan latency.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use scamdetect_ir::Platform;

/// Score-histogram buckets per platform (`[0,0.1) … [0.9,1]`).
pub const DRIFT_BUCKETS: usize = 10;

/// Samples per drift window; the current histogram rotates into the
/// trailing baseline every this many observations.
pub const DRIFT_WINDOW: u64 = 1024;

/// Scan samples per cache-decay window.
const CACHE_WINDOW: u64 = 1024;

/// Feedback-ingestion configuration for one daemon.
///
/// Part of `ServeConfig`; the daemon opens the log at startup and the
/// `POST /feedback` endpoint appends to it. With no path configured the
/// endpoint answers 409 — ingestion is opt-in because it persists
/// operator input to disk.
#[derive(Debug, Clone, Default)]
pub struct LifecycleConfig {
    /// Path of the append-only feedback log; `None` disables ingestion.
    pub feedback_log: Option<PathBuf>,
    /// Appends between fsyncs (0 = sync every append). Zero value of the
    /// field itself falls back to [`scamdetect::lifecycle::FEEDBACK_FSYNC_EVERY`].
    pub fsync_every: u64,
}

/// One platform's streaming score histogram: a filling current window
/// plus the last completed window as baseline.
struct PlatformDrift {
    current: [AtomicU64; DRIFT_BUCKETS],
    baseline: [AtomicU64; DRIFT_BUCKETS],
    current_total: AtomicU64,
}

impl PlatformDrift {
    const fn new() -> Self {
        PlatformDrift {
            current: [const { AtomicU64::new(0) }; DRIFT_BUCKETS],
            baseline: [const { AtomicU64::new(0) }; DRIFT_BUCKETS],
            current_total: AtomicU64::new(0),
        }
    }

    fn observe(&self, score: f64) {
        let bucket = if score.is_finite() && score > 0.0 {
            ((score * DRIFT_BUCKETS as f64) as usize).min(DRIFT_BUCKETS - 1)
        } else {
            0
        };
        self.current[bucket].fetch_add(1, Ordering::Relaxed);
        let seen = self.current_total.fetch_add(1, Ordering::Relaxed) + 1;
        if seen.is_multiple_of(DRIFT_WINDOW) {
            // Rotate: the filled window becomes the trailing baseline.
            // Racing observers may land a few samples on either side of
            // the swap; at window size 1024 that noise is invisible.
            for i in 0..DRIFT_BUCKETS {
                let v = self.current[i].swap(0, Ordering::Relaxed);
                self.baseline[i].store(v, Ordering::Relaxed);
            }
        }
    }

    fn snapshot(&self, window: DriftWindow) -> [u64; DRIFT_BUCKETS] {
        let source = match window {
            DriftWindow::Current => &self.current,
            DriftWindow::Baseline => &self.baseline,
        };
        let mut out = [0u64; DRIFT_BUCKETS];
        for (slot, v) in out.iter_mut().zip(source.iter()) {
            *slot = v.load(Ordering::Relaxed);
        }
        out
    }

    /// L1 distance between the normalized current and baseline
    /// histograms, in `[0, 2]`; 0 until a baseline window completes.
    fn drift(&self) -> f64 {
        let cur = self.snapshot(DriftWindow::Current);
        let base = self.snapshot(DriftWindow::Baseline);
        let cur_total: u64 = cur.iter().sum();
        let base_total: u64 = base.iter().sum();
        if cur_total == 0 || base_total == 0 {
            return 0.0;
        }
        cur.iter()
            .zip(base.iter())
            .map(|(&c, &b)| (c as f64 / cur_total as f64 - b as f64 / base_total as f64).abs())
            .sum()
    }
}

/// Which drift window to snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriftWindow {
    /// The window currently filling.
    Current,
    /// The last completed window (trailing baseline).
    Baseline,
}

/// Streaming drift telemetry for one daemon lifetime: per-platform score
/// histograms plus the cache-hit decay window. All operations are
/// relaxed atomics; see the module docs for the accuracy contract.
pub struct DriftTelemetry {
    evm: PlatformDrift,
    wasm: PlatformDrift,
    cache_window_total: AtomicU64,
    cache_window_hits: AtomicU64,
    /// Hit ratio of the last completed cache window, as f64 bits; NaN
    /// bits until the first window completes.
    prev_cache_ratio_bits: AtomicU64,
}

impl Default for DriftTelemetry {
    fn default() -> Self {
        DriftTelemetry {
            evm: PlatformDrift::new(),
            wasm: PlatformDrift::new(),
            cache_window_total: AtomicU64::new(0),
            cache_window_hits: AtomicU64::new(0),
            prev_cache_ratio_bits: AtomicU64::new(f64::NAN.to_bits()),
        }
    }
}

impl DriftTelemetry {
    fn platform(&self, platform: Platform) -> &PlatformDrift {
        match platform {
            Platform::Evm => &self.evm,
            Platform::Wasm => &self.wasm,
        }
    }

    /// Feed one served scan into the telemetry: buckets the score under
    /// its platform and advances the cache-decay window.
    pub fn observe_score(&self, platform: Platform, score: f64, cache_hit: bool) {
        self.platform(platform).observe(score);
        if cache_hit {
            self.cache_window_hits.fetch_add(1, Ordering::Relaxed);
        }
        let seen = self.cache_window_total.fetch_add(1, Ordering::Relaxed) + 1;
        if seen.is_multiple_of(CACHE_WINDOW) {
            let hits = self.cache_window_hits.swap(0, Ordering::Relaxed);
            self.cache_window_total.store(0, Ordering::Relaxed);
            let ratio = hits as f64 / CACHE_WINDOW as f64;
            self.prev_cache_ratio_bits
                .store(ratio.to_bits(), Ordering::Relaxed);
        }
    }

    /// Per-platform score drift: L1 distance between the normalized
    /// current and trailing-baseline histograms, `[0, 2]`.
    pub fn score_drift(&self, platform: Platform) -> f64 {
        self.platform(platform).drift()
    }

    /// Raw bucket counts for one platform and window.
    pub fn histogram(&self, platform: Platform, window: DriftWindow) -> [u64; DRIFT_BUCKETS] {
        self.platform(platform).snapshot(window)
    }

    /// Cache-hit ratio over the recent window: the last completed
    /// window's ratio once one exists, else the partial current window
    /// (0 before any sample).
    pub fn recent_cache_ratio(&self) -> f64 {
        let prev = f64::from_bits(self.prev_cache_ratio_bits.load(Ordering::Relaxed));
        if !prev.is_nan() {
            return prev;
        }
        let total = self.cache_window_total.load(Ordering::Relaxed);
        if total == 0 {
            return 0.0;
        }
        self.cache_window_hits.load(Ordering::Relaxed) as f64 / total as f64
    }

    /// Signed cache-hit decay: `lifetime_ratio` (since startup) minus the
    /// recent-window ratio. Positive when recent traffic hits the cache
    /// less than history did — the population is moving away from what
    /// the cache memoised.
    pub fn cache_hit_decay(&self, lifetime_ratio: f64) -> f64 {
        lifetime_ratio - self.recent_cache_ratio()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drift_is_zero_until_a_baseline_exists_then_tracks_shift() {
        let d = DriftTelemetry::default();
        assert_eq!(d.score_drift(Platform::Evm), 0.0);
        // Fill one full window with low scores → becomes the baseline.
        for _ in 0..DRIFT_WINDOW {
            d.observe_score(Platform::Evm, 0.05, false);
        }
        // Identical traffic in the next partial window: drift ~ 0.
        for _ in 0..100 {
            d.observe_score(Platform::Evm, 0.05, false);
        }
        assert!(d.score_drift(Platform::Evm) < 1e-9);
        // Shift the population to high scores: drift approaches 2.
        for _ in 0..(DRIFT_WINDOW - 100) {
            d.observe_score(Platform::Evm, 0.95, false);
        }
        // The window just rotated (low+high mix became baseline); push a
        // pure-high partial window and compare.
        for _ in 0..200 {
            d.observe_score(Platform::Evm, 0.95, false);
        }
        assert!(
            d.score_drift(Platform::Evm) > 0.1,
            "{}",
            d.score_drift(Platform::Evm)
        );
        // Platforms are independent.
        assert_eq!(d.score_drift(Platform::Wasm), 0.0);
    }

    #[test]
    fn scores_land_in_the_right_buckets() {
        let d = DriftTelemetry::default();
        d.observe_score(Platform::Wasm, 0.0, false);
        d.observe_score(Platform::Wasm, 0.05, false);
        d.observe_score(Platform::Wasm, 0.55, false);
        d.observe_score(Platform::Wasm, 1.0, false);
        d.observe_score(Platform::Wasm, f64::NAN, false); // clamps to bucket 0
        let h = d.histogram(Platform::Wasm, DriftWindow::Current);
        assert_eq!(h[0], 3);
        assert_eq!(h[5], 1);
        assert_eq!(h[9], 1);
        assert_eq!(h.iter().sum::<u64>(), 5);
    }

    #[test]
    fn cache_decay_goes_positive_when_recent_hits_fall() {
        let d = DriftTelemetry::default();
        assert_eq!(d.recent_cache_ratio(), 0.0);
        // A full window at 100% hits…
        for _ in 0..CACHE_WINDOW {
            d.observe_score(Platform::Evm, 0.5, true);
        }
        assert!((d.recent_cache_ratio() - 1.0).abs() < 1e-12);
        // …then a full window of misses: recent ratio collapses and the
        // decay against a (historic) 50% lifetime ratio is positive.
        for _ in 0..CACHE_WINDOW {
            d.observe_score(Platform::Evm, 0.5, false);
        }
        assert_eq!(d.recent_cache_ratio(), 0.0);
        assert!(d.cache_hit_decay(0.5) > 0.49);
    }
}
