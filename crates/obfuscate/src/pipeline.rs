//! Leveled obfuscation pipelines for the robustness sweeps (E3).

use crate::evm_passes::{apply_evm_pass, EvmPassKind};
use crate::wasm_passes::{apply_wasm_pass, WasmPassKind};
use rand::rngs::StdRng;
use rand::SeedableRng;
use scamdetect_evm::asm::AsmProgram;
use scamdetect_wasm::module::Module;

/// Obfuscation intensity level, 0 (identity) to 5 (maximum).
///
/// The level determines which passes run and at what per-site intensity,
/// matching the sweep axis of the paper's robustness evaluation:
///
/// | level | added passes |
/// |-------|--------------|
/// | 0 | none |
/// | 1 | junk jumpdests, nop pairs |
/// | 2 | + opcode substitution, constant splitting |
/// | 3 | + dead code, never-taken branches, block splitting |
/// | 4 | + block reordering, partial jump indirection |
/// | 5 | + CFG flattening, full jump indirection |
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObfuscationLevel(u8);

impl ObfuscationLevel {
    /// Creates a level, clamping to the supported `0..=5` range.
    pub fn new(level: u8) -> Self {
        ObfuscationLevel(level.min(5))
    }

    /// The numeric level.
    pub fn get(self) -> u8 {
        self.0
    }

    /// All levels, 0 through 5.
    pub fn all() -> [ObfuscationLevel; 6] {
        [0, 1, 2, 3, 4, 5].map(ObfuscationLevel)
    }

    /// The EVM passes (with intensities) this level applies, in order.
    pub fn evm_passes(self) -> Vec<(EvmPassKind, f64)> {
        use EvmPassKind::*;
        let mut passes = Vec::new();
        if self.0 >= 1 {
            passes.push((JunkJumpdests, 0.15));
            passes.push((NopPairs, 0.15));
        }
        if self.0 >= 2 {
            passes.push((OpcodeSubstitution, 0.5));
            passes.push((ConstantSplitting, 0.5));
        }
        if self.0 >= 3 {
            passes.push((DeadCode, 0.8));
            passes.push((NeverTakenBranches, 0.2));
            passes.push((BlockSplitting, 0.2));
        }
        if self.0 >= 4 {
            passes.push((BlockReordering, 1.0));
            passes.push((JumpIndirection, 0.4));
        }
        if self.0 >= 5 {
            passes.push((Flattening, 0.8));
            passes.push((JumpIndirection, 1.0));
        }
        passes
    }

    /// The WASM passes (with intensities) this level applies, in order.
    pub fn wasm_passes(self) -> Vec<(WasmPassKind, f64)> {
        use WasmPassKind::*;
        let mut passes = Vec::new();
        if self.0 >= 1 {
            passes.push((NopInsertion, 0.2));
        }
        if self.0 >= 2 {
            passes.push((ConstSplitting, 0.5));
        }
        if self.0 >= 3 {
            passes.push((DeadFunctions, 0.7));
            passes.push((BlockWrap, 0.4));
        }
        if self.0 >= 4 {
            passes.push((FunctionReorder, 1.0));
            passes.push((NopInsertion, 0.5));
        }
        if self.0 >= 5 {
            passes.push((ConstSplitting, 1.0));
            passes.push((DeadFunctions, 1.0));
            passes.push((BlockWrap, 0.8));
        }
        passes
    }
}

impl std::fmt::Display for ObfuscationLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// Summary of one obfuscation run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObfuscationReport {
    /// Bytes before.
    pub size_before: usize,
    /// Bytes after.
    pub size_after: usize,
    /// Names of the passes applied, in order.
    pub passes: Vec<&'static str>,
}

impl ObfuscationReport {
    /// Code-size growth factor.
    pub fn growth(&self) -> f64 {
        if self.size_before == 0 {
            1.0
        } else {
            self.size_after as f64 / self.size_before as f64
        }
    }
}

/// Applies the leveled EVM pipeline to a label-form program.
///
/// Deterministic for a given `(seed, level, program)` triple.
///
/// # Examples
///
/// ```
/// use scamdetect_evm::{asm::AsmProgram, opcode::Opcode};
/// use scamdetect_obfuscate::{obfuscate_evm, ObfuscationLevel};
///
/// let mut p = AsmProgram::new();
/// p.push_value(1).push_value(2).op(Opcode::ADD).op(Opcode::STOP);
/// let (obf, report) = obfuscate_evm(&p, ObfuscationLevel::new(3), 42);
/// assert!(report.size_after >= report.size_before);
/// assert!(obf.assemble().is_ok());
/// ```
pub fn obfuscate_evm(
    prog: &AsmProgram,
    level: ObfuscationLevel,
    seed: u64,
) -> (AsmProgram, ObfuscationReport) {
    let size_before = prog.assemble().map(|b| b.len()).unwrap_or(0);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xEB0F_05CA);
    let mut current = AsmProgram::from_ops(prog.ops().to_vec());
    let mut passes = Vec::new();
    for (kind, intensity) in level.evm_passes() {
        current = apply_evm_pass(kind, &current, &mut rng, intensity);
        passes.push(kind.name());
    }
    let size_after = current.assemble().map(|b| b.len()).unwrap_or(0);
    (
        current,
        ObfuscationReport {
            size_before,
            size_after,
            passes,
        },
    )
}

/// Applies the leveled WASM pipeline to a module.
pub fn obfuscate_wasm(
    module: &Module,
    level: ObfuscationLevel,
    seed: u64,
) -> (Module, ObfuscationReport) {
    let size_before = scamdetect_wasm::encode::encode_module(module).len();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0B5F_0CA7);
    let mut current = module.clone();
    let mut passes = Vec::new();
    for (kind, intensity) in level.wasm_passes() {
        current = apply_wasm_pass(kind, &current, &mut rng, intensity);
        passes.push(kind.name());
    }
    let size_after = scamdetect_wasm::encode::encode_module(&current).len();
    (
        current,
        ObfuscationReport {
            size_before,
            size_after,
            passes,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use scamdetect_evm::opcode::Opcode;

    fn tiny_prog() -> AsmProgram {
        let mut p = AsmProgram::new();
        let l = p.new_label();
        p.op(Opcode::CALLVALUE);
        p.jumpi_to(l);
        p.push_value(0).push_value(0).op(Opcode::REVERT);
        p.place_label(l);
        p.push_value(5).push_value(1).op(Opcode::SSTORE);
        p.op(Opcode::STOP);
        p
    }

    #[test]
    fn level_zero_is_identity() {
        let p = tiny_prog();
        let (out, report) = obfuscate_evm(&p, ObfuscationLevel::new(0), 1);
        assert_eq!(out.ops(), p.ops());
        assert!(report.passes.is_empty());
        assert_eq!(report.growth(), 1.0);
    }

    #[test]
    fn levels_monotonically_add_passes() {
        let mut prev = 0;
        for l in ObfuscationLevel::all() {
            let n = l.evm_passes().len();
            assert!(n >= prev, "level {l} has fewer passes than predecessor");
            prev = n;
        }
    }

    #[test]
    fn higher_levels_grow_code() {
        let p = tiny_prog();
        let (_, r1) = obfuscate_evm(&p, ObfuscationLevel::new(1), 7);
        let (_, r5) = obfuscate_evm(&p, ObfuscationLevel::new(5), 7);
        assert!(r5.size_after > r1.size_after);
        assert!(r5.growth() > 1.0);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let p = tiny_prog();
        let (a, _) = obfuscate_evm(&p, ObfuscationLevel::new(4), 99);
        let (b, _) = obfuscate_evm(&p, ObfuscationLevel::new(4), 99);
        assert_eq!(a.ops(), b.ops());
        let (c, _) = obfuscate_evm(&p, ObfuscationLevel::new(4), 100);
        assert_ne!(a.ops(), c.ops());
    }

    #[test]
    fn clamps_out_of_range_levels() {
        assert_eq!(ObfuscationLevel::new(9).get(), 5);
        assert_eq!(ObfuscationLevel::new(9).to_string(), "L5");
    }

    #[test]
    fn wasm_pipeline_roundtrips() {
        let mut m = Module::new();
        let f = m.add_function(
            scamdetect_wasm::types::FuncType::default(),
            vec![],
            vec![
                scamdetect_wasm::instr::Instr::I32Const(5),
                scamdetect_wasm::instr::Instr::Drop,
            ],
        );
        m.export_func("main", f);
        for level in ObfuscationLevel::all() {
            let (out, report) = obfuscate_wasm(&m, level, 3);
            scamdetect_wasm::validate::validate(&out)
                .unwrap_or_else(|e| panic!("level {level}: {e}"));
            assert!(report.size_after >= 8, "level {level}");
        }
    }
}
