//! Semantics-preserving EVM obfuscation passes.
//!
//! All passes transform *label-form* programs ([`AsmProgram`]), so control
//! transfers remain valid by construction after re-assembly. Each pass
//! preserves the observable effects (storage, logs, calls, halt data) of
//! every execution — the property tests in this crate check exactly that
//! by differential execution on the concrete interpreter.
//!
//! The passes implement the transform classes described by BOSC \[22\] and
//! BiAn \[23\] (the paper's §IV): instruction-flow manipulation, data-layout
//! manipulation and control-structure manipulation.

use rand::rngs::StdRng;
use rand::Rng;
use scamdetect_evm::asm::{AsmOp, AsmProgram, Label};
use scamdetect_evm::opcode::Opcode;
use scamdetect_evm::word::U256;

/// The individual EVM passes, in roughly increasing aggressiveness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum EvmPassKind {
    /// Insert unreferenced `JUMPDEST`s (splits blocks, no runtime effect).
    JunkJumpdests,
    /// Insert stack-neutral pairs (`PUSH0 POP`, `PC POP`).
    NopPairs,
    /// Rewrite instruction idioms (`EQ → SUB ISZERO`, commutations, …).
    OpcodeSubstitution,
    /// Split push constants into arithmetic recombinations.
    ConstantSplitting,
    /// Inject unreachable junk code after terminators.
    DeadCode,
    /// Insert never-taken conditional branches.
    NeverTakenBranches,
    /// Split straight-line runs with explicit jumps.
    BlockSplitting,
    /// Make fall-throughs explicit and shuffle code segments.
    BlockReordering,
    /// Route jump targets through memory (defeats static resolution).
    JumpIndirection,
    /// Route unconditional jumps through one dispatcher (flattening).
    Flattening,
}

impl EvmPassKind {
    /// All passes, in canonical order.
    pub fn all() -> [EvmPassKind; 10] {
        use EvmPassKind::*;
        [
            JunkJumpdests,
            NopPairs,
            OpcodeSubstitution,
            ConstantSplitting,
            DeadCode,
            NeverTakenBranches,
            BlockSplitting,
            BlockReordering,
            JumpIndirection,
            Flattening,
        ]
    }

    /// Short machine-readable name.
    pub fn name(self) -> &'static str {
        use EvmPassKind::*;
        match self {
            JunkJumpdests => "junk_jumpdests",
            NopPairs => "nop_pairs",
            OpcodeSubstitution => "opcode_substitution",
            ConstantSplitting => "constant_splitting",
            DeadCode => "dead_code",
            NeverTakenBranches => "never_taken_branches",
            BlockSplitting => "block_splitting",
            BlockReordering => "block_reordering",
            JumpIndirection => "jump_indirection",
            Flattening => "flattening",
        }
    }
}

impl std::fmt::Display for EvmPassKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Applies one pass with the given `intensity` in `[0, 1]` (the fraction
/// of eligible sites transformed).
pub fn apply_evm_pass(
    kind: EvmPassKind,
    prog: &AsmProgram,
    rng: &mut StdRng,
    intensity: f64,
) -> AsmProgram {
    match kind {
        EvmPassKind::JunkJumpdests => junk_jumpdests(prog, rng, intensity),
        EvmPassKind::NopPairs => nop_pairs(prog, rng, intensity),
        EvmPassKind::OpcodeSubstitution => opcode_substitution(prog, rng, intensity),
        EvmPassKind::ConstantSplitting => constant_splitting(prog, rng, intensity),
        EvmPassKind::DeadCode => dead_code(prog, rng, intensity),
        EvmPassKind::NeverTakenBranches => never_taken_branches(prog, rng, intensity),
        EvmPassKind::BlockSplitting => block_splitting(prog, rng, intensity),
        EvmPassKind::BlockReordering => block_reordering(prog, rng),
        EvmPassKind::JumpIndirection => jump_indirection(prog, rng, intensity),
        EvmPassKind::Flattening => flattening(prog, rng, intensity),
    }
}

fn is_terminator_op(op: &AsmOp) -> bool {
    matches!(op, AsmOp::Op(o) if o.is_block_terminator())
}

fn coin(rng: &mut StdRng, p: f64) -> bool {
    rng.random_range(0.0..1.0) < p
}

// ---------------------------------------------------------------------
// Light passes
// ---------------------------------------------------------------------

fn junk_jumpdests(prog: &AsmProgram, rng: &mut StdRng, intensity: f64) -> AsmProgram {
    let mut out = AsmProgram::from_ops(prog.ops().to_vec());
    let mut ops: Vec<AsmOp> = Vec::with_capacity(prog.len());
    for op in prog.ops() {
        if coin(rng, intensity * 0.5) {
            let l = out.new_label();
            ops.push(AsmOp::LabelDef(l));
        }
        ops.push(op.clone());
    }
    AsmProgram::from_ops(ops)
}

fn nop_pairs(prog: &AsmProgram, rng: &mut StdRng, intensity: f64) -> AsmProgram {
    let mut ops: Vec<AsmOp> = Vec::with_capacity(prog.len());
    for op in prog.ops() {
        if coin(rng, intensity * 0.5) {
            if coin(rng, 0.5) {
                ops.push(AsmOp::Push(vec![]));
                ops.push(AsmOp::Op(Opcode::POP));
            } else {
                ops.push(AsmOp::Op(Opcode::PC));
                ops.push(AsmOp::Op(Opcode::POP));
            }
        }
        ops.push(op.clone());
    }
    AsmProgram::from_ops(ops)
}

fn opcode_substitution(prog: &AsmProgram, rng: &mut StdRng, intensity: f64) -> AsmProgram {
    let mut ops: Vec<AsmOp> = Vec::with_capacity(prog.len());
    for op in prog.ops() {
        let substituted = if let AsmOp::Op(o) = op {
            if !coin(rng, intensity) {
                None
            } else {
                match o {
                    Opcode::ADD => Some(vec![AsmOp::Op(Opcode::SWAP1), AsmOp::Op(Opcode::ADD)]),
                    Opcode::MUL => Some(vec![AsmOp::Op(Opcode::SWAP1), AsmOp::Op(Opcode::MUL)]),
                    Opcode::AND => Some(vec![AsmOp::Op(Opcode::SWAP1), AsmOp::Op(Opcode::AND)]),
                    Opcode::OR => Some(vec![
                        // a | b = ~(~a & ~b)
                        AsmOp::Op(Opcode::NOT),
                        AsmOp::Op(Opcode::SWAP1),
                        AsmOp::Op(Opcode::NOT),
                        AsmOp::Op(Opcode::AND),
                        AsmOp::Op(Opcode::NOT),
                    ]),
                    Opcode::EQ => Some(vec![AsmOp::Op(Opcode::SUB), AsmOp::Op(Opcode::ISZERO)]),
                    Opcode::ISZERO => Some(vec![
                        AsmOp::Op(Opcode::ISZERO),
                        AsmOp::Op(Opcode::ISZERO),
                        AsmOp::Op(Opcode::ISZERO),
                    ]),
                    _ => None,
                }
            }
        } else {
            None
        };
        match substituted {
            Some(seq) => ops.extend(seq),
            None => ops.push(op.clone()),
        }
    }
    AsmProgram::from_ops(ops)
}

fn constant_splitting(prog: &AsmProgram, rng: &mut StdRng, intensity: f64) -> AsmProgram {
    let mut ops: Vec<AsmOp> = Vec::with_capacity(prog.len());
    for op in prog.ops() {
        match op {
            AsmOp::Push(bytes) if bytes.len() <= 16 && coin(rng, intensity) => {
                let v = U256::from_be_bytes(bytes);
                let k = U256::from_u64(rng.random::<u64>());
                if coin(rng, 0.5) {
                    // v = (v ^ k) ^ k
                    ops.push(AsmOp::Push(v.xor(&k).to_be_bytes_minimal()));
                    ops.push(AsmOp::Push(k.to_be_bytes_minimal()));
                    ops.push(AsmOp::Op(Opcode::XOR));
                } else {
                    // v = (v - k) + k  (wrapping)
                    ops.push(AsmOp::Push(v.wrapping_sub(&k).to_be_bytes_minimal()));
                    ops.push(AsmOp::Push(k.to_be_bytes_minimal()));
                    ops.push(AsmOp::Op(Opcode::ADD));
                }
            }
            _ => ops.push(op.clone()),
        }
    }
    AsmProgram::from_ops(ops)
}

// ---------------------------------------------------------------------
// Structural passes
// ---------------------------------------------------------------------

/// Opcode pool for junk code (never executed, so the semantics of the
/// pool entries are irrelevant — the *histogram* poisoning is the point).
fn junk_ops(rng: &mut StdRng) -> Vec<AsmOp> {
    let mut out = Vec::new();
    let n = rng.random_range(3..12);
    for _ in 0..n {
        match rng.random_range(0..8) {
            0 => out.push(AsmOp::Push(vec![rng.random::<u8>()])),
            1 => out.push(AsmOp::Op(Opcode::CALLER)),
            2 => out.push(AsmOp::Op(Opcode::ADD)),
            3 => out.push(AsmOp::Op(Opcode::SLOAD)),
            4 => out.push(AsmOp::Op(Opcode::KECCAK256)),
            5 => out.push(AsmOp::Op(Opcode::TIMESTAMP)),
            6 => out.push(AsmOp::Op(Opcode::DUP1)),
            _ => out.push(AsmOp::Op(Opcode::POP)),
        }
    }
    out.push(AsmOp::Op(Opcode::INVALID));
    out
}

fn dead_code(prog: &AsmProgram, rng: &mut StdRng, intensity: f64) -> AsmProgram {
    let ops = prog.ops();
    let mut out: Vec<AsmOp> = Vec::with_capacity(ops.len());
    for (i, op) in ops.iter().enumerate() {
        out.push(op.clone());
        // After an unconditional terminator (and not at the very end),
        // execution cannot reach the next op unless it is a label.
        if is_terminator_op(op) && i + 1 < ops.len() && coin(rng, intensity) {
            out.extend(junk_ops(rng));
        }
    }
    AsmProgram::from_ops(out)
}

fn never_taken_branches(prog: &AsmProgram, rng: &mut StdRng, intensity: f64) -> AsmProgram {
    let mut result = AsmProgram::from_ops(prog.ops().to_vec());
    let mut out: Vec<AsmOp> = Vec::with_capacity(prog.len());
    for op in prog.ops() {
        // Do not inject between a push and its consumer in a way that
        // matters — a full JUMPI sequence is stack-neutral, so anywhere
        // between complete ops is safe.
        if coin(rng, intensity * 0.3) {
            let skip = result.new_label();
            out.push(AsmOp::Push(vec![])); // PUSH0: condition false
            out.push(AsmOp::PushLabel(skip));
            out.push(AsmOp::Op(Opcode::JUMPI));
            out.push(AsmOp::LabelDef(skip));
        }
        out.push(op.clone());
    }
    AsmProgram::from_ops(out)
}

fn block_splitting(prog: &AsmProgram, rng: &mut StdRng, intensity: f64) -> AsmProgram {
    let mut result = AsmProgram::from_ops(prog.ops().to_vec());
    let mut out: Vec<AsmOp> = Vec::with_capacity(prog.len());
    for op in prog.ops() {
        if coin(rng, intensity * 0.3) {
            let next = result.new_label();
            out.push(AsmOp::PushLabel(next));
            out.push(AsmOp::Op(Opcode::JUMP));
            out.push(AsmOp::LabelDef(next));
        }
        out.push(op.clone());
    }
    AsmProgram::from_ops(out)
}

fn block_reordering(prog: &AsmProgram, rng: &mut StdRng) -> AsmProgram {
    // Programs containing raw data cannot be safely reordered.
    if prog.ops().iter().any(|o| matches!(o, AsmOp::Raw(_))) {
        return AsmProgram::from_ops(prog.ops().to_vec());
    }

    // Step 1: make every fall-through into a label explicit.
    let mut explicit: Vec<AsmOp> = Vec::with_capacity(prog.len());
    for op in prog.ops() {
        if let AsmOp::LabelDef(l) = op {
            let needs_jump = match explicit.last() {
                Some(prev) => !is_terminator_op(prev),
                None => false, // program entry falls into the first label
            };
            if needs_jump && !explicit.is_empty() {
                explicit.push(AsmOp::PushLabel(*l));
                explicit.push(AsmOp::Op(Opcode::JUMP));
            }
        }
        explicit.push(op.clone());
    }

    // Step 2: segment at label definitions.
    let mut prologue: Vec<AsmOp> = Vec::new();
    let mut segments: Vec<Vec<AsmOp>> = Vec::new();
    for op in explicit {
        if matches!(op, AsmOp::LabelDef(_)) {
            segments.push(vec![op]);
        } else if let Some(seg) = segments.last_mut() {
            seg.push(op);
        } else {
            prologue.push(op);
        }
    }
    // The first segment stays pinned whenever execution can flow into it
    // from the prologue — including the empty-prologue case, where the
    // first segment IS the program entry.
    let prologue_falls_through = !prologue.last().is_some_and(is_terminator_op);
    // Likewise the final segment may implicitly stop at end of code.
    if let Some(last) = segments.last_mut() {
        if !last.last().is_some_and(is_terminator_op) {
            last.push(AsmOp::Op(Opcode::STOP));
        }
    }

    if segments.len() < 2 {
        let mut all = prologue;
        for s in segments {
            all.extend(s);
        }
        return AsmProgram::from_ops(all);
    }

    // Step 3: shuffle. If the prologue falls through, segment 0 is pinned.
    let pinned_first = prologue_falls_through;
    let start = usize::from(pinned_first);
    let m = segments.len();
    for i in (start + 1..m).rev() {
        let j = rng.random_range(start..=i);
        segments.swap(i, j);
    }

    let mut all = prologue;
    for s in segments {
        all.extend(s);
    }
    AsmProgram::from_ops(all)
}

/// Memory region used for indirected jump targets: far above anything the
/// generated contracts touch.
const INDIRECTION_BASE: u64 = 0x8000;

/// First free slot at or above [`INDIRECTION_BASE`]: composing the pass
/// with itself must not overwrite the earlier application's slots.
fn next_free_indirection_base(ops: &[AsmOp]) -> u64 {
    let mut base = INDIRECTION_BASE;
    for op in ops {
        if let AsmOp::Push(bytes) = op {
            if bytes.len() <= 8 {
                let v = U256::from_be_bytes(bytes);
                if let Some(v) = v.to_usize() {
                    let v = v as u64;
                    if (INDIRECTION_BASE..INDIRECTION_BASE + (1 << 20)).contains(&v) {
                        base = base.max(v + 32);
                    }
                }
            }
        }
    }
    base
}

fn jump_indirection(prog: &AsmProgram, rng: &mut StdRng, intensity: f64) -> AsmProgram {
    let ops = prog.ops();
    // Find (index, label) of PushLabel ops immediately followed by JUMP or
    // JUMPI — those are the resolvable control transfers.
    let mut sites: Vec<(usize, Label)> = Vec::new();
    for i in 0..ops.len().saturating_sub(1) {
        if let (AsmOp::PushLabel(l), AsmOp::Op(o)) = (&ops[i], &ops[i + 1]) {
            if o.is_jump() {
                sites.push((i, *l));
            }
        }
    }
    let chosen: Vec<(usize, Label)> = sites.into_iter().filter(|_| coin(rng, intensity)).collect();
    if chosen.is_empty() {
        return AsmProgram::from_ops(ops.to_vec());
    }

    // Assign each distinct label a memory slot, above any slots a prior
    // application of this pass already claimed.
    let slot_base = next_free_indirection_base(ops);
    let mut slots: Vec<(Label, u64)> = Vec::new();
    for (_, l) in &chosen {
        if !slots.iter().any(|(x, _)| x == l) {
            let slot = slot_base + 32 * slots.len() as u64;
            slots.push((*l, slot));
        }
    }
    let slot_of = |l: Label| slots.iter().find(|(x, _)| *x == l).map(|(_, s)| *s);

    let mut out: Vec<AsmOp> = Vec::with_capacity(ops.len() + slots.len() * 4);
    // Prologue: store each target address into its slot.
    for (l, slot) in &slots {
        out.push(AsmOp::PushLabel(*l));
        out.push(AsmOp::Push(U256::from_u64(*slot).to_be_bytes_minimal()));
        out.push(AsmOp::Op(Opcode::MSTORE));
    }
    // Body: replace chosen PushLabel with PUSH slot; MLOAD. Alternate
    // sites additionally route the slot address through an opaque
    // zero (`slot + CALLVALUE * 0`): the address is the same at runtime
    // but statically unknown, so even a memory-tracking analyzer cannot
    // resolve the load — the BOSC-style opaque-predicate escalation.
    let chosen_idx: Vec<usize> = chosen.iter().map(|(i, _)| *i).collect();
    let mut site_counter = 0usize;
    for (i, op) in ops.iter().enumerate() {
        if chosen_idx.contains(&i) {
            if let AsmOp::PushLabel(l) = op {
                let slot = slot_of(*l).expect("slot assigned");
                out.push(AsmOp::Push(U256::from_u64(slot).to_be_bytes_minimal()));
                if site_counter % 2 == 1 {
                    // slot + callvalue * 0 == slot, opaquely.
                    out.push(AsmOp::Op(Opcode::CALLVALUE));
                    out.push(AsmOp::Push(vec![]));
                    out.push(AsmOp::Op(Opcode::MUL));
                    out.push(AsmOp::Op(Opcode::ADD));
                }
                out.push(AsmOp::Op(Opcode::MLOAD));
                site_counter += 1;
                continue;
            }
        }
        out.push(op.clone());
    }
    AsmProgram::from_ops(out)
}

fn flattening(prog: &AsmProgram, rng: &mut StdRng, intensity: f64) -> AsmProgram {
    let ops = prog.ops();
    // Collect unconditional direct jumps: PushLabel + JUMP.
    let mut sites: Vec<(usize, Label)> = Vec::new();
    for i in 0..ops.len().saturating_sub(1) {
        if let (AsmOp::PushLabel(l), AsmOp::Op(Opcode::JUMP)) = (&ops[i], &ops[i + 1]) {
            if coin(rng, intensity) {
                sites.push((i, *l));
            }
        }
    }
    if sites.is_empty() {
        return AsmProgram::from_ops(ops.to_vec());
    }

    let mut result = AsmProgram::from_ops(ops.to_vec());
    let dispatch = result.new_label();

    // Distinct targets get sequential ids.
    let mut targets: Vec<Label> = Vec::new();
    for (_, l) in &sites {
        if !targets.contains(l) {
            targets.push(*l);
        }
    }
    let id_of = |l: Label| targets.iter().position(|x| *x == l).unwrap() as u64;

    let site_idx: Vec<usize> = sites.iter().map(|(i, _)| *i).collect();
    let mut out: Vec<AsmOp> = Vec::with_capacity(ops.len() + targets.len() * 10);
    let mut skip_next_jump = false;
    for (i, op) in ops.iter().enumerate() {
        if skip_next_jump {
            skip_next_jump = false;
            continue; // the JUMP consumed by the rewrite
        }
        if site_idx.contains(&i) {
            if let AsmOp::PushLabel(l) = op {
                out.push(AsmOp::Push(U256::from_u64(id_of(*l)).to_be_bytes_minimal()));
                out.push(AsmOp::PushLabel(dispatch));
                out.push(AsmOp::Op(Opcode::JUMP));
                skip_next_jump = true;
                continue;
            }
        }
        out.push(op.clone());
    }

    // Dispatcher: sequential compare-and-jump, popping the id on match.
    let mut result2 = AsmProgram::from_ops(out);
    result2.place_label(dispatch);
    for l in &targets {
        let next_check = result2.new_label();
        result2.op(Opcode::DUP1);
        result2.push_value(id_of(*l));
        result2.op(Opcode::EQ);
        result2.op(Opcode::ISZERO);
        result2.jumpi_to(next_check);
        result2.op(Opcode::POP);
        result2.jump_to(*l);
        result2.place_label(next_check);
    }
    result2.op(Opcode::INVALID); // unknown id: unreachable
    result2
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use scamdetect_evm::cfg::build_cfg;
    use scamdetect_evm::interp::{execute, InterpConfig, Outcome, TxContext};
    use std::collections::BTreeMap;

    /// A small "bank" program exercising storage, branches and a loop.
    fn sample_program() -> AsmProgram {
        let mut p = AsmProgram::new();
        let deposit = p.new_label();
        let drain = p.new_label();
        let top = p.new_label();
        let done = p.new_label();
        // dispatch on callvalue: 0 -> drain path, else deposit
        p.op(Opcode::CALLVALUE);
        p.jumpi_to(deposit);
        p.jump_to(drain);

        p.place_label(deposit);
        // storage[1] += callvalue (ADD with SLOAD)
        p.push_value(1);
        p.op(Opcode::SLOAD);
        p.op(Opcode::CALLVALUE);
        p.op(Opcode::ADD);
        p.push_value(1);
        p.op(Opcode::SSTORE);
        p.op(Opcode::STOP);

        p.place_label(drain);
        // loop i=3: storage[i] = i*2; then log; then return 32 bytes
        p.push_value(3);
        p.place_label(top);
        p.op(Opcode::DUP1);
        p.op(Opcode::ISZERO);
        p.jumpi_to(done);
        p.op(Opcode::DUP1);
        p.op(Opcode::DUP1);
        p.push_value(2);
        p.op(Opcode::MUL); // i*2
        p.op(Opcode::SWAP1);
        p.op(Opcode::SSTORE); // storage[i] = i*2
        p.push_value(1);
        p.op(Opcode::SWAP1);
        p.op(Opcode::SUB);
        p.jump_to(top);
        p.place_label(done);
        p.op(Opcode::POP);
        p.push_value(0xfeed).push_value(0).op(Opcode::MSTORE);
        p.push_value(42); // topic
        p.push_value(32).push_value(0); // len off
        p.op(Opcode::LOG1);
        p.push_value(32).push_value(0).op(Opcode::RETURN);
        p
    }

    fn contexts() -> Vec<TxContext> {
        let poor = TxContext {
            callvalue: U256::ZERO,
            ..TxContext::default()
        };
        let rich = TxContext {
            callvalue: U256::from_u64(77),
            ..TxContext::default()
        };
        let with_data = TxContext {
            calldata: vec![0xde, 0xad, 0xbe, 0xef, 1, 2, 3],
            ..TxContext::default()
        };
        vec![poor, rich, with_data]
    }

    fn run(code: &[u8], ctx: &TxContext) -> Outcome {
        execute(code, ctx, &BTreeMap::new(), &InterpConfig::default())
    }

    fn assert_equivalent(kind: EvmPassKind, seed: u64, intensity: f64) {
        let original = sample_program();
        let mut rng = StdRng::seed_from_u64(seed);
        let transformed = apply_evm_pass(kind, &original, &mut rng, intensity);
        let code_a = original.assemble().expect("original assembles");
        let code_b = transformed
            .assemble()
            .unwrap_or_else(|e| panic!("{kind} output assembles: {e}"));
        for (i, ctx) in contexts().iter().enumerate() {
            let oa = run(&code_a, ctx);
            let ob = run(&code_b, ctx);
            assert_eq!(oa, ob, "pass {kind} diverged on context {i} (seed {seed})");
        }
    }

    #[test]
    fn all_passes_preserve_semantics() {
        for kind in EvmPassKind::all() {
            for seed in [1u64, 7, 42] {
                assert_equivalent(kind, seed, 0.8);
            }
        }
    }

    #[test]
    fn passes_change_the_bytes() {
        let original = sample_program().assemble().unwrap();
        for kind in EvmPassKind::all() {
            let mut rng = StdRng::seed_from_u64(123);
            let out = apply_evm_pass(kind, &sample_program(), &mut rng, 1.0)
                .assemble()
                .unwrap();
            assert_ne!(out, original, "pass {kind} was an identity at intensity 1");
        }
    }

    #[test]
    fn jump_indirection_arms_race() {
        let original = sample_program();
        let before = build_cfg(&original.assemble().unwrap());
        assert_eq!(before.unresolved_jump_count(), 0);

        let mut rng = StdRng::seed_from_u64(5);
        let obf = apply_evm_pass(EvmPassKind::JumpIndirection, &original, &mut rng, 1.0);
        let after = build_cfg(&obf.assemble().unwrap());
        // Direct memory-routed sites are RESOLVED by the memory-tracking
        // analyzer (the defender's move)…
        assert!(
            after.resolved_jump_count() > 0,
            "memory tracking must resolve the plain indirect sites"
        );
        // …while the opaque-predicate sites stay beyond static analysis
        // (the attacker's counter-move).
        assert!(
            after.unresolved_jump_count() > 0,
            "opaque slots must remain unresolved"
        );
    }

    #[test]
    fn flattening_routes_jumps_through_dispatcher() {
        let original = sample_program();
        let before = build_cfg(&original.assemble().unwrap());
        let mut rng = StdRng::seed_from_u64(5);
        let obf = apply_evm_pass(EvmPassKind::Flattening, &original, &mut rng, 1.0);
        let after = build_cfg(&obf.assemble().unwrap());
        assert!(after.block_count() > before.block_count());
    }

    #[test]
    fn dead_code_grows_code_without_new_behaviour() {
        let mut rng = StdRng::seed_from_u64(9);
        let original = sample_program();
        let obf = apply_evm_pass(EvmPassKind::DeadCode, &original, &mut rng, 1.0);
        assert!(obf.assemble().unwrap().len() > original.assemble().unwrap().len());
    }

    #[test]
    fn reordering_moves_segments() {
        let mut rng = StdRng::seed_from_u64(11);
        let original = sample_program();
        let obf = apply_evm_pass(EvmPassKind::BlockReordering, &original, &mut rng, 1.0);
        // Same semantic tests pass (covered above); here check order changed.
        assert_ne!(obf.ops(), original.ops());
    }

    #[test]
    fn zero_intensity_is_identity_for_site_passes() {
        let original = sample_program();
        let mut rng = StdRng::seed_from_u64(3);
        for kind in [
            EvmPassKind::ConstantSplitting,
            EvmPassKind::DeadCode,
            EvmPassKind::JumpIndirection,
            EvmPassKind::Flattening,
        ] {
            let out = apply_evm_pass(kind, &original, &mut rng, 0.0);
            assert_eq!(out.ops(), original.ops(), "{kind}");
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = EvmPassKind::all().iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), EvmPassKind::all().len());
    }
}
