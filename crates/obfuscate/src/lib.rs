//! Semantics-preserving bytecode obfuscation for EVM and WASM contracts.
//!
//! ScamDetect's motivating threat (paper §IV) is that obfuscation —
//! control-structure manipulation, instruction-flow rewriting, data-layout
//! changes (BOSC \[22\], BiAn \[23\]) and binary diversification
//! (wasm-mutate \[1\]) — erodes static pattern detectors. This crate
//! *implements that threat* so the evaluation can measure it:
//!
//! * [`evm_passes`] — ten passes over label-form EVM assembly, from junk
//!   `JUMPDEST` insertion up to memory-routed jump indirection and CFG
//!   flattening. All are semantics-preserving; the test suite proves it by
//!   differential execution on the concrete EVM interpreter.
//! * [`wasm_passes`] — five wasm-mutate-style diversification passes.
//! * [`pipeline`] — calibrated intensity levels 0–5 used by the
//!   robustness sweep (experiment E3).
//!
//! # Examples
//!
//! ```
//! use scamdetect_evm::{asm::AsmProgram, opcode::Opcode};
//! use scamdetect_obfuscate::{obfuscate_evm, ObfuscationLevel};
//!
//! let mut p = AsmProgram::new();
//! p.push_value(7).push_value(0).op(Opcode::SSTORE).op(Opcode::STOP);
//!
//! let (obfuscated, report) = obfuscate_evm(&p, ObfuscationLevel::new(5), 1234);
//! assert!(report.growth() > 1.0);          // code grew…
//! assert!(obfuscated.assemble().is_ok());  // …and still assembles.
//! ```

pub mod evm_passes;
pub mod pipeline;
pub mod wasm_passes;

pub use evm_passes::{apply_evm_pass, EvmPassKind};
pub use pipeline::{obfuscate_evm, obfuscate_wasm, ObfuscationLevel, ObfuscationReport};
pub use wasm_passes::{apply_wasm_pass, WasmPassKind};
