//! WASM binary-diversification passes (wasm-mutate style \[1\]).
//!
//! Each pass preserves module semantics: constants are recombined, nops
//! inserted, functions reordered with call-index remapping, dead functions
//! appended, and branch-free regions wrapped in extra blocks. Together
//! they emulate the diversification pressure the paper cites as a threat
//! to static WASM detection.

use rand::rngs::StdRng;
use rand::Rng;
use scamdetect_wasm::instr::{IBinOp, Instr, Width};
use scamdetect_wasm::module::{Function, Module};
use scamdetect_wasm::types::{BlockType, FuncType, ValType};

/// The individual WASM passes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum WasmPassKind {
    /// Insert `nop`s throughout bodies.
    NopInsertion,
    /// Split integer constants into arithmetic recombinations.
    ConstSplitting,
    /// Shuffle function order, remapping call indices.
    FunctionReorder,
    /// Append unreachable junk functions.
    DeadFunctions,
    /// Wrap branch-free instruction runs in redundant blocks.
    BlockWrap,
}

impl WasmPassKind {
    /// All passes in canonical order.
    pub fn all() -> [WasmPassKind; 5] {
        [
            WasmPassKind::NopInsertion,
            WasmPassKind::ConstSplitting,
            WasmPassKind::FunctionReorder,
            WasmPassKind::DeadFunctions,
            WasmPassKind::BlockWrap,
        ]
    }

    /// Short machine-readable name.
    pub fn name(self) -> &'static str {
        match self {
            WasmPassKind::NopInsertion => "nop_insertion",
            WasmPassKind::ConstSplitting => "const_splitting",
            WasmPassKind::FunctionReorder => "function_reorder",
            WasmPassKind::DeadFunctions => "dead_functions",
            WasmPassKind::BlockWrap => "block_wrap",
        }
    }
}

impl std::fmt::Display for WasmPassKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Applies one WASM pass at `intensity` in `[0, 1]`.
pub fn apply_wasm_pass(
    kind: WasmPassKind,
    module: &Module,
    rng: &mut StdRng,
    intensity: f64,
) -> Module {
    match kind {
        WasmPassKind::NopInsertion => nop_insertion(module, rng, intensity),
        WasmPassKind::ConstSplitting => const_splitting(module, rng, intensity),
        WasmPassKind::FunctionReorder => function_reorder(module, rng),
        WasmPassKind::DeadFunctions => dead_functions(module, rng, intensity),
        WasmPassKind::BlockWrap => block_wrap(module, rng, intensity),
    }
}

fn coin(rng: &mut StdRng, p: f64) -> bool {
    rng.random_range(0.0..1.0) < p
}

fn map_bodies(module: &Module, mut f: impl FnMut(&[Instr]) -> Vec<Instr>) -> Module {
    let mut out = module.clone();
    for func in &mut out.functions {
        func.body = f(&func.body);
    }
    out
}

fn nop_insertion(module: &Module, rng: &mut StdRng, intensity: f64) -> Module {
    fn rewrite(body: &[Instr], rng: &mut StdRng, p: f64) -> Vec<Instr> {
        let mut out = Vec::with_capacity(body.len());
        for i in body {
            if coin(rng, p * 0.5) {
                out.push(Instr::Nop);
            }
            out.push(match i {
                Instr::Block { ty, body } => Instr::Block {
                    ty: *ty,
                    body: rewrite(body, rng, p),
                },
                Instr::Loop { ty, body } => Instr::Loop {
                    ty: *ty,
                    body: rewrite(body, rng, p),
                },
                Instr::If { ty, then, els } => Instr::If {
                    ty: *ty,
                    then: rewrite(then, rng, p),
                    els: rewrite(els, rng, p),
                },
                other => other.clone(),
            });
        }
        out
    }
    map_bodies(module, |b| rewrite(b, rng, intensity))
}

fn const_splitting(module: &Module, rng: &mut StdRng, intensity: f64) -> Module {
    fn rewrite(body: &[Instr], rng: &mut StdRng, p: f64) -> Vec<Instr> {
        let mut out = Vec::with_capacity(body.len());
        for i in body {
            match i {
                Instr::I32Const(v) if coin(rng, p) => {
                    let k = rng.random::<i32>();
                    if coin(rng, 0.5) {
                        out.push(Instr::I32Const(v ^ k));
                        out.push(Instr::I32Const(k));
                        out.push(Instr::Binary {
                            width: Width::W32,
                            op: IBinOp::Xor,
                        });
                    } else {
                        out.push(Instr::I32Const(v.wrapping_sub(k)));
                        out.push(Instr::I32Const(k));
                        out.push(Instr::Binary {
                            width: Width::W32,
                            op: IBinOp::Add,
                        });
                    }
                }
                Instr::I64Const(v) if coin(rng, p) => {
                    let k = rng.random::<i64>();
                    out.push(Instr::I64Const(v ^ k));
                    out.push(Instr::I64Const(k));
                    out.push(Instr::Binary {
                        width: Width::W64,
                        op: IBinOp::Xor,
                    });
                }
                Instr::Block { ty, body } => out.push(Instr::Block {
                    ty: *ty,
                    body: rewrite(body, rng, p),
                }),
                Instr::Loop { ty, body } => out.push(Instr::Loop {
                    ty: *ty,
                    body: rewrite(body, rng, p),
                }),
                Instr::If { ty, then, els } => out.push(Instr::If {
                    ty: *ty,
                    then: rewrite(then, rng, p),
                    els: rewrite(els, rng, p),
                }),
                other => out.push(other.clone()),
            }
        }
        out
    }
    map_bodies(module, |b| rewrite(b, rng, intensity))
}

fn function_reorder(module: &Module, rng: &mut StdRng) -> Module {
    let n = module.functions.len();
    if n < 2 {
        return module.clone();
    }
    // permutation[i] = new position of old local function i. Retry the
    // shuffle a few times so "reorder" actually reorders; fall back to a
    // rotation, which is never the identity for n >= 2.
    let mut order: Vec<usize> = (0..n).collect();
    for _ in 0..8 {
        for i in (1..n).rev() {
            let j = rng.random_range(0..=i);
            order.swap(i, j);
        }
        if order.iter().enumerate().any(|(i, &o)| i != o) {
            break;
        }
    }
    if order.iter().enumerate().all(|(i, &o)| i == o) {
        order.rotate_right(1);
    }
    let mut position = vec![0usize; n];
    for (new_pos, &old) in order.iter().enumerate() {
        position[old] = new_pos;
    }

    let imports = module.imports.len() as u32;
    let remap = |idx: u32| -> u32 {
        if idx < imports {
            idx
        } else {
            imports + position[(idx - imports) as usize] as u32
        }
    };

    fn rewrite_calls(body: &[Instr], remap: &dyn Fn(u32) -> u32) -> Vec<Instr> {
        body.iter()
            .map(|i| match i {
                Instr::Call(f) => Instr::Call(remap(*f)),
                Instr::Block { ty, body } => Instr::Block {
                    ty: *ty,
                    body: rewrite_calls(body, remap),
                },
                Instr::Loop { ty, body } => Instr::Loop {
                    ty: *ty,
                    body: rewrite_calls(body, remap),
                },
                Instr::If { ty, then, els } => Instr::If {
                    ty: *ty,
                    then: rewrite_calls(then, remap),
                    els: rewrite_calls(els, remap),
                },
                other => other.clone(),
            })
            .collect()
    }

    let mut out = module.clone();
    let mut new_functions: Vec<Function> = Vec::with_capacity(n);
    for &old in &order {
        let mut f = module.functions[old].clone();
        f.body = rewrite_calls(&f.body, &remap);
        new_functions.push(f);
    }
    out.functions = new_functions;
    for e in &mut out.exports {
        if e.kind == scamdetect_wasm::module::ExportKind::Func {
            e.index = remap(e.index);
        }
    }
    out
}

fn dead_functions(module: &Module, rng: &mut StdRng, intensity: f64) -> Module {
    let mut out = module.clone();
    let count = (intensity * 4.0).ceil() as usize;
    for _ in 0..count {
        let n = rng.random_range(4..16);
        let mut body = Vec::with_capacity(n);
        for _ in 0..n {
            body.push(match rng.random_range(0..6) {
                0 => Instr::I64Const(rng.random()),
                1 => Instr::LocalGet(0),
                2 => Instr::Binary {
                    width: Width::W64,
                    op: IBinOp::Add,
                },
                3 => Instr::Drop,
                4 => Instr::I32Const(rng.random()),
                _ => Instr::Nop,
            });
        }
        // A junk function is never called, so an arbitrarily ill-typed body
        // would still never trap — but keep it decodable and validateable:
        // end with unreachable so no result is required.
        body.push(Instr::Unreachable);
        let type_idx = out.intern_type(FuncType::new(vec![ValType::I64], vec![]));
        out.functions.push(Function {
            type_idx,
            locals: vec![(2, ValType::I64)],
            body,
        });
    }
    out
}

fn block_wrap(module: &Module, rng: &mut StdRng, intensity: f64) -> Module {
    fn contains_branches(body: &[Instr]) -> bool {
        body.iter().any(|i| match i {
            Instr::Br(_) | Instr::BrIf(_) | Instr::BrTable { .. } => true,
            Instr::Block { body, .. } | Instr::Loop { body, .. } => contains_branches(body),
            Instr::If { then, els, .. } => contains_branches(then) || contains_branches(els),
            _ => false,
        })
    }
    /// `Some((pops, pushes))` for leaf instructions with a fixed stack
    /// effect; `None` for anything not safely wrappable (control, calls).
    fn stack_effect(i: &Instr) -> Option<(usize, usize)> {
        Some(match i {
            Instr::Nop => (0, 0),
            Instr::I32Const(_) | Instr::I64Const(_) => (0, 1),
            Instr::LocalGet(_) | Instr::GlobalGet(_) | Instr::MemorySize => (0, 1),
            Instr::LocalSet(_) | Instr::GlobalSet(_) | Instr::Drop => (1, 0),
            Instr::LocalTee(_) | Instr::Load { .. } | Instr::MemoryGrow => (1, 1),
            Instr::Eqz(_) | Instr::Unary { .. } => (1, 1),
            Instr::I32WrapI64 | Instr::I64ExtendI32S | Instr::I64ExtendI32U => (1, 1),
            Instr::Rel { .. } | Instr::Binary { .. } => (2, 1),
            Instr::Store { .. } => (2, 0),
            Instr::Select => (3, 1),
            _ => return None,
        })
    }

    /// A run is wrappable in a result-less block iff no prefix pops below
    /// the block floor and the net stack delta is zero.
    fn is_balanced(slice: &[Instr]) -> bool {
        let mut depth: isize = 0;
        for i in slice {
            let Some((pops, pushes)) = stack_effect(i) else {
                return false;
            };
            depth -= pops as isize;
            if depth < 0 {
                return false;
            }
            depth += pushes as isize;
        }
        depth == 0
    }

    fn rewrite(body: &[Instr], rng: &mut StdRng, p: f64) -> Vec<Instr> {
        let mut out: Vec<Instr> = Vec::with_capacity(body.len());
        let mut i = 0;
        while i < body.len() {
            // Try to wrap a short run starting here.
            if coin(rng, p * 0.3) {
                let max_len = (body.len() - i).min(4);
                let mut wrapped = false;
                for len in (2..=max_len).rev() {
                    let slice = &body[i..i + len];
                    if !contains_branches(slice) && is_balanced(slice) {
                        out.push(Instr::Block {
                            ty: BlockType::Empty,
                            body: slice.to_vec(),
                        });
                        i += len;
                        wrapped = true;
                        break;
                    }
                }
                if wrapped {
                    continue;
                }
                // Fallback: a redundant nop-block is always valid and still
                // perturbs the CFG with an extra join node.
                out.push(Instr::Block {
                    ty: BlockType::Empty,
                    body: vec![Instr::Nop],
                });
            }
            out.push(match &body[i] {
                Instr::Block { ty, body } => Instr::Block {
                    ty: *ty,
                    body: rewrite(body, rng, p),
                },
                Instr::Loop { ty, body } => Instr::Loop {
                    ty: *ty,
                    body: rewrite(body, rng, p),
                },
                Instr::If { ty, then, els } => Instr::If {
                    ty: *ty,
                    then: rewrite(then, rng, p),
                    els: rewrite(els, rng, p),
                },
                other => other.clone(),
            });
            i += 1;
        }
        out
    }
    map_bodies(module, |b| rewrite(b, rng, intensity))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use scamdetect_wasm::decode::decode_module;
    use scamdetect_wasm::encode::encode_module;
    use scamdetect_wasm::hostenv::{idx, import_standard_env};
    use scamdetect_wasm::validate::validate;

    fn sample_module() -> Module {
        let mut m = Module::new();
        let env = import_standard_env(&mut m);
        let helper = m.add_function(
            FuncType::new(vec![ValType::I64], vec![ValType::I64]),
            vec![],
            vec![
                Instr::LocalGet(0),
                Instr::I64Const(2),
                Instr::Binary {
                    width: Width::W64,
                    op: IBinOp::Mul,
                },
            ],
        );
        let main = m.add_function(
            FuncType::default(),
            vec![(1, ValType::I64)],
            vec![
                Instr::Call(env[idx::CALLER] as u32),
                Instr::LocalSet(0),
                Instr::Block {
                    ty: BlockType::Empty,
                    body: vec![
                        Instr::LocalGet(0),
                        Instr::Eqz(Width::W64),
                        Instr::BrIf(0),
                        Instr::LocalGet(0),
                        Instr::Call(helper),
                        Instr::I64Const(10),
                        Instr::Call(env[idx::TRANSFER] as u32),
                    ],
                },
            ],
        );
        m.export_func("main", main);
        m
    }

    #[test]
    fn all_passes_produce_valid_decodable_modules() {
        for kind in WasmPassKind::all() {
            for seed in [1u64, 9, 33] {
                let mut rng = StdRng::seed_from_u64(seed);
                let out = apply_wasm_pass(kind, &sample_module(), &mut rng, 0.9);
                validate(&out).unwrap_or_else(|e| panic!("{kind} invalid: {e}"));
                let bytes = encode_module(&out);
                let back = decode_module(&bytes).unwrap_or_else(|e| panic!("{kind}: {e}"));
                assert_eq!(back, out, "{kind} roundtrip");
            }
        }
    }

    #[test]
    fn passes_change_the_module() {
        for kind in WasmPassKind::all() {
            let mut rng = StdRng::seed_from_u64(2024);
            let out = apply_wasm_pass(kind, &sample_module(), &mut rng, 1.0);
            assert_ne!(out, sample_module(), "{kind} was identity at intensity 1");
        }
    }

    #[test]
    fn function_reorder_keeps_exports_pointing_at_main() {
        let m = sample_module();
        let before_main = m.exported_func("main").unwrap();
        let before_body = {
            let i = (before_main as usize) - m.imports.len();
            m.functions[i].body.len()
        };
        for seed in 0..8u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let out = function_reorder(&m, &mut rng);
            let main_idx = out.exported_func("main").unwrap();
            let body = &out.functions[(main_idx as usize) - out.imports.len()].body;
            assert_eq!(
                body.len(),
                before_body,
                "seed {seed}: export must follow function"
            );
        }
    }

    #[test]
    fn dead_functions_are_not_exported() {
        let mut rng = StdRng::seed_from_u64(7);
        let m = sample_module();
        let out = dead_functions(&m, &mut rng, 1.0);
        assert!(out.functions.len() > m.functions.len());
        assert_eq!(out.exports.len(), m.exports.len());
    }

    #[test]
    fn const_splitting_preserves_recombination() {
        // The recombined value must equal the original: check statically
        // that XOR splits are inverses.
        let mut rng = StdRng::seed_from_u64(5);
        let m = sample_module();
        let out = const_splitting(&m, &mut rng, 1.0);
        // Dig for a split triple anywhere in the new bodies.
        fn find_split(body: &[Instr]) -> Option<i64> {
            for w in body.windows(3) {
                if let [Instr::I64Const(a), Instr::I64Const(b), Instr::Binary {
                    op: IBinOp::Xor, ..
                }] = w
                {
                    return Some(a ^ b);
                }
            }
            for i in body {
                let inner = match i {
                    Instr::Block { body, .. } | Instr::Loop { body, .. } => find_split(body),
                    Instr::If { then, els, .. } => find_split(then).or_else(|| find_split(els)),
                    _ => None,
                };
                if inner.is_some() {
                    return inner;
                }
            }
            None
        }
        let recombined = out.functions.iter().find_map(|f| find_split(&f.body));
        // Original constants were 2 and 10.
        if let Some(v) = recombined {
            assert!(v == 2 || v == 10, "recombined to {v}");
        }
    }

    #[test]
    fn nop_insertion_grows_instruction_count() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = sample_module();
        let out = nop_insertion(&m, &mut rng, 1.0);
        assert!(out.instruction_count() > m.instruction_count());
    }
}
