//! Structural metrics summarising a control-flow graph.

use crate::digraph::{DiGraph, NodeId};
use crate::dominators::{DominatorTree, LoopInfo};
use crate::scc::nontrivial_scc_count;
use crate::traversal::{bfs_distances, reachable_from};

/// A bundle of graph-level structural statistics.
///
/// These feed the graph-level feature vector used by baseline detectors and
/// are reported in dataset statistics.
///
/// # Examples
///
/// ```
/// use scamdetect_graph::{DiGraph, GraphMetrics};
///
/// let mut g: DiGraph<(), ()> = DiGraph::new();
/// let a = g.add_node(());
/// let b = g.add_node(());
/// g.add_edge(a, b, ());
/// let m = GraphMetrics::compute(&g, a);
/// assert_eq!(m.node_count, 2);
/// assert_eq!(m.edge_count, 1);
/// assert_eq!(m.loop_count, 0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GraphMetrics {
    /// Total nodes.
    pub node_count: usize,
    /// Total edges.
    pub edge_count: usize,
    /// Edge density `E / (N * (N - 1))` (0 for graphs with < 2 nodes).
    pub density: f64,
    /// Mean out-degree.
    pub avg_out_degree: f64,
    /// Maximum out-degree.
    pub max_out_degree: usize,
    /// Nodes with ≥ 2 successors (conditional branches).
    pub branch_count: usize,
    /// Nodes with no successors (terminators).
    pub exit_count: usize,
    /// Natural loops (distinct headers).
    pub loop_count: usize,
    /// Non-trivial strongly connected components.
    pub scc_count: usize,
    /// Longest shortest-path from the entry (in edges) over reachable nodes.
    pub depth: usize,
    /// Nodes unreachable from the entry (dead code blocks).
    pub unreachable_count: usize,
    /// McCabe cyclomatic complexity `E - N + 2` over the reachable subgraph.
    pub cyclomatic: i64,
}

impl GraphMetrics {
    /// Computes all metrics for `g` viewed from `entry`.
    pub fn compute<N, E>(g: &DiGraph<N, E>, entry: NodeId) -> Self {
        let n = g.node_count();
        let e = g.edge_count();
        let density = if n >= 2 {
            e as f64 / (n as f64 * (n as f64 - 1.0))
        } else {
            0.0
        };
        let avg_out_degree = if n > 0 { e as f64 / n as f64 } else { 0.0 };
        let max_out_degree = g.node_ids().map(|u| g.out_degree(u)).max().unwrap_or(0);
        let branch_count = g.node_ids().filter(|&u| g.out_degree(u) >= 2).count();
        let exit_count = g.node_ids().filter(|&u| g.out_degree(u) == 0).count();

        let mask = reachable_from(g, entry);
        let reachable_nodes = mask.iter().filter(|&&b| b).count();
        let unreachable_count = n - reachable_nodes;
        let reachable_edges = g
            .edges()
            .filter(|(u, v, _)| mask[u.index()] && mask[v.index()])
            .count();
        let cyclomatic = reachable_edges as i64 - reachable_nodes as i64 + 2;

        let depth = bfs_distances(g, entry)
            .into_iter()
            .flatten()
            .max()
            .unwrap_or(0);

        let dom = DominatorTree::compute(g, entry);
        let loops = LoopInfo::detect(g, &dom);

        GraphMetrics {
            node_count: n,
            edge_count: e,
            density,
            avg_out_degree,
            max_out_degree,
            branch_count,
            exit_count,
            loop_count: loops.loop_count(),
            scc_count: nontrivial_scc_count(g),
            depth,
            unreachable_count,
            cyclomatic,
        }
    }

    /// Flattens the metrics into an `f64` feature vector (fixed order,
    /// matching [`GraphMetrics::feature_names`]).
    pub fn to_features(&self) -> Vec<f64> {
        vec![
            self.node_count as f64,
            self.edge_count as f64,
            self.density,
            self.avg_out_degree,
            self.max_out_degree as f64,
            self.branch_count as f64,
            self.exit_count as f64,
            self.loop_count as f64,
            self.scc_count as f64,
            self.depth as f64,
            self.unreachable_count as f64,
            self.cyclomatic as f64,
        ]
    }

    /// Names of the entries of [`GraphMetrics::to_features`], in order.
    pub fn feature_names() -> &'static [&'static str] {
        &[
            "node_count",
            "edge_count",
            "density",
            "avg_out_degree",
            "max_out_degree",
            "branch_count",
            "exit_count",
            "loop_count",
            "scc_count",
            "depth",
            "unreachable_count",
            "cyclomatic",
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_on_loop_with_dead_code() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let entry = g.add_node(());
        let cond = g.add_node(());
        let body = g.add_node(());
        let exit = g.add_node(());
        let dead = g.add_node(());
        g.add_edge(entry, cond, ());
        g.add_edge(cond, body, ());
        g.add_edge(body, cond, ());
        g.add_edge(cond, exit, ());
        g.add_edge(dead, exit, ());

        let m = GraphMetrics::compute(&g, entry);
        assert_eq!(m.node_count, 5);
        assert_eq!(m.edge_count, 5);
        assert_eq!(m.loop_count, 1);
        assert_eq!(m.scc_count, 1);
        assert_eq!(m.branch_count, 1); // cond
        assert_eq!(m.unreachable_count, 1); // dead
        assert_eq!(m.depth, 2); // entry -> cond -> {body, exit}
                                // Reachable subgraph: 4 nodes, 4 edges -> 4 - 4 + 2 = 2.
        assert_eq!(m.cyclomatic, 2);
    }

    #[test]
    fn feature_vector_matches_names() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        let m = GraphMetrics::compute(&g, a);
        assert_eq!(m.to_features().len(), GraphMetrics::feature_names().len());
    }

    #[test]
    fn single_node_graph() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        let m = GraphMetrics::compute(&g, a);
        assert_eq!(m.density, 0.0);
        assert_eq!(m.exit_count, 1);
        assert_eq!(m.depth, 0);
        assert_eq!(m.cyclomatic, 1); // 0 - 1 + 2
    }
}
