//! Breadth-first, depth-first and reverse-postorder traversals.

use crate::digraph::{DiGraph, NodeId};
use std::collections::VecDeque;

/// Nodes reachable from `start`, in breadth-first order.
///
/// # Examples
///
/// ```
/// use scamdetect_graph::{DiGraph, traversal};
///
/// let mut g: DiGraph<(), ()> = DiGraph::new();
/// let a = g.add_node(());
/// let b = g.add_node(());
/// let c = g.add_node(());
/// g.add_edge(a, b, ());
/// g.add_edge(b, c, ());
/// assert_eq!(traversal::bfs_order(&g, a), vec![a, b, c]);
/// ```
pub fn bfs_order<N, E>(g: &DiGraph<N, E>, start: NodeId) -> Vec<NodeId> {
    let mut seen = vec![false; g.node_count()];
    let mut order = Vec::new();
    let mut queue = VecDeque::new();
    seen[start.index()] = true;
    queue.push_back(start);
    while let Some(u) = queue.pop_front() {
        order.push(u);
        for v in g.successors(u) {
            if !seen[v.index()] {
                seen[v.index()] = true;
                queue.push_back(v);
            }
        }
    }
    order
}

/// Nodes reachable from `start`, in depth-first preorder.
pub fn dfs_preorder<N, E>(g: &DiGraph<N, E>, start: NodeId) -> Vec<NodeId> {
    let mut seen = vec![false; g.node_count()];
    let mut order = Vec::new();
    let mut stack = vec![start];
    while let Some(u) = stack.pop() {
        if seen[u.index()] {
            continue;
        }
        seen[u.index()] = true;
        order.push(u);
        // Push successors in reverse so the first successor is visited first.
        let succs: Vec<NodeId> = g.successors(u).collect();
        for v in succs.into_iter().rev() {
            if !seen[v.index()] {
                stack.push(v);
            }
        }
    }
    order
}

/// Nodes reachable from `start`, in depth-first postorder.
pub fn dfs_postorder<N, E>(g: &DiGraph<N, E>, start: NodeId) -> Vec<NodeId> {
    let mut seen = vec![false; g.node_count()];
    let mut order = Vec::new();
    // (node, next successor index to try)
    let mut stack: Vec<(NodeId, usize)> = vec![(start, 0)];
    seen[start.index()] = true;
    while let Some(&mut (u, ref mut next)) = stack.last_mut() {
        let succs: Vec<NodeId> = g.successors(u).collect();
        if *next < succs.len() {
            let v = succs[*next];
            *next += 1;
            if !seen[v.index()] {
                seen[v.index()] = true;
                stack.push((v, 0));
            }
        } else {
            order.push(u);
            stack.pop();
        }
    }
    order
}

/// Reverse postorder from `start` — the canonical iteration order for
/// forward data-flow analyses (dominators, constant propagation).
pub fn reverse_postorder<N, E>(g: &DiGraph<N, E>, start: NodeId) -> Vec<NodeId> {
    let mut order = dfs_postorder(g, start);
    order.reverse();
    order
}

/// Boolean reachability mask from `start` (`mask[id.index()]`).
pub fn reachable_from<N, E>(g: &DiGraph<N, E>, start: NodeId) -> Vec<bool> {
    let mut seen = vec![false; g.node_count()];
    for n in bfs_order(g, start) {
        seen[n.index()] = true;
    }
    seen
}

/// Length (in edges) of the shortest path from `start` to every node;
/// `None` for unreachable nodes.
pub fn bfs_distances<N, E>(g: &DiGraph<N, E>, start: NodeId) -> Vec<Option<usize>> {
    let mut dist = vec![None; g.node_count()];
    let mut queue = VecDeque::new();
    dist[start.index()] = Some(0);
    queue.push_back(start);
    while let Some(u) = queue.pop_front() {
        let du = dist[u.index()].expect("queued nodes have distances");
        for v in g.successors(u) {
            if dist[v.index()].is_none() {
                dist[v.index()] = Some(du + 1);
                queue.push_back(v);
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;

    /// a -> b -> d, a -> c -> d, d -> e ; f unreachable
    fn fixture() -> (DiGraph<(), ()>, Vec<NodeId>) {
        let mut g = DiGraph::new();
        let ids: Vec<NodeId> = (0..6).map(|_| g.add_node(())).collect();
        g.add_edge(ids[0], ids[1], ());
        g.add_edge(ids[0], ids[2], ());
        g.add_edge(ids[1], ids[3], ());
        g.add_edge(ids[2], ids[3], ());
        g.add_edge(ids[3], ids[4], ());
        (g, ids)
    }

    #[test]
    fn bfs_visits_level_by_level() {
        let (g, ids) = fixture();
        assert_eq!(
            bfs_order(&g, ids[0]),
            vec![ids[0], ids[1], ids[2], ids[3], ids[4]]
        );
    }

    #[test]
    fn dfs_preorder_follows_first_successor() {
        let (g, ids) = fixture();
        assert_eq!(
            dfs_preorder(&g, ids[0]),
            vec![ids[0], ids[1], ids[3], ids[4], ids[2]]
        );
    }

    #[test]
    fn postorder_ends_at_start() {
        let (g, ids) = fixture();
        let po = dfs_postorder(&g, ids[0]);
        assert_eq!(*po.last().unwrap(), ids[0]);
        assert_eq!(po.len(), 5);
    }

    #[test]
    fn rpo_starts_at_start_and_orders_before_successors_on_dags() {
        let (g, ids) = fixture();
        let rpo = reverse_postorder(&g, ids[0]);
        assert_eq!(rpo[0], ids[0]);
        let pos = |n: NodeId| rpo.iter().position(|&x| x == n).unwrap();
        // On a DAG, RPO is a topological order.
        for (u, v, _) in g.edges() {
            assert!(pos(u) < pos(v), "{u} must precede {v}");
        }
    }

    #[test]
    fn unreachable_nodes_excluded() {
        let (g, ids) = fixture();
        let mask = reachable_from(&g, ids[0]);
        assert!(mask[ids[4].index()]);
        assert!(!mask[ids[5].index()]);
    }

    #[test]
    fn distances_are_shortest() {
        let (g, ids) = fixture();
        let d = bfs_distances(&g, ids[0]);
        assert_eq!(d[ids[0].index()], Some(0));
        assert_eq!(d[ids[3].index()], Some(2));
        assert_eq!(d[ids[4].index()], Some(3));
        assert_eq!(d[ids[5].index()], None);
    }

    #[test]
    fn traversals_handle_cycles() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, ());
        g.add_edge(b, a, ());
        assert_eq!(bfs_order(&g, a).len(), 2);
        assert_eq!(dfs_postorder(&g, a).len(), 2);
    }
}
