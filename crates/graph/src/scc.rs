//! Strongly connected components (iterative Tarjan).

use crate::digraph::{DiGraph, NodeId};

/// Computes the strongly connected components of `g`.
///
/// Returns one `Vec<NodeId>` per component, in reverse topological order of
/// the condensation (callees/loop bodies before their callers), which is
/// Tarjan's natural emission order. Singleton nodes without self-loops form
/// their own components.
///
/// # Examples
///
/// ```
/// use scamdetect_graph::{DiGraph, scc};
///
/// let mut g: DiGraph<(), ()> = DiGraph::new();
/// let a = g.add_node(());
/// let b = g.add_node(());
/// g.add_edge(a, b, ());
/// g.add_edge(b, a, ());
/// let comps = scc::strongly_connected_components(&g);
/// assert_eq!(comps.len(), 1);
/// assert_eq!(comps[0].len(), 2);
/// ```
pub fn strongly_connected_components<N, E>(g: &DiGraph<N, E>) -> Vec<Vec<NodeId>> {
    let n = g.node_count();
    const UNVISITED: u32 = u32::MAX;
    let mut index = vec![UNVISITED; n];
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<NodeId> = Vec::new();
    let mut next_index: u32 = 0;
    let mut comps = Vec::new();

    // Iterative Tarjan: call stack of (node, successor iterator position).
    enum Frame {
        Enter(NodeId),
        Resume(NodeId, usize),
    }

    for root in g.node_ids() {
        if index[root.index()] != UNVISITED {
            continue;
        }
        let mut call: Vec<Frame> = vec![Frame::Enter(root)];
        while let Some(frame) = call.pop() {
            let (u, start) = match frame {
                Frame::Enter(u) => {
                    index[u.index()] = next_index;
                    lowlink[u.index()] = next_index;
                    next_index += 1;
                    stack.push(u);
                    on_stack[u.index()] = true;
                    (u, 0)
                }
                Frame::Resume(u, pos) => (u, pos),
            };

            let succs: Vec<NodeId> = g.successors(u).collect();
            let mut recursed = false;
            for (i, &v) in succs.iter().enumerate().skip(start) {
                if index[v.index()] == UNVISITED {
                    call.push(Frame::Resume(u, i + 1));
                    call.push(Frame::Enter(v));
                    recursed = true;
                    break;
                } else if on_stack[v.index()] {
                    lowlink[u.index()] = lowlink[u.index()].min(index[v.index()]);
                }
            }
            if recursed {
                continue;
            }

            if lowlink[u.index()] == index[u.index()] {
                let mut comp = Vec::new();
                loop {
                    let w = stack.pop().expect("scc stack cannot underflow");
                    on_stack[w.index()] = false;
                    comp.push(w);
                    if w == u {
                        break;
                    }
                }
                comps.push(comp);
            }

            // Propagate lowlink to the parent frame (if any).
            if let Some(Frame::Resume(p, _)) = call.last() {
                let p = *p;
                lowlink[p.index()] = lowlink[p.index()].min(lowlink[u.index()]);
            }
        }
    }
    comps
}

/// Number of non-trivial SCCs (size > 1, or a self-loop) — a cheap proxy for
/// "how many loops does this CFG contain".
pub fn nontrivial_scc_count<N, E>(g: &DiGraph<N, E>) -> usize {
    strongly_connected_components(g)
        .into_iter()
        .filter(|c| c.len() > 1 || c.iter().any(|&u| g.has_edge(u, u)))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dag_gives_singletons() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        g.add_edge(a, b, ());
        g.add_edge(b, c, ());
        let comps = strongly_connected_components(&g);
        assert_eq!(comps.len(), 3);
        assert!(comps.iter().all(|c| c.len() == 1));
        assert_eq!(nontrivial_scc_count(&g), 0);
    }

    #[test]
    fn cycle_collapses_to_one_component() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let ids: Vec<_> = (0..4).map(|_| g.add_node(())).collect();
        g.add_edge(ids[0], ids[1], ());
        g.add_edge(ids[1], ids[2], ());
        g.add_edge(ids[2], ids[0], ());
        g.add_edge(ids[2], ids[3], ());
        let comps = strongly_connected_components(&g);
        assert_eq!(comps.len(), 2);
        let big = comps.iter().find(|c| c.len() == 3).expect("3-cycle scc");
        let mut sorted = big.clone();
        sorted.sort();
        assert_eq!(sorted, vec![ids[0], ids[1], ids[2]]);
        assert_eq!(nontrivial_scc_count(&g), 1);
    }

    #[test]
    fn self_loop_counts_as_nontrivial() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        g.add_edge(a, a, ());
        assert_eq!(strongly_connected_components(&g).len(), 1);
        assert_eq!(nontrivial_scc_count(&g), 1);
    }

    #[test]
    fn two_disjoint_cycles() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let ids: Vec<_> = (0..4).map(|_| g.add_node(())).collect();
        g.add_edge(ids[0], ids[1], ());
        g.add_edge(ids[1], ids[0], ());
        g.add_edge(ids[2], ids[3], ());
        g.add_edge(ids[3], ids[2], ());
        assert_eq!(nontrivial_scc_count(&g), 2);
    }

    #[test]
    fn emission_order_is_reverse_topological() {
        // a -> b (cycle b<->c) -> d : component {d} must be emitted before
        // {b,c}, which must be emitted before {a}.
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        let d = g.add_node(());
        g.add_edge(a, b, ());
        g.add_edge(b, c, ());
        g.add_edge(c, b, ());
        g.add_edge(c, d, ());
        let comps = strongly_connected_components(&g);
        let pos_of = |n: NodeId| comps.iter().position(|c| c.contains(&n)).unwrap();
        assert!(pos_of(d) < pos_of(b));
        assert!(pos_of(b) < pos_of(a));
    }

    #[test]
    fn empty_graph() {
        let g: DiGraph<(), ()> = DiGraph::new();
        assert!(strongly_connected_components(&g).is_empty());
    }
}
