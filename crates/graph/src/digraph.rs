//! The core directed-graph container.

use std::fmt;

/// Index of a node inside a [`DiGraph`].
///
/// `NodeId`s are dense, zero-based and stable: nodes are never removed, so an
/// id obtained from [`DiGraph::add_node`] stays valid for the graph's life.
///
/// # Examples
///
/// ```
/// use scamdetect_graph::{DiGraph, NodeId};
///
/// let mut g: DiGraph<(), ()> = DiGraph::new();
/// let id = g.add_node(());
/// assert_eq!(id, NodeId::new(0));
/// assert_eq!(id.index(), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a `NodeId` from a raw index.
    #[inline]
    pub fn new(index: usize) -> Self {
        NodeId(index as u32)
    }

    /// Returns the zero-based index of this node.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<NodeId> for usize {
    fn from(id: NodeId) -> usize {
        id.index()
    }
}

/// A borrowed view of one outgoing edge: target node plus edge payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeRef<'a, E> {
    /// Node the edge points to.
    pub target: NodeId,
    /// Payload stored on the edge.
    pub weight: &'a E,
}

/// A growable directed multigraph with node payloads `N` and edge payloads
/// `E`.
///
/// The graph stores forward and reverse adjacency so both successor and
/// predecessor queries are O(out-degree) / O(in-degree). Nodes cannot be
/// removed (control-flow graphs are built once and then analysed), which
/// keeps ids stable and the representation compact.
///
/// # Examples
///
/// ```
/// use scamdetect_graph::DiGraph;
///
/// let mut g: DiGraph<u32, &str> = DiGraph::new();
/// let a = g.add_node(10);
/// let b = g.add_node(20);
/// g.add_edge(a, b, "fallthrough");
/// assert_eq!(*g.node(a), 10);
/// assert!(g.has_edge(a, b));
/// assert_eq!(g.out_degree(a), 1);
/// assert_eq!(g.in_degree(b), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiGraph<N, E> {
    nodes: Vec<N>,
    out_adj: Vec<Vec<(NodeId, E)>>,
    in_adj: Vec<Vec<NodeId>>,
    edge_count: usize,
}

impl<N, E> Default for DiGraph<N, E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<N, E> DiGraph<N, E> {
    /// Creates an empty graph.
    pub fn new() -> Self {
        DiGraph {
            nodes: Vec::new(),
            out_adj: Vec::new(),
            in_adj: Vec::new(),
            edge_count: 0,
        }
    }

    /// Creates an empty graph with room for `nodes` nodes.
    pub fn with_capacity(nodes: usize) -> Self {
        DiGraph {
            nodes: Vec::with_capacity(nodes),
            out_adj: Vec::with_capacity(nodes),
            in_adj: Vec::with_capacity(nodes),
            edge_count: 0,
        }
    }

    /// Adds a node carrying `weight` and returns its id.
    pub fn add_node(&mut self, weight: N) -> NodeId {
        let id = NodeId::new(self.nodes.len());
        self.nodes.push(weight);
        self.out_adj.push(Vec::new());
        self.in_adj.push(Vec::new());
        id
    }

    /// Adds a directed edge `from -> to` carrying `weight`.
    ///
    /// Parallel edges are allowed (a conditional jump whose target equals its
    /// fall-through produces one).
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of bounds.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId, weight: E) {
        assert!(from.index() < self.nodes.len(), "`from` out of bounds");
        assert!(to.index() < self.nodes.len(), "`to` out of bounds");
        self.out_adj[from.index()].push((to, weight));
        self.in_adj[to.index()].push(from);
        self.edge_count += 1;
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Returns `true` if the graph has no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Borrow the payload of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    #[inline]
    pub fn node(&self, id: NodeId) -> &N {
        &self.nodes[id.index()]
    }

    /// Mutably borrow the payload of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    #[inline]
    pub fn node_mut(&mut self, id: NodeId) -> &mut N {
        &mut self.nodes[id.index()]
    }

    /// Fallible payload lookup.
    #[inline]
    pub fn get(&self, id: NodeId) -> Option<&N> {
        self.nodes.get(id.index())
    }

    /// Iterator over all node ids in insertion order.
    pub fn node_ids(&self) -> impl DoubleEndedIterator<Item = NodeId> + ExactSizeIterator + '_ {
        (0..self.nodes.len()).map(NodeId::new)
    }

    /// Iterator over `(id, &payload)` pairs.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &N)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId::new(i), n))
    }

    /// Iterator over the successor ids of `id`.
    pub fn successors(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.out_adj[id.index()].iter().map(|(t, _)| *t)
    }

    /// Iterator over outgoing edges (target + payload) of `id`.
    pub fn out_edges(&self, id: NodeId) -> impl Iterator<Item = EdgeRef<'_, E>> {
        self.out_adj[id.index()].iter().map(|(t, w)| EdgeRef {
            target: *t,
            weight: w,
        })
    }

    /// Iterator over the predecessor ids of `id`.
    pub fn predecessors(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.in_adj[id.index()].iter().copied()
    }

    /// Out-degree of `id`.
    #[inline]
    pub fn out_degree(&self, id: NodeId) -> usize {
        self.out_adj[id.index()].len()
    }

    /// In-degree of `id`.
    #[inline]
    pub fn in_degree(&self, id: NodeId) -> usize {
        self.in_adj[id.index()].len()
    }

    /// Returns `true` if at least one edge `from -> to` exists.
    pub fn has_edge(&self, from: NodeId, to: NodeId) -> bool {
        self.out_adj[from.index()].iter().any(|(t, _)| *t == to)
    }

    /// Iterator over every edge as `(from, to, &weight)`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId, &E)> {
        self.out_adj
            .iter()
            .enumerate()
            .flat_map(|(i, adj)| adj.iter().map(move |(t, w)| (NodeId::new(i), *t, w)))
    }

    /// Builds a new graph with the same topology and edge payloads but node
    /// payloads transformed by `f`.
    pub fn map_nodes<M>(&self, mut f: impl FnMut(NodeId, &N) -> M) -> DiGraph<M, E>
    where
        E: Clone,
    {
        DiGraph {
            nodes: self
                .nodes
                .iter()
                .enumerate()
                .map(|(i, n)| f(NodeId::new(i), n))
                .collect(),
            out_adj: self.out_adj.clone(),
            in_adj: self.in_adj.clone(),
            edge_count: self.edge_count,
        }
    }

    /// Dense adjacency matrix (row = source) with 1.0 marking an edge.
    ///
    /// Parallel edges collapse to a single 1.0 entry; GNN message passing
    /// treats the CFG as a simple graph.
    pub fn adjacency_matrix(&self) -> Vec<f32> {
        let n = self.node_count();
        let mut m = vec![0.0f32; n * n];
        for (from, to, _) in self.edges() {
            m[from.index() * n + to.index()] = 1.0;
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> (DiGraph<&'static str, u8>, [NodeId; 4]) {
        let mut g = DiGraph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        let d = g.add_node("d");
        g.add_edge(a, b, 0);
        g.add_edge(a, c, 1);
        g.add_edge(b, d, 2);
        g.add_edge(c, d, 3);
        (g, [a, b, c, d])
    }

    #[test]
    fn add_and_query_nodes() {
        let (g, [a, b, c, d]) = diamond();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(*g.node(a), "a");
        assert_eq!(*g.node(d), "d");
        assert!(g.get(NodeId::new(9)).is_none());
        assert_eq!(g.out_degree(a), 2);
        assert_eq!(g.in_degree(d), 2);
        assert_eq!(g.successors(b).collect::<Vec<_>>(), vec![d]);
        assert_eq!(g.predecessors(d).collect::<Vec<_>>(), vec![b, c]);
    }

    #[test]
    fn edge_payloads_visible_through_out_edges() {
        let (g, [a, ..]) = diamond();
        let ws: Vec<u8> = g.out_edges(a).map(|e| *e.weight).collect();
        assert_eq!(ws, vec![0, 1]);
    }

    #[test]
    fn has_edge_and_parallel_edges() {
        let (mut g, [a, b, ..]) = diamond();
        assert!(g.has_edge(a, b));
        assert!(!g.has_edge(b, a));
        g.add_edge(a, b, 9);
        assert_eq!(g.out_degree(a), 3);
        assert_eq!(g.edge_count(), 5);
    }

    #[test]
    fn map_nodes_preserves_topology() {
        let (g, [a, _, _, d]) = diamond();
        let h = g.map_nodes(|_, s| s.len());
        assert_eq!(h.node_count(), 4);
        assert_eq!(*h.node(a), 1);
        assert!(h.has_edge(a, NodeId::new(1)));
        assert_eq!(h.in_degree(d), 2);
    }

    #[test]
    fn adjacency_matrix_marks_edges() {
        let (g, [a, b, _, d]) = diamond();
        let m = g.adjacency_matrix();
        let n = g.node_count();
        assert_eq!(m[a.index() * n + b.index()], 1.0);
        assert_eq!(m[b.index() * n + d.index()], 1.0);
        assert_eq!(m[d.index() * n + a.index()], 0.0);
    }

    #[test]
    fn display_and_conversions() {
        let id = NodeId::new(7);
        assert_eq!(id.to_string(), "n7");
        assert_eq!(usize::from(id), 7);
    }

    #[test]
    fn edges_iterator_covers_all() {
        let (g, _) = diamond();
        assert_eq!(g.edges().count(), 4);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn add_edge_bad_endpoint_panics() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        g.add_edge(a, NodeId::new(3), ());
    }
}
