//! Dominator trees (Cooper–Harvey–Kennedy) and natural-loop detection.

use crate::digraph::{DiGraph, NodeId};
use crate::traversal::reverse_postorder;

/// Immediate-dominator tree rooted at a CFG entry node.
///
/// Built with the Cooper–Harvey–Kennedy iterative algorithm over reverse
/// postorder — simple, and effectively linear on the shallow CFGs produced
/// from contract bytecode.
///
/// # Examples
///
/// ```
/// use scamdetect_graph::{DiGraph, DominatorTree};
///
/// // entry -> then -> join, entry -> else -> join
/// let mut g: DiGraph<(), ()> = DiGraph::new();
/// let entry = g.add_node(());
/// let t = g.add_node(());
/// let e = g.add_node(());
/// let join = g.add_node(());
/// g.add_edge(entry, t, ());
/// g.add_edge(entry, e, ());
/// g.add_edge(t, join, ());
/// g.add_edge(e, join, ());
/// let dom = DominatorTree::compute(&g, entry);
/// assert_eq!(dom.immediate_dominator(join), Some(entry));
/// assert!(dom.dominates(entry, join));
/// assert!(!dom.dominates(t, join));
/// ```
#[derive(Debug, Clone)]
pub struct DominatorTree {
    entry: NodeId,
    /// `idom[v] = immediate dominator of v`; entry maps to itself;
    /// unreachable nodes map to `None`.
    idom: Vec<Option<NodeId>>,
}

impl DominatorTree {
    /// Computes the dominator tree of `g` from `entry`.
    pub fn compute<N, E>(g: &DiGraph<N, E>, entry: NodeId) -> Self {
        let n = g.node_count();
        let rpo = reverse_postorder(g, entry);
        let mut rpo_number = vec![usize::MAX; n];
        for (i, &u) in rpo.iter().enumerate() {
            rpo_number[u.index()] = i;
        }

        let mut idom: Vec<Option<NodeId>> = vec![None; n];
        idom[entry.index()] = Some(entry);

        let intersect = |idom: &[Option<NodeId>], mut a: NodeId, mut b: NodeId| -> NodeId {
            while a != b {
                while rpo_number[a.index()] > rpo_number[b.index()] {
                    a = idom[a.index()].expect("processed node has idom");
                }
                while rpo_number[b.index()] > rpo_number[a.index()] {
                    b = idom[b.index()].expect("processed node has idom");
                }
            }
            a
        };

        let mut changed = true;
        while changed {
            changed = false;
            for &u in rpo.iter().skip(1) {
                let mut new_idom: Option<NodeId> = None;
                for p in g.predecessors(u) {
                    if rpo_number[p.index()] == usize::MAX {
                        continue; // unreachable predecessor
                    }
                    if idom[p.index()].is_some() {
                        new_idom = Some(match new_idom {
                            None => p,
                            Some(cur) => intersect(&idom, cur, p),
                        });
                    }
                }
                if let Some(ni) = new_idom {
                    if idom[u.index()] != Some(ni) {
                        idom[u.index()] = Some(ni);
                        changed = true;
                    }
                }
            }
        }

        DominatorTree { entry, idom }
    }

    /// The entry node the tree was computed from.
    pub fn entry(&self) -> NodeId {
        self.entry
    }

    /// Immediate dominator of `v`; `None` for the entry itself and for
    /// unreachable nodes.
    pub fn immediate_dominator(&self, v: NodeId) -> Option<NodeId> {
        if v == self.entry {
            None
        } else {
            self.idom.get(v.index()).copied().flatten()
        }
    }

    /// Returns `true` if `a` dominates `b` (reflexively).
    pub fn dominates(&self, a: NodeId, b: NodeId) -> bool {
        if self.idom.get(b.index()).copied().flatten().is_none() && b != self.entry {
            return false; // b unreachable
        }
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            if cur == self.entry {
                return false;
            }
            match self.immediate_dominator(cur) {
                Some(d) => cur = d,
                None => return false,
            }
        }
    }

    /// Returns `true` if `v` is reachable from the entry.
    pub fn is_reachable(&self, v: NodeId) -> bool {
        v == self.entry || self.idom.get(v.index()).copied().flatten().is_some()
    }
}

/// Natural loops of a CFG: back edges and their header sets.
///
/// A back edge is `u -> h` where `h` dominates `u`; `h` is a *loop header*.
#[derive(Debug, Clone, Default)]
pub struct LoopInfo {
    headers: Vec<NodeId>,
    back_edges: Vec<(NodeId, NodeId)>,
    /// `in_loop[v]` — membership mask over all natural loop bodies.
    in_loop: Vec<bool>,
}

impl LoopInfo {
    /// Detects natural loops in `g` using the dominator tree `dom`.
    pub fn detect<N, E>(g: &DiGraph<N, E>, dom: &DominatorTree) -> Self {
        let mut headers = Vec::new();
        let mut back_edges = Vec::new();
        let mut in_loop = vec![false; g.node_count()];

        for (u, h, _) in g.edges() {
            if dom.is_reachable(u) && dom.dominates(h, u) {
                back_edges.push((u, h));
                if !headers.contains(&h) {
                    headers.push(h);
                }
                // Natural loop body: h plus all nodes reaching u without
                // passing through h (reverse flood fill from u).
                in_loop[h.index()] = true;
                let mut stack = vec![u];
                while let Some(v) = stack.pop() {
                    if in_loop[v.index()] {
                        continue;
                    }
                    in_loop[v.index()] = true;
                    for p in g.predecessors(v) {
                        if !in_loop[p.index()] {
                            stack.push(p);
                        }
                    }
                }
            }
        }

        LoopInfo {
            headers,
            back_edges,
            in_loop,
        }
    }

    /// Loop header nodes.
    pub fn headers(&self) -> &[NodeId] {
        &self.headers
    }

    /// Detected back edges as `(tail, header)` pairs.
    pub fn back_edges(&self) -> &[(NodeId, NodeId)] {
        &self.back_edges
    }

    /// Returns `true` if `v` is a loop header.
    pub fn is_header(&self, v: NodeId) -> bool {
        self.headers.contains(&v)
    }

    /// Returns `true` if `v` belongs to any natural loop body.
    pub fn in_any_loop(&self, v: NodeId) -> bool {
        self.in_loop.get(v.index()).copied().unwrap_or(false)
    }

    /// Number of distinct loop headers.
    pub fn loop_count(&self) -> usize {
        self.headers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// entry -> cond ; cond -> body -> cond (loop) ; cond -> exit
    fn looped() -> (DiGraph<(), ()>, [NodeId; 4]) {
        let mut g = DiGraph::new();
        let entry = g.add_node(());
        let cond = g.add_node(());
        let body = g.add_node(());
        let exit = g.add_node(());
        g.add_edge(entry, cond, ());
        g.add_edge(cond, body, ());
        g.add_edge(body, cond, ());
        g.add_edge(cond, exit, ());
        (g, [entry, cond, body, exit])
    }

    #[test]
    fn idoms_of_loop() {
        let (g, [entry, cond, body, exit]) = looped();
        let dom = DominatorTree::compute(&g, entry);
        assert_eq!(dom.immediate_dominator(entry), None);
        assert_eq!(dom.immediate_dominator(cond), Some(entry));
        assert_eq!(dom.immediate_dominator(body), Some(cond));
        assert_eq!(dom.immediate_dominator(exit), Some(cond));
    }

    #[test]
    fn dominates_is_reflexive_and_transitive() {
        let (g, [entry, cond, body, _]) = looped();
        let dom = DominatorTree::compute(&g, entry);
        assert!(dom.dominates(cond, cond));
        assert!(dom.dominates(entry, body));
        assert!(!dom.dominates(body, cond));
    }

    #[test]
    fn loop_detection_finds_header_and_body() {
        let (g, [entry, cond, body, exit]) = looped();
        let dom = DominatorTree::compute(&g, entry);
        let li = LoopInfo::detect(&g, &dom);
        assert_eq!(li.loop_count(), 1);
        assert!(li.is_header(cond));
        assert_eq!(li.back_edges(), &[(body, cond)]);
        assert!(li.in_any_loop(cond));
        assert!(li.in_any_loop(body));
        assert!(!li.in_any_loop(entry));
        assert!(!li.in_any_loop(exit));
    }

    #[test]
    fn unreachable_nodes_are_not_dominated() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let orphan = g.add_node(());
        g.add_edge(a, b, ());
        let dom = DominatorTree::compute(&g, a);
        assert!(!dom.is_reachable(orphan));
        assert!(!dom.dominates(a, orphan));
        assert_eq!(dom.immediate_dominator(orphan), None);
    }

    #[test]
    fn irreducible_like_shape_still_terminates() {
        // Two entries into a cycle (irreducible once both paths taken).
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let e = g.add_node(());
        let x = g.add_node(());
        let y = g.add_node(());
        g.add_edge(e, x, ());
        g.add_edge(e, y, ());
        g.add_edge(x, y, ());
        g.add_edge(y, x, ());
        let dom = DominatorTree::compute(&g, e);
        assert_eq!(dom.immediate_dominator(x), Some(e));
        assert_eq!(dom.immediate_dominator(y), Some(e));
        // No natural back edge: neither x nor y dominates the other.
        let li = LoopInfo::detect(&g, &dom);
        assert_eq!(li.loop_count(), 0);
    }

    #[test]
    fn self_loop_is_a_loop() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let e = g.add_node(());
        let s = g.add_node(());
        g.add_edge(e, s, ());
        g.add_edge(s, s, ());
        let dom = DominatorTree::compute(&g, e);
        let li = LoopInfo::detect(&g, &dom);
        assert!(li.is_header(s));
        assert_eq!(li.loop_count(), 1);
    }
}
