//! Graphviz DOT export for visual CFG inspection.

use crate::digraph::{DiGraph, NodeId};
use std::fmt::Write as _;

/// Renders `g` in Graphviz DOT syntax.
///
/// `node_label` and `edge_label` produce the display strings; labels are
/// escaped for double-quoted DOT strings.
///
/// # Examples
///
/// ```
/// use scamdetect_graph::{DiGraph, dot};
///
/// let mut g: DiGraph<&str, &str> = DiGraph::new();
/// let a = g.add_node("entry");
/// let b = g.add_node("exit");
/// g.add_edge(a, b, "fall");
/// let s = dot::to_dot(&g, "cfg", |_, n| n.to_string(), |e| e.to_string());
/// assert!(s.contains("digraph cfg"));
/// assert!(s.contains("\"entry\""));
/// assert!(s.contains("n0 -> n1"));
/// ```
pub fn to_dot<N, E>(
    g: &DiGraph<N, E>,
    name: &str,
    mut node_label: impl FnMut(NodeId, &N) -> String,
    mut edge_label: impl FnMut(&E) -> String,
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph {} {{", sanitize_ident(name));
    let _ = writeln!(out, "  node [shape=box fontname=\"monospace\"];");
    for (id, n) in g.nodes() {
        let _ = writeln!(out, "  {} [label=\"{}\"];", id, escape(&node_label(id, n)));
    }
    for (u, v, w) in g.edges() {
        let lbl = edge_label(w);
        if lbl.is_empty() {
            let _ = writeln!(out, "  {u} -> {v};");
        } else {
            let _ = writeln!(out, "  {u} -> {v} [label=\"{}\"];", escape(&lbl));
        }
    }
    out.push_str("}\n");
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\l")
}

fn sanitize_ident(s: &str) -> String {
    let mut out: String = s
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if out.is_empty() || out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, 'g');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nodes_edges_and_labels() {
        let mut g: DiGraph<String, u8> = DiGraph::new();
        let a = g.add_node("block \"0\"".to_string());
        let b = g.add_node("block 1\nline2".to_string());
        g.add_edge(a, b, 7);
        let s = to_dot(&g, "my cfg", |_, n| n.clone(), |e| format!("w={e}"));
        assert!(s.starts_with("digraph my_cfg {"));
        assert!(s.contains("block \\\"0\\\""));
        assert!(s.contains("line2"));
        assert!(s.contains("[label=\"w=7\"]"));
        assert!(s.trim_end().ends_with('}'));
    }

    #[test]
    fn empty_edge_labels_are_omitted() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, ());
        let s = to_dot(&g, "g", |id, _| id.to_string(), |_| String::new());
        assert!(s.contains("n0 -> n1;"));
        assert!(!s.contains("n0 -> n1 [label"));
    }

    #[test]
    fn numeric_name_is_sanitized() {
        let g: DiGraph<(), ()> = DiGraph::new();
        let s = to_dot(&g, "1bad", |_, _| String::new(), |_: &()| String::new());
        assert!(s.starts_with("digraph g1bad"));
    }
}
