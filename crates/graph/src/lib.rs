//! Directed-graph substrate for control-flow analysis.
//!
//! This crate provides the small, dependency-free graph toolkit that every
//! other ScamDetect component builds on: a directed graph with node and edge
//! payloads ([`DiGraph`]), classic traversals ([`traversal`]), strongly
//! connected components ([`scc`]), dominator trees and natural-loop detection
//! ([`dominators`]), structural metrics ([`metrics`]) and Graphviz export
//! ([`dot`]).
//!
//! Control-flow graphs extracted from smart-contract bytecode are small
//! (tens to a few hundred basic blocks), so the representation favours
//! simplicity and cache-friendly iteration over asymptotic cleverness.
//!
//! # Examples
//!
//! ```
//! use scamdetect_graph::DiGraph;
//!
//! let mut g: DiGraph<&str, ()> = DiGraph::new();
//! let a = g.add_node("entry");
//! let b = g.add_node("body");
//! let c = g.add_node("exit");
//! g.add_edge(a, b, ());
//! g.add_edge(b, c, ());
//! assert_eq!(g.node_count(), 3);
//! assert_eq!(g.successors(a).collect::<Vec<_>>(), vec![b]);
//! ```

pub mod digraph;
pub mod dominators;
pub mod dot;
pub mod metrics;
pub mod scc;
pub mod traversal;

pub use digraph::{DiGraph, EdgeRef, NodeId};
pub use dominators::{DominatorTree, LoopInfo};
pub use metrics::GraphMetrics;
