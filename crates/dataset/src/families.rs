//! The contract family taxonomy.
//!
//! Fourteen parametric families — seven malicious, seven benign — chosen
//! to mirror the scam categories PhishingHook and the related work
//! classify (approval drainers, honeypots \[19\], Ponzi schemes \[14\], rug
//! pulls, fee traps, fake airdrops, hidden backdoors) against a realistic
//! benign population (tokens, vaults, AMMs, escrows, multisigs, NFT
//! mints, registries).
//!
//! Crucially for a *fair* benchmark, both classes share machinery: every
//! contract gets a selector dispatcher, token-like surface functions,
//! logging and storage access, and several benign families legitimately
//! use "dangerous" operations (vaults make external calls, escrows
//! self-destruct on closure). No single opcode separates the classes.

use std::fmt;

/// Ground-truth label of a contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ContractLabel {
    /// A legitimate contract.
    Benign,
    /// A scam/malware contract.
    Malicious,
}

impl ContractLabel {
    /// Class index used by the models (benign = 0, malicious = 1).
    pub fn class_index(self) -> usize {
        match self {
            ContractLabel::Benign => 0,
            ContractLabel::Malicious => 1,
        }
    }
}

impl fmt::Display for ContractLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ContractLabel::Benign => f.write_str("benign"),
            ContractLabel::Malicious => f.write_str("malicious"),
        }
    }
}

/// A contract family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FamilyKind {
    // --- Malicious ----------------------------------------------------
    /// Phishing contract that sweeps pre-approved tokens from callers.
    ApprovalDrainer,
    /// Vault that accepts deposits but gates withdrawal on a hidden flag.
    HoneypotVault,
    /// Pays earlier participants from later deposits until collapse.
    PonziScheme,
    /// Token with owner-only mint and a self-destruct rug path.
    RugPullToken,
    /// "Claim your airdrop" bait that delegate-calls an attacker contract.
    FakeAirdrop,
    /// Token whose transfer silently fails (or taxes 100%) for non-owners.
    FeeTrapToken,
    /// Ordinary-looking registry with a hidden delegatecall backdoor.
    HiddenBackdoor,
    // --- Benign --------------------------------------------------------
    /// Standard fungible token.
    Erc20Token,
    /// Deposit/withdraw vault with per-user balances.
    Vault,
    /// Constant-product swap pool.
    AmmPool,
    /// Time-locked escrow (self-destructs to payee at maturity).
    Escrow,
    /// K-of-N multisig wallet executor.
    Multisig,
    /// Sequential-id NFT mint.
    NftMint,
    /// Name-to-address registry.
    Registry,
}

impl FamilyKind {
    /// All fourteen families, malicious first.
    pub fn all() -> [FamilyKind; 14] {
        use FamilyKind::*;
        [
            ApprovalDrainer,
            HoneypotVault,
            PonziScheme,
            RugPullToken,
            FakeAirdrop,
            FeeTrapToken,
            HiddenBackdoor,
            Erc20Token,
            Vault,
            AmmPool,
            Escrow,
            Multisig,
            NftMint,
            Registry,
        ]
    }

    /// The malicious families.
    pub fn malicious() -> [FamilyKind; 7] {
        use FamilyKind::*;
        [
            ApprovalDrainer,
            HoneypotVault,
            PonziScheme,
            RugPullToken,
            FakeAirdrop,
            FeeTrapToken,
            HiddenBackdoor,
        ]
    }

    /// The benign families.
    pub fn benign() -> [FamilyKind; 7] {
        use FamilyKind::*;
        [
            Erc20Token, Vault, AmmPool, Escrow, Multisig, NftMint, Registry,
        ]
    }

    /// Ground-truth label of this family.
    pub fn label(self) -> ContractLabel {
        if FamilyKind::malicious().contains(&self) {
            ContractLabel::Malicious
        } else {
            ContractLabel::Benign
        }
    }

    /// Short machine-readable name.
    pub fn name(self) -> &'static str {
        use FamilyKind::*;
        match self {
            ApprovalDrainer => "approval_drainer",
            HoneypotVault => "honeypot_vault",
            PonziScheme => "ponzi_scheme",
            RugPullToken => "rug_pull_token",
            FakeAirdrop => "fake_airdrop",
            FeeTrapToken => "fee_trap_token",
            HiddenBackdoor => "hidden_backdoor",
            Erc20Token => "erc20_token",
            Vault => "vault",
            AmmPool => "amm_pool",
            Escrow => "escrow",
            Multisig => "multisig",
            NftMint => "nft_mint",
            Registry => "registry",
        }
    }
}

impl fmt::Display for FamilyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn taxonomy_is_balanced_and_complete() {
        assert_eq!(FamilyKind::all().len(), 14);
        assert_eq!(FamilyKind::malicious().len(), 7);
        assert_eq!(FamilyKind::benign().len(), 7);
        for m in FamilyKind::malicious() {
            assert_eq!(m.label(), ContractLabel::Malicious);
        }
        for b in FamilyKind::benign() {
            assert_eq!(b.label(), ContractLabel::Benign);
        }
    }

    #[test]
    fn names_unique() {
        let mut names: Vec<&str> = FamilyKind::all().iter().map(|f| f.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 14);
    }

    #[test]
    fn label_class_indices() {
        assert_eq!(ContractLabel::Benign.class_index(), 0);
        assert_eq!(ContractLabel::Malicious.class_index(), 1);
        assert_eq!(ContractLabel::Malicious.to_string(), "malicious");
    }
}
