//! Synthetic labeled smart-contract corpora.
//!
//! Etherscan's labeled dataset (the 7,000-contract PhishingHook corpus the
//! paper builds on) is not redistributable, so this crate generates the
//! same *decision problem* synthetically: a balanced, family-labeled,
//! seeded corpus of runnable contracts on **both** supported platforms.
//!
//! * [`families`] — 7 malicious + 7 benign contract families with shared
//!   machinery (dispatchers, token surfaces, logging) so no trivial
//!   single-opcode separator exists,
//! * [`evm_gen`] — randomized EVM generators (every sample executes
//!   cleanly on the interpreter; the tests prove it),
//! * [`wasm_gen`] — structurally faithful WASM twins against the standard
//!   host ABI,
//! * [`corpus`] — corpus assembly, ERC-1167/skeleton dedup (§V-A
//!   curation), stratified splits, statistics, and obfuscated views.
//!
//! # Examples
//!
//! ```
//! use scamdetect_dataset::{Corpus, CorpusConfig};
//!
//! let corpus = Corpus::generate(&CorpusConfig {
//!     size: 50,
//!     seed: 1,
//!     ..CorpusConfig::default()
//! });
//! let stats = corpus.stats();
//! assert_eq!(stats.total, 50);
//! let (train, test) = corpus.split(0.3, 7);
//! assert_eq!(train.len() + test.len(), 50);
//! ```

pub mod corpus;
pub mod evm_gen;
pub mod families;
pub mod wasm_gen;

pub use corpus::{Contract, ContractSource, Corpus, CorpusConfig, CorpusStats, DedupReport};
pub use evm_gen::{generate_evm, GeneratedEvm};
pub use families::{ContractLabel, FamilyKind};
pub use wasm_gen::{generate_wasm, GeneratedWasm};
