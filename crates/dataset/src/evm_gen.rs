//! EVM contract generators: label-form assembly for every family.
//!
//! Every generated contract is a *runnable* EVM program (the tests execute
//! each family's dispatcher paths on the concrete interpreter). Contracts
//! are randomized per sample — selectors, storage layout, constants,
//! utility-function count and body ordering all vary — while preserving
//! the family's semantic fingerprint.

use crate::families::FamilyKind;
use rand::rngs::StdRng;
use rand::Rng;
use scamdetect_evm::asm::{AsmProgram, Label};
use scamdetect_evm::opcode::Opcode;

/// A generated EVM contract in label form, with its dispatcher metadata
/// (used by tests and by obfuscation-aware experiments).
#[derive(Debug, Clone)]
pub struct GeneratedEvm {
    /// The label-form program (obfuscation passes transform this).
    pub program: AsmProgram,
    /// The function selectors the dispatcher recognises.
    pub selectors: Vec<[u8; 4]>,
}

/// Stack- and control-disciplined emission helpers shared by all family
/// generators.
struct Builder<'r> {
    p: AsmProgram,
    rng: &'r mut StdRng,
    revert_label: Label,
    selectors: Vec<[u8; 4]>,
    /// Base offset for storage slots, randomized per contract.
    slot_base: u64,
    /// Whether caller-keyed mappings use the keccak encoding (chosen once
    /// per contract so reads and writes agree).
    keccak_mappings: bool,
}

impl<'r> Builder<'r> {
    fn new(rng: &'r mut StdRng) -> Self {
        let mut p = AsmProgram::new();
        let revert_label = p.new_label();
        let slot_base = rng.random_range(0x10..0x1000) as u64;
        let keccak_mappings = rng.random_range(0..2) == 0;
        Builder {
            p,
            rng,
            revert_label,
            selectors: Vec::new(),
            slot_base,
            keccak_mappings,
        }
    }

    fn fresh_selector(&mut self) -> [u8; 4] {
        loop {
            let s: [u8; 4] = self.rng.random();
            if !self.selectors.contains(&s) {
                self.selectors.push(s);
                return s;
            }
        }
    }

    fn slot(&mut self, offset: u64) -> u64 {
        self.slot_base + offset
    }

    /// `PUSH0 CALLDATALOAD PUSH 224 SHR` — selector on the stack.
    fn load_selector(&mut self) {
        self.p.push_value(0);
        self.p.op(Opcode::CALLDATALOAD);
        self.p.push_value(224);
        self.p.op(Opcode::SHR);
    }

    /// One dispatcher comparison; keeps the selector on the stack.
    fn dispatch(&mut self, selector: [u8; 4], target: Label) {
        self.p.op(Opcode::DUP1);
        self.p.push_bytes(&selector);
        self.p.op(Opcode::EQ);
        self.p.jumpi_to(target);
    }

    /// Pushes calldata argument word `i` (ABI layout: 4 + 32*i).
    fn arg(&mut self, i: u64) {
        self.p.push_value(4 + 32 * i);
        self.p.op(Opcode::CALLDATALOAD);
    }

    /// Pushes a caller-keyed storage slot. Uses the contract's mapping
    /// encoding — the cheap additive form or the Solidity-style keccak
    /// form; both appear in real contracts.
    fn caller_slot(&mut self, base_offset: u64) {
        let base = self.slot(base_offset);
        if !self.keccak_mappings {
            self.p.op(Opcode::CALLER);
            self.p.push_value(base);
            self.p.op(Opcode::ADD);
        } else {
            self.p.op(Opcode::CALLER);
            self.p.push_value(0);
            self.p.op(Opcode::MSTORE);
            self.p.push_value(base);
            self.p.push_value(32);
            self.p.op(Opcode::MSTORE);
            self.p.push_value(64);
            self.p.push_value(0);
            self.p.op(Opcode::KECCAK256);
        }
    }

    /// Pushes an argument-keyed storage slot (arg word `i` + base).
    fn arg_slot(&mut self, i: u64, base_offset: u64) {
        let base = self.slot(base_offset);
        self.arg(i);
        self.p.push_value(base);
        self.p.op(Opcode::ADD);
    }

    /// Consumes the stack-top condition; reverts when it is nonzero.
    fn revert_if(&mut self) {
        let l = self.revert_label;
        self.p.jumpi_to(l);
    }

    /// Consumes the stack-top condition; reverts when it is zero.
    fn require(&mut self) {
        self.p.op(Opcode::ISZERO);
        self.revert_if();
    }

    /// Storage write: expects `[value, key]` on the stack (key on top).
    fn sstore(&mut self) {
        self.p.op(Opcode::SSTORE);
    }

    /// Emits a LOG1 of the stack-top word under a random topic (pops it).
    fn log_top(&mut self) {
        self.p.push_value(0);
        self.p.op(Opcode::MSTORE);
        let topic = self.rng.random_range(1..u64::MAX);
        self.p.push_value(topic);
        self.p.push_value(32);
        self.p.push_value(0);
        self.p.op(Opcode::LOG1);
    }

    /// Returns the stack-top word (terminates).
    fn return_top(&mut self) {
        self.p.push_value(0);
        self.p.op(Opcode::MSTORE);
        self.p.push_value(32);
        self.p.push_value(0);
        self.p.op(Opcode::RETURN);
    }

    /// Returns the constant `v` (terminates).
    fn return_const(&mut self, v: u64) {
        self.p.push_value(v);
        self.return_top();
    }

    /// Places the shared revert sink.
    fn place_revert_sink(&mut self) {
        let l = self.revert_label;
        self.p.place_label(l);
        self.p.push_value(0);
        self.p.push_value(0);
        self.p.op(Opcode::REVERT);
    }

    /// Appends 0–3 benign utility function bodies (hash mixers, counters)
    /// used by both classes so utility code carries no label signal.
    fn utility_functions(&mut self, entries: &mut Vec<([u8; 4], Label)>) {
        let n = self.rng.random_range(0..=3);
        for _ in 0..n {
            let sel = self.fresh_selector();
            let lbl = self.p.new_label();
            entries.push((sel, lbl));
        }
    }

    fn emit_utility_bodies(&mut self, entries: &[([u8; 4], Label)], from: usize) {
        for &(_, lbl) in &entries[from..] {
            self.p.place_label(lbl);
            self.p.op(Opcode::POP);
            match self.rng.random_range(0..3) {
                0 => {
                    // Mixer: return arg0 * C ^ C2.
                    self.arg(0);
                    let c = self.rng.random_range(3..0xffff);
                    self.p.push_value(c);
                    self.p.op(Opcode::MUL);
                    let c2 = self.rng.random::<u32>() as u64;
                    self.p.push_value(c2);
                    self.p.op(Opcode::XOR);
                    self.return_top();
                }
                1 => {
                    // Counter: storage[slot] += 1, return new value.
                    let off = self.rng.random_range(60..70);
                    let slot = self.slot(off);
                    self.p.push_value(slot);
                    self.p.op(Opcode::SLOAD);
                    self.p.push_value(1);
                    self.p.op(Opcode::ADD);
                    self.p.op(Opcode::DUP1);
                    self.p.push_value(slot);
                    self.sstore();
                    self.return_top();
                }
                _ => {
                    // Getter with event.
                    let off = self.rng.random_range(70..80);
                    let slot = self.slot(off);
                    self.p.push_value(slot);
                    self.p.op(Opcode::SLOAD);
                    self.p.op(Opcode::DUP1);
                    self.log_top();
                    self.return_top();
                }
            }
        }
    }
}

impl Builder<'_> {
    /// `CALL(gas, to, value, 0, 0, 0, 0)` where the generator supplies
    /// closures pushing `value` then `to`; discards the success flag.
    fn call_out(&mut self, push_value: impl FnOnce(&mut Self), push_to: impl FnOnce(&mut Self)) {
        self.p.push_value(0); // retLen
        self.p.push_value(0); // retOff
        self.p.push_value(0); // argLen
        self.p.push_value(0); // argOff
        push_value(self);
        push_to(self);
        self.p.push_value(50_000);
        self.p.op(Opcode::CALL);
        self.p.op(Opcode::POP);
    }
}

/// Generates an EVM contract of `kind`, randomized from `rng`.
pub fn generate_evm(kind: FamilyKind, rng: &mut StdRng) -> GeneratedEvm {
    let mut b = Builder::new(rng);

    // --- Dispatcher -----------------------------------------------------
    let main_count = match kind {
        FamilyKind::Erc20Token | FamilyKind::RugPullToken | FamilyKind::FeeTrapToken => 4,
        FamilyKind::Multisig | FamilyKind::AmmPool => 3,
        _ => 2,
    };
    let mut entries: Vec<([u8; 4], Label)> = Vec::new();
    for _ in 0..main_count {
        let sel = b.fresh_selector();
        let lbl = b.p.new_label();
        entries.push((sel, lbl));
    }
    let util_from = entries.len();
    b.utility_functions(&mut entries);

    b.load_selector();
    for &(sel, lbl) in &entries {
        b.dispatch(sel, lbl);
    }
    // Fallback: tokens revert on unknown selectors, vault-likes accept ETH.
    match kind {
        FamilyKind::Vault
        | FamilyKind::HoneypotVault
        | FamilyKind::PonziScheme
        | FamilyKind::Escrow => {
            b.p.op(Opcode::STOP);
        }
        _ => {
            b.p.push_value(0);
            b.p.push_value(0);
            b.p.op(Opcode::REVERT);
        }
    }

    // --- Family bodies ---------------------------------------------------
    emit_family_bodies(&mut b, kind, &entries[..util_from]);
    b.emit_utility_bodies(&entries, util_from);
    b.place_revert_sink();

    GeneratedEvm {
        selectors: b.selectors,
        program: b.p,
    }
}

fn emit_family_bodies(b: &mut Builder<'_>, kind: FamilyKind, main: &[([u8; 4], Label)]) {
    match kind {
        FamilyKind::Erc20Token => erc20_like(b, main, TokenFlavor::Standard),
        FamilyKind::RugPullToken => erc20_like(b, main, TokenFlavor::RugPull),
        FamilyKind::FeeTrapToken => erc20_like(b, main, TokenFlavor::FeeTrap),
        FamilyKind::Vault => vault_like(b, main, false),
        FamilyKind::HoneypotVault => vault_like(b, main, true),
        FamilyKind::PonziScheme => ponzi(b, main),
        FamilyKind::ApprovalDrainer => approval_drainer(b, main),
        FamilyKind::FakeAirdrop => fake_airdrop(b, main),
        FamilyKind::HiddenBackdoor => hidden_backdoor(b, main),
        FamilyKind::AmmPool => amm_pool(b, main),
        FamilyKind::Escrow => escrow(b, main),
        FamilyKind::Multisig => multisig(b, main),
        FamilyKind::NftMint => nft_mint(b, main),
        FamilyKind::Registry => registry(b, main),
    }
}

#[derive(PartialEq, Clone, Copy)]
enum TokenFlavor {
    Standard,
    RugPull,
    FeeTrap,
}

/// transfer(to, amt) / approve(spender, amt) / balanceOf(a) / mint-or-supply.
fn erc20_like(b: &mut Builder<'_>, main: &[([u8; 4], Label)], flavor: TokenFlavor) {
    let owner = b.rng.random_range(0x1000..u32::MAX as u64);
    let bal = 0;
    let allow = 20;
    // Half of the *benign* tokens are pausable: their transfer gate has
    // exactly the same structure as the fee trap's (a storage-flag check
    // followed by revert), so no single pattern separates the classes.
    let pausable = b.rng.random_range(0..2) == 0;
    let gate_slot = b.slot(40);

    // transfer(to, amt)
    b.p.place_label(main[0].1);
    b.p.op(Opcode::POP);
    match flavor {
        TokenFlavor::FeeTrap => {
            // The trap: transfers revert once the owner flips the flag
            // (identical gate shape to a benign pausable token).
            b.p.push_value(gate_slot);
            b.p.op(Opcode::SLOAD);
            b.revert_if();
        }
        TokenFlavor::Standard if pausable => {
            b.p.push_value(gate_slot);
            b.p.op(Opcode::SLOAD);
            b.revert_if();
        }
        _ => {}
    }
    // balance check: storage[caller] < amt -> revert
    b.arg(1);
    b.caller_slot(bal);
    b.p.op(Opcode::SLOAD);
    b.p.op(Opcode::LT);
    b.revert_if();
    // caller -= amt
    b.arg(1);
    b.caller_slot(bal);
    b.p.op(Opcode::SLOAD);
    b.p.op(Opcode::SUB);
    b.caller_slot(bal);
    b.sstore();
    // to += amt (minus rug-tax for RugPull)
    b.arg(1);
    if flavor == TokenFlavor::RugPull {
        // 50% tax silently diverted to the owner's balance.
        b.p.push_value(1);
        b.p.op(Opcode::SHR);
        b.p.op(Opcode::DUP1);
        let owner_bal_slot = b.slot(bal);
        b.p.push_value(owner);
        b.p.push_value(owner_bal_slot);
        b.p.op(Opcode::ADD);
        b.sstore();
    }
    b.arg_slot(0, bal);
    b.p.op(Opcode::SLOAD);
    b.p.op(Opcode::ADD);
    b.arg_slot(0, bal);
    b.sstore();
    b.arg(1);
    b.log_top();
    b.return_const(1);

    // approve(spender, amt)
    b.p.place_label(main[1].1);
    b.p.op(Opcode::POP);
    b.arg(1);
    b.arg_slot(0, allow);
    b.sstore();
    b.arg(1);
    b.log_top();
    b.return_const(1);

    // balanceOf(a)
    b.p.place_label(main[2].1);
    b.p.op(Opcode::POP);
    b.arg_slot(0, bal);
    b.p.op(Opcode::SLOAD);
    b.return_top();

    // 4th entry: totalSupply (standard) / mint+rug (malicious flavors).
    b.p.place_label(main[3].1);
    b.p.op(Opcode::POP);
    match flavor {
        TokenFlavor::Standard => {
            if pausable {
                // Owner-gated pause toggle — same shape as the trap switch.
                b.p.op(Opcode::CALLER);
                b.p.push_value(owner);
                b.p.op(Opcode::EQ);
                b.require();
                b.arg(0);
                b.p.push_value(gate_slot);
                b.sstore();
                b.return_const(1);
            } else {
                let supply = b.rng.random_range(1_000..u32::MAX as u64);
                b.return_const(supply);
            }
        }
        TokenFlavor::RugPull => {
            // Owner-only: mint to self, then self-destruct sweep.
            b.p.op(Opcode::CALLER);
            b.p.push_value(owner);
            b.p.op(Opcode::EQ);
            b.require();
            b.p.push_value(u32::MAX as u64);
            b.caller_slot(bal);
            b.sstore();
            b.p.push_value(owner);
            b.p.op(Opcode::SELFDESTRUCT);
        }
        TokenFlavor::FeeTrap => {
            // Owner-only trap switch (sets the transfer gate flag).
            b.p.op(Opcode::CALLER);
            b.p.push_value(owner);
            b.p.op(Opcode::EQ);
            b.require();
            b.arg(0);
            b.p.push_value(gate_slot);
            b.sstore();
            b.return_const(1);
        }
    }
}

/// deposit() / withdraw(amount); honeypot gates withdrawal on a hidden flag.
fn vault_like(b: &mut Builder<'_>, main: &[([u8; 4], Label)], honeypot: bool) {
    let bal = 0;
    let owner = b.rng.random_range(0x1000..u32::MAX as u64);

    // deposit()
    b.p.place_label(main[0].1);
    b.p.op(Opcode::POP);
    b.p.op(Opcode::CALLVALUE);
    b.caller_slot(bal);
    b.p.op(Opcode::SLOAD);
    b.p.op(Opcode::ADD);
    b.caller_slot(bal);
    b.sstore();
    b.p.op(Opcode::CALLVALUE);
    b.log_top();
    b.p.op(Opcode::STOP);

    // withdraw(amount)
    b.p.place_label(main[1].1);
    b.p.op(Opcode::POP);
    if honeypot {
        // Hidden gate: storage[flag] must be nonzero — but no code path
        // for depositors ever sets it; only the owner's sweep works.
        let flag = b.slot(50);
        b.p.push_value(flag);
        b.p.op(Opcode::SLOAD);
        // Owner bypasses the gate.
        b.p.op(Opcode::CALLER);
        b.p.push_value(owner);
        b.p.op(Opcode::EQ);
        b.p.op(Opcode::OR);
        b.require();
        // Owner path: sweep everything.
        b.p.op(Opcode::CALLER);
        b.p.op(Opcode::SELFDESTRUCT);
    } else {
        // Half of benign vaults have an owner-only emergency sweep — the
        // very same CALLER/EQ + SELFDESTRUCT motif the honeypot uses, but
        // the depositor path below remains fully functional.
        if b.rng.random_range(0..2) == 0 {
            let normal = b.p.new_label();
            b.p.op(Opcode::CALLER);
            b.p.push_value(owner);
            b.p.op(Opcode::EQ);
            b.p.op(Opcode::ISZERO);
            b.p.jumpi_to(normal);
            b.p.push_value(owner);
            b.p.op(Opcode::SELFDESTRUCT);
            b.p.place_label(normal);
        }
        // balance check then pay out.
        b.arg(0);
        b.caller_slot(bal);
        b.p.op(Opcode::SLOAD);
        b.p.op(Opcode::LT);
        b.revert_if();
        b.arg(0);
        b.caller_slot(bal);
        b.p.op(Opcode::SLOAD);
        b.p.op(Opcode::SUB);
        b.caller_slot(bal);
        b.sstore();
        b.call_out(
            |s| s.arg(0),
            |s| {
                s.p.op(Opcode::CALLER);
            },
        );
        b.p.op(Opcode::STOP);
    }
}

/// invest() pays earlier investors from the incoming deposit.
fn ponzi(b: &mut Builder<'_>, main: &[([u8; 4], Label)]) {
    let count_slot = b.slot(0);
    let investors = 10;

    // invest(): record caller, then pay out `k` earlier investors a cut.
    b.p.place_label(main[0].1);
    b.p.op(Opcode::POP);
    // storage[count]++ and record investor address at slot base+count%N.
    b.p.push_value(count_slot);
    b.p.op(Opcode::SLOAD);
    b.p.op(Opcode::DUP1);
    b.p.push_value(1);
    b.p.op(Opcode::ADD);
    b.p.push_value(count_slot);
    b.sstore(); // [count]
    b.p.push_value(investors as u64);
    b.p.op(Opcode::SWAP1);
    b.p.op(Opcode::MOD); // [count % N]
    let investor_base = b.slot(1);
    b.p.push_value(investor_base);
    b.p.op(Opcode::ADD); // [slot]
    b.p.op(Opcode::CALLER);
    b.p.op(Opcode::SWAP1);
    b.sstore();
    // payout loop over 3 earlier investors: CALL each with value/10.
    let top = b.p.new_label();
    let done = b.p.new_label();
    b.p.push_value(3); // i
    b.p.place_label(top);
    b.p.op(Opcode::DUP1);
    b.p.op(Opcode::ISZERO);
    b.p.jumpi_to(done);
    // target = storage[base + i]
    b.call_out(
        |s| {
            s.p.op(Opcode::CALLVALUE);
            s.p.push_value(10);
            s.p.op(Opcode::SWAP1);
            s.p.op(Opcode::DIV);
        },
        |s| {
            let inv_slot = s.slot(1);
            s.p.op(Opcode::DUP6); // i sits below the 4 zeros + value
            s.p.push_value(inv_slot);
            s.p.op(Opcode::ADD);
            s.p.op(Opcode::SLOAD);
        },
    );
    b.p.push_value(1);
    b.p.op(Opcode::SWAP1);
    b.p.op(Opcode::SUB);
    b.p.jump_to(top);
    b.p.place_label(done);
    b.p.op(Opcode::POP);
    b.p.op(Opcode::STOP);

    // claim(): owner drains the pot.
    b.p.place_label(main[1].1);
    b.p.op(Opcode::POP);
    let owner = b.rng.random_range(0x1000..u32::MAX as u64);
    b.p.op(Opcode::CALLER);
    b.p.push_value(owner);
    b.p.op(Opcode::EQ);
    b.require();
    b.p.push_value(owner);
    b.p.op(Opcode::SELFDESTRUCT);
}

/// claim() sweeps the caller's pre-approved tokens to the attacker.
fn approval_drainer(b: &mut Builder<'_>, main: &[([u8; 4], Label)]) {
    let attacker = b.rng.random_range(0x1000..u32::MAX as u64);

    // claim(): looks like an airdrop claim; actually calls N token
    // contracts to transferFrom(caller -> attacker).
    b.p.place_label(main[0].1);
    b.p.op(Opcode::POP);
    // Emit a believable "Claimed" event first (bait).
    b.p.push_value(1);
    b.log_top();
    let tokens = b.rng.random_range(2..5);
    for t in 0..tokens {
        let token_addr = b.rng.random_range(0x2000..u32::MAX as u64) + t;
        // Build transferFrom calldata in memory: selector + caller + attacker.
        b.p.push_bytes(&[0x23, 0xb8, 0x72, 0xdd]); // transferFrom
        b.p.push_value(0);
        b.p.op(Opcode::MSTORE);
        b.p.op(Opcode::CALLER);
        b.p.push_value(32);
        b.p.op(Opcode::MSTORE);
        b.p.push_value(attacker);
        b.p.push_value(64);
        b.p.op(Opcode::MSTORE);
        // CALL(gas, token, 0, 0, 96, 0, 0)
        b.p.push_value(0);
        b.p.push_value(0);
        b.p.push_value(96);
        b.p.push_value(0);
        b.p.push_value(0);
        b.p.push_value(token_addr);
        b.p.push_value(100_000);
        b.p.op(Opcode::CALL);
        b.p.op(Opcode::POP);
    }
    b.return_const(1);

    // rescue(): attacker-only sweep of any ETH.
    b.p.place_label(main[1].1);
    b.p.op(Opcode::POP);
    b.p.op(Opcode::CALLER);
    b.p.push_value(attacker);
    b.p.op(Opcode::EQ);
    b.require();
    b.p.push_value(attacker);
    b.p.op(Opcode::SELFDESTRUCT);
}

/// claimAirdrop() delegatecalls an attacker-controlled implementation.
fn fake_airdrop(b: &mut Builder<'_>, main: &[([u8; 4], Label)]) {
    let attacker_impl = b.rng.random_range(0x3000..u32::MAX as u64);

    b.p.place_label(main[0].1);
    b.p.op(Opcode::POP);
    // Bait event.
    b.p.push_value(0xa1d0);
    b.log_top();
    // DELEGATECALL(gas, impl, 0, calldatasize, 0, 0) — full control handoff.
    b.p.push_value(0);
    b.p.push_value(0);
    b.p.op(Opcode::CALLDATASIZE);
    b.p.push_value(0);
    b.p.push_value(attacker_impl);
    b.p.push_value(200_000);
    b.p.op(Opcode::DELEGATECALL);
    b.p.op(Opcode::POP);
    b.return_const(1);

    // eligibility(a): plausible view function.
    b.p.place_label(main[1].1);
    b.p.op(Opcode::POP);
    b.arg(0);
    b.p.push_value(0xffff);
    b.p.op(Opcode::AND);
    b.return_top();
}

/// A registry whose extra selector delegatecalls an arbitrary address.
fn hidden_backdoor(b: &mut Builder<'_>, main: &[([u8; 4], Label)]) {
    registry_core(b, main[0].1);

    // The backdoor: delegatecall(arg0) — full takeover, selector is
    // unguessable without the bytecode.
    b.p.place_label(main[1].1);
    b.p.op(Opcode::POP);
    b.p.push_value(0);
    b.p.push_value(0);
    b.p.push_value(0);
    b.p.push_value(0);
    b.arg(0);
    b.p.push_value(300_000);
    b.p.op(Opcode::DELEGATECALL);
    b.p.op(Opcode::POP);
    b.p.op(Opcode::STOP);
}

/// swap(amountIn) / addLiquidity() / reserves().
fn amm_pool(b: &mut Builder<'_>, main: &[([u8; 4], Label)]) {
    let r0 = b.slot(0);
    let r1 = b.slot(1);

    // swap(amountIn): out = r1 - k/(r0 + in), fee 0.3% approximated.
    b.p.place_label(main[0].1);
    b.p.op(Opcode::POP);
    b.arg(0);
    b.p.op(Opcode::DUP1);
    b.p.op(Opcode::ISZERO);
    b.revert_if();
    // newR0 = r0 + in
    b.p.push_value(r0);
    b.p.op(Opcode::SLOAD);
    b.p.op(Opcode::ADD); // [newR0]
    b.p.op(Opcode::DUP1);
    b.p.push_value(r0);
    b.sstore();
    // out = r1 * 997 / (newR0 * 1000)  (bounded arithmetic)
    b.p.push_value(r1);
    b.p.op(Opcode::SLOAD);
    b.p.push_value(997);
    b.p.op(Opcode::MUL);
    b.p.op(Opcode::SWAP1);
    b.p.push_value(1000);
    b.p.op(Opcode::MUL);
    b.p.op(Opcode::SWAP1);
    b.p.op(Opcode::DIV); // [out]
    b.p.op(Opcode::DUP1);
    b.p.push_value(r1);
    b.sstore();
    b.call_out(
        |s| {
            s.p.op(Opcode::DUP5);
        },
        |s| {
            s.p.op(Opcode::CALLER);
        },
    );
    b.return_top();

    // addLiquidity(): r0 += callvalue, mint LP counter.
    b.p.place_label(main[1].1);
    b.p.op(Opcode::POP);
    b.p.op(Opcode::CALLVALUE);
    b.p.push_value(r0);
    b.p.op(Opcode::SLOAD);
    b.p.op(Opcode::ADD);
    b.p.push_value(r0);
    b.sstore();
    b.p.op(Opcode::CALLVALUE);
    b.caller_slot(30);
    b.p.op(Opcode::SLOAD);
    b.p.op(Opcode::ADD);
    b.caller_slot(30);
    b.sstore();
    b.return_const(1);

    // reserves(): return r0 (single word).
    b.p.place_label(main[2].1);
    b.p.op(Opcode::POP);
    b.p.push_value(r0);
    b.p.op(Opcode::SLOAD);
    b.return_top();
}

/// release() after deadline; refund() before. Both use SELFDESTRUCT —
/// legitimately.
fn escrow(b: &mut Builder<'_>, main: &[([u8; 4], Label)]) {
    let deadline = b.rng.random_range(1_600_000_000u64..1_800_000_000);
    let payee = b.rng.random_range(0x1000..u32::MAX as u64);
    let payer = b.rng.random_range(0x1000..u32::MAX as u64);

    // release(): require now >= deadline, then pay out everything.
    b.p.place_label(main[0].1);
    b.p.op(Opcode::POP);
    b.p.op(Opcode::TIMESTAMP);
    b.p.push_value(deadline);
    b.p.op(Opcode::GT);
    b.revert_if(); // deadline > now -> revert
    b.p.push_value(payee);
    b.p.op(Opcode::SELFDESTRUCT);

    // refund(): payer-only, before deadline.
    b.p.place_label(main[1].1);
    b.p.op(Opcode::POP);
    b.p.op(Opcode::CALLER);
    b.p.push_value(payer);
    b.p.op(Opcode::EQ);
    b.require();
    b.p.push_value(payer);
    b.p.op(Opcode::SELFDESTRUCT);
}

/// confirm(txid) / execute(txid, to, value) / confirmations(txid).
fn multisig(b: &mut Builder<'_>, main: &[([u8; 4], Label)]) {
    let threshold = b.rng.random_range(2..5);

    // confirm(txid): confirmations[txid] += 1 (idempotence elided).
    b.p.place_label(main[0].1);
    b.p.op(Opcode::POP);
    b.arg_slot(0, 10);
    b.p.op(Opcode::SLOAD);
    b.p.push_value(1);
    b.p.op(Opcode::ADD);
    b.arg_slot(0, 10);
    b.sstore();
    b.return_const(1);

    // execute(txid, to, value): require confirmations >= threshold.
    b.p.place_label(main[1].1);
    b.p.op(Opcode::POP);
    b.arg_slot(0, 10);
    b.p.op(Opcode::SLOAD);
    b.p.push_value(threshold);
    b.p.op(Opcode::GT); // threshold > confs -> revert
    b.revert_if();
    b.call_out(|s| s.arg(2), |s| s.arg(1));
    b.p.push_value(0);
    b.arg_slot(0, 10);
    b.sstore(); // reset confirmations
    b.return_const(1);

    // confirmations(txid)
    b.p.place_label(main[2].1);
    b.p.op(Opcode::POP);
    b.arg_slot(0, 10);
    b.p.op(Opcode::SLOAD);
    b.return_top();
}

/// mint() assigns the next id to the caller; ownerOf(id) reads it back.
fn nft_mint(b: &mut Builder<'_>, main: &[([u8; 4], Label)]) {
    let counter = b.slot(0);
    let max_supply = b.rng.random_range(100..100_000u64);

    b.p.place_label(main[0].1);
    b.p.op(Opcode::POP);
    b.p.push_value(counter);
    b.p.op(Opcode::SLOAD);
    b.p.op(Opcode::DUP1);
    b.p.push_value(max_supply);
    b.p.op(Opcode::LT); // max < id -> sold out -> revert
    b.revert_if();
    b.p.op(Opcode::DUP1);
    b.p.push_value(1);
    b.p.op(Opcode::ADD);
    b.p.push_value(counter);
    b.sstore(); // counter = id + 1, [id]
    let owner_map = b.slot(1);
    b.p.op(Opcode::CALLER);
    b.p.op(Opcode::DUP2);
    b.p.push_value(owner_map);
    b.p.op(Opcode::ADD);
    b.sstore(); // owner[id] = caller, [id]
    if b.rng.random_range(0..3) == 0 {
        // Dust refund to the minter: benign outward CALL.
        b.call_out(
            |s| {
                s.p.push_value(1);
            },
            |s| {
                s.p.op(Opcode::CALLER);
            },
        );
    }
    b.p.op(Opcode::DUP1);
    b.log_top();
    b.return_top();

    // ownerOf(id)
    b.p.place_label(main[1].1);
    b.p.op(Opcode::POP);
    b.arg_slot(0, 1);
    b.p.op(Opcode::SLOAD);
    b.return_top();
}

fn registry_core(b: &mut Builder<'_>, set_label: Label) {
    // set(name, value): registry[name] = value (caller logged).
    b.p.place_label(set_label);
    b.p.op(Opcode::POP);
    b.arg(1);
    b.arg_slot(0, 5);
    b.sstore();
    b.p.op(Opcode::CALLER);
    b.log_top();
    b.return_const(1);
}

/// set(name, value) / get(name).
fn registry(b: &mut Builder<'_>, main: &[([u8; 4], Label)]) {
    registry_core(b, main[0].1);

    b.p.place_label(main[1].1);
    b.p.op(Opcode::POP);
    b.arg_slot(0, 5);
    b.p.op(Opcode::SLOAD);
    if b.rng.random_range(0..2) == 0 {
        // Miss path: delegate to an upstream resolver — a legitimate use
        // of DELEGATECALL that shares the hidden backdoor's opcode.
        let resolver = b.rng.random_range(0x4000..u32::MAX as u64);
        let hit = b.p.new_label();
        b.p.op(Opcode::DUP1);
        b.p.jumpi_to(hit);
        b.p.push_value(0);
        b.p.push_value(0);
        b.p.op(Opcode::CALLDATASIZE);
        b.p.push_value(0);
        b.p.push_value(resolver);
        b.p.push_value(100_000);
        b.p.op(Opcode::DELEGATECALL);
        b.p.op(Opcode::POP);
        b.p.place_label(hit);
    }
    b.return_top();
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use scamdetect_evm::interp::{execute, Halt, InterpConfig, TxContext};
    use scamdetect_evm::word::U256;
    use std::collections::BTreeMap;

    fn gen(kind: FamilyKind, seed: u64) -> GeneratedEvm {
        let mut rng = StdRng::seed_from_u64(seed);
        generate_evm(kind, &mut rng)
    }

    #[test]
    fn every_family_assembles() {
        for kind in FamilyKind::all() {
            for seed in 0..5u64 {
                let g = gen(kind, seed);
                let code = g
                    .program
                    .assemble()
                    .unwrap_or_else(|e| panic!("{kind} seed {seed}: {e}"));
                assert!(code.len() > 40, "{kind} suspiciously small");
                assert!(!g.selectors.is_empty());
            }
        }
    }

    #[test]
    fn every_selector_path_executes_cleanly() {
        // Every declared function must run to a controlled halt (no stack
        // errors, no invalid jumps) on a generic context.
        for kind in FamilyKind::all() {
            for seed in 0..3u64 {
                let g = gen(kind, seed);
                let code = g.program.assemble().unwrap();
                for sel in &g.selectors {
                    let mut ctx = TxContext::with_selector(
                        *sel,
                        &[U256::from_u64(7), U256::from_u64(3), U256::from_u64(1)],
                    );
                    ctx.callvalue = U256::from_u64(100);
                    let out = execute(&code, &ctx, &BTreeMap::new(), &InterpConfig::default());
                    assert!(
                        !matches!(out.halt, Halt::StackError | Halt::Invalid | Halt::OutOfGas),
                        "{kind} seed {seed} selector {sel:02x?}: bad halt {:?}",
                        out.halt
                    );
                }
            }
        }
    }

    #[test]
    fn randomization_varies_bytecode() {
        for kind in FamilyKind::all() {
            let a = gen(kind, 1).program.assemble().unwrap();
            let b = gen(kind, 2).program.assemble().unwrap();
            assert_ne!(a, b, "{kind} not randomized");
        }
    }

    #[test]
    fn determinism_per_seed() {
        let a = gen(FamilyKind::Erc20Token, 9).program.assemble().unwrap();
        let b = gen(FamilyKind::Erc20Token, 9).program.assemble().unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn erc20_transfer_moves_balance() {
        let g = gen(FamilyKind::Erc20Token, 4);
        let code = g.program.assemble().unwrap();
        // Seed the caller with balance 50 at the additive or keccak slot —
        // easiest is to run a deposit-less transfer of 0 (always allowed).
        let ctx = TxContext::with_selector(g.selectors[0], &[U256::from_u64(0xBEEF), U256::ZERO]);
        let out = execute(&code, &ctx, &BTreeMap::new(), &InterpConfig::default());
        assert_eq!(out.halt, Halt::Return(U256::ONE.to_be_bytes().to_vec()));
    }

    #[test]
    fn vault_deposit_withdraw_cycle() {
        let g = gen(FamilyKind::Vault, 11);
        let code = g.program.assemble().unwrap();
        let mut ctx = TxContext::with_selector(g.selectors[0], &[]);
        ctx.callvalue = U256::from_u64(500);
        let out = execute(&code, &ctx, &BTreeMap::new(), &InterpConfig::default());
        assert_eq!(out.halt, Halt::Stop);
        // The deposit must have written the caller's balance.
        assert!(out.storage.values().any(|v| *v == U256::from_u64(500)));

        // Withdraw against the stored state.
        let mut ctx2 = TxContext::with_selector(g.selectors[1], &[U256::from_u64(200)]);
        ctx2.callvalue = U256::ZERO;
        let out2 = execute(&code, &ctx2, &out.storage, &InterpConfig::default());
        assert_eq!(out2.halt, Halt::Stop, "{out2:?}");
        assert_eq!(out2.calls.len(), 1, "withdraw must pay out");
        assert_eq!(out2.calls[0].value, U256::from_u64(200));
    }

    #[test]
    fn honeypot_withdraw_reverts_for_victims() {
        let g = gen(FamilyKind::HoneypotVault, 13);
        let code = g.program.assemble().unwrap();
        // Deposit succeeds (bait works).
        let mut ctx = TxContext::with_selector(g.selectors[0], &[]);
        ctx.callvalue = U256::from_u64(1000);
        let out = execute(&code, &ctx, &BTreeMap::new(), &InterpConfig::default());
        assert_eq!(out.halt, Halt::Stop);
        // Withdraw fails for the depositor.
        let ctx2 = TxContext::with_selector(g.selectors[1], &[U256::from_u64(1000)]);
        let out2 = execute(&code, &ctx2, &out.storage, &InterpConfig::default());
        assert!(
            matches!(out2.halt, Halt::Revert(_)),
            "honeypot let the victim out: {:?}",
            out2.halt
        );
    }

    #[test]
    fn drainer_calls_out_to_token_contracts() {
        let g = gen(FamilyKind::ApprovalDrainer, 17);
        let code = g.program.assemble().unwrap();
        let ctx = TxContext::with_selector(g.selectors[0], &[]);
        let out = execute(&code, &ctx, &BTreeMap::new(), &InterpConfig::default());
        assert!(out.calls.len() >= 2, "drainer must sweep tokens: {out:?}");
        assert!(!out.logs.is_empty(), "drainer emits a bait event");
    }

    #[test]
    fn backdoor_delegatecalls_arbitrary_address() {
        let g = gen(FamilyKind::HiddenBackdoor, 19);
        let code = g.program.assemble().unwrap();
        let ctx = TxContext::with_selector(g.selectors[1], &[U256::from_u64(0xE71)]);
        let out = execute(&code, &ctx, &BTreeMap::new(), &InterpConfig::default());
        assert!(
            out.calls.iter().any(|c| c.kind == Opcode::DELEGATECALL),
            "{out:?}"
        );
    }

    #[test]
    fn escrow_release_respects_deadline() {
        let g = gen(FamilyKind::Escrow, 23);
        let code = g.program.assemble().unwrap();
        let mut early = TxContext::with_selector(g.selectors[0], &[]);
        early.timestamp = 10; // long before any generated deadline
        let out = execute(&code, &early, &BTreeMap::new(), &InterpConfig::default());
        assert!(matches!(out.halt, Halt::Revert(_)));
        let mut late = TxContext::with_selector(g.selectors[0], &[]);
        late.timestamp = 2_000_000_000;
        let out2 = execute(&code, &late, &BTreeMap::new(), &InterpConfig::default());
        assert!(matches!(out2.halt, Halt::SelfDestruct(_)));
    }
}
