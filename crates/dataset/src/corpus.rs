//! Labeled corpus construction, deduplication and splitting.

use crate::evm_gen::generate_evm;
use crate::families::{ContractLabel, FamilyKind};
use crate::wasm_gen::generate_wasm;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use scamdetect_evm::proxy::{detect_proxy, fnv1a, make_erc1167, skeleton_hash, ProxyKind};
use scamdetect_ir::Platform;
use scamdetect_obfuscate::{obfuscate_evm, obfuscate_wasm, ObfuscationLevel};
use std::collections::HashMap;

/// The transformable source of a contract (kept so obfuscation can be
/// applied after generation, at experiment time).
#[derive(Debug, Clone)]
pub enum ContractSource {
    /// Label-form EVM assembly.
    Evm(scamdetect_evm::asm::AsmProgram),
    /// A WASM module.
    Wasm(scamdetect_wasm::module::Module),
    /// Raw bytes only (injected duplicates).
    Opaque,
}

/// One labeled contract.
#[derive(Debug, Clone)]
pub struct Contract {
    /// Stable id within the corpus.
    pub id: u64,
    /// Deployable bytecode (EVM runtime bytes or a WASM binary module).
    pub bytes: Vec<u8>,
    /// Which platform the bytes target.
    pub platform: Platform,
    /// Ground truth.
    pub label: ContractLabel,
    /// Generating family.
    pub family: FamilyKind,
    /// Transformable source, if retained.
    pub source: ContractSource,
}

impl Contract {
    /// Returns this contract with obfuscation `level` applied (seeded by
    /// the contract id so corpora stay reproducible). Opaque contracts are
    /// returned unchanged.
    pub fn obfuscated(&self, level: ObfuscationLevel) -> Contract {
        let seed = self.id ^ 0x0BF5;
        match &self.source {
            ContractSource::Evm(prog) => {
                let (obf, _) = obfuscate_evm(prog, level, seed);
                let bytes = obf.assemble().expect("obfuscated program assembles");
                Contract {
                    bytes,
                    source: ContractSource::Evm(obf),
                    ..self.clone()
                }
            }
            ContractSource::Wasm(module) => {
                let (obf, _) = obfuscate_wasm(module, level, seed);
                let bytes = scamdetect_wasm::encode::encode_module(&obf);
                Contract {
                    bytes,
                    source: ContractSource::Wasm(obf),
                    ..self.clone()
                }
            }
            ContractSource::Opaque => self.clone(),
        }
    }
}

/// Corpus generation parameters.
#[derive(Debug, Clone)]
pub struct CorpusConfig {
    /// Number of organically generated contracts.
    pub size: usize,
    /// Fraction drawn from malicious families (default 0.5, mirroring the
    /// balanced PhishingHook benchmark).
    pub malicious_fraction: f64,
    /// Target platform.
    pub platform: Platform,
    /// Master seed.
    pub seed: u64,
    /// Extra ERC-1167 minimal-proxy duplicates injected (EVM only) to
    /// exercise dedup (E7).
    pub proxy_duplicates: usize,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            size: 600,
            malicious_fraction: 0.5,
            platform: Platform::Evm,
            seed: 0x5CA,
            proxy_duplicates: 0,
        }
    }
}

/// A labeled contract corpus.
#[derive(Debug, Clone, Default)]
pub struct Corpus {
    contracts: Vec<Contract>,
}

/// Per-family and aggregate corpus statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusStats {
    /// Total contracts.
    pub total: usize,
    /// Malicious count.
    pub malicious: usize,
    /// Benign count.
    pub benign: usize,
    /// `(family, count)` pairs, in family order.
    pub per_family: Vec<(FamilyKind, usize)>,
    /// Mean bytecode size.
    pub mean_size: f64,
    /// Min/max bytecode sizes.
    pub size_range: (usize, usize),
}

/// What deduplication removed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DedupReport {
    /// Contracts before.
    pub before: usize,
    /// Contracts after.
    pub after: usize,
    /// Removed because they were ERC-1167 minimal proxies.
    pub proxies_removed: usize,
    /// Removed because their immediate-masked skeleton collided.
    pub skeleton_duplicates_removed: usize,
}

impl Corpus {
    /// Generates a corpus per `config`.
    ///
    /// Families alternate deterministically under the master seed; each
    /// contract gets its own derived seed, so corpora are reproducible and
    /// any subset can be regenerated.
    pub fn generate(config: &CorpusConfig) -> Corpus {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mal = FamilyKind::malicious();
        let ben = FamilyKind::benign();
        let mut contracts = Vec::with_capacity(config.size + config.proxy_duplicates);
        for id in 0..config.size as u64 {
            let is_mal = rng.random_range(0.0..1.0) < config.malicious_fraction;
            let family = if is_mal {
                mal[rng.random_range(0..mal.len())]
            } else {
                ben[rng.random_range(0..ben.len())]
            };
            let mut contract_rng =
                StdRng::seed_from_u64(config.seed ^ (id.wrapping_mul(0x9E37_79B9)));
            let contract = match config.platform {
                Platform::Evm => {
                    let g = generate_evm(family, &mut contract_rng);
                    let bytes = g.program.assemble().expect("generated contract assembles");
                    Contract {
                        id,
                        bytes,
                        platform: Platform::Evm,
                        label: family.label(),
                        family,
                        source: ContractSource::Evm(g.program),
                    }
                }
                Platform::Wasm => {
                    let g = generate_wasm(family, &mut contract_rng);
                    let bytes = scamdetect_wasm::encode::encode_module(&g.module);
                    Contract {
                        id,
                        bytes,
                        platform: Platform::Wasm,
                        label: family.label(),
                        family,
                        source: ContractSource::Wasm(g.module),
                    }
                }
            };
            contracts.push(contract);
        }

        // Injected ERC-1167 duplicates (labelled by the proxied side: in a
        // real corpus these inherit the implementation's label; here we
        // alternate to keep the injection label-neutral).
        for d in 0..config.proxy_duplicates as u64 {
            let mut addr = [0u8; 20];
            // Many proxies to FEW implementations: that is the realistic
            // duplication pattern dedup must collapse.
            addr[19] = (d % 4) as u8;
            let family = if d % 2 == 0 {
                FamilyKind::ApprovalDrainer
            } else {
                FamilyKind::Erc20Token
            };
            contracts.push(Contract {
                id: config.size as u64 + d,
                bytes: make_erc1167(&addr),
                platform: Platform::Evm,
                label: family.label(),
                family,
                source: ContractSource::Opaque,
            });
        }
        Corpus { contracts }
    }

    /// The contracts.
    pub fn contracts(&self) -> &[Contract] {
        &self.contracts
    }

    /// Number of contracts.
    pub fn len(&self) -> usize {
        self.contracts.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.contracts.is_empty()
    }

    /// Builds a corpus directly from contracts.
    pub fn from_contracts(contracts: Vec<Contract>) -> Corpus {
        Corpus { contracts }
    }

    /// A corpus with every contract obfuscated at `level`.
    pub fn obfuscated(&self, level: ObfuscationLevel) -> Corpus {
        Corpus {
            contracts: self.contracts.iter().map(|c| c.obfuscated(level)).collect(),
        }
    }

    /// Removes ERC-1167 proxies and skeleton-hash duplicates (§V-A's
    /// curation step). The first representative of each skeleton class is
    /// kept.
    pub fn dedup(&self) -> (Corpus, DedupReport) {
        let before = self.contracts.len();
        let mut proxies_removed = 0;
        let mut skeleton_duplicates_removed = 0;
        let mut seen: HashMap<(u8, u64), ()> = HashMap::new();
        let mut kept = Vec::new();
        for c in &self.contracts {
            if c.platform == Platform::Evm {
                if let ProxyKind::Erc1167 { .. } = detect_proxy(&c.bytes) {
                    proxies_removed += 1;
                    continue;
                }
            }
            let plat = match c.platform {
                Platform::Evm => 0u8,
                Platform::Wasm => 1,
            };
            let key = (
                plat,
                match c.platform {
                    Platform::Evm => skeleton_hash(&c.bytes),
                    // WASM: hash the raw bytes (no immediate-masking analog
                    // needed; generators already randomize layout).
                    Platform::Wasm => fnv1a(&c.bytes),
                },
            );
            if seen.insert(key, ()).is_some() {
                skeleton_duplicates_removed += 1;
                continue;
            }
            kept.push(c.clone());
        }
        let after = kept.len();
        (
            Corpus { contracts: kept },
            DedupReport {
                before,
                after,
                proxies_removed,
                skeleton_duplicates_removed,
            },
        )
    }

    /// Stratified train/test split: the class balance of both sides
    /// matches the corpus. Returns `(train_indices, test_indices)`.
    pub fn split(&self, test_fraction: f64, seed: u64) -> (Vec<usize>, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut train = Vec::new();
        let mut test = Vec::new();
        for label in [ContractLabel::Benign, ContractLabel::Malicious] {
            let mut idx: Vec<usize> = self
                .contracts
                .iter()
                .enumerate()
                .filter(|(_, c)| c.label == label)
                .map(|(i, _)| i)
                .collect();
            // Fisher–Yates.
            for i in (1..idx.len()).rev() {
                let j = rng.random_range(0..=i);
                idx.swap(i, j);
            }
            let n_test = (idx.len() as f64 * test_fraction).round() as usize;
            test.extend_from_slice(&idx[..n_test]);
            train.extend_from_slice(&idx[n_test..]);
        }
        train.sort_unstable();
        test.sort_unstable();
        (train, test)
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> CorpusStats {
        let malicious = self
            .contracts
            .iter()
            .filter(|c| c.label == ContractLabel::Malicious)
            .count();
        let mut per_family = Vec::new();
        for f in FamilyKind::all() {
            let n = self.contracts.iter().filter(|c| c.family == f).count();
            per_family.push((f, n));
        }
        let sizes: Vec<usize> = self.contracts.iter().map(|c| c.bytes.len()).collect();
        let mean_size = if sizes.is_empty() {
            0.0
        } else {
            sizes.iter().sum::<usize>() as f64 / sizes.len() as f64
        };
        CorpusStats {
            total: self.contracts.len(),
            malicious,
            benign: self.contracts.len() - malicious,
            per_family,
            mean_size,
            size_range: (
                sizes.iter().copied().min().unwrap_or(0),
                sizes.iter().copied().max().unwrap_or(0),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> CorpusConfig {
        CorpusConfig {
            size: 60,
            seed: 42,
            ..CorpusConfig::default()
        }
    }

    #[test]
    fn generation_is_reproducible() {
        let a = Corpus::generate(&small_cfg());
        let b = Corpus::generate(&small_cfg());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.contracts().iter().zip(b.contracts()) {
            assert_eq!(x.bytes, y.bytes);
            assert_eq!(x.label, y.label);
        }
    }

    #[test]
    fn stats_reflect_balance() {
        let c = Corpus::generate(&CorpusConfig {
            size: 300,
            seed: 7,
            ..CorpusConfig::default()
        });
        let s = c.stats();
        assert_eq!(s.total, 300);
        // Balanced to within sampling noise.
        assert!(s.malicious > 100 && s.malicious < 200, "{}", s.malicious);
        assert!(s.mean_size > 50.0);
        assert_eq!(s.per_family.iter().map(|(_, n)| n).sum::<usize>(), s.total);
    }

    #[test]
    fn wasm_corpus_generates() {
        let c = Corpus::generate(&CorpusConfig {
            size: 40,
            platform: Platform::Wasm,
            seed: 9,
            ..CorpusConfig::default()
        });
        assert_eq!(c.len(), 40);
        assert!(c.contracts().iter().all(|x| x.platform == Platform::Wasm));
        assert!(c.contracts().iter().all(|x| x.bytes.starts_with(b"\0asm")));
    }

    #[test]
    fn dedup_removes_injected_proxies() {
        let c = Corpus::generate(&CorpusConfig {
            size: 50,
            proxy_duplicates: 30,
            seed: 11,
            ..CorpusConfig::default()
        });
        assert_eq!(c.len(), 80);
        let (clean, report) = c.dedup();
        assert_eq!(report.before, 80);
        assert_eq!(report.proxies_removed, 30);
        assert_eq!(clean.len(), report.after);
        assert!(report.after <= 50);
        // Idempotent.
        let (_, again) = clean.dedup();
        assert_eq!(again.proxies_removed, 0);
    }

    #[test]
    fn split_is_stratified_and_disjoint() {
        let c = Corpus::generate(&CorpusConfig {
            size: 200,
            seed: 13,
            ..CorpusConfig::default()
        });
        let (train, test) = c.split(0.3, 99);
        assert_eq!(train.len() + test.len(), c.len());
        for i in &train {
            assert!(!test.contains(i));
        }
        // Class balance preserved on both sides (within rounding).
        let frac = |idx: &[usize]| {
            idx.iter()
                .filter(|&&i| c.contracts()[i].label == ContractLabel::Malicious)
                .count() as f64
                / idx.len() as f64
        };
        let overall = c.stats().malicious as f64 / c.len() as f64;
        assert!((frac(&train) - overall).abs() < 0.05);
        assert!((frac(&test) - overall).abs() < 0.07);
    }

    #[test]
    fn obfuscated_corpus_keeps_labels_and_changes_bytes() {
        let c = Corpus::generate(&small_cfg());
        let o = c.obfuscated(ObfuscationLevel::new(3));
        assert_eq!(c.len(), o.len());
        let mut changed = 0;
        for (a, b) in c.contracts().iter().zip(o.contracts()) {
            assert_eq!(a.label, b.label);
            if a.bytes != b.bytes {
                changed += 1;
            }
        }
        assert!(changed > c.len() / 2, "only {changed} changed");
    }
}
