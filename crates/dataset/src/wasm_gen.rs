//! WASM contract generators: the same fourteen families, emitted as
//! modules against the standard host ABI.
//!
//! The WASM variants are structurally faithful to their EVM siblings —
//! drainers loop over outward transfers, honeypots gate withdrawal on a
//! storage flag, escrows compare block timestamps — so a detector trained
//! on unified-IR features of one platform meets the *same* semantic
//! fingerprints on the other. That correspondence is what experiment E5
//! (platform transfer) measures.

use crate::families::FamilyKind;
use rand::rngs::StdRng;
use rand::Rng;
use scamdetect_wasm::hostenv::{idx, import_standard_env};
use scamdetect_wasm::instr::{IBinOp, IRelOp, Instr, Width};
use scamdetect_wasm::module::Module;
use scamdetect_wasm::types::{BlockType, FuncType, ValType};

/// A generated WASM contract.
#[derive(Debug, Clone)]
pub struct GeneratedWasm {
    /// The module (obfuscation passes transform this).
    pub module: Module,
    /// Names of the exported entry points.
    pub exports: Vec<&'static str>,
}

struct WBuilder<'r> {
    m: Module,
    env: Vec<u32>,
    rng: &'r mut StdRng,
    exports: Vec<&'static str>,
}

impl<'r> WBuilder<'r> {
    fn new(rng: &'r mut StdRng) -> Self {
        let mut m = Module::new();
        let env = import_standard_env(&mut m);
        m.memory = Some(scamdetect_wasm::types::Limits { min: 1, max: None });
        WBuilder {
            m,
            env,
            rng,
            exports: Vec::new(),
        }
    }

    fn host(&self, i: usize) -> u32 {
        self.env[i]
    }

    fn export_fn(
        &mut self,
        name: &'static str,
        ty: FuncType,
        locals: Vec<(u32, ValType)>,
        body: Vec<Instr>,
    ) -> u32 {
        let f = self.m.add_function(ty, locals, body);
        self.m.export_func(name, f);
        self.exports.push(name);
        f
    }

    fn internal_fn(&mut self, ty: FuncType, locals: Vec<(u32, ValType)>, body: Vec<Instr>) -> u32 {
        self.m.add_function(ty, locals, body)
    }

    fn c64(&mut self, lo: u64, hi: u64) -> Instr {
        Instr::I64Const(self.rng.random_range(lo..hi) as i64)
    }

    /// `if storage_read(key) == 0 { panic() }` — the require idiom.
    fn require_flag(&mut self, key: i64) -> Vec<Instr> {
        vec![
            Instr::I64Const(key),
            Instr::Call(self.host(idx::STORAGE_READ)),
            Instr::Eqz(Width::W64),
            Instr::If {
                ty: BlockType::Empty,
                then: vec![Instr::Call(self.host(idx::PANIC)), Instr::Unreachable],
                els: vec![],
            },
        ]
    }

    /// `if caller() != owner { panic() }`.
    fn require_owner(&mut self, owner: i64) -> Vec<Instr> {
        vec![
            Instr::Call(self.host(idx::CALLER)),
            Instr::I64Const(owner),
            Instr::Rel {
                width: Width::W64,
                op: IRelOp::Ne,
            },
            Instr::If {
                ty: BlockType::Empty,
                then: vec![Instr::Call(self.host(idx::PANIC)), Instr::Unreachable],
                els: vec![],
            },
        ]
    }

    /// `storage_write(key_expr…, value_expr…)` with the args already
    /// described as instruction sequences.
    fn storage_write(&self, mut key: Vec<Instr>, value: Vec<Instr>) -> Vec<Instr> {
        key.extend(value);
        key.push(Instr::Call(self.host(idx::STORAGE_WRITE)));
        key
    }

    /// A utility function both classes share: arithmetic mixing + a log.
    fn add_utility(&mut self) {
        let c1 = self.c64(3, 0xffff);
        let c2 = self.c64(1, 0xff_ffff);
        let body = vec![
            Instr::LocalGet(0),
            c1,
            Instr::Binary {
                width: Width::W64,
                op: IBinOp::Mul,
            },
            c2,
            Instr::Binary {
                width: Width::W64,
                op: IBinOp::Xor,
            },
            Instr::LocalSet(1),
            Instr::I32Const(0),
            Instr::I32Const(8),
            Instr::Call(self.host(idx::LOG)),
            Instr::LocalGet(1),
        ];
        let f = self.internal_fn(
            FuncType::new(vec![ValType::I64], vec![ValType::I64]),
            vec![(1, ValType::I64)],
            body,
        );
        // Some utilities are exported (public helpers), some stay internal.
        if self.rng.random_range(0..2) == 0 {
            self.m.export_func("util", f);
        }
    }
}

/// Generates a WASM contract of `kind`, randomized from `rng`.
pub fn generate_wasm(kind: FamilyKind, rng: &mut StdRng) -> GeneratedWasm {
    let mut b = WBuilder::new(rng);
    match kind {
        FamilyKind::Erc20Token => wasm_token(&mut b, TokenMode::Standard),
        FamilyKind::RugPullToken => wasm_token(&mut b, TokenMode::Rug),
        FamilyKind::FeeTrapToken => wasm_token(&mut b, TokenMode::Trap),
        FamilyKind::Vault => wasm_vault(&mut b, false),
        FamilyKind::HoneypotVault => wasm_vault(&mut b, true),
        FamilyKind::PonziScheme => wasm_ponzi(&mut b),
        FamilyKind::ApprovalDrainer => wasm_drainer(&mut b),
        FamilyKind::FakeAirdrop => wasm_fake_airdrop(&mut b),
        FamilyKind::HiddenBackdoor => wasm_backdoor(&mut b),
        FamilyKind::AmmPool => wasm_amm(&mut b),
        FamilyKind::Escrow => wasm_escrow(&mut b),
        FamilyKind::Multisig => wasm_multisig(&mut b),
        FamilyKind::NftMint => wasm_nft(&mut b),
        FamilyKind::Registry => wasm_registry(&mut b),
    }
    let utilities = b.rng.random_range(0..=2);
    for _ in 0..utilities {
        b.add_utility();
    }
    GeneratedWasm {
        exports: b.exports.clone(),
        module: b.m,
    }
}

enum TokenMode {
    Standard,
    Rug,
    Trap,
}

fn wasm_token(b: &mut WBuilder<'_>, mode: TokenMode) {
    let owner = b.rng.random_range(0x1000..i64::MAX as u64) as i64;
    let base = b.rng.random_range(0x10..0x1000) as i64;
    let pausable = b.rng.random_range(0..2) == 0;
    let gate_slot = base + 40;

    // transfer(to: i64, amt: i64)
    let mut body: Vec<Instr> = Vec::new();
    if matches!(mode, TokenMode::Trap) || (matches!(mode, TokenMode::Standard) && pausable) {
        // Gate: panic when storage[gate] is set — the trap and the benign
        // pause switch are structurally identical.
        body.extend(vec![
            Instr::I64Const(gate_slot),
            Instr::Call(b.host(idx::STORAGE_READ)),
            Instr::Eqz(Width::W64),
            Instr::If {
                ty: BlockType::Empty,
                then: vec![],
                els: vec![Instr::Call(b.host(idx::PANIC)), Instr::Unreachable],
            },
        ]);
    }
    // bal = storage_read(caller + base); if bal < amt panic.
    body.extend(vec![
        Instr::Call(b.host(idx::CALLER)),
        Instr::I64Const(base),
        Instr::Binary {
            width: Width::W64,
            op: IBinOp::Add,
        },
        Instr::Call(b.host(idx::STORAGE_READ)),
        Instr::LocalTee(2),
        Instr::LocalGet(1),
        Instr::Rel {
            width: Width::W64,
            op: IRelOp::LtU,
        },
        Instr::If {
            ty: BlockType::Empty,
            then: vec![Instr::Call(b.host(idx::PANIC)), Instr::Unreachable],
            els: vec![],
        },
    ]);
    // storage_write(caller+base, bal - amt)
    body.extend(b.storage_write(
        vec![
            Instr::Call(b.host(idx::CALLER)),
            Instr::I64Const(base),
            Instr::Binary {
                width: Width::W64,
                op: IBinOp::Add,
            },
        ],
        vec![
            Instr::LocalGet(2),
            Instr::LocalGet(1),
            Instr::Binary {
                width: Width::W64,
                op: IBinOp::Sub,
            },
        ],
    ));
    // Rug mode skims half to the owner's balance.
    let credited: Vec<Instr> = match mode {
        TokenMode::Rug => vec![
            Instr::LocalGet(1),
            Instr::I64Const(1),
            Instr::Binary {
                width: Width::W64,
                op: IBinOp::ShrU,
            },
        ],
        _ => vec![Instr::LocalGet(1)],
    };
    if matches!(mode, TokenMode::Rug) {
        let skim = b.storage_write(
            vec![Instr::I64Const(owner.wrapping_add(base))],
            vec![
                Instr::LocalGet(1),
                Instr::I64Const(1),
                Instr::Binary {
                    width: Width::W64,
                    op: IBinOp::ShrU,
                },
            ],
        );
        body.extend(skim);
    }
    let mut credit_value = vec![
        Instr::LocalGet(0),
        Instr::I64Const(base),
        Instr::Binary {
            width: Width::W64,
            op: IBinOp::Add,
        },
        Instr::Call(b.host(idx::STORAGE_READ)),
    ];
    credit_value.extend(credited);
    credit_value.push(Instr::Binary {
        width: Width::W64,
        op: IBinOp::Add,
    });
    body.extend(b.storage_write(
        vec![
            Instr::LocalGet(0),
            Instr::I64Const(base),
            Instr::Binary {
                width: Width::W64,
                op: IBinOp::Add,
            },
        ],
        credit_value,
    ));
    body.push(Instr::I32Const(0));
    body.push(Instr::I32Const(16));
    body.push(Instr::Call(b.host(idx::LOG)));
    b.export_fn(
        "transfer",
        FuncType::new(vec![ValType::I64, ValType::I64], vec![]),
        vec![(1, ValType::I64)],
        body,
    );

    // balance_of(a)
    b.export_fn(
        "balance_of",
        FuncType::new(vec![ValType::I64], vec![ValType::I64]),
        vec![],
        vec![
            Instr::LocalGet(0),
            Instr::I64Const(base),
            Instr::Binary {
                width: Width::W64,
                op: IBinOp::Add,
            },
            Instr::Call(b.host(idx::STORAGE_READ)),
        ],
    );

    // Rug: owner-only drain sweeping the contract balance out.
    if matches!(mode, TokenMode::Rug) {
        let mut body = b.require_owner(owner);
        body.extend(vec![
            Instr::I64Const(owner),
            Instr::I64Const(owner),
            Instr::Call(b.host(idx::ACCOUNT_BALANCE)),
            Instr::Call(b.host(idx::TRANSFER)),
        ]);
        b.export_fn("collect_fees", FuncType::default(), vec![], body);
    }
}

fn wasm_vault(b: &mut WBuilder<'_>, honeypot: bool) {
    let base = b.rng.random_range(0x10..0x1000) as i64;
    let flag = base + 50;
    let owner = b.rng.random_range(0x1000..i64::MAX as u64) as i64;

    // deposit(): balances[caller] += attached_value.
    let mut dep = b.storage_write(
        vec![
            Instr::Call(b.host(idx::CALLER)),
            Instr::I64Const(base),
            Instr::Binary {
                width: Width::W64,
                op: IBinOp::Add,
            },
        ],
        vec![
            Instr::Call(b.host(idx::CALLER)),
            Instr::I64Const(base),
            Instr::Binary {
                width: Width::W64,
                op: IBinOp::Add,
            },
            Instr::Call(b.host(idx::STORAGE_READ)),
            Instr::Call(b.host(idx::ATTACHED_VALUE)),
            Instr::Binary {
                width: Width::W64,
                op: IBinOp::Add,
            },
        ],
    );
    dep.push(Instr::I32Const(0));
    dep.push(Instr::I32Const(8));
    dep.push(Instr::Call(b.host(idx::LOG)));
    b.export_fn("deposit", FuncType::default(), vec![], dep);

    // withdraw(amt)
    let mut wd: Vec<Instr> = Vec::new();
    if !honeypot && b.rng.random_range(0..2) == 0 {
        // Benign emergency sweep: same motif as the honeypot's, but the
        // depositor withdraw path stays functional.
        let mut sweep = b.require_owner(owner);
        sweep.extend(vec![
            Instr::I64Const(owner),
            Instr::I64Const(owner),
            Instr::Call(b.host(idx::ACCOUNT_BALANCE)),
            Instr::Call(b.host(idx::TRANSFER)),
        ]);
        b.export_fn("emergency", FuncType::default(), vec![], sweep);
    }
    if honeypot {
        // The flag is never written by any exported code path.
        wd.extend(b.require_flag(flag));
        // Owner sweep lives behind the same function.
        let mut sweep = b.require_owner(owner);
        sweep.extend(vec![
            Instr::I64Const(owner),
            Instr::I64Const(owner),
            Instr::Call(b.host(idx::ACCOUNT_BALANCE)),
            Instr::Call(b.host(idx::TRANSFER)),
        ]);
        b.export_fn("sweep", FuncType::default(), vec![], sweep);
    }
    wd.extend(vec![
        // if balances[caller] < amt panic
        Instr::Call(b.host(idx::CALLER)),
        Instr::I64Const(base),
        Instr::Binary {
            width: Width::W64,
            op: IBinOp::Add,
        },
        Instr::Call(b.host(idx::STORAGE_READ)),
        Instr::LocalTee(1),
        Instr::LocalGet(0),
        Instr::Rel {
            width: Width::W64,
            op: IRelOp::LtU,
        },
        Instr::If {
            ty: BlockType::Empty,
            then: vec![Instr::Call(b.host(idx::PANIC)), Instr::Unreachable],
            els: vec![],
        },
    ]);
    wd.extend(b.storage_write(
        vec![
            Instr::Call(b.host(idx::CALLER)),
            Instr::I64Const(base),
            Instr::Binary {
                width: Width::W64,
                op: IBinOp::Add,
            },
        ],
        vec![
            Instr::LocalGet(1),
            Instr::LocalGet(0),
            Instr::Binary {
                width: Width::W64,
                op: IBinOp::Sub,
            },
        ],
    ));
    wd.extend(vec![
        Instr::Call(b.host(idx::CALLER)),
        Instr::LocalGet(0),
        Instr::Call(b.host(idx::TRANSFER)),
    ]);
    b.export_fn(
        "withdraw",
        FuncType::new(vec![ValType::I64], vec![]),
        vec![(1, ValType::I64)],
        wd,
    );
}

fn wasm_ponzi(b: &mut WBuilder<'_>) {
    let base = b.rng.random_range(0x10..0x1000) as i64;
    let owner = b.rng.random_range(0x1000..i64::MAX as u64) as i64;

    // invest(): record caller; pay 3 earlier investors value/10 each.
    let mut body = b.storage_write(
        vec![
            Instr::I64Const(base),
            Instr::Call(b.host(idx::STORAGE_READ)),
            Instr::I64Const(base + 1),
            Instr::Binary {
                width: Width::W64,
                op: IBinOp::Add,
            },
        ],
        vec![Instr::Call(b.host(idx::CALLER))],
    );
    body.extend(b.storage_write(
        vec![Instr::I64Const(base)],
        vec![
            Instr::I64Const(base),
            Instr::Call(b.host(idx::STORAGE_READ)),
            Instr::I64Const(1),
            Instr::Binary {
                width: Width::W64,
                op: IBinOp::Add,
            },
        ],
    ));
    body.extend(vec![
        Instr::I64Const(3),
        Instr::LocalSet(0),
        Instr::Loop {
            ty: BlockType::Empty,
            body: vec![
                // transfer(storage_read(base+1+i), attached_value/10)
                Instr::LocalGet(0),
                Instr::I64Const(base + 1),
                Instr::Binary {
                    width: Width::W64,
                    op: IBinOp::Add,
                },
                Instr::Call(b.host(idx::STORAGE_READ)),
                Instr::Call(b.host(idx::ATTACHED_VALUE)),
                Instr::I64Const(10),
                Instr::Binary {
                    width: Width::W64,
                    op: IBinOp::DivU,
                },
                Instr::Call(b.host(idx::TRANSFER)),
                Instr::LocalGet(0),
                Instr::I64Const(1),
                Instr::Binary {
                    width: Width::W64,
                    op: IBinOp::Sub,
                },
                Instr::LocalTee(0),
                Instr::Eqz(Width::W64),
                Instr::Eqz(Width::W32),
                Instr::BrIf(0),
            ],
        },
    ]);
    b.export_fn("invest", FuncType::default(), vec![(1, ValType::I64)], body);

    // drain(): owner-only.
    let mut drain = b.require_owner(owner);
    drain.extend(vec![
        Instr::I64Const(owner),
        Instr::I64Const(owner),
        Instr::Call(b.host(idx::ACCOUNT_BALANCE)),
        Instr::Call(b.host(idx::TRANSFER)),
    ]);
    b.export_fn("drain", FuncType::default(), vec![], drain);
}

fn wasm_drainer(b: &mut WBuilder<'_>) {
    let attacker = b.rng.random_range(0x1000..i64::MAX as u64) as i64;
    let tokens = b.rng.random_range(2..5);

    // claim(): bait log, then sweep via cross-contract calls.
    let mut body = vec![
        Instr::I32Const(0),
        Instr::I32Const(8),
        Instr::Call(b.host(idx::LOG)),
    ];
    for t in 0..tokens {
        body.extend(vec![
            Instr::I64Const(attacker.wrapping_add(t)),
            Instr::I32Const(0),
            Instr::I32Const(64),
            Instr::Call(b.host(idx::CALL_CONTRACT)),
            Instr::Drop,
        ]);
    }
    body.extend(vec![
        Instr::I64Const(attacker),
        Instr::Call(b.host(idx::CALLER)),
        Instr::Call(b.host(idx::ACCOUNT_BALANCE)),
        Instr::Call(b.host(idx::TRANSFER)),
    ]);
    b.export_fn("claim", FuncType::default(), vec![], body);

    // eligibility(a): plausible view.
    b.export_fn(
        "eligibility",
        FuncType::new(vec![ValType::I64], vec![ValType::I64]),
        vec![],
        vec![
            Instr::LocalGet(0),
            Instr::I64Const(0xffff),
            Instr::Binary {
                width: Width::W64,
                op: IBinOp::And,
            },
        ],
    );
}

fn wasm_fake_airdrop(b: &mut WBuilder<'_>) {
    let attacker_impl = b.rng.random_range(0x3000..i64::MAX as u64) as i64;
    let mut body = vec![
        Instr::I32Const(0),
        Instr::I32Const(8),
        Instr::Call(b.host(idx::LOG)),
        // Hand the input straight to the attacker's contract.
        Instr::I64Const(attacker_impl),
        Instr::I32Const(0),
        Instr::I32Const(128),
        Instr::Call(b.host(idx::CALL_CONTRACT)),
        Instr::Drop,
    ];
    body.extend(vec![Instr::I64Const(1), Instr::Drop]);
    b.export_fn("claim_airdrop", FuncType::default(), vec![], body);
}

fn wasm_backdoor(b: &mut WBuilder<'_>) {
    let base = b.rng.random_range(0x10..0x1000) as i64;
    // set(name, value)
    let set = b.storage_write(
        vec![
            Instr::LocalGet(0),
            Instr::I64Const(base),
            Instr::Binary {
                width: Width::W64,
                op: IBinOp::Add,
            },
        ],
        vec![Instr::LocalGet(1)],
    );
    b.export_fn(
        "set",
        FuncType::new(vec![ValType::I64, ValType::I64], vec![]),
        vec![],
        set,
    );
    // The backdoor: forward full input to an arbitrary callee.
    b.export_fn(
        "maintenance",
        FuncType::new(vec![ValType::I64], vec![]),
        vec![],
        vec![
            Instr::LocalGet(0),
            Instr::I32Const(0),
            Instr::I32Const(256),
            Instr::Call(b.host(idx::CALL_CONTRACT)),
            Instr::Drop,
        ],
    );
}

fn wasm_amm(b: &mut WBuilder<'_>) {
    let r0 = b.rng.random_range(0x10..0x1000) as i64;
    let r1 = r0 + 1;
    // swap(amount_in) -> amount_out
    let mut body = vec![
        Instr::LocalGet(0),
        Instr::Eqz(Width::W64),
        Instr::If {
            ty: BlockType::Empty,
            then: vec![Instr::Call(b.host(idx::PANIC)), Instr::Unreachable],
            els: vec![],
        },
    ];
    body.extend(b.storage_write(
        vec![Instr::I64Const(r0)],
        vec![
            Instr::I64Const(r0),
            Instr::Call(b.host(idx::STORAGE_READ)),
            Instr::LocalGet(0),
            Instr::Binary {
                width: Width::W64,
                op: IBinOp::Add,
            },
        ],
    ));
    body.extend(vec![
        // out = r1 * 997 / ((r0 + in) * 1000 + 1)
        Instr::I64Const(r1),
        Instr::Call(b.host(idx::STORAGE_READ)),
        Instr::I64Const(997),
        Instr::Binary {
            width: Width::W64,
            op: IBinOp::Mul,
        },
        Instr::I64Const(r0),
        Instr::Call(b.host(idx::STORAGE_READ)),
        Instr::I64Const(1000),
        Instr::Binary {
            width: Width::W64,
            op: IBinOp::Mul,
        },
        Instr::I64Const(1),
        Instr::Binary {
            width: Width::W64,
            op: IBinOp::Add,
        },
        Instr::Binary {
            width: Width::W64,
            op: IBinOp::DivU,
        },
        Instr::LocalTee(1),
        Instr::Call(b.host(idx::CALLER)),
        Instr::LocalGet(1),
        Instr::Call(b.host(idx::TRANSFER)),
    ]);
    b.export_fn(
        "swap",
        FuncType::new(vec![ValType::I64], vec![ValType::I64]),
        vec![(1, ValType::I64)],
        body,
    );
    // reserves()
    b.export_fn(
        "reserves",
        FuncType::new(vec![], vec![ValType::I64]),
        vec![],
        vec![Instr::I64Const(r0), Instr::Call(b.host(idx::STORAGE_READ))],
    );
}

fn wasm_escrow(b: &mut WBuilder<'_>) {
    let deadline = b.rng.random_range(1_600_000_000i64..1_800_000_000);
    let payee = b.rng.random_range(0x1000..i64::MAX as u64) as i64;
    b.export_fn(
        "release",
        FuncType::default(),
        vec![],
        vec![
            Instr::Call(b.host(idx::BLOCK_TIMESTAMP)),
            Instr::I64Const(deadline),
            Instr::Rel {
                width: Width::W64,
                op: IRelOp::LtU,
            },
            Instr::If {
                ty: BlockType::Empty,
                then: vec![Instr::Call(b.host(idx::PANIC)), Instr::Unreachable],
                els: vec![],
            },
            Instr::I64Const(payee),
            Instr::I64Const(payee),
            Instr::Call(b.host(idx::ACCOUNT_BALANCE)),
            Instr::Call(b.host(idx::TRANSFER)),
        ],
    );
}

fn wasm_multisig(b: &mut WBuilder<'_>) {
    let base = b.rng.random_range(0x10..0x1000) as i64;
    let threshold = b.rng.random_range(2..5) as i64;
    // confirm(txid)
    let confirm = b.storage_write(
        vec![
            Instr::LocalGet(0),
            Instr::I64Const(base),
            Instr::Binary {
                width: Width::W64,
                op: IBinOp::Add,
            },
        ],
        vec![
            Instr::LocalGet(0),
            Instr::I64Const(base),
            Instr::Binary {
                width: Width::W64,
                op: IBinOp::Add,
            },
            Instr::Call(b.host(idx::STORAGE_READ)),
            Instr::I64Const(1),
            Instr::Binary {
                width: Width::W64,
                op: IBinOp::Add,
            },
        ],
    );
    b.export_fn(
        "confirm",
        FuncType::new(vec![ValType::I64], vec![]),
        vec![],
        confirm,
    );
    // execute(txid, to, value)
    let mut exec = vec![
        Instr::LocalGet(0),
        Instr::I64Const(base),
        Instr::Binary {
            width: Width::W64,
            op: IBinOp::Add,
        },
        Instr::Call(b.host(idx::STORAGE_READ)),
        Instr::I64Const(threshold),
        Instr::Rel {
            width: Width::W64,
            op: IRelOp::LtU,
        },
        Instr::If {
            ty: BlockType::Empty,
            then: vec![Instr::Call(b.host(idx::PANIC)), Instr::Unreachable],
            els: vec![],
        },
        Instr::LocalGet(1),
        Instr::LocalGet(2),
        Instr::Call(b.host(idx::TRANSFER)),
    ];
    exec.extend(b.storage_write(
        vec![
            Instr::LocalGet(0),
            Instr::I64Const(base),
            Instr::Binary {
                width: Width::W64,
                op: IBinOp::Add,
            },
        ],
        vec![Instr::I64Const(0)],
    ));
    b.export_fn(
        "execute",
        FuncType::new(vec![ValType::I64, ValType::I64, ValType::I64], vec![]),
        vec![],
        exec,
    );
}

fn wasm_nft(b: &mut WBuilder<'_>) {
    let counter = b.rng.random_range(0x10..0x1000) as i64;
    let max = b.rng.random_range(100..100_000) as i64;
    let mut body = vec![
        Instr::I64Const(counter),
        Instr::Call(b.host(idx::STORAGE_READ)),
        Instr::LocalTee(0),
        Instr::I64Const(max),
        Instr::Rel {
            width: Width::W64,
            op: IRelOp::GeU,
        },
        Instr::If {
            ty: BlockType::Empty,
            then: vec![Instr::Call(b.host(idx::PANIC)), Instr::Unreachable],
            els: vec![],
        },
    ];
    body.extend(b.storage_write(
        vec![Instr::I64Const(counter)],
        vec![
            Instr::LocalGet(0),
            Instr::I64Const(1),
            Instr::Binary {
                width: Width::W64,
                op: IBinOp::Add,
            },
        ],
    ));
    body.extend(b.storage_write(
        vec![
            Instr::LocalGet(0),
            Instr::I64Const(counter + 1),
            Instr::Binary {
                width: Width::W64,
                op: IBinOp::Add,
            },
        ],
        vec![Instr::Call(b.host(idx::CALLER))],
    ));
    body.extend(vec![
        Instr::I32Const(0),
        Instr::I32Const(8),
        Instr::Call(b.host(idx::LOG)),
        Instr::LocalGet(0),
    ]);
    b.export_fn(
        "mint",
        FuncType::new(vec![], vec![ValType::I64]),
        vec![(1, ValType::I64)],
        body,
    );
}

fn wasm_registry(b: &mut WBuilder<'_>) {
    let base = b.rng.random_range(0x10..0x1000) as i64;
    let set = b.storage_write(
        vec![
            Instr::LocalGet(0),
            Instr::I64Const(base),
            Instr::Binary {
                width: Width::W64,
                op: IBinOp::Add,
            },
        ],
        vec![Instr::LocalGet(1)],
    );
    b.export_fn(
        "set",
        FuncType::new(vec![ValType::I64, ValType::I64], vec![]),
        vec![],
        set,
    );
    b.export_fn(
        "get",
        FuncType::new(vec![ValType::I64], vec![ValType::I64]),
        vec![],
        vec![
            Instr::LocalGet(0),
            Instr::I64Const(base),
            Instr::Binary {
                width: Width::W64,
                op: IBinOp::Add,
            },
            Instr::Call(b.host(idx::STORAGE_READ)),
        ],
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use scamdetect_ir::{Frontend, InstrClass, WasmFrontend};
    use scamdetect_wasm::decode::decode_module;
    use scamdetect_wasm::encode::encode_module;
    use scamdetect_wasm::validate::validate;

    fn gen(kind: FamilyKind, seed: u64) -> GeneratedWasm {
        let mut rng = StdRng::seed_from_u64(seed);
        generate_wasm(kind, &mut rng)
    }

    #[test]
    fn every_family_validates_and_roundtrips() {
        for kind in FamilyKind::all() {
            for seed in 0..5u64 {
                let g = gen(kind, seed);
                validate(&g.module).unwrap_or_else(|e| panic!("{kind} seed {seed}: {e}"));
                let bytes = encode_module(&g.module);
                let back = decode_module(&bytes).unwrap_or_else(|e| panic!("{kind}: {e}"));
                assert_eq!(back, g.module, "{kind} roundtrip");
                assert!(!g.exports.is_empty(), "{kind} must export something");
            }
        }
    }

    #[test]
    fn every_family_lifts_to_unified_ir() {
        let fe = WasmFrontend::new();
        for kind in FamilyKind::all() {
            let g = gen(kind, 3);
            let bytes = encode_module(&g.module);
            let cfg = fe.lift(&bytes).unwrap_or_else(|e| panic!("{kind}: {e}"));
            assert!(cfg.block_count() >= 2, "{kind}");
            assert!(cfg.instruction_count() > 5, "{kind}");
        }
    }

    #[test]
    fn drainer_shows_value_transfer_signal() {
        let fe = WasmFrontend::new();
        let g = gen(FamilyKind::ApprovalDrainer, 7);
        let cfg = fe.lift(&encode_module(&g.module)).unwrap();
        let h = cfg.class_histogram();
        assert!(h[InstrClass::ValueTransfer.index()] > 0.0);
        assert!(h[InstrClass::Call.index()] > 0.0);
    }

    #[test]
    fn escrow_reads_block_environment() {
        let fe = WasmFrontend::new();
        let g = gen(FamilyKind::Escrow, 7);
        let cfg = fe.lift(&encode_module(&g.module)).unwrap();
        let h = cfg.class_histogram();
        assert!(h[InstrClass::BlockEnv.index()] > 0.0);
        assert!(h[InstrClass::ValueTransfer.index()] > 0.0); // benign transfer!
    }

    #[test]
    fn randomization_varies_modules() {
        for kind in FamilyKind::all() {
            let a = encode_module(&gen(kind, 1).module);
            let b = encode_module(&gen(kind, 2).module);
            assert_ne!(a, b, "{kind} not randomized");
        }
    }

    #[test]
    fn ponzi_contains_a_loop() {
        let g = gen(FamilyKind::PonziScheme, 5);
        fn has_loop(body: &[Instr]) -> bool {
            body.iter().any(|i| match i {
                Instr::Loop { .. } => true,
                Instr::Block { body, .. } => has_loop(body),
                Instr::If { then, els, .. } => has_loop(then) || has_loop(els),
                _ => false,
            })
        }
        assert!(g.module.functions.iter().any(|f| has_loop(&f.body)));
    }
}
