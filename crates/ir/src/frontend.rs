//! Platform frontends: raw contract bytes → [`UnifiedCfg`].

use crate::unified::{InstrClass, Platform, UnifiedBlock, UnifiedCfg, UnifiedEdge};
use scamdetect_evm::cfg::{build_cfg_with, CfgOptions, EdgeKind};
use scamdetect_evm::opcode::{OpCategory, Opcode};
use scamdetect_graph::DiGraph;
use scamdetect_wasm::cfg::{lift_module, WasmEdge};
use scamdetect_wasm::hostenv::{classify, HostClass};
use scamdetect_wasm::instr::{IBinOp, Instr};
use std::error::Error;
use std::fmt;

/// Errors from lifting contract bytes into the unified IR.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FrontendError {
    /// The WASM module failed to decode or validate.
    Wasm(scamdetect_wasm::WasmError),
    /// The contract bytes are empty.
    EmptyContract,
}

impl fmt::Display for FrontendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrontendError::Wasm(e) => write!(f, "wasm frontend: {e}"),
            FrontendError::EmptyContract => write!(f, "contract bytecode is empty"),
        }
    }
}

impl Error for FrontendError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FrontendError::Wasm(e) => Some(e),
            FrontendError::EmptyContract => None,
        }
    }
}

impl From<scamdetect_wasm::WasmError> for FrontendError {
    fn from(e: scamdetect_wasm::WasmError) -> Self {
        FrontendError::Wasm(e)
    }
}

/// A bytecode platform frontend.
///
/// Implementations lift raw on-chain bytes into the platform-agnostic
/// [`UnifiedCfg`]. The detection pipeline is generic over this trait —
/// adding a platform means adding one impl, nothing downstream changes.
pub trait Frontend {
    /// Which platform this frontend parses.
    fn platform(&self) -> Platform;

    /// Lifts `bytes` to the unified IR.
    ///
    /// # Errors
    ///
    /// [`FrontendError`] when the bytes are not a valid contract for this
    /// platform.
    fn lift(&self, bytes: &[u8]) -> Result<UnifiedCfg, FrontendError>;
}

/// EVM frontend: disassembly + CFG recovery + class mapping.
#[derive(Debug, Clone, Default)]
pub struct EvmFrontend {
    /// CFG recovery options (jump-resolution policy).
    pub options: CfgOptions,
}

impl EvmFrontend {
    /// Creates the frontend with default CFG options.
    pub fn new() -> Self {
        EvmFrontend::default()
    }
}

/// Maps an EVM opcode to its cross-platform class.
pub fn classify_evm_opcode(op: Opcode) -> InstrClass {
    match op {
        // Special cases first: semantics over syntax.
        Opcode::SELFDESTRUCT => InstrClass::ValueTransfer,
        Opcode::SLOAD | Opcode::TLOAD => InstrClass::StorageRead,
        Opcode::SSTORE | Opcode::TSTORE => InstrClass::StorageWrite,
        _ => match op.category() {
            OpCategory::Arithmetic => InstrClass::Arithmetic,
            OpCategory::Comparison => InstrClass::Comparison,
            OpCategory::Bitwise => InstrClass::Bitwise,
            OpCategory::Crypto => InstrClass::Crypto,
            OpCategory::Environment => InstrClass::Environment,
            OpCategory::Block => InstrClass::BlockEnv,
            OpCategory::Stack => InstrClass::StackOp,
            OpCategory::Push => InstrClass::PushConst,
            OpCategory::Memory => InstrClass::Memory,
            OpCategory::Storage => InstrClass::StorageRead, // unreachable: handled above
            OpCategory::Flow => InstrClass::Flow,
            OpCategory::Log => InstrClass::Log,
            OpCategory::Call => InstrClass::Call,
            OpCategory::Create => InstrClass::Create,
            OpCategory::Terminate => InstrClass::Terminate,
        },
    }
}

impl Frontend for EvmFrontend {
    fn platform(&self) -> Platform {
        Platform::Evm
    }

    fn lift(&self, bytes: &[u8]) -> Result<UnifiedCfg, FrontendError> {
        if bytes.is_empty() {
            return Err(FrontendError::EmptyContract);
        }
        let cfg = build_cfg_with(bytes, &self.options);
        let graph = cfg.graph().map_nodes(|_, block| {
            let mut ub = UnifiedBlock::new();
            for ins in &block.instructions {
                match ins.opcode {
                    Some(op) => ub.record(classify_evm_opcode(op)),
                    None => ub.record(InstrClass::Terminate), // INVALID
                }
            }
            ub
        });
        // Re-map edge kinds.
        let mut out: DiGraph<UnifiedBlock, UnifiedEdge> =
            DiGraph::with_capacity(graph.node_count());
        for (_, b) in graph.nodes() {
            out.add_node(b.clone());
        }
        for (u, v, k) in graph.edges() {
            let kind = match k {
                EdgeKind::FallThrough | EdgeKind::Jump => UnifiedEdge::Seq,
                EdgeKind::Branch => UnifiedEdge::Branch,
                EdgeKind::Unresolved => UnifiedEdge::Unresolved,
            };
            out.add_edge(u, v, kind);
        }
        let total_jumps = cfg.resolved_jump_count() + cfg.unresolved_jump_count();
        let unresolved_fraction = if total_jumps > 0 {
            cfg.unresolved_jump_count() as f32 / total_jumps as f32
        } else {
            0.0
        };
        Ok(UnifiedCfg::new(
            out,
            cfg.entry(),
            Platform::Evm,
            unresolved_fraction,
        ))
    }
}

/// WASM frontend: decode + validate + module-level CFG lifting + class
/// mapping (host imports classified by ABI name).
#[derive(Debug, Clone, Default)]
pub struct WasmFrontend;

impl WasmFrontend {
    /// Creates the frontend.
    pub fn new() -> Self {
        WasmFrontend
    }
}

/// Maps a WASM instruction to its class. `import_names` resolves direct
/// call targets into host classes (indices below the import count).
pub fn classify_wasm_instr(ins: &Instr, import_names: &[String]) -> InstrClass {
    match ins {
        Instr::Unreachable => InstrClass::Terminate,
        Instr::Nop => InstrClass::Other,
        Instr::Block { .. } | Instr::Loop { .. } | Instr::If { .. } => InstrClass::Flow,
        Instr::Br(_) | Instr::BrIf(_) | Instr::BrTable { .. } | Instr::Return => InstrClass::Flow,
        Instr::Call(i) => match import_names.get(*i as usize).map(String::as_str) {
            Some(name) => match classify(name) {
                Some(HostClass::Environment) => InstrClass::Environment,
                Some(HostClass::Block) => InstrClass::BlockEnv,
                Some(HostClass::ValueTransfer) => InstrClass::ValueTransfer,
                Some(HostClass::StorageRead) => InstrClass::StorageRead,
                Some(HostClass::StorageWrite) => InstrClass::StorageWrite,
                Some(HostClass::Log) => InstrClass::Log,
                Some(HostClass::CrossCall) => InstrClass::Call,
                Some(HostClass::Abort) => InstrClass::Terminate,
                Some(HostClass::Crypto) => InstrClass::Crypto,
                None => InstrClass::Call,
            },
            None => InstrClass::Call, // local function call
        },
        Instr::Drop | Instr::Select => InstrClass::StackOp,
        Instr::LocalGet(_) | Instr::LocalSet(_) | Instr::LocalTee(_) => InstrClass::StackOp,
        Instr::GlobalGet(_) => InstrClass::StorageRead,
        Instr::GlobalSet(_) => InstrClass::StorageWrite,
        Instr::Load { .. } | Instr::Store { .. } | Instr::MemorySize | Instr::MemoryGrow => {
            InstrClass::Memory
        }
        Instr::I32Const(_) | Instr::I64Const(_) => InstrClass::PushConst,
        Instr::Eqz(_) | Instr::Rel { .. } => InstrClass::Comparison,
        Instr::Unary { .. } => InstrClass::Bitwise,
        Instr::Binary { op, .. } => match op {
            IBinOp::Add
            | IBinOp::Sub
            | IBinOp::Mul
            | IBinOp::DivS
            | IBinOp::DivU
            | IBinOp::RemS
            | IBinOp::RemU => InstrClass::Arithmetic,
            _ => InstrClass::Bitwise,
        },
        Instr::I32WrapI64 | Instr::I64ExtendI32S | Instr::I64ExtendI32U => InstrClass::Arithmetic,
    }
}

impl Frontend for WasmFrontend {
    fn platform(&self) -> Platform {
        Platform::Wasm
    }

    fn lift(&self, bytes: &[u8]) -> Result<UnifiedCfg, FrontendError> {
        if bytes.is_empty() {
            return Err(FrontendError::EmptyContract);
        }
        let module = scamdetect_wasm::decode::decode_module(bytes)?;
        scamdetect_wasm::validate::validate(&module)?;
        let import_names: Vec<String> = module.imports.iter().map(|i| i.name.clone()).collect();
        let cfg = lift_module(&module);
        let mut out: DiGraph<UnifiedBlock, UnifiedEdge> =
            DiGraph::with_capacity(cfg.graph().node_count());
        for (_, b) in cfg.graph().nodes() {
            let mut ub = UnifiedBlock::new();
            for ins in &b.instrs {
                ub.record(classify_wasm_instr(ins, &import_names));
            }
            out.add_node(ub);
        }
        for (u, v, k) in cfg.graph().edges() {
            let kind = match k {
                WasmEdge::Seq | WasmEdge::Else => UnifiedEdge::Seq,
                WasmEdge::Branch | WasmEdge::Table | WasmEdge::Back => UnifiedEdge::Branch,
            };
            out.add_edge(u, v, kind);
        }
        Ok(UnifiedCfg::new(out, cfg.entry(), Platform::Wasm, 0.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scamdetect_evm::asm::AsmProgram;
    use scamdetect_wasm::encode::encode_module;
    use scamdetect_wasm::hostenv::{idx, import_standard_env};
    use scamdetect_wasm::module::Module;
    use scamdetect_wasm::types::FuncType;

    #[test]
    fn evm_lift_produces_classes() {
        let mut p = AsmProgram::new();
        let l = p.new_label();
        p.op(Opcode::CALLVALUE);
        p.jumpi_to(l);
        p.op(Opcode::CALLER);
        p.op(Opcode::SELFDESTRUCT);
        p.place_label(l);
        p.push_value(1).push_value(0).op(Opcode::SSTORE);
        p.op(Opcode::STOP);
        let cfg = EvmFrontend::new().lift(&p.assemble().unwrap()).unwrap();
        assert_eq!(cfg.platform(), Platform::Evm);
        let h = cfg.class_histogram();
        assert!(h[InstrClass::ValueTransfer.index()] > 0.0); // SELFDESTRUCT
        assert!(h[InstrClass::StorageWrite.index()] > 0.0); // SSTORE
        assert!(h[InstrClass::Environment.index()] > 0.0); // CALLER/CALLVALUE
        assert_eq!(cfg.unresolved_fraction(), 0.0);
    }

    #[test]
    fn wasm_lift_classifies_host_calls() {
        let mut m = Module::new();
        let env = import_standard_env(&mut m);
        let f = m.add_function(
            FuncType::default(),
            vec![],
            vec![
                Instr::I64Const(1),
                Instr::I64Const(100),
                Instr::Call(env[idx::TRANSFER]),
                Instr::I64Const(0),
                Instr::I64Const(7),
                Instr::Call(env[idx::STORAGE_WRITE]),
            ],
        );
        m.export_func("main", f);
        let bytes = encode_module(&m);
        let cfg = WasmFrontend::new().lift(&bytes).unwrap();
        assert_eq!(cfg.platform(), Platform::Wasm);
        let h = cfg.class_histogram();
        assert!(h[InstrClass::ValueTransfer.index()] > 0.0);
        assert!(h[InstrClass::StorageWrite.index()] > 0.0);
    }

    #[test]
    fn empty_bytes_rejected_by_both() {
        assert!(matches!(
            EvmFrontend::new().lift(&[]),
            Err(FrontendError::EmptyContract)
        ));
        assert!(WasmFrontend::new().lift(&[]).is_err());
    }

    #[test]
    fn wasm_garbage_rejected() {
        assert!(matches!(
            WasmFrontend::new().lift(&[1, 2, 3, 4]),
            Err(FrontendError::Wasm(_))
        ));
    }

    #[test]
    fn classify_evm_samples() {
        assert_eq!(classify_evm_opcode(Opcode::ADD), InstrClass::Arithmetic);
        assert_eq!(classify_evm_opcode(Opcode::TIMESTAMP), InstrClass::BlockEnv);
        assert_eq!(classify_evm_opcode(Opcode::DELEGATECALL), InstrClass::Call);
        assert_eq!(
            classify_evm_opcode(Opcode::SELFDESTRUCT),
            InstrClass::ValueTransfer
        );
        assert_eq!(
            classify_evm_opcode(Opcode::TSTORE),
            InstrClass::StorageWrite
        );
    }

    #[test]
    fn classify_wasm_samples() {
        let imports = vec!["transfer".to_string(), "sha256".to_string()];
        assert_eq!(
            classify_wasm_instr(&Instr::Call(0), &imports),
            InstrClass::ValueTransfer
        );
        assert_eq!(
            classify_wasm_instr(&Instr::Call(1), &imports),
            InstrClass::Crypto
        );
        assert_eq!(
            classify_wasm_instr(&Instr::Call(5), &imports),
            InstrClass::Call
        );
        assert_eq!(
            classify_wasm_instr(&Instr::GlobalSet(0), &imports),
            InstrClass::StorageWrite
        );
        assert_eq!(
            classify_wasm_instr(
                &Instr::Binary {
                    width: scamdetect_wasm::Width::W32,
                    op: IBinOp::Xor
                },
                &imports
            ),
            InstrClass::Bitwise
        );
    }
}
