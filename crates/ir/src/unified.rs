//! The platform-agnostic control-flow IR.
//!
//! Both frontends (EVM, WASM) lift contracts into a [`UnifiedCfg`]: a
//! directed graph of [`UnifiedBlock`]s whose contents are described purely
//! in terms of the cross-platform [`InstrClass`] taxonomy. Everything
//! downstream of this module — features, classic detectors, GNNs — is
//! platform-blind, which is precisely the property ScamDetect's Phase 2
//! calls for.

use scamdetect_graph::{DiGraph, NodeId};
use std::fmt;

/// Cross-platform instruction classes.
///
/// Each class exists on every supported platform (possibly via host
/// imports rather than opcodes): e.g. EVM `SSTORE` and a WASM call to
/// `storage_write` both classify as [`InstrClass::StorageWrite`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum InstrClass {
    /// Integer arithmetic.
    Arithmetic = 0,
    /// Comparisons and zero tests.
    Comparison,
    /// Bit manipulation.
    Bitwise,
    /// Hashing and other cryptographic primitives.
    Crypto,
    /// Transaction environment reads (caller, value, input).
    Environment,
    /// Block environment reads (timestamp, height).
    BlockEnv,
    /// Pure stack/local shuffling.
    StackOp,
    /// Constant pushes.
    PushConst,
    /// Transient memory access.
    Memory,
    /// Persistent state reads.
    StorageRead,
    /// Persistent state writes.
    StorageWrite,
    /// Intra-contract control flow.
    Flow,
    /// Event emission.
    Log,
    /// Cross-contract calls.
    Call,
    /// Contract creation.
    Create,
    /// Direct value transfer (EVM `SELFDESTRUCT` sweep, host `transfer`).
    ValueTransfer,
    /// Execution halt (normal or reverting).
    Terminate,
    /// Anything unclassified.
    Other,
}

impl InstrClass {
    /// Number of classes (the class-histogram width).
    pub const COUNT: usize = 18;

    /// All classes in discriminant order.
    pub fn all() -> [InstrClass; InstrClass::COUNT] {
        use InstrClass::*;
        [
            Arithmetic,
            Comparison,
            Bitwise,
            Crypto,
            Environment,
            BlockEnv,
            StackOp,
            PushConst,
            Memory,
            StorageRead,
            StorageWrite,
            Flow,
            Log,
            Call,
            Create,
            ValueTransfer,
            Terminate,
            Other,
        ]
    }

    /// Zero-based histogram index.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Short lowercase name (used in reports).
    pub fn name(self) -> &'static str {
        use InstrClass::*;
        match self {
            Arithmetic => "arith",
            Comparison => "cmp",
            Bitwise => "bit",
            Crypto => "crypto",
            Environment => "env",
            BlockEnv => "block",
            StackOp => "stack",
            PushConst => "push",
            Memory => "mem",
            StorageRead => "sload",
            StorageWrite => "sstore",
            Flow => "flow",
            Log => "log",
            Call => "call",
            Create => "create",
            ValueTransfer => "xfer",
            Terminate => "halt",
            Other => "other",
        }
    }
}

impl fmt::Display for InstrClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Edge kinds surviving into the unified IR.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum UnifiedEdge {
    /// Sequential or unconditional flow.
    Seq,
    /// Conditional/multi-way branch arm.
    Branch,
    /// Over-approximated edge from an unresolved indirect jump.
    Unresolved,
}

/// A platform-blind basic block: an instruction-class histogram.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct UnifiedBlock {
    /// Count per [`InstrClass`] (indexed by [`InstrClass::index`]).
    pub class_counts: [u16; InstrClass::COUNT],
    /// Total instructions in the block.
    pub instr_count: u32,
}

impl UnifiedBlock {
    /// Creates an empty block.
    pub fn new() -> Self {
        UnifiedBlock::default()
    }

    /// Records one instruction of class `c`.
    pub fn record(&mut self, c: InstrClass) {
        self.class_counts[c.index()] = self.class_counts[c.index()].saturating_add(1);
        self.instr_count += 1;
    }

    /// Count of class `c`.
    pub fn count(&self, c: InstrClass) -> u16 {
        self.class_counts[c.index()]
    }

    /// `true` if the block contains any instruction of a class commonly
    /// implicated in scams (value transfer, storage write gated elsewhere,
    /// delegatecall-style calls, creation).
    pub fn has_sensitive_op(&self) -> bool {
        self.count(InstrClass::ValueTransfer) > 0
            || self.count(InstrClass::Create) > 0
            || self.count(InstrClass::Call) > 0
    }
}

/// Which platform a contract came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Platform {
    /// Ethereum Virtual Machine bytecode.
    Evm,
    /// WebAssembly module.
    Wasm,
}

impl fmt::Display for Platform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Platform::Evm => f.write_str("evm"),
            Platform::Wasm => f.write_str("wasm"),
        }
    }
}

/// The platform-agnostic CFG every detector consumes.
#[derive(Debug, Clone)]
pub struct UnifiedCfg {
    graph: DiGraph<UnifiedBlock, UnifiedEdge>,
    entry: NodeId,
    platform: Platform,
    unresolved_fraction: f32,
}

impl UnifiedCfg {
    /// Assembles a unified CFG from its parts.
    pub fn new(
        graph: DiGraph<UnifiedBlock, UnifiedEdge>,
        entry: NodeId,
        platform: Platform,
        unresolved_fraction: f32,
    ) -> Self {
        UnifiedCfg {
            graph,
            entry,
            platform,
            unresolved_fraction,
        }
    }

    /// The block graph.
    pub fn graph(&self) -> &DiGraph<UnifiedBlock, UnifiedEdge> {
        &self.graph
    }

    /// Entry node.
    pub fn entry(&self) -> NodeId {
        self.entry
    }

    /// Source platform.
    pub fn platform(&self) -> Platform {
        self.platform
    }

    /// Fraction of dynamic jump sites that failed static resolution
    /// (0 on WASM, where control flow is structured).
    pub fn unresolved_fraction(&self) -> f32 {
        self.unresolved_fraction
    }

    /// Number of blocks.
    pub fn block_count(&self) -> usize {
        self.graph.node_count()
    }

    /// Total instructions across blocks.
    pub fn instruction_count(&self) -> usize {
        self.graph
            .nodes()
            .map(|(_, b)| b.instr_count as usize)
            .sum()
    }

    /// Aggregated class histogram over the whole contract, normalized to
    /// sum to 1 (all zeros for an empty contract).
    pub fn class_histogram(&self) -> [f64; InstrClass::COUNT] {
        let mut h = [0.0f64; InstrClass::COUNT];
        for (_, b) in self.graph.nodes() {
            for (i, &c) in b.class_counts.iter().enumerate() {
                h[i] += c as f64;
            }
        }
        let total: f64 = h.iter().sum();
        if total > 0.0 {
            for v in &mut h {
                *v /= total;
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_indices_are_dense_and_unique() {
        let all = InstrClass::all();
        assert_eq!(all.len(), InstrClass::COUNT);
        for (i, c) in all.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }

    #[test]
    fn names_unique() {
        let mut names: Vec<&str> = InstrClass::all().iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), InstrClass::COUNT);
    }

    #[test]
    fn block_recording() {
        let mut b = UnifiedBlock::new();
        b.record(InstrClass::Arithmetic);
        b.record(InstrClass::Arithmetic);
        b.record(InstrClass::ValueTransfer);
        assert_eq!(b.count(InstrClass::Arithmetic), 2);
        assert_eq!(b.instr_count, 3);
        assert!(b.has_sensitive_op());
        assert!(!UnifiedBlock::new().has_sensitive_op());
    }

    #[test]
    fn histogram_normalizes() {
        let mut g: DiGraph<UnifiedBlock, UnifiedEdge> = DiGraph::new();
        let mut b1 = UnifiedBlock::new();
        b1.record(InstrClass::PushConst);
        b1.record(InstrClass::PushConst);
        let mut b2 = UnifiedBlock::new();
        b2.record(InstrClass::Flow);
        let n1 = g.add_node(b1);
        let n2 = g.add_node(b2);
        g.add_edge(n1, n2, UnifiedEdge::Seq);
        let cfg = UnifiedCfg::new(g, n1, Platform::Evm, 0.0);
        let h = cfg.class_histogram();
        assert!((h[InstrClass::PushConst.index()] - 2.0 / 3.0).abs() < 1e-12);
        assert!((h.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert_eq!(cfg.instruction_count(), 3);
        assert_eq!(cfg.platform().to_string(), "evm");
    }
}
