//! Platform-agnostic intermediate representation.
//!
//! The heart of ScamDetect's platform-agnosticism (paper §V-B): every
//! supported bytecode platform lifts into one [`UnifiedCfg`] whose blocks
//! speak only the cross-platform [`InstrClass`] vocabulary. Detectors are
//! trained on and applied to this IR, never to platform bytes, so a model
//! trained on EVM contracts applies unchanged to WASM contracts (and vice
//! versa) — experiment E5 quantifies how well that transfer works.
//!
//! * [`unified`] — the IR itself (classes, blocks, edges, CFG),
//! * [`frontend`] — the [`Frontend`] trait plus the EVM and WASM impls,
//! * [`features`] — node- and graph-level feature extraction.
//!
//! # Examples
//!
//! ```
//! use scamdetect_ir::{EvmFrontend, Frontend, features};
//!
//! # fn main() -> Result<(), scamdetect_ir::FrontendError> {
//! // PUSH1 0 CALLDATALOAD PUSH1 4 JUMPI STOP; JUMPDEST CALLER SELFDESTRUCT
//! let code = [0x60, 0x00, 0x35, 0x60, 0x06, 0x57, 0x00, 0x5b, 0x33, 0xff];
//! let cfg = EvmFrontend::new().lift(&code)?;
//! let node_features = features::node_feature_matrix(&cfg);
//! assert_eq!(node_features.len(), cfg.block_count() * features::NODE_FEATURE_DIM);
//! # Ok(())
//! # }
//! ```

pub mod features;
pub mod frontend;
pub mod unified;

pub use frontend::{
    classify_evm_opcode, classify_wasm_instr, EvmFrontend, Frontend, FrontendError, WasmFrontend,
};
pub use unified::{InstrClass, Platform, UnifiedBlock, UnifiedCfg, UnifiedEdge};
