//! Feature extraction from the unified IR.
//!
//! Two representations are produced:
//!
//! * **node features** ([`node_feature_matrix`]) — one fixed-width vector
//!   per basic block, consumed by the GNNs;
//! * **graph features** ([`graph_feature_vector`]) — one vector per
//!   contract, consumed by the classic (PhishingHook-style) detectors.
//!
//! Both are platform-independent by construction: they only read
//! [`InstrClass`] histograms and graph structure.

use crate::unified::{InstrClass, UnifiedCfg, UnifiedEdge};
use scamdetect_graph::{DominatorTree, GraphMetrics, LoopInfo};

/// Width of each node feature vector.
pub const NODE_FEATURE_DIM: usize = InstrClass::COUNT + 6;

/// Width of the graph-level feature vector.
pub const GRAPH_FEATURE_DIM: usize = InstrClass::COUNT + 12 + 2;

/// Builds the `n x NODE_FEATURE_DIM` node feature matrix (row-major).
///
/// Per node: the block's normalized class histogram (18), then
/// `log2(1+len)/8`, in-degree and out-degree (clamped to 8, scaled),
/// entry flag, exit flag (no successors), loop-header flag.
pub fn node_feature_matrix(cfg: &UnifiedCfg) -> Vec<f32> {
    let g = cfg.graph();
    let n = g.node_count();
    let dom = DominatorTree::compute(g, cfg.entry());
    let loops = LoopInfo::detect(g, &dom);
    let mut out = Vec::with_capacity(n * NODE_FEATURE_DIM);
    for (id, b) in g.nodes() {
        let total = b.instr_count.max(1) as f32;
        for &c in &b.class_counts {
            out.push(c as f32 / total);
        }
        out.push(((1 + b.instr_count) as f32).log2() / 8.0);
        out.push((g.in_degree(id).min(8)) as f32 / 8.0);
        out.push((g.out_degree(id).min(8)) as f32 / 8.0);
        out.push((id == cfg.entry()) as u8 as f32);
        out.push((g.out_degree(id) == 0) as u8 as f32);
        out.push(loops.is_header(id) as u8 as f32);
    }
    out
}

/// Builds the contract-level feature vector.
///
/// Layout: normalized class histogram (18) ‖ graph metrics (12, each
/// squashed to a stable scale) ‖ unresolved-jump fraction ‖ sensitive-block
/// fraction.
pub fn graph_feature_vector(cfg: &UnifiedCfg) -> Vec<f64> {
    let mut out = Vec::with_capacity(GRAPH_FEATURE_DIM);
    out.extend_from_slice(&cfg.class_histogram());

    let m = GraphMetrics::compute(cfg.graph(), cfg.entry());
    // Squash unbounded counts to log scale so contract size does not
    // dominate every other signal.
    let squash = |v: f64| (1.0 + v.max(0.0)).log2();
    out.push(squash(m.node_count as f64) / 12.0);
    out.push(squash(m.edge_count as f64) / 12.0);
    out.push(m.density.min(1.0));
    out.push((m.avg_out_degree / 4.0).min(1.0));
    out.push((m.max_out_degree as f64 / 16.0).min(1.0));
    out.push(squash(m.branch_count as f64) / 10.0);
    out.push(squash(m.exit_count as f64) / 10.0);
    out.push(squash(m.loop_count as f64) / 8.0);
    out.push(squash(m.scc_count as f64) / 8.0);
    out.push(squash(m.depth as f64) / 10.0);
    out.push(squash(m.unreachable_count as f64) / 10.0);
    out.push(squash(m.cyclomatic.max(0) as f64) / 10.0);

    out.push(cfg.unresolved_fraction() as f64);
    let sensitive = cfg
        .graph()
        .nodes()
        .filter(|(_, b)| b.has_sensitive_op())
        .count() as f64;
    out.push(sensitive / cfg.block_count().max(1) as f64);
    debug_assert_eq!(out.len(), GRAPH_FEATURE_DIM);
    out
}

/// Dense adjacency matrix (row = source block) of the unified CFG, with
/// unresolved edges optionally down-weighted so over-approximation noise
/// does not drown real structure.
///
/// Only the dense fallback/reference path uses this; the scan path builds
/// the `O(e)` [`edge_list`] instead and never materialises `n x n`.
pub fn adjacency_matrix(cfg: &UnifiedCfg, unresolved_weight: f32) -> Vec<f32> {
    let g = cfg.graph();
    let n = g.node_count();
    let mut m = vec![0.0f32; n * n];
    for (u, v, k) in g.edges() {
        let w = match k {
            UnifiedEdge::Unresolved => unresolved_weight,
            _ => 1.0,
        };
        let cell = &mut m[u.index() * n + v.index()];
        *cell = cell.max(w);
    }
    m
}

/// Weighted `(source, target, weight)` edge list of the unified CFG — the
/// sparse counterpart of [`adjacency_matrix`] with identical semantics:
/// unresolved edges carry `unresolved_weight`, parallel edges collapse to
/// the maximum weight, and the result is sorted by `(source, target)`.
pub fn edge_list(cfg: &UnifiedCfg, unresolved_weight: f32) -> Vec<(u32, u32, f32)> {
    let g = cfg.graph();
    let mut edges: Vec<(u32, u32, f32)> = g
        .edges()
        .map(|(u, v, k)| {
            let w = match k {
                UnifiedEdge::Unresolved => unresolved_weight,
                _ => 1.0,
            };
            (u.index() as u32, v.index() as u32, w)
        })
        .collect();
    dedup_edges_max(&mut edges);
    edges
}

/// Sorts `edges` by `(source, target)` and collapses duplicate coordinates
/// to the maximum weight — the one normalisation rule for adjacency edge
/// lists (parallel CFG edges keep their strongest weight). Lists that are
/// already strictly sorted (hence duplicate-free) are left untouched in
/// `O(e)`.
pub fn dedup_edges_max(edges: &mut Vec<(u32, u32, f32)>) {
    if edges
        .windows(2)
        .all(|w| (w[0].0, w[0].1) < (w[1].0, w[1].1))
    {
        return;
    }
    edges.sort_unstable_by_key(|&(u, v, _)| (u, v));
    edges.dedup_by(|cur, prev| {
        if prev.0 == cur.0 && prev.1 == cur.1 {
            prev.2 = prev.2.max(cur.2);
            true
        } else {
            false
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::unified::{Platform, UnifiedBlock};
    use scamdetect_graph::DiGraph;

    fn tiny_cfg() -> UnifiedCfg {
        let mut g: DiGraph<UnifiedBlock, UnifiedEdge> = DiGraph::new();
        let mut b0 = UnifiedBlock::new();
        b0.record(InstrClass::PushConst);
        b0.record(InstrClass::Flow);
        let mut b1 = UnifiedBlock::new();
        b1.record(InstrClass::ValueTransfer);
        let b2 = UnifiedBlock::new();
        let n0 = g.add_node(b0);
        let n1 = g.add_node(b1);
        let n2 = g.add_node(b2);
        g.add_edge(n0, n1, UnifiedEdge::Branch);
        g.add_edge(n0, n2, UnifiedEdge::Seq);
        g.add_edge(n1, n2, UnifiedEdge::Unresolved);
        UnifiedCfg::new(g, n0, Platform::Evm, 0.25)
    }

    #[test]
    fn node_matrix_shape_and_flags() {
        let cfg = tiny_cfg();
        let m = node_feature_matrix(&cfg);
        assert_eq!(m.len(), 3 * NODE_FEATURE_DIM);
        // Entry flag of node 0 set, of node 1 clear.
        let entry_col = InstrClass::COUNT + 3;
        assert_eq!(m[entry_col], 1.0);
        assert_eq!(m[NODE_FEATURE_DIM + entry_col], 0.0);
        // Exit flag of node 2 set.
        let exit_col = InstrClass::COUNT + 4;
        assert_eq!(m[2 * NODE_FEATURE_DIM + exit_col], 1.0);
        // Class histogram of node 1: all mass on ValueTransfer.
        assert_eq!(m[NODE_FEATURE_DIM + InstrClass::ValueTransfer.index()], 1.0);
    }

    #[test]
    fn graph_vector_dimension_and_ranges() {
        let v = graph_feature_vector(&tiny_cfg());
        assert_eq!(v.len(), GRAPH_FEATURE_DIM);
        assert!(v.iter().all(|x| x.is_finite()));
        // Histogram head sums to 1.
        let head: f64 = v[..InstrClass::COUNT].iter().sum();
        assert!((head - 1.0).abs() < 1e-9);
        // Unresolved fraction preserved.
        assert!((v[GRAPH_FEATURE_DIM - 2] - 0.25).abs() < 1e-6);
    }

    #[test]
    fn adjacency_downweights_unresolved() {
        let cfg = tiny_cfg();
        let a = adjacency_matrix(&cfg, 0.1);
        let n = 3;
        assert_eq!(a[1], 1.0);
        assert!((a[n + 2] - 0.1).abs() < 1e-6);
        assert_eq!(a[2 * n], 0.0);
    }

    #[test]
    fn edge_list_matches_dense_adjacency() {
        let cfg = tiny_cfg();
        let edges = edge_list(&cfg, 0.1);
        let dense = adjacency_matrix(&cfg, 0.1);
        let n = 3;
        // Every listed edge is present in the dense matrix with the same
        // weight, and the nonzero counts agree.
        for &(u, v, w) in &edges {
            assert!((dense[u as usize * n + v as usize] - w).abs() < 1e-6);
        }
        assert_eq!(
            edges.len(),
            dense.iter().filter(|&&x| x != 0.0).count(),
            "edge list must cover exactly the dense nonzeros"
        );
        // Sorted by (source, target).
        let mut sorted = edges.clone();
        sorted.sort_unstable_by_key(|&(u, v, _)| (u, v));
        assert_eq!(edges, sorted);
    }

    #[test]
    fn features_are_size_stable_across_platforms() {
        // The same function must yield identical dimensions regardless of
        // platform tag — the agnostic-model invariant.
        let mut cfg = tiny_cfg();
        let d1 = graph_feature_vector(&cfg).len();
        cfg = UnifiedCfg::new(cfg.graph().clone(), cfg.entry(), Platform::Wasm, 0.0);
        assert_eq!(graph_feature_vector(&cfg).len(), d1);
    }
}
