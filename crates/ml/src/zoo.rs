//! The baseline model zoo — the classic-detector lineup benchmarked in E1.

use crate::classifier::Classifier;
use crate::forest::RandomForest;
use crate::knn::KNearest;
use crate::linear::{LogisticRegression, NearestCentroid};
use crate::mlp::Mlp;
use crate::naive_bayes::{BernoulliNb, GaussianNb};
use crate::tree::DecisionTree;

/// Instantiates the full baseline zoo (10 models), seeded for
/// reproducibility. Mirrors the breadth of PhishingHook's 16-model
/// comparison with one representative per classic family: linear,
/// instance-based, tree, ensemble, probabilistic and neural.
pub fn baseline_zoo(seed: u64) -> Vec<Box<dyn Classifier>> {
    vec![
        Box::new(LogisticRegression::new()),
        Box::new(Mlp::new(seed)),
        Box::new(DecisionTree::default_cart()),
        Box::new(RandomForest::new(25, seed)),
        Box::new(RandomForest::extra_trees(25, seed ^ 1)),
        Box::new(KNearest::new(1)),
        Box::new(KNearest::new(5)),
        Box::new(GaussianNb::new()),
        Box::new(BernoulliNb::new()),
        Box::new(NearestCentroid::new()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifier::{fit_evaluate, test_util::blobs};
    use scamdetect_tensor::io::Sections;

    #[test]
    fn zoo_has_ten_distinct_models() {
        let zoo = baseline_zoo(0);
        assert_eq!(zoo.len(), 10);
        let mut names: Vec<String> = zoo.iter().map(|m| m.name().to_string()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 10);
    }

    #[test]
    fn every_zoo_member_state_round_trips_bit_for_bit() {
        let train = blobs(120, 5, 1.5, 30);
        let probes = blobs(40, 5, 1.5, 31);
        let fitted = baseline_zoo(17);
        let fresh = baseline_zoo(99); // different seed: state must come from import
        for (mut model, mut restored) in fitted.into_iter().zip(fresh) {
            model.fit(&train);
            let mut sections = Sections::new();
            model.export_state(&mut sections);
            restored.import_state(&sections).expect("import succeeds");
            assert_eq!(model.name(), restored.name());
            for row in &probes.x {
                let a = model.score(row);
                let b = restored.score(row);
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "{}: {a} != {b} after round trip",
                    model.name()
                );
            }
        }
    }

    #[test]
    fn unfitted_zoo_member_state_round_trips() {
        for (model, mut restored) in baseline_zoo(0).into_iter().zip(baseline_zoo(1)) {
            let mut sections = Sections::new();
            model.export_state(&mut sections);
            restored.import_state(&sections).expect("import succeeds");
            assert_eq!(model.score(&[0.5; 4]), restored.score(&[0.5; 4]));
        }
    }

    #[test]
    fn every_zoo_member_beats_chance_on_blobs() {
        let train = blobs(150, 5, 1.5, 40);
        let test = blobs(60, 5, 1.5, 41);
        for mut model in baseline_zoo(9) {
            let row = fit_evaluate(model.as_mut(), &train, &test);
            assert!(
                row.accuracy > 0.75,
                "{} only reached {:.3}",
                row.model,
                row.accuracy
            );
        }
    }
}
