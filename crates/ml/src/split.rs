//! Cross-validation utilities.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Yields `k` stratified folds of `labels` as `(train, test)` index pairs.
///
/// Every sample appears in exactly one test fold; class balance is
/// preserved per fold.
///
/// # Panics
///
/// Panics if `k < 2` or `k` exceeds the smaller class size.
pub fn stratified_k_fold(labels: &[usize], k: usize, seed: u64) -> Vec<(Vec<usize>, Vec<usize>)> {
    assert!(k >= 2, "k-fold needs k >= 2");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut by_class: [Vec<usize>; 2] = [Vec::new(), Vec::new()];
    for (i, &l) in labels.iter().enumerate() {
        by_class[l].push(i);
    }
    for class in &by_class {
        assert!(class.is_empty() || class.len() >= k, "class smaller than k");
    }
    for class in &mut by_class {
        for i in (1..class.len()).rev() {
            let j = rng.random_range(0..=i);
            class.swap(i, j);
        }
    }
    let mut folds: Vec<Vec<usize>> = vec![Vec::new(); k];
    for class in &by_class {
        for (pos, &idx) in class.iter().enumerate() {
            folds[pos % k].push(idx);
        }
    }
    (0..k)
        .map(|f| {
            let test = folds[f].clone();
            let train: Vec<usize> = (0..k)
                .filter(|&g| g != f)
                .flat_map(|g| folds[g].iter().copied())
                .collect();
            (train, test)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn folds_partition_the_data() {
        let labels: Vec<usize> = (0..50).map(|i| i % 2).collect();
        let folds = stratified_k_fold(&labels, 5, 3);
        assert_eq!(folds.len(), 5);
        let mut all_test: Vec<usize> = folds.iter().flat_map(|(_, t)| t.clone()).collect();
        all_test.sort_unstable();
        assert_eq!(all_test, (0..50).collect::<Vec<_>>());
        for (train, test) in &folds {
            assert_eq!(train.len() + test.len(), 50);
            for t in test {
                assert!(!train.contains(t));
            }
        }
    }

    #[test]
    fn folds_are_stratified() {
        let labels: Vec<usize> = (0..100).map(|i| usize::from(i < 30)).collect();
        for (_, test) in stratified_k_fold(&labels, 5, 7) {
            let ones = test.iter().filter(|&&i| labels[i] == 1).count();
            assert_eq!(ones, 6, "each fold gets 30/5 positives");
        }
    }

    #[test]
    #[should_panic(expected = "k >= 2")]
    fn k1_panics() {
        stratified_k_fold(&[0, 1], 1, 0);
    }
}
