//! Gaussian and Bernoulli naive Bayes.

use crate::classifier::Classifier;
use crate::dataset::FeatureSet;
use scamdetect_tensor::io::{ByteReader, ByteWriter, CodecError, ParamIo, Sections};

/// Gaussian naive Bayes: per-class, per-feature normal densities with a
/// variance floor for numerical stability.
#[derive(Debug, Clone, Default)]
pub struct GaussianNb {
    mean: [Vec<f64>; 2],
    var: [Vec<f64>; 2],
    log_prior: [f64; 2],
    fitted: bool,
}

impl GaussianNb {
    /// Creates the model.
    pub fn new() -> Self {
        GaussianNb::default()
    }

    fn log_likelihood(&self, class: usize, row: &[f64]) -> f64 {
        let mut ll = self.log_prior[class];
        for ((v, m), var) in row.iter().zip(&self.mean[class]).zip(&self.var[class]) {
            ll += -0.5 * ((v - m) * (v - m) / var + var.ln() + (2.0 * std::f64::consts::PI).ln());
        }
        ll
    }
}

impl Classifier for GaussianNb {
    fn name(&self) -> &str {
        "gaussian_nb"
    }

    fn fit(&mut self, data: &FeatureSet) {
        let d = data.dim();
        let mut mean = [vec![0.0; d], vec![0.0; d]];
        let mut var = [vec![0.0; d], vec![0.0; d]];
        let mut count = [0usize; 2];
        for (row, &label) in data.x.iter().zip(&data.y) {
            count[label] += 1;
            for (m, v) in mean[label].iter_mut().zip(row) {
                *m += v;
            }
        }
        for c in 0..2 {
            for m in &mut mean[c] {
                *m /= count[c].max(1) as f64;
            }
        }
        for (row, &label) in data.x.iter().zip(&data.y) {
            for ((s, v), m) in var[label].iter_mut().zip(row).zip(&mean[label]) {
                *s += (v - m) * (v - m);
            }
        }
        for c in 0..2 {
            for s in &mut var[c] {
                *s = (*s / count[c].max(1) as f64).max(1e-9);
            }
        }
        let n = data.len().max(1) as f64;
        self.log_prior = [
            ((count[0].max(1)) as f64 / n).ln(),
            ((count[1].max(1)) as f64 / n).ln(),
        ];
        self.mean = mean;
        self.var = var;
        self.fitted = true;
    }

    fn score(&self, row: &[f64]) -> f64 {
        if !self.fitted {
            return 0.5;
        }
        let l0 = self.log_likelihood(0, row);
        let l1 = self.log_likelihood(1, row);
        // Softmax over the two log-likelihoods.
        let m = l0.max(l1);
        let e0 = (l0 - m).exp();
        let e1 = (l1 - m).exp();
        e1 / (e0 + e1)
    }
}

impl ParamIo for GaussianNb {
    fn export_state(&self, sections: &mut Sections) {
        let mut w = ByteWriter::new();
        for class in 0..2 {
            w.put_f64_slice(&self.mean[class]);
            w.put_f64_slice(&self.var[class]);
        }
        w.put_f64(self.log_prior[0]);
        w.put_f64(self.log_prior[1]);
        w.put_bool(self.fitted);
        sections.push("gaussian_nb", w.into_bytes());
    }

    fn import_state(&mut self, sections: &Sections) -> Result<(), CodecError> {
        let mut r = ByteReader::new(sections.require("gaussian_nb")?);
        for class in 0..2 {
            self.mean[class] = r.get_f64_vec("gaussian mean")?;
            self.var[class] = r.get_f64_vec("gaussian variance")?;
        }
        self.log_prior = [r.get_f64("gaussian prior")?, r.get_f64("gaussian prior")?];
        self.fitted = r.get_bool("gaussian fitted flag")?;
        let d = self.mean[0].len();
        if [&self.mean[1], &self.var[0], &self.var[1]]
            .iter()
            .any(|v| v.len() != d)
        {
            return Err(CodecError::Malformed {
                context: "gaussian_nb: per-class dimension mismatch",
            });
        }
        if !r.is_done() {
            return Err(CodecError::Malformed {
                context: "gaussian_nb: trailing bytes",
            });
        }
        Ok(())
    }

    fn state_matches_dim(&self, dim: usize) -> bool {
        !self.fitted || self.mean[0].len() == dim
    }
}

/// Bernoulli naive Bayes over features binarized at their training means —
/// the "which opcodes appear at all" detector.
#[derive(Debug, Clone, Default)]
pub struct BernoulliNb {
    threshold: Vec<f64>,
    log_p: [Vec<f64>; 2],
    log_np: [Vec<f64>; 2],
    log_prior: [f64; 2],
    fitted: bool,
}

impl BernoulliNb {
    /// Creates the model.
    pub fn new() -> Self {
        BernoulliNb::default()
    }
}

impl Classifier for BernoulliNb {
    fn name(&self) -> &str {
        "bernoulli_nb"
    }

    fn fit(&mut self, data: &FeatureSet) {
        let d = data.dim();
        // Binarization thresholds: feature means.
        let mut thr = vec![0.0; d];
        for row in &data.x {
            for (t, v) in thr.iter_mut().zip(row) {
                *t += v;
            }
        }
        for t in &mut thr {
            *t /= data.len().max(1) as f64;
        }
        let mut on = [vec![1.0f64; d], vec![1.0f64; d]]; // Laplace +1
        let mut count = [2usize; 2]; // Laplace +2
        for (row, &label) in data.x.iter().zip(&data.y) {
            count[label] += 1;
            for (o, (v, t)) in on[label].iter_mut().zip(row.iter().zip(&thr)) {
                if v > t {
                    *o += 1.0;
                }
            }
        }
        let mut log_p = [vec![0.0; d], vec![0.0; d]];
        let mut log_np = [vec![0.0; d], vec![0.0; d]];
        for c in 0..2 {
            for i in 0..d {
                let p = on[c][i] / count[c] as f64;
                log_p[c][i] = p.ln();
                log_np[c][i] = (1.0 - p).max(1e-12).ln();
            }
        }
        let n = data.len().max(1) as f64;
        let ones = data.y.iter().filter(|&&l| l == 1).count();
        self.log_prior = [
            (((data.len() - ones).max(1)) as f64 / n).ln(),
            ((ones.max(1)) as f64 / n).ln(),
        ];
        self.threshold = thr;
        self.log_p = log_p;
        self.log_np = log_np;
        self.fitted = true;
    }

    fn score(&self, row: &[f64]) -> f64 {
        if !self.fitted {
            return 0.5;
        }
        let mut ll = [self.log_prior[0], self.log_prior[1]];
        for (c, l) in ll.iter_mut().enumerate() {
            for ((v, t), (lp, lnp)) in row
                .iter()
                .zip(&self.threshold)
                .zip(self.log_p[c].iter().zip(&self.log_np[c]))
            {
                *l += if v > t { *lp } else { *lnp };
            }
        }
        let m = ll[0].max(ll[1]);
        let e0 = (ll[0] - m).exp();
        let e1 = (ll[1] - m).exp();
        e1 / (e0 + e1)
    }
}

impl ParamIo for BernoulliNb {
    fn export_state(&self, sections: &mut Sections) {
        let mut w = ByteWriter::new();
        w.put_f64_slice(&self.threshold);
        for class in 0..2 {
            w.put_f64_slice(&self.log_p[class]);
            w.put_f64_slice(&self.log_np[class]);
        }
        w.put_f64(self.log_prior[0]);
        w.put_f64(self.log_prior[1]);
        w.put_bool(self.fitted);
        sections.push("bernoulli_nb", w.into_bytes());
    }

    fn import_state(&mut self, sections: &Sections) -> Result<(), CodecError> {
        let mut r = ByteReader::new(sections.require("bernoulli_nb")?);
        self.threshold = r.get_f64_vec("bernoulli thresholds")?;
        for class in 0..2 {
            self.log_p[class] = r.get_f64_vec("bernoulli log_p")?;
            self.log_np[class] = r.get_f64_vec("bernoulli log_np")?;
        }
        self.log_prior = [r.get_f64("bernoulli prior")?, r.get_f64("bernoulli prior")?];
        self.fitted = r.get_bool("bernoulli fitted flag")?;
        let d = self.threshold.len();
        if [
            &self.log_p[0],
            &self.log_p[1],
            &self.log_np[0],
            &self.log_np[1],
        ]
        .iter()
        .any(|v| v.len() != d)
        {
            return Err(CodecError::Malformed {
                context: "bernoulli_nb: per-class dimension mismatch",
            });
        }
        if !r.is_done() {
            return Err(CodecError::Malformed {
                context: "bernoulli_nb: trailing bytes",
            });
        }
        Ok(())
    }

    fn state_matches_dim(&self, dim: usize) -> bool {
        !self.fitted || self.threshold.len() == dim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifier::test_util::assert_learns;

    #[test]
    fn gaussian_nb_learns_blobs() {
        assert_learns(&mut GaussianNb::new(), 0.9);
    }

    #[test]
    fn bernoulli_nb_learns_blobs() {
        assert_learns(&mut BernoulliNb::new(), 0.85);
    }

    #[test]
    fn unfitted_scores_half() {
        assert_eq!(GaussianNb::new().score(&[1.0]), 0.5);
        assert_eq!(BernoulliNb::new().score(&[1.0]), 0.5);
    }

    #[test]
    fn scores_are_probabilities() {
        let data = crate::classifier::test_util::blobs(100, 5, 1.0, 9);
        let mut g = GaussianNb::new();
        g.fit(&data);
        for row in &data.x {
            let s = g.score(row);
            assert!((0.0..=1.0).contains(&s), "{s}");
        }
    }
}
