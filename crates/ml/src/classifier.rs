//! The common detector interface.

use crate::dataset::FeatureSet;
use crate::metrics::EvalRow;
use scamdetect_tensor::io::ParamIo;

/// A trainable binary classifier over dense feature vectors.
///
/// Implementations must be deterministic given their construction seed,
/// and — via the [`ParamIo`] supertrait — must export their complete
/// trained state so a freshly instantiated model restores to bit-for-bit
/// identical scores. This is what makes every classic detector a
/// first-class, portable `ModelArtifact` payload.
pub trait Classifier: ParamIo + Send + Sync {
    /// Human-readable model name (appears in result tables).
    fn name(&self) -> &str;

    /// Fits the model on `data`.
    fn fit(&mut self, data: &FeatureSet);

    /// Confidence that `row` is malicious, in `[0, 1]`.
    fn score(&self, row: &[f64]) -> f64;

    /// Hard prediction (threshold 0.5).
    fn predict(&self, row: &[f64]) -> usize {
        usize::from(self.score(row) >= 0.5)
    }
}

/// Fits `model` on `train` and evaluates it on `test`, producing a results
/// row.
pub fn fit_evaluate(model: &mut dyn Classifier, train: &FeatureSet, test: &FeatureSet) -> EvalRow {
    model.fit(train);
    let scores: Vec<f64> = test.x.iter().map(|r| model.score(r)).collect();
    let predicted: Vec<usize> = scores.iter().map(|&s| usize::from(s >= 0.5)).collect();
    EvalRow::evaluate(model.name().to_string(), &test.y, &predicted, &scores)
}

#[cfg(test)]
pub(crate) mod test_util {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Two Gaussian blobs, mostly separable along every dimension.
    pub fn blobs(n: usize, dim: usize, gap: f64, seed: u64) -> FeatureSet {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = Vec::with_capacity(n);
        let mut y = Vec::with_capacity(n);
        for i in 0..n {
            let label = i % 2;
            let center = if label == 1 { gap } else { -gap };
            x.push(
                (0..dim)
                    .map(|_| center + rng.random_range(-1.0..1.0))
                    .collect(),
            );
            y.push(label);
        }
        FeatureSet::new(x, y)
    }

    /// Asserts that a model reaches `min_acc` on held-out blobs.
    pub fn assert_learns(model: &mut dyn Classifier, min_acc: f64) {
        let train = blobs(200, 6, 1.5, 10);
        let test = blobs(80, 6, 1.5, 11);
        let row = fit_evaluate(model, &train, &test);
        assert!(
            row.accuracy >= min_acc,
            "{} reached only {:.3} (< {min_acc})",
            model.name(),
            row.accuracy
        );
        assert!(
            row.auc >= min_acc - 0.05,
            "{} auc {:.3}",
            model.name(),
            row.auc
        );
    }
}
