//! CART decision trees (gini impurity).

use crate::classifier::Classifier;
use crate::dataset::FeatureSet;
use rand::rngs::StdRng;
use rand::Rng;
use scamdetect_tensor::io::{ByteReader, ByteWriter, CodecError, ParamIo, Sections};

/// One tree node.
#[derive(Debug, Clone)]
enum Node {
    Leaf {
        /// Fraction of malicious samples at this leaf.
        p1: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: Box<Node>,
        right: Box<Node>,
    },
}

/// Training hyperparameters shared by trees and forests.
#[derive(Debug, Clone)]
pub struct TreeConfig {
    /// Maximum depth.
    pub max_depth: usize,
    /// Minimum samples to attempt a split.
    pub min_samples_split: usize,
    /// Features examined per split: `None` = all (plain CART); `Some(k)` =
    /// a random subset of k (forest mode).
    pub feature_subset: Option<usize>,
    /// Extra-trees mode: thresholds drawn uniformly at random instead of
    /// exhaustively optimised.
    pub random_thresholds: bool,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            max_depth: 10,
            min_samples_split: 4,
            feature_subset: None,
            random_thresholds: false,
        }
    }
}

/// A single CART decision tree.
#[derive(Debug, Clone)]
pub struct DecisionTree {
    config: TreeConfig,
    root: Option<Node>,
    seed: u64,
}

impl DecisionTree {
    /// Creates a tree with the given config and rng seed (the seed only
    /// matters with feature subsetting / random thresholds).
    pub fn new(config: TreeConfig, seed: u64) -> Self {
        DecisionTree {
            config,
            root: None,
            seed,
        }
    }

    /// Plain CART with default hyperparameters.
    pub fn default_cart() -> Self {
        DecisionTree::new(TreeConfig::default(), 0)
    }

    fn gini(counts: (usize, usize)) -> f64 {
        let n = (counts.0 + counts.1) as f64;
        if n == 0.0 {
            return 0.0;
        }
        let p0 = counts.0 as f64 / n;
        let p1 = counts.1 as f64 / n;
        1.0 - p0 * p0 - p1 * p1
    }

    fn build(
        &self,
        x: &[Vec<f64>],
        y: &[usize],
        idx: &[usize],
        depth: usize,
        rng: &mut StdRng,
    ) -> Node {
        let ones = idx.iter().filter(|&&i| y[i] == 1).count();
        let p1 = ones as f64 / idx.len().max(1) as f64;
        if depth >= self.config.max_depth
            || idx.len() < self.config.min_samples_split
            || ones == 0
            || ones == idx.len()
        {
            return Node::Leaf { p1 };
        }

        let dim = x[0].len();
        let feats: Vec<usize> = match self.config.feature_subset {
            Some(k) => {
                let mut fs: Vec<usize> = (0..dim).collect();
                for i in (1..fs.len()).rev() {
                    let j = rng.random_range(0..=i);
                    fs.swap(i, j);
                }
                fs.truncate(k.max(1).min(dim));
                fs
            }
            None => (0..dim).collect(),
        };

        let parent_gini = Self::gini((idx.len() - ones, ones));
        let mut best: Option<(f64, usize, f64)> = None; // (gain, feature, threshold)
        for &f in &feats {
            let mut vals: Vec<f64> = idx.iter().map(|&i| x[i][f]).collect();
            vals.sort_by(|a, b| a.partial_cmp(b).expect("finite features"));
            vals.dedup();
            if vals.len() < 2 {
                continue;
            }
            let candidate_thresholds: Vec<f64> = if self.config.random_thresholds {
                let lo = vals[0];
                let hi = *vals.last().expect("nonempty");
                vec![rng.random_range(0.0..1.0) * (hi - lo) + lo]
            } else {
                vals.windows(2).map(|w| (w[0] + w[1]) / 2.0).collect()
            };
            for t in candidate_thresholds {
                let mut left = (0usize, 0usize);
                let mut right = (0usize, 0usize);
                for &i in idx {
                    let side = if x[i][f] <= t { &mut left } else { &mut right };
                    if y[i] == 1 {
                        side.1 += 1;
                    } else {
                        side.0 += 1;
                    }
                }
                let nl = (left.0 + left.1) as f64;
                let nr = (right.0 + right.1) as f64;
                if nl == 0.0 || nr == 0.0 {
                    continue;
                }
                let n = nl + nr;
                let gain = parent_gini - (nl / n) * Self::gini(left) - (nr / n) * Self::gini(right);
                if best.is_none_or(|(g, _, _)| gain > g) {
                    best = Some((gain, f, t));
                }
            }
        }

        let Some((gain, feature, threshold)) = best else {
            return Node::Leaf { p1 };
        };
        if gain <= 1e-12 {
            return Node::Leaf { p1 };
        }
        let (left_idx, right_idx): (Vec<usize>, Vec<usize>) =
            idx.iter().partition(|&&i| x[i][feature] <= threshold);
        Node::Split {
            feature,
            threshold,
            left: Box::new(self.build(x, y, &left_idx, depth + 1, rng)),
            right: Box::new(self.build(x, y, &right_idx, depth + 1, rng)),
        }
    }

    fn score_node(node: &Node, row: &[f64]) -> f64 {
        match node {
            Node::Leaf { p1 } => *p1,
            Node::Split {
                feature,
                threshold,
                left,
                right,
            } => {
                if row[*feature] <= *threshold {
                    Self::score_node(left, row)
                } else {
                    Self::score_node(right, row)
                }
            }
        }
    }
}

/// Decode-side bound on tree depth: far above anything training can
/// produce (`max_depth` defaults to 10–12), it stops a crafted artifact
/// from recursing the decoder off the stack.
const MAX_DECODE_DEPTH: usize = 512;

fn write_node(node: &Node, w: &mut ByteWriter) {
    match node {
        Node::Leaf { p1 } => {
            w.put_u8(0);
            w.put_f64(*p1);
        }
        Node::Split {
            feature,
            threshold,
            left,
            right,
        } => {
            w.put_u8(1);
            w.put_usize(*feature);
            w.put_f64(*threshold);
            write_node(left, w);
            write_node(right, w);
        }
    }
}

fn read_node(r: &mut ByteReader<'_>, depth: usize) -> Result<Node, CodecError> {
    if depth > MAX_DECODE_DEPTH {
        return Err(CodecError::Malformed {
            context: "decision tree deeper than the supported decode limit",
        });
    }
    match r.get_u8("tree node tag")? {
        0 => Ok(Node::Leaf {
            p1: r.get_f64("leaf probability")?,
        }),
        1 => {
            let feature = r.get_usize("split feature")?;
            // Feature vectors in this framework are a few hundred wide;
            // an index beyond this bound is a corrupt or crafted tree
            // that would panic at score time on the row access.
            if feature > (1 << 20) {
                return Err(CodecError::Malformed {
                    context: "split feature index implausibly large",
                });
            }
            Ok(Node::Split {
                feature,
                threshold: r.get_f64("split threshold")?,
                left: Box::new(read_node(r, depth + 1)?),
                right: Box::new(read_node(r, depth + 1)?),
            })
        }
        _ => Err(CodecError::Malformed {
            context: "unknown tree node tag",
        }),
    }
}

impl DecisionTree {
    /// Serializes the full tree (config, seed, fitted structure) inline —
    /// the building block [`crate::RandomForest`] composes per member.
    pub(crate) fn write_into(&self, w: &mut ByteWriter) {
        w.put_usize(self.config.max_depth);
        w.put_usize(self.config.min_samples_split);
        w.put_opt_usize(self.config.feature_subset);
        w.put_bool(self.config.random_thresholds);
        w.put_u64(self.seed);
        match &self.root {
            Some(root) => {
                w.put_bool(true);
                write_node(root, w);
            }
            None => w.put_bool(false),
        }
    }

    /// Reads a tree written by [`DecisionTree::write_into`].
    pub(crate) fn read_from(r: &mut ByteReader<'_>) -> Result<DecisionTree, CodecError> {
        let config = TreeConfig {
            max_depth: r.get_usize("tree max_depth")?,
            min_samples_split: r.get_usize("tree min_samples_split")?,
            feature_subset: r.get_opt_usize("tree feature_subset")?,
            random_thresholds: r.get_bool("tree random_thresholds")?,
        };
        let seed = r.get_u64("tree seed")?;
        let root = if r.get_bool("tree fitted flag")? {
            Some(read_node(r, 0)?)
        } else {
            None
        };
        Ok(DecisionTree { config, root, seed })
    }
}

/// The largest feature index any split in the subtree reads, if any.
fn node_max_feature(node: &Node) -> Option<usize> {
    match node {
        Node::Leaf { .. } => None,
        Node::Split {
            feature,
            left,
            right,
            ..
        } => {
            let mut max = *feature;
            for child in [left, right] {
                if let Some(m) = node_max_feature(child) {
                    max = max.max(m);
                }
            }
            Some(max)
        }
    }
}

impl ParamIo for DecisionTree {
    fn export_state(&self, sections: &mut Sections) {
        let mut w = ByteWriter::new();
        self.write_into(&mut w);
        sections.push("decision_tree", w.into_bytes());
    }

    fn import_state(&mut self, sections: &Sections) -> Result<(), CodecError> {
        let mut r = ByteReader::new(sections.require("decision_tree")?);
        let tree = DecisionTree::read_from(&mut r)?;
        if !r.is_done() {
            return Err(CodecError::Malformed {
                context: "decision_tree: trailing bytes",
            });
        }
        *self = tree;
        Ok(())
    }

    fn state_matches_dim(&self, dim: usize) -> bool {
        // Every split must read inside the feature row, or scoring
        // panics on the row access.
        self.root
            .as_ref()
            .and_then(node_max_feature)
            .is_none_or(|max| max < dim)
    }
}

impl Classifier for DecisionTree {
    fn name(&self) -> &str {
        "decision_tree"
    }

    fn fit(&mut self, data: &FeatureSet) {
        if data.is_empty() {
            self.root = None;
            return;
        }
        let idx: Vec<usize> = (0..data.len()).collect();
        let mut rng = rand::SeedableRng::seed_from_u64(self.seed);
        self.root = Some(self.build(&data.x, &data.y, &idx, 0, &mut rng));
    }

    fn score(&self, row: &[f64]) -> f64 {
        match &self.root {
            Some(root) => Self::score_node(root, row),
            None => 0.5,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifier::test_util::{assert_learns, blobs};

    #[test]
    fn cart_learns_blobs() {
        assert_learns(&mut DecisionTree::default_cart(), 0.85);
    }

    #[test]
    fn tree_fits_band_pattern_which_linear_cannot() {
        // label = 1 iff |x0| > 1 — needs two thresholds on one feature.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..200 {
            let v = -2.5 + 5.0 * (i as f64 / 199.0);
            let jitter = (i as f64 * 0.037).sin() * 0.05;
            x.push(vec![v + jitter, (i % 3) as f64]);
            y.push(usize::from(v.abs() > 1.0));
        }
        let data = FeatureSet::new(x, y);
        let mut tree = DecisionTree::default_cart();
        tree.fit(&data);
        let correct = data
            .x
            .iter()
            .zip(&data.y)
            .filter(|(r, &l)| tree.predict(r) == l)
            .count();
        assert!(correct as f64 / data.len() as f64 > 0.95);
    }

    #[test]
    fn pure_node_stops_early() {
        let data = FeatureSet::new(vec![vec![0.0], vec![1.0]], vec![0, 0]);
        let mut tree = DecisionTree::default_cart();
        tree.fit(&data);
        assert_eq!(tree.score(&[0.5]), 0.0);
    }

    #[test]
    fn unfitted_scores_half() {
        assert_eq!(DecisionTree::default_cart().score(&[1.0]), 0.5);
    }

    #[test]
    fn blobs_with_random_thresholds_still_learn() {
        let cfg = TreeConfig {
            random_thresholds: true,
            ..TreeConfig::default()
        };
        let mut t = DecisionTree::new(cfg, 3);
        let train = blobs(200, 4, 1.5, 20);
        let test = blobs(60, 4, 1.5, 21);
        t.fit(&train);
        let acc = test
            .x
            .iter()
            .zip(&test.y)
            .filter(|(r, &l)| t.predict(r) == l)
            .count() as f64
            / test.len() as f64;
        assert!(acc > 0.8, "acc {acc}");
    }
}
