//! Classic machine-learning detectors and evaluation metrics.
//!
//! PhishingHook (paper §III) benchmarks a zoo of classic classifiers over
//! static bytecode features; this crate reimplements that lineup from
//! scratch — no external ML dependencies:
//!
//! * [`linear`] — logistic regression, nearest centroid,
//! * [`tree`] / [`forest`] — CART, random forest, extra-trees,
//! * [`knn`] — k-nearest neighbours,
//! * [`naive_bayes`] — Gaussian and Bernoulli NB,
//! * [`mlp`] — a two-hidden-layer perceptron on the autodiff tensor crate,
//! * [`zoo`] — the assembled 10-model baseline lineup (experiment E1),
//! * [`metrics`] — accuracy/precision/recall/F1/ROC-AUC,
//! * [`dataset`] / [`split`] — feature matrices, standardisation, k-fold.
//!
//! All models implement [`Classifier`] and are deterministic per seed.
//!
//! # Examples
//!
//! ```
//! use scamdetect_ml::{Classifier, FeatureSet, LogisticRegression};
//!
//! let train = FeatureSet::new(
//!     vec![vec![0.0, 0.1], vec![0.2, 0.0], vec![1.0, 0.9], vec![0.8, 1.0]],
//!     vec![0, 0, 1, 1],
//! );
//! let mut model = LogisticRegression::new();
//! model.fit(&train);
//! assert_eq!(model.predict(&[0.9, 0.95]), 1);
//! assert_eq!(model.predict(&[0.05, 0.0]), 0);
//! ```

pub mod classifier;
pub mod dataset;
pub mod forest;
pub mod knn;
pub mod linear;
pub mod metrics;
pub mod mlp;
pub mod naive_bayes;
pub mod split;
pub mod tree;
pub mod zoo;

pub use classifier::{fit_evaluate, Classifier};
pub use dataset::{FeatureSet, Standardizer};
// Every classifier's trained state round-trips through the tensor crate's
// persistence codec; re-exported so downstream artifact code needs no
// extra dependency edge.
pub use forest::RandomForest;
pub use knn::KNearest;
pub use linear::{LogisticRegression, NearestCentroid};
pub use metrics::{roc_auc, ConfusionMatrix, EvalRow};
pub use mlp::Mlp;
pub use naive_bayes::{BernoulliNb, GaussianNb};
pub use scamdetect_tensor::io::ParamIo;
pub use split::stratified_k_fold;
pub use tree::{DecisionTree, TreeConfig};
pub use zoo::baseline_zoo;
