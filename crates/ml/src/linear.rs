//! Logistic regression and nearest-centroid baselines.

use crate::classifier::Classifier;
use crate::dataset::{FeatureSet, Standardizer};
use scamdetect_tensor::io::{ByteReader, ByteWriter, CodecError, ParamIo, Sections};

/// L2-regularised logistic regression trained by full-batch gradient
/// descent on standardized features.
#[derive(Debug, Clone)]
pub struct LogisticRegression {
    weights: Vec<f64>,
    bias: f64,
    lr: f64,
    epochs: usize,
    l2: f64,
    scaler: Standardizer,
}

impl Default for LogisticRegression {
    fn default() -> Self {
        LogisticRegression::new()
    }
}

impl LogisticRegression {
    /// Creates the model with standard hyperparameters (lr 0.5, 300
    /// epochs, l2 1e-4).
    pub fn new() -> Self {
        LogisticRegression {
            weights: Vec::new(),
            bias: 0.0,
            lr: 0.5,
            epochs: 300,
            l2: 1e-4,
            scaler: Standardizer::default(),
        }
    }

    /// Overrides the epoch count.
    pub fn with_epochs(mut self, epochs: usize) -> Self {
        self.epochs = epochs;
        self
    }

    fn sigmoid(z: f64) -> f64 {
        1.0 / (1.0 + (-z).exp())
    }
}

impl Classifier for LogisticRegression {
    fn name(&self) -> &str {
        "logistic_regression"
    }

    fn fit(&mut self, data: &FeatureSet) {
        self.scaler = Standardizer::fit(&data.x);
        let x = self.scaler.transform(&data.x);
        let d = data.dim();
        let n = data.len().max(1) as f64;
        self.weights = vec![0.0; d];
        self.bias = 0.0;
        for _ in 0..self.epochs {
            let mut gw = vec![0.0; d];
            let mut gb = 0.0;
            for (row, &label) in x.iter().zip(&data.y) {
                let z: f64 = self
                    .weights
                    .iter()
                    .zip(row)
                    .map(|(w, v)| w * v)
                    .sum::<f64>()
                    + self.bias;
                let err = Self::sigmoid(z) - label as f64;
                for (g, v) in gw.iter_mut().zip(row) {
                    *g += err * v;
                }
                gb += err;
            }
            for (w, g) in self.weights.iter_mut().zip(&gw) {
                *w -= self.lr * (g / n + self.l2 * *w);
            }
            self.bias -= self.lr * gb / n;
        }
    }

    fn score(&self, row: &[f64]) -> f64 {
        let row = self.scaler.transform_row(row);
        let z: f64 = self
            .weights
            .iter()
            .zip(&row)
            .map(|(w, v)| w * v)
            .sum::<f64>()
            + self.bias;
        Self::sigmoid(z)
    }
}

impl ParamIo for LogisticRegression {
    fn export_state(&self, sections: &mut Sections) {
        let mut w = ByteWriter::new();
        w.put_f64_slice(&self.weights);
        w.put_f64(self.bias);
        w.put_f64(self.lr);
        w.put_usize(self.epochs);
        w.put_f64(self.l2);
        self.scaler.write_into(&mut w);
        sections.push("logistic_regression", w.into_bytes());
    }

    fn import_state(&mut self, sections: &Sections) -> Result<(), CodecError> {
        let mut r = ByteReader::new(sections.require("logistic_regression")?);
        self.weights = r.get_f64_vec("logreg weights")?;
        self.bias = r.get_f64("logreg bias")?;
        self.lr = r.get_f64("logreg lr")?;
        self.epochs = r.get_usize("logreg epochs")?;
        self.l2 = r.get_f64("logreg l2")?;
        self.scaler = Standardizer::read_from(&mut r)?;
        if !r.is_done() {
            return Err(CodecError::Malformed {
                context: "logistic_regression: trailing bytes",
            });
        }
        Ok(())
    }

    fn state_matches_dim(&self, dim: usize) -> bool {
        self.weights.is_empty() || self.weights.len() == dim
    }
}

/// Nearest-centroid classifier (a.k.a. the "histogram template" detector):
/// scores by relative distance to the two class centroids.
#[derive(Debug, Clone, Default)]
pub struct NearestCentroid {
    centroid0: Vec<f64>,
    centroid1: Vec<f64>,
}

impl NearestCentroid {
    /// Creates the model.
    pub fn new() -> Self {
        NearestCentroid::default()
    }

    fn dist(a: &[f64], b: &[f64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f64>()
            .sqrt()
    }
}

impl Classifier for NearestCentroid {
    fn name(&self) -> &str {
        "nearest_centroid"
    }

    fn fit(&mut self, data: &FeatureSet) {
        let d = data.dim();
        let mut sums = [vec![0.0; d], vec![0.0; d]];
        let mut counts = [0usize; 2];
        for (row, &label) in data.x.iter().zip(&data.y) {
            for (s, v) in sums[label].iter_mut().zip(row) {
                *s += v;
            }
            counts[label] += 1;
        }
        for (sum, count) in sums.iter_mut().zip(counts) {
            if count > 0 {
                for s in sum.iter_mut() {
                    *s /= count as f64;
                }
            }
        }
        let [c0, c1] = sums;
        self.centroid0 = c0;
        self.centroid1 = c1;
    }

    fn score(&self, row: &[f64]) -> f64 {
        if self.centroid0.is_empty() {
            return 0.5;
        }
        let d0 = Self::dist(row, &self.centroid0);
        let d1 = Self::dist(row, &self.centroid1);
        if d0 + d1 < 1e-12 {
            0.5
        } else {
            d0 / (d0 + d1)
        }
    }
}

impl ParamIo for NearestCentroid {
    fn export_state(&self, sections: &mut Sections) {
        let mut w = ByteWriter::new();
        w.put_f64_slice(&self.centroid0);
        w.put_f64_slice(&self.centroid1);
        sections.push("nearest_centroid", w.into_bytes());
    }

    fn import_state(&mut self, sections: &Sections) -> Result<(), CodecError> {
        let mut r = ByteReader::new(sections.require("nearest_centroid")?);
        self.centroid0 = r.get_f64_vec("centroid 0")?;
        self.centroid1 = r.get_f64_vec("centroid 1")?;
        if self.centroid0.len() != self.centroid1.len() {
            return Err(CodecError::Malformed {
                context: "nearest_centroid: centroid dimension mismatch",
            });
        }
        if !r.is_done() {
            return Err(CodecError::Malformed {
                context: "nearest_centroid: trailing bytes",
            });
        }
        Ok(())
    }

    fn state_matches_dim(&self, dim: usize) -> bool {
        self.centroid0.is_empty() || self.centroid0.len() == dim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifier::test_util::assert_learns;

    #[test]
    fn logreg_learns_blobs() {
        assert_learns(&mut LogisticRegression::new(), 0.9);
    }

    #[test]
    fn centroid_learns_blobs() {
        assert_learns(&mut NearestCentroid::new(), 0.9);
    }

    #[test]
    fn logreg_score_in_unit_interval() {
        let mut m = LogisticRegression::new().with_epochs(50);
        let data = crate::classifier::test_util::blobs(50, 3, 1.0, 5);
        m.fit(&data);
        for row in &data.x {
            let s = m.score(row);
            assert!((0.0..=1.0).contains(&s));
        }
    }

    #[test]
    fn centroid_unfitted_returns_half() {
        assert_eq!(NearestCentroid::new().score(&[1.0, 2.0]), 0.5);
    }
}
