//! Feature-matrix containers and preprocessing.

/// A dense feature matrix with aligned binary labels.
#[derive(Debug, Clone, Default)]
pub struct FeatureSet {
    /// One feature vector per sample.
    pub x: Vec<Vec<f64>>,
    /// Binary labels (0 benign, 1 malicious).
    pub y: Vec<usize>,
}

impl FeatureSet {
    /// Creates a feature set, validating alignment.
    ///
    /// # Panics
    ///
    /// Panics if `x` and `y` lengths differ or rows are ragged.
    pub fn new(x: Vec<Vec<f64>>, y: Vec<usize>) -> Self {
        assert_eq!(x.len(), y.len(), "sample/label count mismatch");
        if let Some(first) = x.first() {
            let d = first.len();
            assert!(x.iter().all(|r| r.len() == d), "ragged feature rows");
        }
        FeatureSet { x, y }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// Feature dimensionality (0 when empty).
    pub fn dim(&self) -> usize {
        self.x.first().map_or(0, Vec::len)
    }

    /// Selects rows by index.
    pub fn subset(&self, indices: &[usize]) -> FeatureSet {
        FeatureSet {
            x: indices.iter().map(|&i| self.x[i].clone()).collect(),
            y: indices.iter().map(|&i| self.y[i]).collect(),
        }
    }
}

/// Z-score standardisation fitted on training data and applied to both
/// sides of a split (constant features pass through unchanged).
#[derive(Debug, Clone, Default)]
pub struct Standardizer {
    mean: Vec<f64>,
    std: Vec<f64>,
}

impl Standardizer {
    /// Fits on `data`.
    pub fn fit(data: &[Vec<f64>]) -> Self {
        if data.is_empty() {
            return Standardizer::default();
        }
        let d = data[0].len();
        let n = data.len() as f64;
        let mut mean = vec![0.0; d];
        for row in data {
            for (m, v) in mean.iter_mut().zip(row) {
                *m += v;
            }
        }
        for m in &mut mean {
            *m /= n;
        }
        let mut std = vec![0.0; d];
        for row in data {
            for ((s, v), m) in std.iter_mut().zip(row).zip(&mean) {
                *s += (v - m) * (v - m);
            }
        }
        for s in &mut std {
            *s = (*s / n).sqrt();
            if *s < 1e-12 {
                *s = 1.0; // constant feature: leave unscaled
            }
        }
        Standardizer { mean, std }
    }

    /// Transforms one row.
    pub fn transform_row(&self, row: &[f64]) -> Vec<f64> {
        if self.mean.is_empty() {
            return row.to_vec();
        }
        row.iter()
            .zip(&self.mean)
            .zip(&self.std)
            .map(|((v, m), s)| (v - m) / s)
            .collect()
    }

    /// Transforms a whole matrix.
    pub fn transform(&self, data: &[Vec<f64>]) -> Vec<Vec<f64>> {
        data.iter().map(|r| self.transform_row(r)).collect()
    }

    /// Serializes the fitted statistics (exact `f64` bit patterns).
    pub fn write_into(&self, w: &mut scamdetect_tensor::io::ByteWriter) {
        w.put_f64_slice(&self.mean);
        w.put_f64_slice(&self.std);
    }

    /// Reads statistics written by [`Standardizer::write_into`].
    ///
    /// # Errors
    ///
    /// [`scamdetect_tensor::io::CodecError`] on truncation or a
    /// mean/std length mismatch.
    pub fn read_from(
        r: &mut scamdetect_tensor::io::ByteReader<'_>,
    ) -> Result<Standardizer, scamdetect_tensor::io::CodecError> {
        let mean = r.get_f64_vec("standardizer mean")?;
        let std = r.get_f64_vec("standardizer std")?;
        if mean.len() != std.len() {
            return Err(scamdetect_tensor::io::CodecError::Malformed {
                context: "standardizer: mean/std length mismatch",
            });
        }
        Ok(Standardizer { mean, std })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_subset() {
        let fs = FeatureSet::new(vec![vec![1.0, 2.0], vec![3.0, 4.0]], vec![0, 1]);
        assert_eq!(fs.len(), 2);
        assert_eq!(fs.dim(), 2);
        let sub = fs.subset(&[1]);
        assert_eq!(sub.x, vec![vec![3.0, 4.0]]);
        assert_eq!(sub.y, vec![1]);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn misaligned_labels_panic() {
        FeatureSet::new(vec![vec![1.0]], vec![0, 1]);
    }

    #[test]
    fn standardizer_zero_mean_unit_var() {
        let data = vec![vec![1.0, 10.0], vec![3.0, 10.0], vec![5.0, 10.0]];
        let s = Standardizer::fit(&data);
        let t = s.transform(&data);
        let mean0: f64 = t.iter().map(|r| r[0]).sum::<f64>() / 3.0;
        assert!(mean0.abs() < 1e-9);
        // Constant column untouched (std forced to 1): values become 0.
        assert!(t.iter().all(|r| r[1].abs() < 1e-9));
    }

    #[test]
    fn empty_standardizer_is_identity() {
        let s = Standardizer::fit(&[]);
        assert_eq!(s.transform_row(&[5.0]), vec![5.0]);
    }
}
