//! A multi-layer perceptron built on the autodiff tensor crate.

use crate::classifier::Classifier;
use crate::dataset::{FeatureSet, Standardizer};
use rand::rngs::StdRng;
use rand::SeedableRng;
use scamdetect_tensor::io::{
    export_parameters, import_parameters, ByteReader, ByteWriter, CodecError, ParamIo, Sections,
};
use scamdetect_tensor::{init, optim::Adam, Matrix, ParamId, Parameters, Tape};

/// A two-hidden-layer MLP (ReLU) with softmax cross-entropy, trained by
/// Adam on standardized features — the "deep neural network" entry in the
/// PhishingHook-style model zoo.
#[derive(Debug)]
pub struct Mlp {
    hidden: usize,
    epochs: usize,
    lr: f32,
    seed: u64,
    params: Parameters,
    ids: Vec<ParamId>,
    scaler: Standardizer,
    fitted: bool,
}

impl Mlp {
    /// Creates the model (hidden width 32, 60 epochs, lr 1e-2).
    pub fn new(seed: u64) -> Self {
        Mlp {
            hidden: 32,
            epochs: 60,
            lr: 1e-2,
            seed,
            params: Parameters::new(),
            ids: Vec::new(),
            scaler: Standardizer::default(),
            fitted: false,
        }
    }

    /// Overrides the hidden width.
    pub fn with_hidden(mut self, hidden: usize) -> Self {
        self.hidden = hidden;
        self
    }

    /// Overrides the epoch count.
    pub fn with_epochs(mut self, epochs: usize) -> Self {
        self.epochs = epochs;
        self
    }

    fn to_matrix(rows: &[Vec<f64>]) -> Matrix {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        Matrix::from_fn(r, c, |i, j| rows[i][j] as f32)
    }

    fn forward(
        &self,
        tape: &Tape,
        vars: &[scamdetect_tensor::Var],
        x: scamdetect_tensor::Var,
    ) -> scamdetect_tensor::Var {
        let h1 = tape.matmul(x, vars[self.ids[0].index()]);
        let h1 = tape.add_bias(h1, vars[self.ids[1].index()]);
        let h1 = tape.relu(h1);
        let h2 = tape.matmul(h1, vars[self.ids[2].index()]);
        let h2 = tape.add_bias(h2, vars[self.ids[3].index()]);
        let h2 = tape.relu(h2);
        let out = tape.matmul(h2, vars[self.ids[4].index()]);
        tape.add_bias(out, vars[self.ids[5].index()])
    }
}

/// Decode-side bounds on the MLP shape, so a crafted artifact cannot ask
/// the importer for an absurd pre-allocation.
const MAX_MLP_DIM: usize = 1 << 16;
const MAX_MLP_HIDDEN: usize = 1 << 12;

impl Mlp {
    /// Allocates the six parameter matrices (zeros) in the exact layout
    /// and naming `fit` uses, so imported tensors are shape-checked
    /// against the architecture.
    fn allocate_params(&mut self, dim: usize) {
        self.params = Parameters::new();
        self.ids = vec![
            self.params.add("w1", Matrix::zeros(dim, self.hidden)),
            self.params.add("b1", Matrix::zeros(1, self.hidden)),
            self.params
                .add("w2", Matrix::zeros(self.hidden, self.hidden)),
            self.params.add("b2", Matrix::zeros(1, self.hidden)),
            self.params.add("w3", Matrix::zeros(self.hidden, 2)),
            self.params.add("b3", Matrix::zeros(1, 2)),
        ];
    }
}

impl ParamIo for Mlp {
    fn export_state(&self, sections: &mut Sections) {
        let mut w = ByteWriter::new();
        w.put_usize(self.hidden);
        w.put_usize(self.epochs);
        w.put_f32(self.lr);
        w.put_u64(self.seed);
        w.put_bool(self.fitted);
        // Input dimensionality, recoverable from w1 when fitted.
        let dim = if self.fitted {
            self.params.get(self.ids[0]).rows()
        } else {
            0
        };
        w.put_usize(dim);
        self.scaler.write_into(&mut w);
        sections.push("mlp", w.into_bytes());
        if self.fitted {
            export_parameters(&self.params, "mlp.tensor.", sections);
        }
    }

    fn import_state(&mut self, sections: &Sections) -> Result<(), CodecError> {
        let mut r = ByteReader::new(sections.require("mlp")?);
        let hidden = r.get_usize("mlp hidden width")?;
        let epochs = r.get_usize("mlp epochs")?;
        let lr = r.get_f32("mlp lr")?;
        let seed = r.get_u64("mlp seed")?;
        let fitted = r.get_bool("mlp fitted flag")?;
        let dim = r.get_usize("mlp input dim")?;
        let scaler = Standardizer::read_from(&mut r)?;
        if !r.is_done() {
            return Err(CodecError::Malformed {
                context: "mlp: trailing bytes",
            });
        }
        if fitted && (dim == 0 || dim > MAX_MLP_DIM || hidden == 0 || hidden > MAX_MLP_HIDDEN) {
            return Err(CodecError::Malformed {
                context: "mlp: implausible input/hidden dimensions",
            });
        }
        self.hidden = hidden;
        self.epochs = epochs;
        self.lr = lr;
        self.seed = seed;
        self.scaler = scaler;
        self.fitted = fitted;
        if fitted {
            self.allocate_params(dim);
            import_parameters(&mut self.params, "mlp.tensor.", sections)?;
        } else {
            self.params = Parameters::new();
            self.ids = Vec::new();
        }
        Ok(())
    }

    fn state_matches_dim(&self, dim: usize) -> bool {
        !self.fitted || self.params.get(self.ids[0]).rows() == dim
    }
}

impl Classifier for Mlp {
    fn name(&self) -> &str {
        "mlp"
    }

    fn fit(&mut self, data: &FeatureSet) {
        if data.is_empty() {
            self.fitted = false;
            return;
        }
        self.scaler = Standardizer::fit(&data.x);
        let x = Self::to_matrix(&self.scaler.transform(&data.x));
        let dim = data.dim();
        let mut rng = StdRng::seed_from_u64(self.seed);

        self.params = Parameters::new();
        self.ids = vec![
            self.params
                .add("w1", init::he_normal(dim, self.hidden, &mut rng)),
            self.params.add("b1", Matrix::zeros(1, self.hidden)),
            self.params
                .add("w2", init::he_normal(self.hidden, self.hidden, &mut rng)),
            self.params.add("b2", Matrix::zeros(1, self.hidden)),
            self.params
                .add("w3", init::xavier_uniform(self.hidden, 2, &mut rng)),
            self.params.add("b3", Matrix::zeros(1, 2)),
        ];
        let mut adam = Adam::new(self.lr);
        for _ in 0..self.epochs {
            let tape = Tape::new();
            let vars = self.params.bind(&tape);
            let xv = tape.constant(x.clone());
            let logits = self.forward(&tape, &vars, xv);
            let loss = tape.softmax_cross_entropy(logits, &data.y);
            let grads = tape.backward(loss);
            adam.step(&mut self.params, |id| grads.of(vars[id.index()]));
        }
        self.fitted = true;
    }

    fn score(&self, row: &[f64]) -> f64 {
        if !self.fitted {
            return 0.5;
        }
        let row = self.scaler.transform_row(row);
        let x = Self::to_matrix(&[row]);
        let tape = Tape::new();
        let vars = self.params.bind(&tape);
        let xv = tape.constant(x);
        let logits = self.forward(&tape, &vars, xv);
        let probs = scamdetect_tensor::tape::softmax_rows(&tape.value(logits));
        probs.get(0, 1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifier::test_util::assert_learns;

    #[test]
    fn mlp_learns_blobs() {
        assert_learns(&mut Mlp::new(1), 0.9);
    }

    #[test]
    fn unfitted_scores_half() {
        assert_eq!(Mlp::new(0).score(&[1.0, 2.0]), 0.5);
    }

    #[test]
    fn deterministic_per_seed() {
        let data = crate::classifier::test_util::blobs(60, 4, 1.5, 8);
        let mut a = Mlp::new(5).with_epochs(10);
        let mut b = Mlp::new(5).with_epochs(10);
        a.fit(&data);
        b.fit(&data);
        assert_eq!(a.score(&data.x[0]), b.score(&data.x[0]));
    }
}
