//! Random forests and extremely randomized trees.

use crate::classifier::Classifier;
use crate::dataset::FeatureSet;
use crate::tree::{DecisionTree, TreeConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use scamdetect_tensor::io::{ByteReader, ByteWriter, CodecError, ParamIo, Sections};

/// An ensemble of CART trees on bootstrap samples with per-split feature
/// subsampling (Breiman's random forest), or — with
/// [`RandomForest::extra_trees`] — extremely randomized trees (random
/// thresholds, no bootstrap).
#[derive(Debug, Clone)]
pub struct RandomForest {
    n_trees: usize,
    seed: u64,
    extra: bool,
    trees: Vec<DecisionTree>,
    name: &'static str,
}

impl RandomForest {
    /// A random forest of `n_trees` trees.
    pub fn new(n_trees: usize, seed: u64) -> Self {
        RandomForest {
            n_trees,
            seed,
            extra: false,
            trees: Vec::new(),
            name: "random_forest",
        }
    }

    /// An extra-trees ensemble of `n_trees` trees.
    pub fn extra_trees(n_trees: usize, seed: u64) -> Self {
        RandomForest {
            n_trees,
            seed,
            extra: true,
            trees: Vec::new(),
            name: "extra_trees",
        }
    }
}

impl Classifier for RandomForest {
    fn name(&self) -> &str {
        self.name
    }

    fn fit(&mut self, data: &FeatureSet) {
        self.trees.clear();
        if data.is_empty() {
            return;
        }
        let mut rng = StdRng::seed_from_u64(self.seed);
        let dim = data.dim();
        let subset = (dim as f64).sqrt().ceil() as usize;
        for t in 0..self.n_trees {
            let sample: FeatureSet = if self.extra {
                // Extra-trees use the full sample.
                FeatureSet::new(data.x.clone(), data.y.clone())
            } else {
                // Bootstrap.
                let idx: Vec<usize> = (0..data.len())
                    .map(|_| rng.random_range(0..data.len()))
                    .collect();
                data.subset(&idx)
            };
            let config = TreeConfig {
                max_depth: 12,
                min_samples_split: 4,
                feature_subset: Some(subset),
                random_thresholds: self.extra,
            };
            let mut tree = DecisionTree::new(config, self.seed ^ (t as u64).wrapping_mul(0x9E37));
            tree.fit(&sample);
            self.trees.push(tree);
        }
    }

    fn score(&self, row: &[f64]) -> f64 {
        if self.trees.is_empty() {
            return 0.5;
        }
        self.trees.iter().map(|t| t.score(row)).sum::<f64>() / self.trees.len() as f64
    }
}

impl ParamIo for RandomForest {
    fn export_state(&self, sections: &mut Sections) {
        let mut w = ByteWriter::new();
        w.put_usize(self.n_trees);
        w.put_u64(self.seed);
        w.put_bool(self.extra);
        w.put_u32(u32::try_from(self.trees.len()).expect("ensemble fits u32"));
        for tree in &self.trees {
            tree.write_into(&mut w);
        }
        sections.push("forest", w.into_bytes());
    }

    fn import_state(&mut self, sections: &Sections) -> Result<(), CodecError> {
        let mut r = ByteReader::new(sections.require("forest")?);
        let n_trees = r.get_usize("forest n_trees")?;
        let seed = r.get_u64("forest seed")?;
        let extra = r.get_bool("forest extra flag")?;
        let fitted = r.get_u32("forest fitted tree count")? as usize;
        // Each encoded tree occupies well over one byte: a count that
        // exceeds the remaining payload is corrupt, and checking first
        // keeps the loop allocation bounded by the input size.
        if fitted > r.remaining() {
            return Err(CodecError::Truncated {
                context: "forest trees",
                needed: fitted,
                available: r.remaining(),
            });
        }
        let mut trees = Vec::with_capacity(fitted);
        for _ in 0..fitted {
            trees.push(DecisionTree::read_from(&mut r)?);
        }
        if !r.is_done() {
            return Err(CodecError::Malformed {
                context: "forest: trailing bytes",
            });
        }
        self.n_trees = n_trees;
        self.seed = seed;
        self.extra = extra;
        self.trees = trees;
        self.name = if extra {
            "extra_trees"
        } else {
            "random_forest"
        };
        Ok(())
    }

    fn state_matches_dim(&self, dim: usize) -> bool {
        self.trees.iter().all(|t| t.state_matches_dim(dim))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifier::test_util::assert_learns;

    #[test]
    fn forest_learns_blobs() {
        assert_learns(&mut RandomForest::new(15, 7), 0.9);
    }

    #[test]
    fn extra_trees_learn_blobs() {
        assert_learns(&mut RandomForest::extra_trees(15, 7), 0.85);
    }

    #[test]
    fn deterministic_for_seed() {
        let data = crate::classifier::test_util::blobs(100, 4, 1.0, 3);
        let mut a = RandomForest::new(5, 42);
        let mut b = RandomForest::new(5, 42);
        a.fit(&data);
        b.fit(&data);
        for row in data.x.iter().take(10) {
            assert_eq!(a.score(row), b.score(row));
        }
    }

    #[test]
    fn unfitted_scores_half() {
        assert_eq!(RandomForest::new(3, 0).score(&[0.0]), 0.5);
    }
}
