//! k-nearest-neighbours classification.

use crate::classifier::Classifier;
use crate::dataset::{FeatureSet, Standardizer};
use scamdetect_tensor::io::{ByteReader, ByteWriter, CodecError, ParamIo, Sections};

/// k-NN with Euclidean distance on standardized features; the score is the
/// malicious fraction among the k nearest training samples.
#[derive(Debug, Clone)]
pub struct KNearest {
    k: usize,
    x: Vec<Vec<f64>>,
    y: Vec<usize>,
    scaler: Standardizer,
    name: String,
}

impl KNearest {
    /// Creates a k-NN classifier.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        KNearest {
            k,
            x: Vec::new(),
            y: Vec::new(),
            scaler: Standardizer::default(),
            name: format!("knn_{k}"),
        }
    }
}

impl Classifier for KNearest {
    fn name(&self) -> &str {
        &self.name
    }

    fn fit(&mut self, data: &FeatureSet) {
        self.scaler = Standardizer::fit(&data.x);
        self.x = self.scaler.transform(&data.x);
        self.y = data.y.clone();
    }

    fn score(&self, row: &[f64]) -> f64 {
        if self.x.is_empty() {
            return 0.5;
        }
        let row = self.scaler.transform_row(row);
        let mut dists: Vec<(f64, usize)> = self
            .x
            .iter()
            .zip(&self.y)
            .map(|(tr, &label)| {
                let d: f64 = tr.iter().zip(&row).map(|(a, b)| (a - b) * (a - b)).sum();
                (d, label)
            })
            .collect();
        let k = self.k.min(dists.len());
        dists.select_nth_unstable_by(k - 1, |a, b| {
            a.0.partial_cmp(&b.0).expect("finite distances")
        });
        let ones = dists[..k].iter().filter(|(_, l)| *l == 1).count();
        ones as f64 / k as f64
    }
}

impl ParamIo for KNearest {
    fn export_state(&self, sections: &mut Sections) {
        let mut w = ByteWriter::new();
        w.put_usize(self.k);
        w.put_f64_rows(&self.x);
        w.put_u32(u32::try_from(self.y.len()).expect("labels fit u32"));
        for &label in &self.y {
            w.put_u8(u8::try_from(label).expect("binary labels"));
        }
        self.scaler.write_into(&mut w);
        sections.push("knn", w.into_bytes());
    }

    fn import_state(&mut self, sections: &Sections) -> Result<(), CodecError> {
        let mut r = ByteReader::new(sections.require("knn")?);
        let k = r.get_usize("knn k")?;
        if k == 0 {
            return Err(CodecError::Malformed {
                context: "knn: k must be positive",
            });
        }
        let x = r.get_f64_rows("knn training rows")?;
        let n = r.get_u32("knn label count")? as usize;
        if n != x.len() {
            return Err(CodecError::Malformed {
                context: "knn: label count does not match training rows",
            });
        }
        let mut y = Vec::with_capacity(n.min(r.remaining()));
        for _ in 0..n {
            let label = r.get_u8("knn label")?;
            if label > 1 {
                return Err(CodecError::Malformed {
                    context: "knn: non-binary label",
                });
            }
            y.push(label as usize);
        }
        self.scaler = Standardizer::read_from(&mut r)?;
        if !r.is_done() {
            return Err(CodecError::Malformed {
                context: "knn: trailing bytes",
            });
        }
        self.k = k;
        self.x = x;
        self.y = y;
        self.name = format!("knn_{k}");
        Ok(())
    }

    fn state_matches_dim(&self, dim: usize) -> bool {
        self.x.first().is_none_or(|row| row.len() == dim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifier::test_util::{assert_learns, blobs};

    #[test]
    fn knn1_learns_blobs() {
        assert_learns(&mut KNearest::new(1), 0.9);
    }

    #[test]
    fn knn5_learns_blobs() {
        assert_learns(&mut KNearest::new(5), 0.9);
    }

    #[test]
    fn memorizes_training_point_with_k1() {
        let data = blobs(40, 3, 2.0, 2);
        let mut m = KNearest::new(1);
        m.fit(&data);
        for (row, &label) in data.x.iter().zip(&data.y) {
            assert_eq!(m.predict(row), label);
        }
    }

    #[test]
    fn k_larger_than_dataset_is_clamped() {
        let data = blobs(4, 2, 2.0, 2);
        let mut m = KNearest::new(99);
        m.fit(&data);
        let s = m.score(&data.x[0]);
        assert!((0.0..=1.0).contains(&s));
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        KNearest::new(0);
    }
}
