//! Binary-classification evaluation metrics.

/// A 2x2 confusion matrix for the malicious-vs-benign task
/// (positive class = malicious = 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ConfusionMatrix {
    /// Malicious predicted malicious.
    pub tp: usize,
    /// Benign predicted malicious.
    pub fp: usize,
    /// Benign predicted benign.
    pub tn: usize,
    /// Malicious predicted benign.
    pub fn_: usize,
}

impl ConfusionMatrix {
    /// Tallies predictions against ground truth.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn from_predictions(truth: &[usize], predicted: &[usize]) -> Self {
        assert_eq!(truth.len(), predicted.len(), "length mismatch");
        let mut m = ConfusionMatrix::default();
        for (&t, &p) in truth.iter().zip(predicted) {
            match (t, p) {
                (1, 1) => m.tp += 1,
                (0, 1) => m.fp += 1,
                (0, 0) => m.tn += 1,
                (1, 0) => m.fn_ += 1,
                _ => panic!("binary labels must be 0 or 1"),
            }
        }
        m
    }

    /// Total samples.
    pub fn total(&self) -> usize {
        self.tp + self.fp + self.tn + self.fn_
    }

    /// `(TP + TN) / total`.
    pub fn accuracy(&self) -> f64 {
        if self.total() == 0 {
            return 0.0;
        }
        (self.tp + self.tn) as f64 / self.total() as f64
    }

    /// `TP / (TP + FP)` (1.0 when no positives were predicted).
    pub fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            return 1.0;
        }
        self.tp as f64 / (self.tp + self.fp) as f64
    }

    /// `TP / (TP + FN)` (1.0 when no positives exist).
    pub fn recall(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            return 1.0;
        }
        self.tp as f64 / (self.tp + self.fn_) as f64
    }

    /// Harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// False-positive rate `FP / (FP + TN)`.
    pub fn fpr(&self) -> f64 {
        if self.fp + self.tn == 0 {
            return 0.0;
        }
        self.fp as f64 / (self.fp + self.tn) as f64
    }
}

/// Area under the ROC curve, computed by the rank statistic
/// (Mann–Whitney U). `scores` are the model's confidence that each sample
/// is positive; ties contribute half.
///
/// Returns 0.5 when either class is absent.
pub fn roc_auc(truth: &[usize], scores: &[f64]) -> f64 {
    assert_eq!(truth.len(), scores.len(), "length mismatch");
    let pos: Vec<f64> = truth
        .iter()
        .zip(scores)
        .filter(|(&t, _)| t == 1)
        .map(|(_, &s)| s)
        .collect();
    let neg: Vec<f64> = truth
        .iter()
        .zip(scores)
        .filter(|(&t, _)| t == 0)
        .map(|(_, &s)| s)
        .collect();
    if pos.is_empty() || neg.is_empty() {
        return 0.5;
    }
    let mut wins = 0.0;
    for &p in &pos {
        for &n in &neg {
            if p > n {
                wins += 1.0;
            } else if (p - n).abs() < 1e-12 {
                wins += 0.5;
            }
        }
    }
    wins / (pos.len() as f64 * neg.len() as f64)
}

/// One evaluated model: name plus the standard metric bundle. This is the
/// row type of every results table in EXPERIMENTS.md.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalRow {
    /// Model name.
    pub model: String,
    /// Accuracy.
    pub accuracy: f64,
    /// Precision on the malicious class.
    pub precision: f64,
    /// Recall on the malicious class.
    pub recall: f64,
    /// F1 on the malicious class.
    pub f1: f64,
    /// ROC-AUC.
    pub auc: f64,
}

impl EvalRow {
    /// Builds a row from raw predictions and scores.
    pub fn evaluate(
        model: impl Into<String>,
        truth: &[usize],
        predicted: &[usize],
        scores: &[f64],
    ) -> Self {
        let cm = ConfusionMatrix::from_predictions(truth, predicted);
        EvalRow {
            model: model.into(),
            accuracy: cm.accuracy(),
            precision: cm.precision(),
            recall: cm.recall(),
            f1: cm.f1(),
            auc: roc_auc(truth, scores),
        }
    }
}

impl std::fmt::Display for EvalRow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:<24} acc={:.3} prec={:.3} rec={:.3} f1={:.3} auc={:.3}",
            self.model, self.accuracy, self.precision, self.recall, self.f1, self.auc
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_classifier() {
        let truth = [1, 0, 1, 0];
        let pred = [1, 0, 1, 0];
        let cm = ConfusionMatrix::from_predictions(&truth, &pred);
        assert_eq!(cm.accuracy(), 1.0);
        assert_eq!(cm.precision(), 1.0);
        assert_eq!(cm.recall(), 1.0);
        assert_eq!(cm.f1(), 1.0);
        assert_eq!(cm.fpr(), 0.0);
    }

    #[test]
    fn known_confusion_counts() {
        let truth = [1, 1, 1, 0, 0, 0, 1, 0];
        let pred = [1, 0, 1, 1, 0, 0, 1, 0];
        let cm = ConfusionMatrix::from_predictions(&truth, &pred);
        assert_eq!((cm.tp, cm.fp, cm.tn, cm.fn_), (3, 1, 3, 1));
        assert!((cm.accuracy() - 0.75).abs() < 1e-12);
        assert!((cm.precision() - 0.75).abs() < 1e-12);
        assert!((cm.recall() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn degenerate_cases() {
        let cm = ConfusionMatrix::default();
        assert_eq!(cm.accuracy(), 0.0);
        assert_eq!(cm.precision(), 1.0);
        assert_eq!(cm.recall(), 1.0);
    }

    #[test]
    fn auc_perfect_and_inverted() {
        let truth = [0, 0, 1, 1];
        assert_eq!(roc_auc(&truth, &[0.1, 0.2, 0.8, 0.9]), 1.0);
        assert_eq!(roc_auc(&truth, &[0.9, 0.8, 0.2, 0.1]), 0.0);
        assert_eq!(roc_auc(&truth, &[0.5, 0.5, 0.5, 0.5]), 0.5);
    }

    #[test]
    fn auc_single_class_is_half() {
        assert_eq!(roc_auc(&[1, 1], &[0.3, 0.4]), 0.5);
    }

    #[test]
    fn eval_row_formats() {
        let row = EvalRow::evaluate("test", &[1, 0], &[1, 0], &[0.9, 0.1]);
        assert!(row.to_string().contains("acc=1.000"));
        assert_eq!(row.auc, 1.0);
    }
}
