//! End-to-end integration: corpus → training → held-out detection.
//!
//! These tests exercise the full pipeline across every crate boundary and
//! assert *detection quality*, not just absence of crashes.

use scamdetect::{
    ClassicModel, FeatureKind, GnnKind, ModelKind, Scanner, ScannerBuilder, TrainOptions,
};
use scamdetect_dataset::{Corpus, CorpusConfig};
use scamdetect_ir::Platform;

fn corpus(size: usize, platform: Platform, seed: u64) -> Corpus {
    Corpus::generate(&CorpusConfig {
        size,
        platform,
        seed,
        ..CorpusConfig::default()
    })
}

fn held_out_accuracy(scanner: &Scanner, corpus: &Corpus, test_idx: &[usize]) -> f64 {
    let mut correct = 0;
    for &i in test_idx {
        let c = &corpus.contracts()[i];
        let verdict = scanner.scan(&c.bytes).expect("scan succeeds").verdict;
        if verdict.label == c.label {
            correct += 1;
        }
    }
    correct as f64 / test_idx.len() as f64
}

#[test]
fn classic_detector_beats_chance_clearly_on_evm() {
    let corpus = corpus(160, Platform::Evm, 11);
    let (train_idx, test_idx) = corpus.split(0.3, 5);
    let scanner = ScannerBuilder::new()
        .model(ModelKind::Classic(
            ClassicModel::RandomForest,
            FeatureKind::OpcodeHistogram,
        ))
        .train_on(&corpus, &train_idx)
        .expect("training succeeds");
    let acc = held_out_accuracy(&scanner, &corpus, &test_idx);
    assert!(acc >= 0.8, "random forest reached only {acc:.3}");
}

#[test]
fn unified_features_work_on_wasm() {
    let corpus = corpus(120, Platform::Wasm, 13);
    let (train_idx, test_idx) = corpus.split(0.3, 5);
    let scanner = ScannerBuilder::new()
        .model(ModelKind::Classic(
            ClassicModel::RandomForest,
            FeatureKind::Unified,
        ))
        .train_on(&corpus, &train_idx)
        .expect("training succeeds");
    let acc = held_out_accuracy(&scanner, &corpus, &test_idx);
    assert!(acc >= 0.75, "wasm unified-features accuracy {acc:.3}");
}

#[test]
fn gnn_detector_learns_on_evm() {
    let corpus = corpus(100, Platform::Evm, 17);
    let (train_idx, test_idx) = corpus.split(0.3, 5);
    let mut options = TrainOptions::default();
    options.gnn.epochs = 60;
    options.gnn.lr = 2e-2;
    let scanner = ScannerBuilder::new()
        .model(ModelKind::Gnn(GnnKind::Gin))
        .train_options(options)
        .train_on(&corpus, &train_idx)
        .expect("training succeeds");
    let acc = held_out_accuracy(&scanner, &corpus, &test_idx);
    assert!(acc >= 0.75, "gin reached only {acc:.3}");
}

#[test]
fn one_model_scans_both_platforms() {
    let evm = corpus(60, Platform::Evm, 19);
    let wasm = corpus(60, Platform::Wasm, 23);
    let mut mixed = Vec::new();
    mixed.extend(evm.contracts().iter().cloned());
    mixed.extend(wasm.contracts().iter().cloned());
    let mixed = Corpus::from_contracts(mixed);
    let scanner = ScannerBuilder::new()
        .model(ModelKind::Classic(
            ClassicModel::RandomForest,
            FeatureKind::Unified,
        ))
        .train(&mixed)
        .expect("training succeeds");

    let v_evm = scanner
        .scan(&evm.contracts()[0].bytes)
        .expect("evm scan")
        .verdict;
    assert_eq!(v_evm.platform, Platform::Evm);
    let v_wasm = scanner
        .scan(&wasm.contracts()[0].bytes)
        .expect("wasm scan")
        .verdict;
    assert_eq!(v_wasm.platform, Platform::Wasm);
}

#[test]
fn verdicts_expose_analysis_size() {
    let corpus = corpus(40, Platform::Evm, 29);
    let scanner = ScannerBuilder::new()
        .model(ModelKind::Classic(
            ClassicModel::DecisionTree,
            FeatureKind::Unified,
        ))
        .train(&corpus)
        .expect("training succeeds");
    let v = scanner
        .scan(&corpus.contracts()[3].bytes)
        .expect("scan")
        .verdict;
    assert!(v.blocks > 1);
    assert!(v.instructions > 10);
    assert!(!v.model.is_empty());
    assert!((0.0..=1.0).contains(&v.malicious_probability));
}
