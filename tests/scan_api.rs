//! Integration tests for the batch-first scanning API: builder
//! configuration, skeleton-hash dedup, parallel execution and exact
//! equivalence between batched and sequential scans.

use scamdetect::{
    CacheStatus, ClassicModel, FeatureKind, ModelKind, ScanRequest, ScannerBuilder, TrainOptions,
};
use scamdetect_dataset::{Corpus, CorpusConfig};
use scamdetect_evm::proxy::detect_proxy;

fn dup_corpus() -> Corpus {
    Corpus::generate(&CorpusConfig {
        size: 48,
        seed: 0xBA7C,
        proxy_duplicates: 12,
        ..CorpusConfig::default()
    })
}

/// Parallel batch scanning is an optimization, never a semantic
/// change: a batch scan must produce verdicts byte-identical to
/// one-at-a-time `scan` calls on a second, identically-trained
/// scanner. (Training is deterministic, so two scanners built from
/// the same corpus and options carry the same weights.)
#[test]
fn batch_verdicts_match_sequential_one_shot_scans() {
    let corpus = dup_corpus();
    let kind = ModelKind::Classic(ClassicModel::RandomForest, FeatureKind::Combined);
    let options = TrainOptions::default();

    let sequential = ScannerBuilder::new()
        .model(kind)
        .train_options(options.clone())
        .workers(1)
        .train(&corpus)
        .expect("sequential scanner trains");
    let batch = ScannerBuilder::new()
        .model(kind)
        .train_options(options)
        .workers(4)
        .train(&corpus)
        .expect("batch scanner trains");

    let requests: Vec<ScanRequest> = corpus
        .contracts()
        .iter()
        .map(|c| ScanRequest::new(&c.bytes))
        .collect();
    let outcomes = batch.scan_batch(&requests);
    assert_eq!(outcomes.len(), corpus.len());

    for (c, outcome) in corpus.contracts().iter().zip(outcomes) {
        let report = outcome.expect("batch scan succeeds");
        let one_at_a_time = sequential.scan(&c.bytes).expect("sequential scan succeeds");
        // Byte-identical verdicts: same label, same probability bits,
        // same platform, model and CFG statistics.
        assert_eq!(report.verdict, one_at_a_time.verdict);
    }
}

#[test]
fn erc1167_duplicates_hit_cache_after_first_occurrence() {
    let corpus = dup_corpus();
    let scanner = ScannerBuilder::new()
        .workers(8)
        .train(&corpus)
        .expect("scanner trains");

    let requests: Vec<ScanRequest> = corpus
        .contracts()
        .iter()
        .map(|c| ScanRequest::new(&c.bytes))
        .collect();
    let outcomes = scanner.scan_batch(&requests);

    // Every ERC-1167 clone after its first occurrence must be a hit.
    let mut seen_proxy = false;
    let mut proxy_hits = 0;
    for (c, outcome) in corpus.contracts().iter().zip(&outcomes) {
        let report = outcome.as_ref().expect("scan succeeds");
        if detect_proxy(&c.bytes) != scamdetect_evm::proxy::ProxyKind::NotProxy {
            if seen_proxy {
                assert!(
                    report.cache.is_hit(),
                    "proxy clone after the first must hit the dedup cache"
                );
                proxy_hits += 1;
            } else {
                seen_proxy = true;
            }
        }
    }
    assert!(
        proxy_hits >= 11,
        "expected ≥11 proxy cache hits, got {proxy_hits}"
    );

    // Re-scanning the same batch is fully warm.
    let again = scanner.scan_batch(&requests);
    for outcome in again {
        assert_eq!(outcome.expect("scan succeeds").cache, CacheStatus::CacheHit);
    }
}

#[test]
fn custom_threshold_flips_borderline_verdict() {
    let corpus = dup_corpus();
    let kind = ModelKind::Classic(ClassicModel::RandomForest, FeatureKind::Unified);

    let lenient = ScannerBuilder::new()
        .model(kind)
        .threshold(0.05)
        .train(&corpus)
        .expect("trains");
    let strict = ScannerBuilder::new()
        .model(kind)
        .threshold(0.95)
        .train(&corpus)
        .expect("trains");

    // Find a borderline contract: probability strictly between the two
    // thresholds, so the decision flips purely with the threshold.
    let mut flipped = 0;
    for c in corpus.contracts() {
        let low = lenient.scan(&c.bytes).expect("scan succeeds");
        let high = strict.scan(&c.bytes).expect("scan succeeds");
        let p = low.verdict.malicious_probability;
        assert_eq!(p, high.verdict.malicious_probability);
        if p > 0.05 && p < 0.95 {
            assert!(
                low.is_malicious(),
                "p={p} must be flagged at threshold 0.05"
            );
            assert!(!high.is_malicious(), "p={p} must pass at threshold 0.95");
            flipped += 1;
        }
    }
    assert!(flipped > 0, "corpus has no borderline contract to flip");
}

#[test]
fn worker_count_does_not_change_results() {
    let corpus = dup_corpus();
    let requests: Vec<ScanRequest> = corpus
        .contracts()
        .iter()
        .map(|c| ScanRequest::new(&c.bytes))
        .collect();

    let kind = ModelKind::Classic(ClassicModel::DecisionTree, FeatureKind::Unified);
    let mut baseline: Option<Vec<_>> = None;
    for workers in [1usize, 2, 7, 16] {
        let scanner = ScannerBuilder::new()
            .model(kind)
            .workers(workers)
            .train(&corpus)
            .expect("trains");
        let verdicts: Vec<_> = scanner
            .scan_batch(&requests)
            .into_iter()
            .map(|o| {
                let r = o.expect("scan succeeds");
                (r.verdict, r.skeleton, r.cache)
            })
            .collect();
        match &baseline {
            None => baseline = Some(verdicts),
            Some(expected) => assert_eq!(
                expected, &verdicts,
                "results changed with workers={workers}"
            ),
        }
    }
}

/// The WASM-platform dedup path: duplicate WASM modules in one batch
/// must collapse onto one computation via the FNV-1a byte fingerprint,
/// exactly like EVM skeletons (and ERC-1167 clones) do on theirs.
#[test]
fn wasm_duplicates_collapse_via_fnv1a_fingerprint() {
    let wasm = Corpus::generate(&CorpusConfig {
        size: 40,
        platform: scamdetect_ir::Platform::Wasm,
        seed: 0x3A5A,
        ..CorpusConfig::default()
    });
    let scanner = ScannerBuilder::new()
        .model(ModelKind::Classic(
            ClassicModel::RandomForest,
            FeatureKind::Unified,
        ))
        .workers(4)
        .train(&wasm)
        .expect("trains");

    // One batch: module A four times, module B twice, interleaved.
    let a = &wasm.contracts()[0].bytes;
    let b = &wasm.contracts()[1].bytes;
    let requests = [
        ScanRequest::new(a),
        ScanRequest::new(b),
        ScanRequest::new(a),
        ScanRequest::new(a),
        ScanRequest::new(b),
        ScanRequest::new(a),
    ];
    let reports: Vec<_> = scanner
        .scan_batch(&requests)
        .into_iter()
        .map(|o| o.expect("wasm scan succeeds"))
        .collect();

    // Fingerprints are the FNV-1a of the raw module bytes, and all
    // verdicts are on the WASM platform.
    for (report, request) in reports.iter().zip(&requests) {
        assert_eq!(report.verdict.platform, scamdetect_ir::Platform::Wasm);
        assert_eq!(
            report.skeleton,
            scamdetect_evm::proxy::fnv1a(request.bytes())
        );
    }

    // First occurrence of each module computes; every duplicate is a
    // batch hit sharing the representative's verdict.
    assert_eq!(reports[0].cache, CacheStatus::Miss);
    assert_eq!(reports[1].cache, CacheStatus::Miss);
    for &(dup, rep) in &[(2usize, 0usize), (3, 0), (4, 1), (5, 0)] {
        assert_eq!(reports[dup].cache, CacheStatus::BatchHit, "request {dup}");
        assert_eq!(reports[dup].verdict, reports[rep].verdict);
        assert_eq!(reports[dup].skeleton, reports[rep].skeleton);
    }
    // Distinct modules never collide.
    assert_ne!(reports[0].skeleton, reports[1].skeleton);
    // Exactly two fingerprints are memoised for later batches…
    assert_eq!(scanner.cache_len(), 2);
    // …which arrive fully warm.
    for outcome in scanner.scan_batch(&requests) {
        assert_eq!(outcome.expect("warm scan").cache, CacheStatus::CacheHit);
    }
}

#[test]
fn wasm_and_evm_mix_in_one_batch() {
    let evm = Corpus::generate(&CorpusConfig {
        size: 30,
        seed: 5,
        ..CorpusConfig::default()
    });
    let wasm = Corpus::generate(&CorpusConfig {
        size: 30,
        platform: scamdetect_ir::Platform::Wasm,
        seed: 6,
        ..CorpusConfig::default()
    });
    let mut mixed = Vec::new();
    mixed.extend(evm.contracts().iter().cloned());
    mixed.extend(wasm.contracts().iter().cloned());
    let mixed = Corpus::from_contracts(mixed);

    let scanner = ScannerBuilder::new()
        .model(ModelKind::Classic(
            ClassicModel::RandomForest,
            FeatureKind::Unified,
        ))
        .workers(4)
        .train(&mixed)
        .expect("trains");
    let requests: Vec<ScanRequest> = mixed
        .contracts()
        .iter()
        .map(|c| ScanRequest::new(&c.bytes))
        .collect();
    for (c, outcome) in mixed.contracts().iter().zip(scanner.scan_batch(&requests)) {
        let report = outcome.expect("scan succeeds");
        assert_eq!(report.verdict.platform, c.platform);
    }
}
