//! The train-once / serve-anywhere acceptance suite.
//!
//! * **Round-trip invariant, every architecture:** for all 10 classic
//!   models × all 3 feature kinds and all 5 GNN architectures,
//!   `save → load → score` reproduces the training scanner's
//!   probabilities **bit-for-bit** on a held-out corpus, and the loaded
//!   scanner is constructed by a function that has no `Corpus` in scope.
//! * **Corruption robustness:** truncated, corrupted and
//!   wrong-version artifacts fail with typed
//!   [`ScamDetectError::Artifact`] errors — never a panic.
//! * **Golden fixture:** a committed artifact must keep loading and keep
//!   producing the committed scores, and re-serializing it must
//!   reproduce the committed bytes — any silent format or endianness
//!   drift fails the build (CI runs this on stable *and* the MSRV).

use scamdetect::{
    ArtifactError, ClassicModel, FeatureKind, GnnKind, ModelArtifact, ModelKind, ScamDetectError,
    Scanner, ScannerBuilder, TrainOptions,
};
use scamdetect_dataset::{Corpus, CorpusConfig};
use std::path::{Path, PathBuf};

fn train_corpus() -> Corpus {
    Corpus::generate(&CorpusConfig {
        size: 30,
        seed: 0x7EA1,
        ..CorpusConfig::default()
    })
}

fn held_out_corpus() -> Corpus {
    Corpus::generate(&CorpusConfig {
        size: 10,
        seed: 0x0DD,
        ..CorpusConfig::default()
    })
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("scamdetect-artifact-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

/// The serving side of every round trip, deliberately signature-limited
/// to a path: no `Corpus` is in scope here, proving `ScannerBuilder::load`
/// is train-free construction.
fn load_scanner_without_corpus(path: &Path) -> Scanner {
    ScannerBuilder::new().load(path).expect("artifact loads")
}

/// Trains `kind`, saves, loads train-free, and asserts held-out
/// probabilities reproduce bit-for-bit.
fn assert_round_trip(kind: ModelKind, options: &TrainOptions, dir: &Path) {
    let trained = ScannerBuilder::new()
        .model(kind)
        .threshold(0.5)
        .train_options(options.clone())
        .train(&train_corpus())
        .unwrap_or_else(|e| panic!("{kind:?} trains: {e}"));
    let path = dir.join(format!("{}.scam", trained.detector().name()));
    trained.save(&path).expect("saves");

    let loaded = load_scanner_without_corpus(&path);
    assert_eq!(loaded.detector().name(), trained.detector().name());
    for contract in held_out_corpus().contracts() {
        let a = trained.scan(&contract.bytes).expect("trained scan").verdict;
        let b = loaded.scan(&contract.bytes).expect("loaded scan").verdict;
        assert_eq!(
            a.malicious_probability.to_bits(),
            b.malicious_probability.to_bits(),
            "{kind:?}: probability drifted through save/load ({} vs {})",
            a.malicious_probability,
            b.malicious_probability,
        );
        assert_eq!(a.label, b.label);
    }
}

#[test]
fn round_trip_every_classic_model_and_feature_kind() {
    let dir = temp_dir("classic");
    let options = TrainOptions::default();
    for model in ClassicModel::all() {
        for features in FeatureKind::all() {
            assert_round_trip(ModelKind::Classic(model, features), &options, &dir);
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn round_trip_every_gnn_architecture() {
    let dir = temp_dir("gnn");
    let mut options = TrainOptions::default();
    options.gnn.epochs = 2; // smoke-level training: persistence, not accuracy
    for kind in GnnKind::all() {
        assert_round_trip(ModelKind::Gnn(kind), &options, &dir);
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn truncated_and_corrupted_artifacts_fail_typed_never_panic() {
    let trained = ScannerBuilder::new()
        .model(ModelKind::Classic(
            ClassicModel::LogisticRegression,
            FeatureKind::Unified,
        ))
        .train(&train_corpus())
        .expect("trains");
    let bytes = trained.to_artifact().expect("artifact").to_bytes();

    // Every possible truncation point is a typed error.
    for k in 0..bytes.len() {
        match ModelArtifact::from_bytes(&bytes[..k]) {
            Err(ScamDetectError::Artifact(_)) => {}
            Err(other) => panic!("prefix {k}: non-artifact error {other}"),
            Ok(_) => panic!("prefix of {k} bytes parsed as a complete artifact"),
        }
    }

    // Every single-byte corruption is a typed error (magic, version,
    // headers and payloads are all covered — payloads by checksums).
    for k in 0..bytes.len() {
        let mut corrupt = bytes.clone();
        corrupt[k] ^= 0x01;
        match ModelArtifact::from_bytes(&corrupt) {
            Err(ScamDetectError::Artifact(_)) => {}
            Err(other) => panic!("flip at {k}: non-artifact error {other}"),
            Ok(_) => panic!("flip at byte {k} went undetected"),
        }
    }

    // A future format version is diagnosed as exactly that.
    let mut future = bytes.clone();
    future[8] = 0x2A;
    future[9] = 0x00;
    match ModelArtifact::from_bytes(&future) {
        Err(ScamDetectError::Artifact(ArtifactError::VersionMismatch { found, supported })) => {
            assert_eq!(found, 0x2A);
            assert_eq!(supported, 1);
        }
        other => panic!("expected VersionMismatch, got {other:?}"),
    }
}

// ───────────────────────── golden fixture ──────────────────────────
//
// A committed artifact trained by `regenerate_golden_fixture` (below).
// The assertions pin the wire format: if a code change alters how
// artifacts serialize or deserialize — field order, endianness, checksum
// rule, defaults — this test fails on stable and MSRV alike.

const GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/fixtures/golden-logreg-unified-v1.scam"
);
const GOLDEN_SEED: u64 = 0x601D;
const GOLDEN_THRESHOLD: f64 = 0.625;

/// Contracts the golden scores are pinned on (deterministic generation).
fn golden_probe_corpus() -> Corpus {
    Corpus::generate(&CorpusConfig {
        size: 4,
        seed: GOLDEN_SEED ^ 1,
        ..CorpusConfig::default()
    })
}

fn golden_train_corpus() -> Corpus {
    Corpus::generate(&CorpusConfig {
        size: 40,
        seed: GOLDEN_SEED,
        ..CorpusConfig::default()
    })
}

/// Expected P(malicious) bit patterns on the four probe contracts, as
/// printed by `regenerate_golden_fixture`.
const GOLDEN_SCORE_BITS: [u64; 4] = [
    0x3FE5B791C7F65C58, // 0.6786583810343343
    0x3FEBD01B2729C1DE, // 0.8691535725502566
    0x3F7B05F5FE2E742D, // 0.006597481641532216
    0x3F849BF9437DA553, // 0.010063121196895486
];

#[test]
fn golden_artifact_still_loads_scores_and_reserializes_identically() {
    let bytes = std::fs::read(GOLDEN_PATH).expect("golden fixture is committed to the repo");
    let artifact = ModelArtifact::from_bytes(&bytes).expect("golden fixture parses");
    assert_eq!(
        artifact.kind(),
        ModelKind::Classic(ClassicModel::LogisticRegression, FeatureKind::Unified)
    );
    assert_eq!(artifact.threshold(), GOLDEN_THRESHOLD);

    // Byte-stable writer: re-serializing the parsed artifact must
    // reproduce the committed file exactly.
    assert_eq!(
        artifact.to_bytes(),
        bytes,
        "re-serialization no longer reproduces the committed artifact"
    );

    // Score-stable reader: the served probabilities are pinned.
    let scanner = ScannerBuilder::new()
        .load_bytes(&bytes)
        .expect("golden fixture serves");
    for (contract, &expected) in golden_probe_corpus()
        .contracts()
        .iter()
        .zip(&GOLDEN_SCORE_BITS)
    {
        let p = scanner
            .scan(&contract.bytes)
            .expect("probe scan")
            .verdict
            .malicious_probability;
        assert_eq!(
            p.to_bits(),
            expected,
            "golden score drifted: got {p} (bits {:#018X}), expected bits {expected:#018X}",
            p.to_bits(),
        );
    }
}

/// Regenerates the committed fixture and prints the score constants.
/// Run manually after an *intentional* format-version bump:
///
/// ```text
/// cargo test --test model_artifact regenerate_golden_fixture -- --ignored --nocapture
/// ```
#[test]
#[ignore = "writes the committed fixture; run only on deliberate format changes"]
fn regenerate_golden_fixture() {
    let trained = ScannerBuilder::new()
        .model(ModelKind::Classic(
            ClassicModel::LogisticRegression,
            FeatureKind::Unified,
        ))
        .threshold(GOLDEN_THRESHOLD)
        .train(&golden_train_corpus())
        .expect("trains");
    trained.save(GOLDEN_PATH).expect("writes fixture");
    println!("wrote {GOLDEN_PATH}");
    println!("const GOLDEN_SCORE_BITS: [u64; 4] = [");
    for contract in golden_probe_corpus().contracts() {
        let p = trained
            .scan(&contract.bytes)
            .expect("probe scan")
            .verdict
            .malicious_probability;
        println!("    {:#018X}, // {p}", p.to_bits());
    }
    println!("];");
}
