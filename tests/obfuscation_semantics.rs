//! Differential testing: obfuscation must never change observable
//! behaviour, across every family, level and several seeds.
//!
//! This is the load-bearing guarantee behind experiments E3/E4 — if a pass
//! changed semantics, "robustness to obfuscation" would be measuring the
//! wrong thing.

use rand::SeedableRng;
use scamdetect_dataset::{generate_evm, FamilyKind};
use scamdetect_evm::interp::{execute, InterpConfig, TxContext};
use scamdetect_evm::word::U256;
use scamdetect_obfuscate::{obfuscate_evm, ObfuscationLevel};
use std::collections::BTreeMap;

fn contexts(selectors: &[[u8; 4]]) -> Vec<TxContext> {
    let mut out = Vec::new();
    // One context per declared function, with args and value.
    for sel in selectors {
        let mut ctx = TxContext::with_selector(
            *sel,
            &[U256::from_u64(9), U256::from_u64(4), U256::from_u64(2)],
        );
        ctx.callvalue = U256::from_u64(120);
        out.push(ctx);
    }
    // And one junk-selector context (fallback path).
    out.push(TxContext::with_selector([0xff, 0xfe, 0xfd, 0xfc], &[]));
    out
}

#[test]
fn every_family_survives_every_obfuscation_level() {
    let interp = InterpConfig::default();
    for family in FamilyKind::all() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xFA0 ^ family as u64);
        let generated = generate_evm(family, &mut rng);
        let original = generated.program.assemble().expect("assembles");
        let ctxs = contexts(&generated.selectors);

        for level in ObfuscationLevel::all() {
            let (obf_prog, _) = obfuscate_evm(&generated.program, level, 0xBEEF);
            let obf = obf_prog.assemble().expect("obfuscated assembles");
            for (i, ctx) in ctxs.iter().enumerate() {
                let a = execute(&original, ctx, &BTreeMap::new(), &interp);
                let b = execute(&obf, ctx, &BTreeMap::new(), &interp);
                assert_eq!(
                    a, b,
                    "family {family}, level {level}, context {i}: behaviour diverged"
                );
            }
        }
    }
}

#[test]
fn obfuscation_composes_with_stored_state() {
    // Deposit-then-withdraw across an obfuscation boundary: run the
    // deposit on the ORIGINAL, feed its storage into the OBFUSCATED
    // withdraw (and vice versa) — storage layouts must agree because the
    // transformation may not touch data semantics.
    let interp = InterpConfig::default();
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x5AFE);
    let generated = generate_evm(FamilyKind::Vault, &mut rng);
    let original = generated.program.assemble().unwrap();
    let (obf_prog, _) = obfuscate_evm(&generated.program, ObfuscationLevel::new(4), 0xCAFE);
    let obf = obf_prog.assemble().unwrap();

    let mut deposit_ctx = TxContext::with_selector(generated.selectors[0], &[]);
    deposit_ctx.callvalue = U256::from_u64(700);
    let after_deposit = execute(&original, &deposit_ctx, &BTreeMap::new(), &interp);

    let withdraw_ctx = TxContext::with_selector(generated.selectors[1], &[U256::from_u64(300)]);
    let w_orig = execute(&original, &withdraw_ctx, &after_deposit.storage, &interp);
    let w_obf = execute(&obf, &withdraw_ctx, &after_deposit.storage, &interp);
    assert_eq!(w_orig, w_obf, "cross-version state handling diverged");
}

#[test]
fn obfuscated_code_differs_but_cfg_stays_buildable() {
    for family in [FamilyKind::ApprovalDrainer, FamilyKind::Erc20Token] {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let generated = generate_evm(family, &mut rng);
        let original = generated.program.assemble().unwrap();
        for level in ObfuscationLevel::all().into_iter().skip(1) {
            let (obf_prog, report) = obfuscate_evm(&generated.program, level, 2);
            let obf = obf_prog.assemble().unwrap();
            assert_ne!(obf, original, "{family} {level}: identity transformation");
            assert!(report.growth() >= 1.0);
            let cfg = scamdetect_evm::cfg::build_cfg(&obf);
            assert!(cfg.block_count() >= 1);
        }
    }
}
