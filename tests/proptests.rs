//! Property-based tests on the cross-crate invariants.

use proptest::prelude::*;
use scamdetect_evm::disasm::{assemble_instructions, disassemble};
use scamdetect_evm::word::U256;
use scamdetect_wasm::decode::decode_module;
use scamdetect_wasm::encode::encode_module;
use scamdetect_wasm::instr::{IBinOp, Instr, Width};
use scamdetect_wasm::module::Module;
use scamdetect_wasm::types::{BlockType, FuncType, ValType};

proptest! {
    /// Disassembly followed by re-encoding is the identity on arbitrary
    /// byte strings (the linear sweep consumes every byte exactly once).
    #[test]
    fn evm_disassemble_reencode_roundtrip(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let instrs = disassemble(&bytes);
        prop_assert_eq!(assemble_instructions(&instrs), bytes);
    }

    /// Instruction offsets are strictly increasing and contiguous.
    #[test]
    fn evm_disassembly_offsets_are_contiguous(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let instrs = disassemble(&bytes);
        let mut expected = 0usize;
        for ins in &instrs {
            prop_assert_eq!(ins.offset, expected);
            expected = ins.next_offset();
        }
        prop_assert_eq!(expected, bytes.len());
    }

    /// U256 arithmetic agrees with u128 on values that fit.
    #[test]
    fn u256_matches_u128(a in any::<u64>(), b in any::<u64>()) {
        let (wa, wb) = (U256::from_u64(a), U256::from_u64(b));
        prop_assert_eq!(
            wa.wrapping_add(&wb).to_usize(),
            usize::try_from(a as u128 + b as u128).ok()
        );
        prop_assert_eq!(
            &wa.wrapping_mul(&wb).to_be_bytes()[16..],
            &((a as u128) * (b as u128)).to_be_bytes()[..]
        );
        prop_assert_eq!(wa.xor(&wb).to_usize(), Some((a ^ b) as usize));
        prop_assert_eq!(wa.and(&wb).to_usize(), Some((a & b) as usize));
    }

    /// U256 big-endian byte roundtrip.
    #[test]
    fn u256_byte_roundtrip(bytes in proptest::collection::vec(any::<u8>(), 0..=32)) {
        let w = U256::from_be_bytes(&bytes);
        let full = w.to_be_bytes();
        prop_assert_eq!(U256::from_be_bytes(&full), w);
        // Minimal encoding re-expands to the same value.
        let min = w.to_be_bytes_minimal();
        prop_assert_eq!(U256::from_be_bytes(&min), w);
    }

    /// XOR-split constants always recombine (the invariant constant
    /// splitting obfuscation relies on).
    #[test]
    fn constant_split_recombines(v in any::<u64>(), k in any::<u64>()) {
        let (wv, wk) = (U256::from_u64(v), U256::from_u64(k));
        prop_assert_eq!(wv.xor(&wk).xor(&wk), wv);
        prop_assert_eq!(wv.wrapping_sub(&wk).wrapping_add(&wk), wv);
    }

    /// WASM modules with arbitrary simple function bodies roundtrip
    /// through the binary format.
    #[test]
    fn wasm_module_roundtrip(
        consts in proptest::collection::vec(any::<i64>(), 1..20),
        locals in 0u32..4,
        export in any::<bool>()
    ) {
        let mut body: Vec<Instr> = Vec::new();
        for (i, c) in consts.iter().enumerate() {
            body.push(Instr::I64Const(*c));
            if i % 2 == 1 {
                body.push(Instr::Binary { width: Width::W64, op: IBinOp::Add });
            }
        }
        // Balance the stack: drop everything left.
        let leftover = consts.len() - consts.len() / 2;
        for _ in 0..leftover {
            body.push(Instr::Drop);
        }
        body.push(Instr::Block { ty: BlockType::Empty, body: vec![Instr::Br(0)] });

        let mut m = Module::new();
        let f = m.add_function(
            FuncType::default(),
            vec![(locals, ValType::I64)],
            body,
        );
        if export {
            m.export_func("main", f);
        }
        let bytes = encode_module(&m);
        let back = decode_module(&bytes).expect("decodes");
        prop_assert_eq!(back, m);
    }

    /// The EVM CFG builder never panics and always produces at least one
    /// block on arbitrary bytes.
    #[test]
    fn evm_cfg_total_on_arbitrary_bytes(bytes in proptest::collection::vec(any::<u8>(), 1..300)) {
        let cfg = scamdetect_evm::cfg::build_cfg(&bytes);
        prop_assert!(cfg.block_count() >= 1);
        // All instructions are preserved across the block partition.
        prop_assert_eq!(cfg.instruction_count(), disassemble(&bytes).len());
    }

    /// The unified-IR graph feature vector is finite and fixed-width on
    /// arbitrary EVM bytes.
    #[test]
    fn unified_features_total(bytes in proptest::collection::vec(any::<u8>(), 1..200)) {
        use scamdetect_ir::{EvmFrontend, Frontend};
        let cfg = EvmFrontend::new().lift(&bytes).expect("evm lift is total on nonempty bytes");
        let v = scamdetect_ir::features::graph_feature_vector(&cfg);
        prop_assert_eq!(v.len(), scamdetect_ir::features::GRAPH_FEATURE_DIM);
        prop_assert!(v.iter().all(|x| x.is_finite()));
    }
}
