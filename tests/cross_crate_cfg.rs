//! Cross-crate consistency: the same contract seen by every layer.

use rand::SeedableRng;
use scamdetect_dataset::{generate_evm, generate_wasm, FamilyKind};
use scamdetect_evm::cfg::build_cfg;
use scamdetect_gnn::PreparedGraph;
use scamdetect_graph::{DominatorTree, GraphMetrics, LoopInfo};
use scamdetect_ir::{EvmFrontend, Frontend, WasmFrontend};

#[test]
fn evm_block_structure_is_preserved_into_the_ir() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let g = generate_evm(FamilyKind::Multisig, &mut rng);
    let code = g.program.assemble().unwrap();

    let raw_cfg = build_cfg(&code);
    let unified = EvmFrontend::new().lift(&code).unwrap();

    // Same number of blocks and edges (default policy adds no nodes).
    assert_eq!(unified.block_count(), raw_cfg.block_count());
    assert_eq!(unified.graph().edge_count(), raw_cfg.graph().edge_count());
    // Same instruction totals.
    assert_eq!(unified.instruction_count(), raw_cfg.instruction_count());
}

#[test]
fn graph_analyses_agree_between_layers() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    let g = generate_evm(FamilyKind::PonziScheme, &mut rng);
    let code = g.program.assemble().unwrap();
    let unified = EvmFrontend::new().lift(&code).unwrap();

    // The ponzi payout loop must be visible as a natural loop in the IR.
    let dom = DominatorTree::compute(unified.graph(), unified.entry());
    let loops = LoopInfo::detect(unified.graph(), &dom);
    assert!(loops.loop_count() >= 1, "payout loop not recovered");

    let metrics = GraphMetrics::compute(unified.graph(), unified.entry());
    assert!(metrics.branch_count >= 2, "dispatcher branches missing");
    assert_eq!(metrics.node_count, unified.block_count());
}

#[test]
fn wasm_and_evm_prepare_into_identical_tensor_shapes() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let evm = generate_evm(FamilyKind::Vault, &mut rng);
    let wasm = generate_wasm(FamilyKind::Vault, &mut rng);

    let evm_cfg = EvmFrontend::new()
        .lift(&evm.program.assemble().unwrap())
        .unwrap();
    let wasm_cfg = WasmFrontend::new()
        .lift(&scamdetect_wasm::encode::encode_module(&wasm.module))
        .unwrap();

    let ge = PreparedGraph::from_cfg(&evm_cfg, 0);
    let gw = PreparedGraph::from_cfg(&wasm_cfg, 0);
    // Node counts differ; feature dimensionality MUST NOT — that is the
    // platform-agnosticism contract.
    assert_eq!(ge.feature_dim(), gw.feature_dim());
    assert_eq!(ge.adj.matrix().shape(), (ge.node_count(), ge.node_count()));
    assert_eq!(gw.adj.matrix().shape(), (gw.node_count(), gw.node_count()));
}

#[test]
fn family_semantics_leave_ir_fingerprints() {
    use scamdetect_ir::InstrClass;
    let mut rng = rand::rngs::StdRng::seed_from_u64(4);

    // Drainer: cross-contract calls present.
    let drainer = generate_evm(FamilyKind::ApprovalDrainer, &mut rng);
    let cfg = EvmFrontend::new()
        .lift(&drainer.program.assemble().unwrap())
        .unwrap();
    assert!(cfg.class_histogram()[InstrClass::Call.index()] > 0.0);

    // Escrow: block-environment reads (timestamp gate) + value transfer.
    let escrow = generate_evm(FamilyKind::Escrow, &mut rng);
    let cfg = EvmFrontend::new()
        .lift(&escrow.program.assemble().unwrap())
        .unwrap();
    let h = cfg.class_histogram();
    assert!(h[InstrClass::BlockEnv.index()] > 0.0);
    assert!(h[InstrClass::ValueTransfer.index()] > 0.0);

    // Registry: storage writes, no value transfer at all.
    let registry = generate_evm(FamilyKind::Registry, &mut rng);
    let cfg = EvmFrontend::new()
        .lift(&registry.program.assemble().unwrap())
        .unwrap();
    let h = cfg.class_histogram();
    assert!(h[InstrClass::StorageWrite.index()] > 0.0);
    assert_eq!(h[InstrClass::ValueTransfer.index()], 0.0);
}
