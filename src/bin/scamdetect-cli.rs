//! The ScamDetect command-line scanner.
//!
//! ```text
//! scamdetect-cli inspect <hexfile>            static analysis of one contract
//! scamdetect-cli train --save <path> [opts]   train a detector, persist the artifact
//! scamdetect-cli retrain --feedback-log <p>   fold served feedback into the corpus and
//!                 --save <path> [opts]        train a candidate artifact (see below)
//! scamdetect-cli scan <hexfile> [options]     scan one contract
//! scamdetect-cli batch <hexfile>... [options] scan many (dedup + parallel)
//! scamdetect-cli serve --models-dir <dir>     run the scanning daemon (see below)
//! scamdetect-cli shadow <start|status|stop|promote>  drive a daemon's shadow-scoring
//!                 --addr <host:port> [opts]          session (see below)
//! scamdetect-cli fleet <serve|status|rollout> multi-replica fleet operations (see below)
//! scamdetect-cli trace <id> --addr <host:port> fetch one request's trace and print the
//!                                             span timeline; pointed at a fleet router it
//!                                             follows the forward span to the owning
//!                                             replica and stitches one cross-process tree
//! scamdetect-cli demo                         end-to-end demonstration
//!
//! serve options:
//!   --models-dir <dir>                             directory of *.scam artifacts (required);
//!                                                  the lexicographically last stem serves
//!   --addr <host:port>                             bind address (default 127.0.0.1:7878;
//!                                                  port 0 picks an ephemeral port)
//!   --model <id>                                   pin a specific artifact stem
//!   --http-workers <n>                             connection worker threads (default: cores)
//!   --transport <threads|epoll>                    connection backend: blocking worker pool
//!                                                  (portable default) or an event-driven
//!                                                  epoll loop (Linux) that holds thousands
//!                                                  of idle keep-alive connections with a
//!                                                  pool-sized thread count; also settable
//!                                                  via SCAMDETECT_TRANSPORT
//!   --workers <n>                                  per-batch scan workers (default: cores)
//!   --cache-capacity <n>                           verdict/prep cache entries (default 4096)
//!   --shed-watermark <n>                           queued connections past which new
//!                                                  arrivals get 429 (default 256, 0 = off)
//!   --retry-after <s>                              Retry-After seconds on 408/429 (default 1)
//!   --feedback-log <path>                          enable POST /feedback, persisting verdict
//!                                                  corrections to this append-only log
//!   --fsync-every <n>                              fsync the feedback log every n appends
//!                                                  (default 8)
//!   --trace-sample <n>                             keep 1-in-n request traces (default 16,
//!                                                  0 disables tracing and /trace/*)
//!   --trace-slow-ms <ms>                           always keep requests slower than this
//!                                                  (default 50); kept traces are readable
//!                                                  at GET /trace/recent and /trace/<id>
//!
//! The daemon answers POST /scan, POST /batch, GET /models,
//! POST /models/reload (hot swap), POST /feedback, GET+POST /shadow/*,
//! GET /healthz and GET /metrics, and shuts down gracefully on
//! SIGTERM/ctrl-c. Wire schema: `scamdetect_serve::wire`. Typical
//! lifecycle:
//!
//!   scamdetect-cli train --save models/rf-v1.scam
//!   scamdetect-cli serve --models-dir models --feedback-log feedback.log &
//!   curl -X POST localhost:7878/scan -d '{"bytecode": "0x6001…"}'
//!   curl -X POST localhost:7878/feedback \
//!        -d '{"bytecode": "0x6001…", "label": "malicious"}'
//!   scamdetect-cli retrain --feedback-log feedback.log --save models/rf-v2.scam
//!   scamdetect-cli shadow start   --addr 127.0.0.1:7878 --model rf-v2
//!   ... mirrored traffic accumulates ...
//!   scamdetect-cli shadow status  --addr 127.0.0.1:7878
//!   scamdetect-cli shadow promote --addr 127.0.0.1:7878   # thresholded hot swap
//!
//! retrain options: every train option, plus
//!   --feedback-log <path>                          the daemon's feedback log (required);
//!                                                  label overrides are keyed by request
//!                                                  fingerprint, the output is deterministic
//!                                                  given --seed + the log contents
//!
//! shadow subcommands (all take --addr <host:port>, default 127.0.0.1:7878):
//!   shadow start --model <id>                      load <id> as the shadow candidate
//!   shadow status                                  print session counters + agreement
//!   shadow stop                                    tear the session down (no swap)
//!   shadow promote [--min-samples <n>]             promote candidate → champion; refused
//!                  [--min-agreement <p>]           below the thresholds (default 32, 0.95)
//!
//! fleet subcommands (topology: `scamdetect_fleet` crate docs):
//!   fleet serve --replicas <h:p,h:p,...>           run the consistent-hash front-door
//!               [--addr <host:port>]               router over running serve replicas
//!               [--vnodes <n>]                     (default addr 127.0.0.1:7800,
//!               [--forward-timeout-ms <ms>]        64 vnodes per replica; forward timeout
//!               [--retry-after <s>]                doubles as the default per-request
//!               [--breaker-failures <n>]           deadline budget, overridable per
//!               [--breaker-error-rate <p>]         request via the x-deadline-ms header;
//!               [--breaker-cooldown-ms <ms>]       breaker: trip after n consecutive
//!               [--transport <threads|epoll>]      failures or error rate ≥ p, re-probe
//!               [--trace-sample <n>]               after the cooldown; --transport picks
//!               [--trace-slow-ms <ms>]             the router's connection backend;
//!                                                  trace flags mirror serve's — the router
//!                                                  keeps its own span ring and forwards
//!                                                  x-trace-id to the owning replica)
//!   fleet status --router <host:port>              print ring topology, shard shares
//!                                                  and per-replica health
//!   fleet rollout --replicas <h:p,h:p,...>         staged artifact rollout: push to
//!                 --artifact <path>                 every replica (checksum handshake),
//!                 --model-id <id>                   hot-swap one canary, judge it on
//!                 [--canary <index>]                probe scans, then promote
//!                 [--probe <hexfile>]...            fleet-wide (aborts roll back)
//!                 [--shadow]                        gate the canary swap behind shadow
//!                 [--shadow-min-samples <n>]        scoring: candidate mirrors real probe
//!                 [--shadow-min-agreement <p>]      traffic and swaps via the replica's
//!                                                   thresholded /shadow/promote
//!
//! train options:
//!   --save <path>                                  artifact output path (required)
//!   --model <name>                                 detector to train (default rf)
//!   --platform <evm|wasm|mixed>                    training corpus platform (default mixed)
//!   --corpus-size / --seed / --threshold / --gnn-batch / --bucket as below
//!
//! scan / batch options:
//!   --model <name|artifact-path>                   detector (default rf). A known name
//!                                                  (rf|logreg|mlp|gcn|gat|gin|tag|sage)
//!                                                  trains fresh; anything else is loaded
//!                                                  as a saved model artifact — the
//!                                                  train-once / serve-anywhere path, no
//!                                                  training corpus needed.
//!   --corpus-size <n>                              training corpus size (default 300)
//!   --seed <n>                                     corpus seed (default 42)
//!   --threshold <p>                                decision threshold (default 0.5, or
//!                                                  the artifact's saved threshold)
//!   --workers <n>                                  batch worker threads (default: cores)
//!   --gnn-batch <n>                                graphs per GNN training batch (default 16)
//!   --bucket                                       length-bucket GNN training batches by
//!                                                  node count (pack once, bounded batches)
//!   --save <path>                                  after a fresh training run, persist the
//!                                                  model artifact for later --model loads
//! ```
//!
//! Contract files contain hex bytes (optional `0x` prefix, whitespace
//! ignored); `-` reads from stdin.

use scamdetect::featurize::{detect_platform, lift_bytes};
use scamdetect::{
    ClassicModel, FeatureKind, GnnKind, ModelKind, ScanRequest, ScannerBuilder, TrainOptions,
};
use scamdetect_dataset::{generate_evm, Corpus, CorpusConfig, FamilyKind};
use scamdetect_evm::{cfg::build_cfg, disasm::disassemble, selector::extract_selectors};
use scamdetect_ir::{InstrClass, Platform};
use std::io::Read as _;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("inspect") => cmd_inspect(&args[1..]),
        Some("train") => cmd_train(&args[1..]),
        Some("retrain") => cmd_retrain(&args[1..]),
        Some("scan") => cmd_scan(&args[1..]),
        Some("batch") => cmd_batch(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("shadow") => cmd_shadow(&args[1..]),
        Some("fleet") => cmd_fleet(&args[1..]),
        Some("trace") => cmd_trace(&args[1..]),
        Some("demo") => cmd_demo(),
        _ => {
            eprintln!(
                "usage: scamdetect-cli <inspect|train|retrain|scan|batch|serve|shadow|fleet|trace|demo> [args]"
            );
            eprintln!("       see crate docs for options");
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn read_contract(path: &str) -> Result<Vec<u8>, Box<dyn std::error::Error>> {
    let raw = if path == "-" {
        let mut s = String::new();
        std::io::stdin().read_to_string(&mut s)?;
        s
    } else {
        std::fs::read_to_string(path)?
    };
    // Same hex dialect as the daemon's wire format (optional 0x prefix,
    // whitespace ignored) — one decoder for both surfaces.
    let bytes = scamdetect_serve::wire::decode_hex(&raw)?;
    if bytes.is_empty() {
        return Err("empty contract".into());
    }
    Ok(bytes)
}

fn cmd_inspect(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let path = args.first().ok_or("inspect needs a hex file path")?;
    let bytes = read_contract(path)?;
    let platform = detect_platform(&bytes);
    println!("platform: {platform} ({} bytes)", bytes.len());

    if platform == Platform::Evm {
        let instrs = disassemble(&bytes);
        println!("instructions: {}", instrs.len());
        let sels = extract_selectors(&bytes);
        if !sels.is_empty() {
            print!("selectors:");
            for s in &sels {
                print!(" {s}");
            }
            println!();
        }
        let cfg = build_cfg(&bytes);
        println!(
            "cfg: {} blocks, {} edges, {} resolved / {} unresolved jumps",
            cfg.block_count(),
            cfg.graph().edge_count(),
            cfg.resolved_jump_count(),
            cfg.unresolved_jump_count()
        );
    }

    let unified = lift_bytes(platform, &bytes)?;
    println!(
        "unified ir: {} blocks, {} instructions",
        unified.block_count(),
        unified.instruction_count()
    );
    let hist = unified.class_histogram();
    let mut ranked: Vec<(InstrClass, f64)> = InstrClass::all()
        .iter()
        .map(|&c| (c, hist[c.index()]))
        .filter(|(_, v)| *v > 0.0)
        .collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
    println!("instruction classes:");
    for (c, share) in ranked {
        println!("  {c:<8} {:>5.1}%", share * 100.0);
    }
    Ok(())
}

fn parse_model(name: &str) -> Result<ModelKind, String> {
    Ok(match name {
        "rf" => ModelKind::Classic(ClassicModel::RandomForest, FeatureKind::Combined),
        "logreg" => ModelKind::Classic(ClassicModel::LogisticRegression, FeatureKind::Combined),
        "mlp" => ModelKind::Classic(ClassicModel::Mlp, FeatureKind::Combined),
        "gcn" => ModelKind::Gnn(GnnKind::Gcn),
        "gat" => ModelKind::Gnn(GnnKind::Gat),
        "gin" => ModelKind::Gnn(GnnKind::Gin),
        "tag" => ModelKind::Gnn(GnnKind::Tag),
        "sage" => ModelKind::Gnn(GnnKind::Sage),
        other => return Err(format!("unknown model '{other}'")),
    })
}

/// Where the scanner's model comes from: trained fresh on a synthetic
/// corpus, or loaded train-free from a saved artifact.
enum ModelSource {
    Train(ModelKind),
    Load(String),
}

/// `--model` accepts either a known architecture name (train fresh) or a
/// path to a saved artifact (serve the pre-trained weights).
fn parse_model_source(value: &str) -> Result<ModelSource, String> {
    match parse_model(value) {
        Ok(kind) => Ok(ModelSource::Train(kind)),
        Err(_) if std::path::Path::new(value).exists() => Ok(ModelSource::Load(value.to_string())),
        Err(e) => Err(format!("{e} (and no artifact file exists at that path)")),
    }
}

/// Options shared by `train`, `scan` and `batch`.
struct ScanOptions {
    model: ModelSource,
    corpus_size: usize,
    seed: u64,
    /// `None` = builder default (0.5 when training, the saved threshold
    /// when loading an artifact).
    threshold: Option<f64>,
    workers: usize,
    gnn_batch: usize,
    bucket: bool,
    save: Option<String>,
    platform: Option<String>,
    /// Training-only flags the user explicitly passed, so scan/batch can
    /// reject them (instead of silently ignoring them) when `--model`
    /// loads a pre-trained artifact and no training happens.
    train_flags: Vec<&'static str>,
    paths: Vec<String>,
}

fn parse_scan_options(args: &[String]) -> Result<ScanOptions, Box<dyn std::error::Error>> {
    let mut opts = ScanOptions {
        model: ModelSource::Train(parse_model("rf").expect("default model")),
        corpus_size: 300,
        seed: 42,
        threshold: None,
        workers: 0,
        gnn_batch: 16,
        bucket: false,
        save: None,
        platform: None,
        train_flags: Vec::new(),
        paths: Vec::new(),
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--model" => {
                i += 1;
                opts.model = parse_model_source(args.get(i).ok_or("--model needs a value")?)?;
            }
            "--corpus-size" => {
                i += 1;
                opts.corpus_size = args.get(i).ok_or("--corpus-size needs a value")?.parse()?;
                opts.train_flags.push("--corpus-size");
            }
            "--seed" => {
                i += 1;
                opts.seed = args.get(i).ok_or("--seed needs a value")?.parse()?;
                opts.train_flags.push("--seed");
            }
            "--threshold" => {
                i += 1;
                let t: f64 = args.get(i).ok_or("--threshold needs a value")?.parse()?;
                if !t.is_finite() || !(0.0..=1.0).contains(&t) {
                    return Err(format!("--threshold must be in [0, 1], got {t}").into());
                }
                opts.threshold = Some(t);
            }
            "--workers" => {
                i += 1;
                opts.workers = args.get(i).ok_or("--workers needs a value")?.parse()?;
            }
            "--gnn-batch" => {
                i += 1;
                opts.gnn_batch = args.get(i).ok_or("--gnn-batch needs a value")?.parse()?;
                if opts.gnn_batch == 0 {
                    return Err("--gnn-batch must be at least 1".into());
                }
                opts.train_flags.push("--gnn-batch");
            }
            "--bucket" => {
                opts.bucket = true;
                opts.train_flags.push("--bucket");
            }
            "--save" => {
                i += 1;
                opts.save = Some(args.get(i).ok_or("--save needs a path")?.clone());
            }
            "--platform" => {
                i += 1;
                opts.platform = Some(args.get(i).ok_or("--platform needs a value")?.clone());
            }
            flag if flag.starts_with("--") => return Err(format!("unknown option '{flag}'").into()),
            path => opts.paths.push(path.to_string()),
        }
        i += 1;
    }
    Ok(opts)
}

/// Builds the training corpus covering every platform in `platforms` —
/// a mixed batch trains a mixed corpus so no contract is scored by a
/// model that never saw its runtime.
fn training_corpus(opts: &ScanOptions, platforms: &[Platform]) -> Corpus {
    match platforms {
        [single] => {
            eprintln!(
                "training on a {}-contract {single} corpus (seed {})...",
                opts.corpus_size, opts.seed
            );
            Corpus::generate(&CorpusConfig {
                size: opts.corpus_size,
                platform: *single,
                seed: opts.seed,
                ..CorpusConfig::default()
            })
        }
        _ => {
            eprintln!(
                "training on a {}-contract mixed evm+wasm corpus (seed {})...",
                opts.corpus_size, opts.seed
            );
            let half = (opts.corpus_size / 2).max(1);
            let mut contracts = Vec::new();
            for (platform, size, seed) in [
                (Platform::Evm, half, opts.seed),
                (
                    Platform::Wasm,
                    (opts.corpus_size - half).max(1),
                    opts.seed ^ 1,
                ),
            ] {
                let corpus = Corpus::generate(&CorpusConfig {
                    size,
                    platform,
                    seed,
                    ..CorpusConfig::default()
                });
                contracts.extend(corpus.contracts().iter().cloned());
            }
            Corpus::from_contracts(contracts)
        }
    }
}

/// Configures a builder from the shared CLI options (threshold only when
/// explicitly given, so a loaded artifact's saved threshold survives).
fn configure_builder(opts: &ScanOptions) -> ScannerBuilder {
    let mut builder = ScannerBuilder::new().workers(opts.workers);
    if let Some(t) = opts.threshold {
        builder = builder.threshold(t);
    }
    builder
}

/// Builds the scanner: train-free from a saved artifact when `--model`
/// names one, otherwise trained fresh on a synthetic corpus covering
/// `platforms`.
fn obtain_scanner(
    opts: &ScanOptions,
    platforms: &[Platform],
) -> Result<scamdetect::Scanner, Box<dyn std::error::Error>> {
    match &opts.model {
        ModelSource::Load(path) => {
            eprintln!("loading pre-trained model artifact from {path}...");
            let scanner = configure_builder(opts).load(path)?;
            eprintln!(
                "serving {} (threshold {})",
                scanner.detector().name(),
                scanner.threshold()
            );
            Ok(scanner)
        }
        ModelSource::Train(kind) => train_scanner(opts, *kind, platforms),
    }
}

fn train_scanner(
    opts: &ScanOptions,
    kind: ModelKind,
    platforms: &[Platform],
) -> Result<scamdetect::Scanner, Box<dyn std::error::Error>> {
    let corpus = training_corpus(opts, platforms);
    train_scanner_on(opts, kind, &corpus)
}

/// Trains on an explicit corpus — the seam `retrain` uses to inject a
/// feedback-folded corpus into the ordinary training path.
fn train_scanner_on(
    opts: &ScanOptions,
    kind: ModelKind,
    corpus: &Corpus,
) -> Result<scamdetect::Scanner, Box<dyn std::error::Error>> {
    let mut train = TrainOptions::default();
    train.gnn.epochs = 30;
    train.gnn.lr = 1e-2;
    // Block-diagonal mini-batch knobs: graphs per tape, and optional
    // length-bucketing so batches of similar-sized CFGs pack once.
    train.gnn.batch_size = opts.gnn_batch;
    train.gnn.bucket_by_size = opts.bucket;
    Ok(configure_builder(opts)
        .model(kind)
        .train_options(train)
        .train(corpus)?)
}

fn cmd_train(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let opts = parse_scan_options(args)?;
    let save = opts
        .save
        .as_deref()
        .ok_or("train needs --save <path> for the artifact")?;
    let kind = match &opts.model {
        ModelSource::Train(kind) => *kind,
        ModelSource::Load(path) => {
            return Err(
                format!("--model {path}: train expects a model name, not an artifact").into(),
            )
        }
    };
    let platforms = match opts.platform.as_deref() {
        None | Some("mixed") => vec![Platform::Evm, Platform::Wasm],
        Some("evm") => vec![Platform::Evm],
        Some("wasm") => vec![Platform::Wasm],
        Some(other) => return Err(format!("unknown --platform '{other}'").into()),
    };
    if let Some(stray) = opts.paths.first() {
        return Err(format!("train takes no contract files (got '{stray}')").into());
    }
    let scanner = train_scanner(&opts, kind, &platforms)?;
    scanner.save(save)?;
    let size = std::fs::metadata(save)?.len();
    println!(
        "saved {} (threshold {}) to {save} ({size} bytes)",
        scanner.detector().name(),
        scanner.threshold()
    );
    println!("serve it with: scamdetect-cli scan --model {save} <hexfile>");
    Ok(())
}

/// The corpus-closing half of the model lifecycle: replay the daemon's
/// feedback log, override corpus labels by request fingerprint
/// (last record wins), train on the folded corpus and persist the
/// candidate artifact. Deterministic given `--seed` + the log bytes,
/// so two operators retraining from the same log get bit-identical
/// candidates.
fn cmd_retrain(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    use scamdetect::lifecycle::{fold_feedback, FeedbackLog};

    // Peel off --feedback-log; everything else is the train option set.
    let mut rest: Vec<String> = Vec::new();
    let mut log_path: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--feedback-log" {
            i += 1;
            log_path = Some(args.get(i).ok_or("--feedback-log needs a path")?.clone());
        } else {
            rest.push(args[i].clone());
        }
        i += 1;
    }
    let log_path = log_path.ok_or("retrain needs --feedback-log <path> (the daemon's log)")?;
    let opts = parse_scan_options(&rest)?;
    let save = opts
        .save
        .as_deref()
        .ok_or("retrain needs --save <path> for the candidate artifact")?;
    let kind = match &opts.model {
        ModelSource::Train(kind) => *kind,
        ModelSource::Load(path) => {
            return Err(
                format!("--model {path}: retrain expects a model name, not an artifact").into(),
            )
        }
    };
    let platforms = match opts.platform.as_deref() {
        None | Some("mixed") => vec![Platform::Evm, Platform::Wasm],
        Some("evm") => vec![Platform::Evm],
        Some("wasm") => vec![Platform::Wasm],
        Some(other) => return Err(format!("unknown --platform '{other}'").into()),
    };
    if let Some(stray) = opts.paths.first() {
        return Err(format!("retrain takes no contract files (got '{stray}')").into());
    }

    let records = FeedbackLog::replay(&log_path)?;
    if records.is_empty() {
        return Err(format!("{log_path}: no feedback records to fold").into());
    }
    let mut contracts = training_corpus(&opts, &platforms).contracts().to_vec();
    let overridden = fold_feedback(&mut contracts, &records);
    eprintln!(
        "folded {} feedback records: {overridden} corpus labels overridden",
        records.len()
    );
    let corpus = Corpus::from_contracts(contracts);
    let scanner = train_scanner_on(&opts, kind, &corpus)?;
    scanner.save(save)?;
    let size = std::fs::metadata(save)?.len();
    println!(
        "saved candidate {} (threshold {}) to {save} ({size} bytes)",
        scanner.detector().name(),
        scanner.threshold()
    );
    println!("shadow it with: scamdetect-cli shadow start --model <id>");
    Ok(())
}

/// Scan-side option validation and the post-train `--save` hook, shared
/// by `scan` and `batch`.
fn check_scan_options(opts: &ScanOptions) -> Result<(), Box<dyn std::error::Error>> {
    if opts.platform.is_some() {
        return Err("--platform only applies to the train subcommand".into());
    }
    if matches!(opts.model, ModelSource::Load(_)) {
        if opts.save.is_some() {
            return Err("--save is pointless when --model loads an existing artifact".into());
        }
        // Loading an artifact means no training happens; accepting these
        // silently would let users believe they changed serving behavior.
        if let Some(flag) = opts.train_flags.first() {
            return Err(
                format!("{flag} has no effect when --model loads a pre-trained artifact").into(),
            );
        }
    }
    Ok(())
}

/// Persists the scanner when `--save` accompanied a fresh training run.
fn save_if_requested(
    opts: &ScanOptions,
    scanner: &scamdetect::Scanner,
) -> Result<(), Box<dyn std::error::Error>> {
    if let Some(path) = opts.save.as_deref() {
        scanner.save(path)?;
        eprintln!("saved model artifact to {path}");
    }
    Ok(())
}

fn cmd_scan(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let opts = parse_scan_options(args)?;
    check_scan_options(&opts)?;
    let path = opts.paths.first().ok_or("scan needs a hex file path")?;
    let bytes = read_contract(path)?;
    let scanner = obtain_scanner(&opts, &[detect_platform(&bytes)])?;
    save_if_requested(&opts, &scanner)?;
    let report = scanner.scan(&bytes)?;
    println!("{}", report.verdict);
    Ok(())
}

fn cmd_batch(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let opts = parse_scan_options(args)?;
    check_scan_options(&opts)?;
    if opts.paths.is_empty() {
        return Err("batch needs at least one hex file path".into());
    }
    let contracts: Vec<(String, Vec<u8>)> = opts
        .paths
        .iter()
        .map(|p| match read_contract(p) {
            Ok(bytes) => Ok((p.clone(), bytes)),
            Err(e) => Err(format!("{p}: {e}").into()),
        })
        .collect::<Result<_, Box<dyn std::error::Error>>>()?;
    let mut platforms: Vec<Platform> = Vec::new();
    for (_, bytes) in &contracts {
        let platform = detect_platform(bytes);
        if !platforms.contains(&platform) {
            platforms.push(platform);
        }
    }
    let scanner = obtain_scanner(&opts, &platforms)?;
    save_if_requested(&opts, &scanner)?;

    let requests: Vec<ScanRequest> = contracts
        .iter()
        .map(|(_, bytes)| ScanRequest::new(bytes))
        .collect();
    let started = std::time::Instant::now();
    let outcomes = scanner.scan_batch(&requests);
    let elapsed = started.elapsed();

    let mut hits = 0usize;
    for ((path, _), outcome) in contracts.iter().zip(&outcomes) {
        match outcome {
            Ok(report) => {
                if report.cache.is_hit() {
                    hits += 1;
                }
                println!("{path}: {} [cache {:?}]", report.verdict, report.cache);
            }
            Err(e) => println!("{path}: error: {e}"),
        }
    }
    eprintln!(
        "scanned {} contracts in {elapsed:?} ({hits} dedup cache hits)",
        contracts.len()
    );
    Ok(())
}

fn cmd_serve(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    use scamdetect_serve::daemon::{serve, ServeConfig};
    use scamdetect_serve::http::HttpConfig;

    let mut config = ServeConfig::default();
    // The builder validates what the flags feed it (zero workers,
    // watermark inversions, …) so bad values fail at startup, not as a
    // mystery under load.
    let mut http = HttpConfig::builder();
    let mut models_dir: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        let value = |i: &mut usize| -> Result<String, Box<dyn std::error::Error>> {
            let flag = args[*i].clone();
            *i += 1;
            args.get(*i)
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value").into())
        };
        match args[i].as_str() {
            "--models-dir" => models_dir = Some(value(&mut i)?),
            "--addr" => http = http.addr(value(&mut i)?),
            "--model" => config.registry.pinned = Some(value(&mut i)?),
            "--http-workers" => http = http.workers(value(&mut i)?.parse()?),
            "--transport" => http = http.transport(value(&mut i)?.parse()?),
            "--workers" => config.registry.workers = value(&mut i)?.parse()?,
            "--cache-capacity" => {
                let capacity: usize = value(&mut i)?.parse()?;
                config.registry.cache_capacity = capacity;
                config.registry.prep_capacity = capacity;
            }
            "--shed-watermark" => http = http.shed_watermark(value(&mut i)?.parse()?),
            "--retry-after" => http = http.retry_after_s(value(&mut i)?.parse()?),
            "--feedback-log" => config.lifecycle.feedback_log = Some(value(&mut i)?.into()),
            "--fsync-every" => {
                config.lifecycle.fsync_every = value(&mut i)?.parse()?;
                if config.lifecycle.fsync_every == 0 {
                    return Err("--fsync-every must be at least 1".into());
                }
            }
            "--trace-sample" => http = http.trace_sample(value(&mut i)?.parse()?),
            "--trace-slow-ms" => {
                let ms: u64 = value(&mut i)?.parse()?;
                http = http.trace_slow_us(ms.saturating_mul(1000));
            }
            other => return Err(format!("unknown serve option '{other}'").into()),
        }
        i += 1;
    }
    config.http = http.build()?;
    config.registry.models_dir = models_dir
        .ok_or("serve needs --models-dir <dir> (train one with: train --save <dir>/model-v1.scam)")?
        .into();
    serve(config)?;
    Ok(())
}

/// `shadow <start|status|stop|promote>` — drive one daemon's
/// shadow-scoring session over its management API.
fn cmd_shadow(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    use scamdetect_fleet::client::{shadow_promote, shadow_start, shadow_status, shadow_stop};

    let verb = args
        .first()
        .map(String::as_str)
        .ok_or("usage: scamdetect-cli shadow <start|status|stop|promote> [args]")?;
    let mut addr = "127.0.0.1:7878".to_string();
    let mut model: Option<String> = None;
    let mut min_samples: u64 = 32;
    let mut min_agreement: f64 = 0.95;
    let mut i = 1;
    while i < args.len() {
        let value = |i: &mut usize| -> Result<String, Box<dyn std::error::Error>> {
            let flag = args[*i].clone();
            *i += 1;
            args.get(*i)
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value").into())
        };
        match args[i].as_str() {
            "--addr" => addr = value(&mut i)?,
            "--model" => model = Some(value(&mut i)?),
            "--min-samples" => min_samples = value(&mut i)?.parse()?,
            "--min-agreement" => {
                min_agreement = value(&mut i)?.parse()?;
                if !(0.0..=1.0).contains(&min_agreement) {
                    return Err("--min-agreement must be in [0, 1]".into());
                }
            }
            other => return Err(format!("unknown shadow option '{other}'").into()),
        }
        i += 1;
    }
    let addr: std::net::SocketAddr = addr.parse()?;
    let timeout = std::time::Duration::from_secs(10);
    match verb {
        "start" => {
            let model = model.ok_or("shadow start needs --model <id>")?;
            let (candidate, epoch) = shadow_start(addr, timeout, &model)?;
            println!("{addr}: shadowing '{candidate}' (candidate epoch {epoch})");
        }
        "status" => {
            let status = shadow_status(addr, timeout)?;
            if !status.active {
                println!("{addr}: no shadow session");
                return Ok(());
            }
            println!(
                "{addr}: shadowing '{}' — {} samples, {} agree / {} disagree \
                 (agreement {:.3}), {} dropped",
                status.candidate,
                status.samples,
                status.agreements,
                status.disagreements,
                status.agreement,
                status.dropped,
            );
        }
        "stop" => {
            let stopped = shadow_stop(addr, timeout)?;
            println!(
                "{addr}: {}",
                if stopped {
                    "shadow session stopped"
                } else {
                    "no shadow session was running"
                }
            );
        }
        "promote" => {
            let (promoted, epoch) = shadow_promote(addr, timeout, min_samples, min_agreement)?;
            println!("{addr}: promoted '{promoted}' (model epoch {epoch})");
        }
        other => {
            return Err(format!(
                "unknown shadow subcommand '{other}' (want start|status|stop|promote)"
            )
            .into())
        }
    }
    Ok(())
}

fn parse_replicas(list: &str) -> Result<Vec<std::net::SocketAddr>, Box<dyn std::error::Error>> {
    let replicas: Vec<std::net::SocketAddr> = list
        .split(',')
        .filter(|s| !s.is_empty())
        .map(|s| {
            s.trim()
                .parse()
                .map_err(|e| format!("replica address '{s}': {e}"))
        })
        .collect::<Result<_, _>>()?;
    if replicas.is_empty() {
        return Err("--replicas needs at least one host:port".into());
    }
    Ok(replicas)
}

fn cmd_fleet(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    match args.first().map(String::as_str) {
        Some("serve") => cmd_fleet_serve(&args[1..]),
        Some("status") => cmd_fleet_status(&args[1..]),
        Some("rollout") => cmd_fleet_rollout(&args[1..]),
        _ => Err("usage: scamdetect-cli fleet <serve|status|rollout> [args]".into()),
    }
}

fn cmd_fleet_serve(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    use scamdetect_fleet::{spawn_router, RouterConfig};

    let mut config = RouterConfig {
        addr: "127.0.0.1:7800".to_string(),
        ..RouterConfig::default()
    };
    let mut i = 0;
    while i < args.len() {
        let value = |i: &mut usize| -> Result<String, Box<dyn std::error::Error>> {
            let flag = args[*i].clone();
            *i += 1;
            args.get(*i)
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value").into())
        };
        match args[i].as_str() {
            "--addr" => config.addr = value(&mut i)?,
            "--replicas" => config.replicas = parse_replicas(&value(&mut i)?)?,
            "--vnodes" => {
                config.vnodes = value(&mut i)?.parse()?;
                if config.vnodes == 0 {
                    return Err("--vnodes must be at least 1".into());
                }
            }
            "--http-workers" => config.workers = value(&mut i)?.parse()?,
            "--transport" => config.transport = value(&mut i)?.parse()?,
            "--forward-timeout-ms" => {
                config.forward_timeout = std::time::Duration::from_millis(value(&mut i)?.parse()?);
            }
            "--retry-after" => config.retry_after_s = value(&mut i)?.parse()?,
            "--breaker-failures" => {
                config.breaker.consecutive_failures = value(&mut i)?.parse()?;
                if config.breaker.consecutive_failures == 0 {
                    return Err("--breaker-failures must be at least 1".into());
                }
            }
            "--breaker-error-rate" => {
                config.breaker.error_rate = value(&mut i)?.parse()?;
                if !(0.0..=1.0).contains(&config.breaker.error_rate) {
                    return Err("--breaker-error-rate must be in [0, 1]".into());
                }
            }
            "--breaker-cooldown-ms" => {
                config.breaker.cooldown = std::time::Duration::from_millis(value(&mut i)?.parse()?);
            }
            "--trace-sample" => config.trace_sample = value(&mut i)?.parse()?,
            "--trace-slow-ms" => {
                let ms: u64 = value(&mut i)?.parse()?;
                config.trace_slow_us = ms.saturating_mul(1000);
            }
            other => return Err(format!("unknown fleet serve option '{other}'").into()),
        }
        i += 1;
    }
    if config.replicas.is_empty() {
        return Err("fleet serve needs --replicas <host:port,host:port,...>".into());
    }
    let router = spawn_router(config.clone())?;
    eprintln!(
        "scamdetect-fleet: routing on http://{} over {} replicas ({} ring slices)",
        router.addr,
        config.replicas.len(),
        router.state.shares().iter().map(|(_, n)| n).sum::<usize>(),
    );
    scamdetect_serve::http::shutdown_on_signals(router.shutdown.clone());
    let stats = router
        .join()
        .unwrap_or_else(|_| panic!("router thread panicked"));
    eprintln!(
        "scamdetect-fleet: drained and stopped ({} connections, {} requests)",
        stats.connections, stats.requests
    );
    Ok(())
}

fn cmd_fleet_status(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    use scamdetect_serve::client::http_call;
    use scamdetect_serve::json::Json;

    let mut router: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--router" => {
                i += 1;
                router = Some(args.get(i).ok_or("--router needs a value")?.clone());
            }
            other => return Err(format!("unknown fleet status option '{other}'").into()),
        }
        i += 1;
    }
    let addr: std::net::SocketAddr = router
        .ok_or("fleet status needs --router <host:port>")?
        .parse()?;
    let reply = http_call(addr, "GET", "/fleet", None)?;
    if reply.status != 200 {
        return Err(format!("router answered {}: {}", reply.status, reply.body).into());
    }
    let fleet = Json::parse(&reply.body)?;
    let field = |j: &Json, k: &str| j.get(k).and_then(Json::as_f64).unwrap_or(0.0);
    println!(
        "fleet @ {addr}: {}/{} replicas up, {} slices over {} vnodes, {} rebalances",
        field(&fleet, "replicas_up"),
        field(&fleet, "replicas_total"),
        field(&fleet, "slices"),
        field(&fleet, "vnodes"),
        field(&fleet, "rebalances"),
    );
    for replica in fleet
        .get("replicas")
        .and_then(Json::as_array)
        .unwrap_or(&[])
    {
        let id = replica.get("id").and_then(Json::as_str).unwrap_or("?");
        let up = replica.get("up").and_then(Json::as_bool).unwrap_or(false);
        let model = replica.get("model").and_then(Json::as_str).unwrap_or("-");
        println!(
            "  {:<24} {:<4} {:>5} slices  model {} (epoch {})",
            id,
            if up { "up" } else { "DOWN" },
            field(replica, "slices"),
            model,
            field(replica, "model_epoch"),
        );
    }
    Ok(())
}

fn cmd_fleet_rollout(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    use scamdetect_fleet::{run_rollout, RolloutPlan, ShadowPlan};

    let mut replicas = Vec::new();
    let mut artifact: Option<String> = None;
    let mut model_id: Option<String> = None;
    let mut canary = 0usize;
    let mut probes: Vec<Vec<u8>> = Vec::new();
    let mut shadow: Option<ShadowPlan> = None;
    let mut i = 0;
    while i < args.len() {
        let value = |i: &mut usize| -> Result<String, Box<dyn std::error::Error>> {
            let flag = args[*i].clone();
            *i += 1;
            args.get(*i)
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value").into())
        };
        match args[i].as_str() {
            "--replicas" => replicas = parse_replicas(&value(&mut i)?)?,
            "--artifact" => artifact = Some(value(&mut i)?),
            "--model-id" => model_id = Some(value(&mut i)?),
            "--canary" => canary = value(&mut i)?.parse()?,
            "--probe" => probes.push(read_contract(&value(&mut i)?)?),
            "--shadow" => {
                shadow.get_or_insert_with(ShadowPlan::default);
            }
            "--shadow-min-samples" => {
                shadow.get_or_insert_with(ShadowPlan::default).min_samples =
                    value(&mut i)?.parse()?;
            }
            "--shadow-min-agreement" => {
                let p: f64 = value(&mut i)?.parse()?;
                if !(0.0..=1.0).contains(&p) {
                    return Err("--shadow-min-agreement must be in [0, 1]".into());
                }
                shadow.get_or_insert_with(ShadowPlan::default).min_agreement = p;
            }
            other => return Err(format!("unknown fleet rollout option '{other}'").into()),
        }
        i += 1;
    }
    if replicas.is_empty() {
        return Err("fleet rollout needs --replicas <host:port,host:port,...>".into());
    }
    let artifact = artifact.ok_or("fleet rollout needs --artifact <path>")?;
    let model_id = model_id.ok_or("fleet rollout needs --model-id <id>")?;
    if canary >= replicas.len() {
        return Err(format!(
            "--canary {canary} out of range for a {}-replica fleet",
            replicas.len()
        )
        .into());
    }
    if probes.is_empty() {
        // No operator probes: judge the canary on a small synthetic
        // corpus instead of skipping the compare stage.
        probes = Corpus::generate(&CorpusConfig {
            size: 4,
            seed: 42,
            ..CorpusConfig::default()
        })
        .contracts()
        .iter()
        .map(|c| c.bytes.clone())
        .collect();
    }
    let report = run_rollout(&RolloutPlan {
        replicas,
        model_id,
        artifact: std::fs::read(&artifact).map_err(|e| format!("{artifact}: {e}"))?,
        canary,
        probes,
        timeout: std::time::Duration::from_secs(10),
        shadow,
    })
    .map_err(|e| format!("{e}\nrollout log:\n  {}", e.log.join("\n  ")))?;
    for line in &report.log {
        eprintln!("{line}");
    }
    println!(
        "rolled out '{}' (fnv1a {:#018x}) to {} replicas; canary was {}",
        report.model_id,
        report.checksum,
        report.fleet.len(),
        report.canary,
    );
    for (addr, model, epoch) in &report.fleet {
        println!("  {addr}: model {model} (epoch {epoch})");
    }
    Ok(())
}

/// One span row decoded from a `/trace/<id>` reply — the CLI-side
/// mirror of `scamdetect_serve::wire`'s trace schema.
struct TraceSpanRow {
    id: u64,
    parent: Option<u64>,
    stage: String,
    start_us: u64,
    duration_us: u64,
    note: Option<String>,
}

fn parse_trace_spans(trace: &scamdetect_serve::json::Json) -> Vec<TraceSpanRow> {
    use scamdetect_serve::json::Json;
    trace
        .get("spans")
        .and_then(Json::as_array)
        .unwrap_or(&[])
        .iter()
        .map(|s| TraceSpanRow {
            id: s.get("id").and_then(Json::as_f64).unwrap_or(0.0) as u64,
            parent: s.get("parent").and_then(Json::as_f64).map(|p| p as u64),
            stage: s
                .get("stage")
                .and_then(Json::as_str)
                .unwrap_or("?")
                .to_string(),
            start_us: s.get("start_us").and_then(Json::as_f64).unwrap_or(0.0) as u64,
            duration_us: s.get("duration_us").and_then(Json::as_f64).unwrap_or(0.0) as u64,
            note: s.get("note").and_then(Json::as_str).map(str::to_string),
        })
        .collect()
}

/// The `replica=<addr>` token a router forward span carries — the
/// stitching contract with `scamdetect_fleet::proxy`.
fn forward_replica_addr(note: &str) -> Option<std::net::SocketAddr> {
    note.split_whitespace()
        .find_map(|token| token.strip_prefix("replica="))
        .and_then(|addr| addr.parse().ok())
}

/// Prints one process's span tree, shifting starts by `shift_us` (the
/// replica clock offset) and splicing stitched replica sub-trees under
/// the forward spans that produced them.
fn print_span_tree(
    spans: &[TraceSpanRow],
    parent: Option<u64>,
    depth: usize,
    shift_us: u64,
    stitched: &std::collections::HashMap<u64, (String, Vec<TraceSpanRow>, u64)>,
) {
    for span in spans.iter().filter(|s| s.parent == parent) {
        println!(
            "{:indent$}{:<12} {:>9}µs  +{:<9}µs{}",
            "",
            span.stage,
            span.start_us + shift_us,
            span.duration_us,
            span.note
                .as_deref()
                .map(|n| format!("  {n}"))
                .unwrap_or_default(),
            indent = depth * 2
        );
        if let Some((label, replica_spans, replica_shift)) = stitched.get(&span.id) {
            println!("{:indent$}[replica {label}]", "", indent = (depth + 1) * 2);
            print_span_tree(
                replica_spans,
                None,
                depth + 1,
                *replica_shift,
                &Default::default(),
            );
        }
        print_span_tree(spans, Some(span.id), depth + 1, shift_us, stitched);
    }
}

/// `trace <id> --addr <host:port>` — fetch one kept trace and print its
/// span timeline. Pointed at a fleet router, each forward span's
/// `replica=<addr>` note names the process holding that hop's child
/// spans; the CLI fetches those too (the router forced the replica to
/// keep them by forwarding `x-trace-id`) and prints one stitched
/// cross-process tree, aligning clocks via each trace's unix start.
fn cmd_trace(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    use scamdetect_serve::client::http_call_with_timeout;
    use scamdetect_serve::json::Json;

    let mut addr = "127.0.0.1:7800".to_string();
    let mut id: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" | "--router" => {
                i += 1;
                addr = args.get(i).ok_or("--addr needs a value")?.clone();
            }
            flag if flag.starts_with("--") => {
                return Err(format!("unknown trace option '{flag}'").into())
            }
            value => {
                if id.replace(value.to_string()).is_some() {
                    return Err("trace takes exactly one <id>".into());
                }
            }
        }
        i += 1;
    }
    let id = id.ok_or("usage: scamdetect-cli trace <id> --addr <host:port>")?;
    let addr: std::net::SocketAddr = addr.parse()?;
    let timeout = std::time::Duration::from_secs(10);
    let reply = http_call_with_timeout(addr, "GET", &format!("/trace/{id}"), None, timeout)?;
    if reply.status != 200 {
        return Err(format!("{addr} answered {}: {}", reply.status, reply.body).into());
    }
    let trace = Json::parse(&reply.body)?;
    let head_u64 = |k: &str| trace.get(k).and_then(Json::as_f64).unwrap_or(0.0) as u64;
    let head_bool = |k: &str| trace.get(k).and_then(Json::as_bool).unwrap_or(false);
    let origin_unix_us = head_u64("unix_start_us");
    println!(
        "trace {} @ {addr} — total {}µs (slow={} sampled={} forced={})",
        trace.get("trace_id").and_then(Json::as_str).unwrap_or("?"),
        head_u64("total_us"),
        head_bool("slow"),
        head_bool("sampled"),
        head_bool("forced"),
    );
    let spans = parse_trace_spans(&trace);

    // Follow every forward span to its replica's child spans; a fetch
    // that fails (replica down, trace evicted) degrades to the router's
    // view alone rather than erroring the whole timeline.
    let mut stitched: std::collections::HashMap<u64, (String, Vec<TraceSpanRow>, u64)> =
        std::collections::HashMap::new();
    for span in spans.iter().filter(|s| s.stage == "forward") {
        let Some(replica) = span.note.as_deref().and_then(forward_replica_addr) else {
            continue;
        };
        if replica == addr {
            continue; // pointed directly at a replica, nothing to follow
        }
        let Ok(reply) =
            http_call_with_timeout(replica, "GET", &format!("/trace/{id}"), None, timeout)
        else {
            eprintln!("(replica {replica} unreachable; showing the router's view only)");
            continue;
        };
        if reply.status != 200 {
            eprintln!(
                "(replica {replica} answered {} for this trace; showing the router's view only)",
                reply.status
            );
            continue;
        }
        let Ok(replica_trace) = Json::parse(&reply.body) else {
            continue;
        };
        let replica_unix_us = replica_trace
            .get("unix_start_us")
            .and_then(Json::as_f64)
            .unwrap_or(0.0) as u64;
        stitched.insert(
            span.id,
            (
                replica.to_string(),
                parse_trace_spans(&replica_trace),
                replica_unix_us.saturating_sub(origin_unix_us),
            ),
        );
    }
    print_span_tree(&spans, None, 1, 0, &stitched);
    Ok(())
}

fn cmd_demo() -> Result<(), Box<dyn std::error::Error>> {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(6);
    let drainer = generate_evm(FamilyKind::ApprovalDrainer, &mut rng)
        .program
        .assemble()?;
    let token = generate_evm(FamilyKind::Erc20Token, &mut rng)
        .program
        .assemble()?;

    println!("training a random-forest scanner...");
    let corpus = Corpus::generate(&CorpusConfig {
        size: 300,
        seed: 42,
        ..CorpusConfig::default()
    });
    let trained = ScannerBuilder::new()
        .model(ModelKind::Classic(
            ClassicModel::RandomForest,
            FeatureKind::Combined,
        ))
        .train(&corpus)?;

    // Train once, serve anywhere: round-trip the weights through a model
    // artifact and score with the loaded copy — no corpus, no retraining.
    // (Path is per-process so concurrent demos cannot race each other.)
    let model_path =
        std::env::temp_dir().join(format!("scamdetect-demo-model-{}.scam", std::process::id()));
    trained.save(&model_path)?;
    println!(
        "saved model artifact to {} ({} bytes)",
        model_path.display(),
        std::fs::metadata(&model_path)?.len()
    );
    let scanner = ScannerBuilder::new().load(&model_path)?;
    std::fs::remove_file(&model_path).ok();

    println!("drainer: {}", scanner.scan(&drainer)?.verdict);
    println!("token:   {}", scanner.scan(&token)?.verdict);
    Ok(())
}
