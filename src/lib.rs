pub use scamdetect as core_crate;
